file(REMOVE_RECURSE
  "CMakeFiles/workload_fitting.dir/workload_fitting.cpp.o"
  "CMakeFiles/workload_fitting.dir/workload_fitting.cpp.o.d"
  "workload_fitting"
  "workload_fitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_fitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
