# Empty dependencies file for workload_fitting.
# This may be replaced when dependencies are built.
