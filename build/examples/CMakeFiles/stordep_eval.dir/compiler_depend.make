# Empty compiler generated dependencies file for stordep_eval.
# This may be replaced when dependencies are built.
