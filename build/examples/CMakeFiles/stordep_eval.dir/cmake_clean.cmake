file(REMOVE_RECURSE
  "CMakeFiles/stordep_eval.dir/stordep_eval.cpp.o"
  "CMakeFiles/stordep_eval.dir/stordep_eval.cpp.o.d"
  "stordep_eval"
  "stordep_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stordep_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
