# Empty dependencies file for whatif_explorer.
# This may be replaced when dependencies are built.
