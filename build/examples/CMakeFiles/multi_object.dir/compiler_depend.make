# Empty compiler generated dependencies file for multi_object.
# This may be replaced when dependencies are built.
