file(REMOVE_RECURSE
  "CMakeFiles/multi_object.dir/multi_object.cpp.o"
  "CMakeFiles/multi_object.dir/multi_object.cpp.o.d"
  "multi_object"
  "multi_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
