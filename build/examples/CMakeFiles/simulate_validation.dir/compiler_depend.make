# Empty compiler generated dependencies file for simulate_validation.
# This may be replaced when dependencies are built.
