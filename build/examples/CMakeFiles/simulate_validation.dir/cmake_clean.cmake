file(REMOVE_RECURSE
  "CMakeFiles/simulate_validation.dir/simulate_validation.cpp.o"
  "CMakeFiles/simulate_validation.dir/simulate_validation.cpp.o.d"
  "simulate_validation"
  "simulate_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulate_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
