file(REMOVE_RECURSE
  "CMakeFiles/bench_expected_vs_worst.dir/bench_expected_vs_worst.cpp.o"
  "CMakeFiles/bench_expected_vs_worst.dir/bench_expected_vs_worst.cpp.o.d"
  "bench_expected_vs_worst"
  "bench_expected_vs_worst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_expected_vs_worst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
