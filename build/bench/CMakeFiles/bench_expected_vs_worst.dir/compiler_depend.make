# Empty compiler generated dependencies file for bench_expected_vs_worst.
# This may be replaced when dependencies are built.
