# Empty dependencies file for bench_figure5_costs.
# This may be replaced when dependencies are built.
