file(REMOVE_RECURSE
  "CMakeFiles/bench_figure5_costs.dir/bench_figure5_costs.cpp.o"
  "CMakeFiles/bench_figure5_costs.dir/bench_figure5_costs.cpp.o.d"
  "bench_figure5_costs"
  "bench_figure5_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure5_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
