file(REMOVE_RECURSE
  "CMakeFiles/bench_figure3_rp_ranges.dir/bench_figure3_rp_ranges.cpp.o"
  "CMakeFiles/bench_figure3_rp_ranges.dir/bench_figure3_rp_ranges.cpp.o.d"
  "bench_figure3_rp_ranges"
  "bench_figure3_rp_ranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure3_rp_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
