# Empty compiler generated dependencies file for bench_figure3_rp_ranges.
# This may be replaced when dependencies are built.
