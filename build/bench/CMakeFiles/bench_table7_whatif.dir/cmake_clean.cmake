file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_whatif.dir/bench_table7_whatif.cpp.o"
  "CMakeFiles/bench_table7_whatif.dir/bench_table7_whatif.cpp.o.d"
  "bench_table7_whatif"
  "bench_table7_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
