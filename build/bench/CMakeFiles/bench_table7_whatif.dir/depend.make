# Empty dependencies file for bench_table7_whatif.
# This may be replaced when dependencies are built.
