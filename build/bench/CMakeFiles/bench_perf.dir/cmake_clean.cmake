file(REMOVE_RECURSE
  "CMakeFiles/bench_perf.dir/bench_perf.cpp.o"
  "CMakeFiles/bench_perf.dir/bench_perf.cpp.o.d"
  "bench_perf"
  "bench_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
