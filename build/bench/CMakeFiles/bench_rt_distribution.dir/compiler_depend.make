# Empty compiler generated dependencies file for bench_rt_distribution.
# This may be replaced when dependencies are built.
