file(REMOVE_RECURSE
  "CMakeFiles/bench_rt_distribution.dir/bench_rt_distribution.cpp.o"
  "CMakeFiles/bench_rt_distribution.dir/bench_rt_distribution.cpp.o.d"
  "bench_rt_distribution"
  "bench_rt_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rt_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
