file(REMOVE_RECURSE
  "CMakeFiles/bench_degraded_coverage.dir/bench_degraded_coverage.cpp.o"
  "CMakeFiles/bench_degraded_coverage.dir/bench_degraded_coverage.cpp.o.d"
  "bench_degraded_coverage"
  "bench_degraded_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_degraded_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
