# Empty dependencies file for bench_degraded_coverage.
# This may be replaced when dependencies are built.
