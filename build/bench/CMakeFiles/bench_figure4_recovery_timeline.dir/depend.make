# Empty dependencies file for bench_figure4_recovery_timeline.
# This may be replaced when dependencies are built.
