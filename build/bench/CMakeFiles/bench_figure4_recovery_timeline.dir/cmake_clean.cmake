file(REMOVE_RECURSE
  "CMakeFiles/bench_figure4_recovery_timeline.dir/bench_figure4_recovery_timeline.cpp.o"
  "CMakeFiles/bench_figure4_recovery_timeline.dir/bench_figure4_recovery_timeline.cpp.o.d"
  "bench_figure4_recovery_timeline"
  "bench_figure4_recovery_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure4_recovery_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
