# Empty dependencies file for bench_sensitivity_links.
# This may be replaced when dependencies are built.
