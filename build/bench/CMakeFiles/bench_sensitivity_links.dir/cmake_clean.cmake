file(REMOVE_RECURSE
  "CMakeFiles/bench_sensitivity_links.dir/bench_sensitivity_links.cpp.o"
  "CMakeFiles/bench_sensitivity_links.dir/bench_sensitivity_links.cpp.o.d"
  "bench_sensitivity_links"
  "bench_sensitivity_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensitivity_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
