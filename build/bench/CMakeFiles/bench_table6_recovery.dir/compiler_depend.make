# Empty compiler generated dependencies file for bench_table6_recovery.
# This may be replaced when dependencies are built.
