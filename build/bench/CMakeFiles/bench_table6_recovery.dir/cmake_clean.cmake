file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_recovery.dir/bench_table6_recovery.cpp.o"
  "CMakeFiles/bench_table6_recovery.dir/bench_table6_recovery.cpp.o.d"
  "bench_table6_recovery"
  "bench_table6_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
