# Empty compiler generated dependencies file for bench_validation_sim.
# This may be replaced when dependencies are built.
