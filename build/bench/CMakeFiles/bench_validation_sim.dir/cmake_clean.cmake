file(REMOVE_RECURSE
  "CMakeFiles/bench_validation_sim.dir/bench_validation_sim.cpp.o"
  "CMakeFiles/bench_validation_sim.dir/bench_validation_sim.cpp.o.d"
  "bench_validation_sim"
  "bench_validation_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validation_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
