# Empty dependencies file for bench_ablation_d2d.
# This may be replaced when dependencies are built.
