file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_d2d.dir/bench_ablation_d2d.cpp.o"
  "CMakeFiles/bench_ablation_d2d.dir/bench_ablation_d2d.cpp.o.d"
  "bench_ablation_d2d"
  "bench_ablation_d2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_d2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
