file(REMOVE_RECURSE
  "CMakeFiles/bench_sensitivity_penalty.dir/bench_sensitivity_penalty.cpp.o"
  "CMakeFiles/bench_sensitivity_penalty.dir/bench_sensitivity_penalty.cpp.o.d"
  "bench_sensitivity_penalty"
  "bench_sensitivity_penalty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensitivity_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
