# Empty dependencies file for bench_sensitivity_penalty.
# This may be replaced when dependencies are built.
