# Empty dependencies file for bench_table5_utilization.
# This may be replaced when dependencies are built.
