file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_utilization.dir/bench_table5_utilization.cpp.o"
  "CMakeFiles/bench_table5_utilization.dir/bench_table5_utilization.cpp.o.d"
  "bench_table5_utilization"
  "bench_table5_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
