# Empty dependencies file for bench_ablation_scheduling.
# This may be replaced when dependencies are built.
