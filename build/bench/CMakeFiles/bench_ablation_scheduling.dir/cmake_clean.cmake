file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_scheduling.dir/bench_ablation_scheduling.cpp.o"
  "CMakeFiles/bench_ablation_scheduling.dir/bench_ablation_scheduling.cpp.o.d"
  "bench_ablation_scheduling"
  "bench_ablation_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
