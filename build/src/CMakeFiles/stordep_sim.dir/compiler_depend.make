# Empty compiler generated dependencies file for stordep_sim.
# This may be replaced when dependencies are built.
