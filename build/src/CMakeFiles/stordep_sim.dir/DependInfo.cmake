
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/bandwidth_probe.cpp" "src/CMakeFiles/stordep_sim.dir/sim/bandwidth_probe.cpp.o" "gcc" "src/CMakeFiles/stordep_sim.dir/sim/bandwidth_probe.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/stordep_sim.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/stordep_sim.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/stordep_sim.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/stordep_sim.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/failure_injector.cpp" "src/CMakeFiles/stordep_sim.dir/sim/failure_injector.cpp.o" "gcc" "src/CMakeFiles/stordep_sim.dir/sim/failure_injector.cpp.o.d"
  "/root/repo/src/sim/recovery_simulator.cpp" "src/CMakeFiles/stordep_sim.dir/sim/recovery_simulator.cpp.o" "gcc" "src/CMakeFiles/stordep_sim.dir/sim/recovery_simulator.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/CMakeFiles/stordep_sim.dir/sim/rng.cpp.o" "gcc" "src/CMakeFiles/stordep_sim.dir/sim/rng.cpp.o.d"
  "/root/repo/src/sim/rp_simulator.cpp" "src/CMakeFiles/stordep_sim.dir/sim/rp_simulator.cpp.o" "gcc" "src/CMakeFiles/stordep_sim.dir/sim/rp_simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stordep_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
