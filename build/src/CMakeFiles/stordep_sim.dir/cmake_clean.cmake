file(REMOVE_RECURSE
  "CMakeFiles/stordep_sim.dir/sim/bandwidth_probe.cpp.o"
  "CMakeFiles/stordep_sim.dir/sim/bandwidth_probe.cpp.o.d"
  "CMakeFiles/stordep_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/stordep_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/stordep_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/stordep_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/stordep_sim.dir/sim/failure_injector.cpp.o"
  "CMakeFiles/stordep_sim.dir/sim/failure_injector.cpp.o.d"
  "CMakeFiles/stordep_sim.dir/sim/recovery_simulator.cpp.o"
  "CMakeFiles/stordep_sim.dir/sim/recovery_simulator.cpp.o.d"
  "CMakeFiles/stordep_sim.dir/sim/rng.cpp.o"
  "CMakeFiles/stordep_sim.dir/sim/rng.cpp.o.d"
  "CMakeFiles/stordep_sim.dir/sim/rp_simulator.cpp.o"
  "CMakeFiles/stordep_sim.dir/sim/rp_simulator.cpp.o.d"
  "libstordep_sim.a"
  "libstordep_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stordep_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
