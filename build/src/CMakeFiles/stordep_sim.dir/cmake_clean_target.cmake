file(REMOVE_RECURSE
  "libstordep_sim.a"
)
