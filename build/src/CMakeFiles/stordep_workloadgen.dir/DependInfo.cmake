
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloadgen/analyzer.cpp" "src/CMakeFiles/stordep_workloadgen.dir/workloadgen/analyzer.cpp.o" "gcc" "src/CMakeFiles/stordep_workloadgen.dir/workloadgen/analyzer.cpp.o.d"
  "/root/repo/src/workloadgen/cello.cpp" "src/CMakeFiles/stordep_workloadgen.dir/workloadgen/cello.cpp.o" "gcc" "src/CMakeFiles/stordep_workloadgen.dir/workloadgen/cello.cpp.o.d"
  "/root/repo/src/workloadgen/generator.cpp" "src/CMakeFiles/stordep_workloadgen.dir/workloadgen/generator.cpp.o" "gcc" "src/CMakeFiles/stordep_workloadgen.dir/workloadgen/generator.cpp.o.d"
  "/root/repo/src/workloadgen/trace.cpp" "src/CMakeFiles/stordep_workloadgen.dir/workloadgen/trace.cpp.o" "gcc" "src/CMakeFiles/stordep_workloadgen.dir/workloadgen/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stordep_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stordep_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
