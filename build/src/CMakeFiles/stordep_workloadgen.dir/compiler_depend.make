# Empty compiler generated dependencies file for stordep_workloadgen.
# This may be replaced when dependencies are built.
