file(REMOVE_RECURSE
  "CMakeFiles/stordep_workloadgen.dir/workloadgen/analyzer.cpp.o"
  "CMakeFiles/stordep_workloadgen.dir/workloadgen/analyzer.cpp.o.d"
  "CMakeFiles/stordep_workloadgen.dir/workloadgen/cello.cpp.o"
  "CMakeFiles/stordep_workloadgen.dir/workloadgen/cello.cpp.o.d"
  "CMakeFiles/stordep_workloadgen.dir/workloadgen/generator.cpp.o"
  "CMakeFiles/stordep_workloadgen.dir/workloadgen/generator.cpp.o.d"
  "CMakeFiles/stordep_workloadgen.dir/workloadgen/trace.cpp.o"
  "CMakeFiles/stordep_workloadgen.dir/workloadgen/trace.cpp.o.d"
  "libstordep_workloadgen.a"
  "libstordep_workloadgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stordep_workloadgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
