file(REMOVE_RECURSE
  "libstordep_workloadgen.a"
)
