file(REMOVE_RECURSE
  "libstordep_core.a"
)
