
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/business.cpp" "src/CMakeFiles/stordep_core.dir/core/business.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/core/business.cpp.o.d"
  "/root/repo/src/core/cost.cpp" "src/CMakeFiles/stordep_core.dir/core/cost.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/core/cost.cpp.o.d"
  "/root/repo/src/core/data_loss.cpp" "src/CMakeFiles/stordep_core.dir/core/data_loss.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/core/data_loss.cpp.o.d"
  "/root/repo/src/core/degraded.cpp" "src/CMakeFiles/stordep_core.dir/core/degraded.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/core/degraded.cpp.o.d"
  "/root/repo/src/core/evaluator.cpp" "src/CMakeFiles/stordep_core.dir/core/evaluator.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/core/evaluator.cpp.o.d"
  "/root/repo/src/core/failure.cpp" "src/CMakeFiles/stordep_core.dir/core/failure.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/core/failure.cpp.o.d"
  "/root/repo/src/core/hierarchy.cpp" "src/CMakeFiles/stordep_core.dir/core/hierarchy.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/core/hierarchy.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/CMakeFiles/stordep_core.dir/core/policy.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/core/policy.cpp.o.d"
  "/root/repo/src/core/propagation.cpp" "src/CMakeFiles/stordep_core.dir/core/propagation.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/core/propagation.cpp.o.d"
  "/root/repo/src/core/recovery.cpp" "src/CMakeFiles/stordep_core.dir/core/recovery.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/core/recovery.cpp.o.d"
  "/root/repo/src/core/risk.cpp" "src/CMakeFiles/stordep_core.dir/core/risk.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/core/risk.cpp.o.d"
  "/root/repo/src/core/technique.cpp" "src/CMakeFiles/stordep_core.dir/core/technique.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/core/technique.cpp.o.d"
  "/root/repo/src/core/techniques/backup.cpp" "src/CMakeFiles/stordep_core.dir/core/techniques/backup.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/core/techniques/backup.cpp.o.d"
  "/root/repo/src/core/techniques/foreground.cpp" "src/CMakeFiles/stordep_core.dir/core/techniques/foreground.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/core/techniques/foreground.cpp.o.d"
  "/root/repo/src/core/techniques/remote_mirror.cpp" "src/CMakeFiles/stordep_core.dir/core/techniques/remote_mirror.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/core/techniques/remote_mirror.cpp.o.d"
  "/root/repo/src/core/techniques/snapshot.cpp" "src/CMakeFiles/stordep_core.dir/core/techniques/snapshot.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/core/techniques/snapshot.cpp.o.d"
  "/root/repo/src/core/techniques/split_mirror.cpp" "src/CMakeFiles/stordep_core.dir/core/techniques/split_mirror.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/core/techniques/split_mirror.cpp.o.d"
  "/root/repo/src/core/techniques/vaulting.cpp" "src/CMakeFiles/stordep_core.dir/core/techniques/vaulting.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/core/techniques/vaulting.cpp.o.d"
  "/root/repo/src/core/units.cpp" "src/CMakeFiles/stordep_core.dir/core/units.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/core/units.cpp.o.d"
  "/root/repo/src/core/utilization.cpp" "src/CMakeFiles/stordep_core.dir/core/utilization.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/core/utilization.cpp.o.d"
  "/root/repo/src/core/workload.cpp" "src/CMakeFiles/stordep_core.dir/core/workload.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/core/workload.cpp.o.d"
  "/root/repo/src/devices/catalog.cpp" "src/CMakeFiles/stordep_core.dir/devices/catalog.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/devices/catalog.cpp.o.d"
  "/root/repo/src/devices/device.cpp" "src/CMakeFiles/stordep_core.dir/devices/device.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/devices/device.cpp.o.d"
  "/root/repo/src/devices/disk_array.cpp" "src/CMakeFiles/stordep_core.dir/devices/disk_array.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/devices/disk_array.cpp.o.d"
  "/root/repo/src/devices/interconnect.cpp" "src/CMakeFiles/stordep_core.dir/devices/interconnect.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/devices/interconnect.cpp.o.d"
  "/root/repo/src/devices/spares.cpp" "src/CMakeFiles/stordep_core.dir/devices/spares.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/devices/spares.cpp.o.d"
  "/root/repo/src/devices/tape_library.cpp" "src/CMakeFiles/stordep_core.dir/devices/tape_library.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/devices/tape_library.cpp.o.d"
  "/root/repo/src/devices/vault.cpp" "src/CMakeFiles/stordep_core.dir/devices/vault.cpp.o" "gcc" "src/CMakeFiles/stordep_core.dir/devices/vault.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
