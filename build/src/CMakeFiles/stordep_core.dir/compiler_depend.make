# Empty compiler generated dependencies file for stordep_core.
# This may be replaced when dependencies are built.
