# Empty compiler generated dependencies file for stordep_casestudy.
# This may be replaced when dependencies are built.
