file(REMOVE_RECURSE
  "libstordep_casestudy.a"
)
