file(REMOVE_RECURSE
  "CMakeFiles/stordep_casestudy.dir/casestudy/casestudy.cpp.o"
  "CMakeFiles/stordep_casestudy.dir/casestudy/casestudy.cpp.o.d"
  "libstordep_casestudy.a"
  "libstordep_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stordep_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
