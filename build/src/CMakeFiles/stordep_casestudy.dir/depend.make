# Empty dependencies file for stordep_casestudy.
# This may be replaced when dependencies are built.
