file(REMOVE_RECURSE
  "libstordep_optimizer.a"
)
