file(REMOVE_RECURSE
  "CMakeFiles/stordep_optimizer.dir/optimizer/design_space.cpp.o"
  "CMakeFiles/stordep_optimizer.dir/optimizer/design_space.cpp.o.d"
  "CMakeFiles/stordep_optimizer.dir/optimizer/refine.cpp.o"
  "CMakeFiles/stordep_optimizer.dir/optimizer/refine.cpp.o.d"
  "CMakeFiles/stordep_optimizer.dir/optimizer/search.cpp.o"
  "CMakeFiles/stordep_optimizer.dir/optimizer/search.cpp.o.d"
  "libstordep_optimizer.a"
  "libstordep_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stordep_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
