# Empty dependencies file for stordep_optimizer.
# This may be replaced when dependencies are built.
