
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/report/csv.cpp" "src/CMakeFiles/stordep_report.dir/report/csv.cpp.o" "gcc" "src/CMakeFiles/stordep_report.dir/report/csv.cpp.o.d"
  "/root/repo/src/report/report.cpp" "src/CMakeFiles/stordep_report.dir/report/report.cpp.o" "gcc" "src/CMakeFiles/stordep_report.dir/report/report.cpp.o.d"
  "/root/repo/src/report/table.cpp" "src/CMakeFiles/stordep_report.dir/report/table.cpp.o" "gcc" "src/CMakeFiles/stordep_report.dir/report/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stordep_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
