file(REMOVE_RECURSE
  "libstordep_report.a"
)
