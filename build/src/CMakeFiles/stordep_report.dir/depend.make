# Empty dependencies file for stordep_report.
# This may be replaced when dependencies are built.
