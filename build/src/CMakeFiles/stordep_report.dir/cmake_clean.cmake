file(REMOVE_RECURSE
  "CMakeFiles/stordep_report.dir/report/csv.cpp.o"
  "CMakeFiles/stordep_report.dir/report/csv.cpp.o.d"
  "CMakeFiles/stordep_report.dir/report/report.cpp.o"
  "CMakeFiles/stordep_report.dir/report/report.cpp.o.d"
  "CMakeFiles/stordep_report.dir/report/table.cpp.o"
  "CMakeFiles/stordep_report.dir/report/table.cpp.o.d"
  "libstordep_report.a"
  "libstordep_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stordep_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
