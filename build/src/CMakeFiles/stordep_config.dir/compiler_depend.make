# Empty compiler generated dependencies file for stordep_config.
# This may be replaced when dependencies are built.
