file(REMOVE_RECURSE
  "CMakeFiles/stordep_config.dir/config/design_io.cpp.o"
  "CMakeFiles/stordep_config.dir/config/design_io.cpp.o.d"
  "CMakeFiles/stordep_config.dir/config/json.cpp.o"
  "CMakeFiles/stordep_config.dir/config/json.cpp.o.d"
  "libstordep_config.a"
  "libstordep_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stordep_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
