file(REMOVE_RECURSE
  "libstordep_config.a"
)
