file(REMOVE_RECURSE
  "CMakeFiles/stordep_multiobject.dir/multiobject/portfolio.cpp.o"
  "CMakeFiles/stordep_multiobject.dir/multiobject/portfolio.cpp.o.d"
  "libstordep_multiobject.a"
  "libstordep_multiobject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stordep_multiobject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
