# Empty dependencies file for stordep_multiobject.
# This may be replaced when dependencies are built.
