file(REMOVE_RECURSE
  "libstordep_multiobject.a"
)
