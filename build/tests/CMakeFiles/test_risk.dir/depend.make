# Empty dependencies file for test_risk.
# This may be replaced when dependencies are built.
