file(REMOVE_RECURSE
  "CMakeFiles/test_risk.dir/risk_test.cpp.o"
  "CMakeFiles/test_risk.dir/risk_test.cpp.o.d"
  "test_risk"
  "test_risk.pdb"
  "test_risk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_risk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
