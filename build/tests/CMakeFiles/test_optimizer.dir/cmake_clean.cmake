file(REMOVE_RECURSE
  "CMakeFiles/test_optimizer.dir/optimizer_test.cpp.o"
  "CMakeFiles/test_optimizer.dir/optimizer_test.cpp.o.d"
  "test_optimizer"
  "test_optimizer.pdb"
  "test_optimizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
