# Empty compiler generated dependencies file for test_degraded.
# This may be replaced when dependencies are built.
