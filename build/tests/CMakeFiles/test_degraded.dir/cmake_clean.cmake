file(REMOVE_RECURSE
  "CMakeFiles/test_degraded.dir/degraded_test.cpp.o"
  "CMakeFiles/test_degraded.dir/degraded_test.cpp.o.d"
  "test_degraded"
  "test_degraded.pdb"
  "test_degraded[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_degraded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
