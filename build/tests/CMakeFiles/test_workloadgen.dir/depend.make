# Empty dependencies file for test_workloadgen.
# This may be replaced when dependencies are built.
