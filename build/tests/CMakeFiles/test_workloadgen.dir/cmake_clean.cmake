file(REMOVE_RECURSE
  "CMakeFiles/test_workloadgen.dir/workloadgen_test.cpp.o"
  "CMakeFiles/test_workloadgen.dir/workloadgen_test.cpp.o.d"
  "test_workloadgen"
  "test_workloadgen.pdb"
  "test_workloadgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloadgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
