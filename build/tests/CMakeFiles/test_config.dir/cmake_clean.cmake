file(REMOVE_RECURSE
  "CMakeFiles/test_config.dir/design_io_test.cpp.o"
  "CMakeFiles/test_config.dir/design_io_test.cpp.o.d"
  "CMakeFiles/test_config.dir/json_test.cpp.o"
  "CMakeFiles/test_config.dir/json_test.cpp.o.d"
  "test_config"
  "test_config.pdb"
  "test_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
