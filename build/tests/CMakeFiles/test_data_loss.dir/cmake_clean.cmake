file(REMOVE_RECURSE
  "CMakeFiles/test_data_loss.dir/data_loss_test.cpp.o"
  "CMakeFiles/test_data_loss.dir/data_loss_test.cpp.o.d"
  "test_data_loss"
  "test_data_loss.pdb"
  "test_data_loss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
