file(REMOVE_RECURSE
  "CMakeFiles/test_propagation.dir/propagation_test.cpp.o"
  "CMakeFiles/test_propagation.dir/propagation_test.cpp.o.d"
  "test_propagation"
  "test_propagation.pdb"
  "test_propagation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
