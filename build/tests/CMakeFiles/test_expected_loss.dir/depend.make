# Empty dependencies file for test_expected_loss.
# This may be replaced when dependencies are built.
