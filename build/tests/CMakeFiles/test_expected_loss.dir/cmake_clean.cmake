file(REMOVE_RECURSE
  "CMakeFiles/test_expected_loss.dir/expected_loss_test.cpp.o"
  "CMakeFiles/test_expected_loss.dir/expected_loss_test.cpp.o.d"
  "test_expected_loss"
  "test_expected_loss.pdb"
  "test_expected_loss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_expected_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
