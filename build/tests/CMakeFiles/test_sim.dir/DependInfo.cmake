
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bandwidth_probe_test.cpp" "tests/CMakeFiles/test_sim.dir/bandwidth_probe_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/bandwidth_probe_test.cpp.o.d"
  "/root/repo/tests/recovery_simulator_test.cpp" "tests/CMakeFiles/test_sim.dir/recovery_simulator_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/recovery_simulator_test.cpp.o.d"
  "/root/repo/tests/rp_simulator_test.cpp" "tests/CMakeFiles/test_sim.dir/rp_simulator_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/rp_simulator_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/test_sim.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stordep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stordep_casestudy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stordep_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
