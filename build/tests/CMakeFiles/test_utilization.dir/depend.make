# Empty dependencies file for test_utilization.
# This may be replaced when dependencies are built.
