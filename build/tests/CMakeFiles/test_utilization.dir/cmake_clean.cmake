file(REMOVE_RECURSE
  "CMakeFiles/test_utilization.dir/utilization_test.cpp.o"
  "CMakeFiles/test_utilization.dir/utilization_test.cpp.o.d"
  "test_utilization"
  "test_utilization.pdb"
  "test_utilization[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
