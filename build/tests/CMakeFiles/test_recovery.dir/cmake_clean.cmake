file(REMOVE_RECURSE
  "CMakeFiles/test_recovery.dir/recovery_test.cpp.o"
  "CMakeFiles/test_recovery.dir/recovery_test.cpp.o.d"
  "test_recovery"
  "test_recovery.pdb"
  "test_recovery[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
