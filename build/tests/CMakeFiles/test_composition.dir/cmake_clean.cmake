file(REMOVE_RECURSE
  "CMakeFiles/test_composition.dir/composition_test.cpp.o"
  "CMakeFiles/test_composition.dir/composition_test.cpp.o.d"
  "test_composition"
  "test_composition.pdb"
  "test_composition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
