# Empty dependencies file for test_techniques.
# This may be replaced when dependencies are built.
