file(REMOVE_RECURSE
  "CMakeFiles/test_techniques.dir/techniques_test.cpp.o"
  "CMakeFiles/test_techniques.dir/techniques_test.cpp.o.d"
  "test_techniques"
  "test_techniques.pdb"
  "test_techniques[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_techniques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
