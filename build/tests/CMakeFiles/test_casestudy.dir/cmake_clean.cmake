file(REMOVE_RECURSE
  "CMakeFiles/test_casestudy.dir/casestudy_test.cpp.o"
  "CMakeFiles/test_casestudy.dir/casestudy_test.cpp.o.d"
  "test_casestudy"
  "test_casestudy.pdb"
  "test_casestudy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
