# Empty dependencies file for test_casestudy.
# This may be replaced when dependencies are built.
