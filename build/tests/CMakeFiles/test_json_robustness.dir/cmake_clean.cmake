file(REMOVE_RECURSE
  "CMakeFiles/test_json_robustness.dir/json_robustness_test.cpp.o"
  "CMakeFiles/test_json_robustness.dir/json_robustness_test.cpp.o.d"
  "test_json_robustness"
  "test_json_robustness.pdb"
  "test_json_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_json_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
