# Empty compiler generated dependencies file for test_json_robustness.
# This may be replaced when dependencies are built.
