# Empty compiler generated dependencies file for test_multiobject.
# This may be replaced when dependencies are built.
