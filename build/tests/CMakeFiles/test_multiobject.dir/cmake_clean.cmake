file(REMOVE_RECURSE
  "CMakeFiles/test_multiobject.dir/portfolio_test.cpp.o"
  "CMakeFiles/test_multiobject.dir/portfolio_test.cpp.o.d"
  "test_multiobject"
  "test_multiobject.pdb"
  "test_multiobject[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiobject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
