# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_units[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_policy[1]_include.cmake")
include("/root/repo/build/tests/test_failure[1]_include.cmake")
include("/root/repo/build/tests/test_devices[1]_include.cmake")
include("/root/repo/build/tests/test_techniques[1]_include.cmake")
include("/root/repo/build/tests/test_propagation[1]_include.cmake")
include("/root/repo/build/tests/test_data_loss[1]_include.cmake")
include("/root/repo/build/tests/test_recovery[1]_include.cmake")
include("/root/repo/build/tests/test_utilization[1]_include.cmake")
include("/root/repo/build/tests/test_cost[1]_include.cmake")
include("/root/repo/build/tests/test_casestudy[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_workloadgen[1]_include.cmake")
include("/root/repo/build/tests/test_config[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_optimizer[1]_include.cmake")
include("/root/repo/build/tests/test_degraded[1]_include.cmake")
include("/root/repo/build/tests/test_risk[1]_include.cmake")
include("/root/repo/build/tests/test_composition[1]_include.cmake")
include("/root/repo/build/tests/test_invariants[1]_include.cmake")
include("/root/repo/build/tests/test_expected_loss[1]_include.cmake")
include("/root/repo/build/tests/test_json_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_multiobject[1]_include.cmake")
