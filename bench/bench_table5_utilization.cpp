// bench_table5_utilization — regenerates paper Table 5.
//
// "Normal mode bandwidth and capacity utilization for baseline system":
// per-device, per-technique utilization of the baseline design under the
// cello workload, alongside the paper's published values for comparison.
// Also prints the model inputs (Tables 2-4) the computation consumes.
#include <iostream>

#include "casestudy/casestudy.hpp"
#include "report/report.hpp"

namespace {

/// Published Table 5 values for the comparison column.
struct PaperRow {
  const char* device;
  const char* technique;
  double bwPct;
  double capPct;
};

constexpr PaperRow kPaper[] = {
    {"primary-array", "foreground workload", 0.2, 14.6},
    {"primary-array", "split mirror", 0.6, 72.8},
    {"primary-array", "tape backup", 1.6, 0.0},
    {"primary-array", "overall", 2.4, 87.4},
    {"tape-library", "tape backup", 3.4, 3.4},
    {"tape-library", "overall", 3.4, 3.4},
    {"tape-vault", "remote vaulting", 0.0, 2.6},
    {"tape-vault", "overall", 0.0, 2.6},
};

const PaperRow* findPaper(const std::string& device,
                          const std::string& technique) {
  for (const auto& row : kPaper) {
    if (device == row.device && technique == row.technique) return &row;
  }
  return nullptr;
}

}  // namespace

int main() {
  namespace cs = stordep::casestudy;
  using stordep::report::Align;
  using stordep::report::TextTable;
  using stordep::report::fixed;
  using stordep::report::percent;

  const stordep::StorageDesign design = cs::baseline();
  const stordep::WorkloadSpec& w = design.workload();

  std::cout << "== Inputs (paper Tables 2-4) ==\n";
  std::cout << "workload: " << w.name() << " — dataCap "
            << toString(w.dataCap()) << ", access "
            << toString(w.avgAccessRate()) << ", updates "
            << toString(w.avgUpdateRate()) << ", burst "
            << w.burstMultiplier() << "x, batchUpdR(12 hr) "
            << toString(w.batchUpdateRate(stordep::hours(12))) << "\n";
  for (const auto& device : design.devices()) {
    std::cout << "device: " << device->describe() << "\n";
  }

  std::cout << "\n== Table 5: normal-mode utilization (model vs paper) ==\n";
  const stordep::UtilizationResult result = computeUtilization(design);

  TextTable table({"Device", "Technique", "BW (model)", "BW (paper)",
                   "Cap (model)", "Cap (paper)"});
  for (size_t c = 2; c < 6; ++c) table.align(c, Align::kRight);
  bool first = true;
  for (const auto& dev : result.devices) {
    if (dev.device == "air-shipment") continue;  // not a Table 5 row
    if (!first) table.addSeparator();
    first = false;
    auto addRow = [&](const std::string& technique, double bw, double cap) {
      const PaperRow* paper = findPaper(dev.device, technique);
      table.addRow({dev.device, technique, percent(bw),
                    paper ? fixed(paper->bwPct, 1) + "%" : "-",
                    percent(cap),
                    paper ? fixed(paper->capPct, 1) + "%" : "-"});
    };
    for (const auto& share : dev.shares) {
      addRow(share.technique, share.bwUtil, share.capUtil);
    }
    addRow("overall", dev.bwUtil, dev.capUtil);
  }
  std::cout << table.render();

  std::cout << "\ntotals: primary array "
            << toString(result.find("primary-array")->bwDemand)
            << " demand (paper: 12.4 MB/s), tape library "
            << toString(result.find("tape-library")->bwDemand)
            << " (paper: 8.1 MB/s); array capacity "
            << toString(result.find("primary-array")->capDemand)
            << " (paper: 8.0 TB), vault "
            << toString(result.find("tape-vault")->capDemand)
            << " (paper: 51.8 TB)\n";
  std::cout << "system: bandwidth " << percent(result.overallBwUtil)
            << " (paper: ~4%), capacity " << percent(result.overallCapUtil)
            << " (paper: 88%)\n";
  return result.feasible() ? 0 : 1;
}
