// bench_fingerprint — structural vs JSON-serialization fingerprint cost.
//
// The evaluation hot path keys its caches on 128-bit fingerprints of
// (design, scenario) pairs. The original implementation materialized the
// canonical design-document JSON and hashed the bytes; the structural path
// hashes the model fields directly into the same dual-FNV streams with zero
// allocation. This bench measures both families over a representative
// population — every valid candidate of the default design-space grid plus
// the case-study scenario set — and checks two contracts:
//
//  * equivalence: the two families induce the same partition (equal JSON
//    fingerprints iff equal structural fingerprints) over the population;
//  * speed: the structural path is at least 5x faster per fingerprint.
//
// Emits BENCH_fingerprint.json (stdout and a file next to the binary's
// working directory) so the perf trajectory can be tracked across PRs, and
// exits non-zero if either contract fails.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <unordered_map>
#include <vector>

#include "casestudy/casestudy.hpp"
#include "config/json.hpp"
#include "engine/fingerprint.hpp"
#include "optimizer/design_space.hpp"
#include "optimizer/search.hpp"

namespace {

namespace cs = stordep::casestudy;
namespace eng = stordep::engine;
namespace opt = stordep::optimizer;
using stordep::config::Json;
using stordep::config::JsonObject;

double secondsSince(std::chrono::steady_clock::time_point start) {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

/// Maps each distinct fingerprint to the index of its first bearer, so two
/// populations can be compared as partitions (same groups, not same bits).
std::vector<std::size_t> partitionOf(const std::vector<eng::Fingerprint>& fps) {
  std::unordered_map<eng::Fingerprint, std::size_t, eng::FingerprintHash>
      first;
  std::vector<std::size_t> classes(fps.size());
  for (std::size_t i = 0; i < fps.size(); ++i) {
    classes[i] = first.emplace(fps[i], i).first->second;
  }
  return classes;
}

}  // namespace

int main() {
  const stordep::WorkloadSpec workload = cs::celloWorkload();
  const stordep::BusinessRequirements business = cs::requirements();

  // Population: every valid candidate of the default grid, materialized as
  // full StorageDesigns, plus the case-study scenario set.
  const std::vector<opt::CandidateSpec> specs = opt::enumerateDesignSpace();
  std::vector<stordep::StorageDesign> designs;
  designs.reserve(specs.size());
  for (const opt::CandidateSpec& spec : specs) {
    designs.push_back(spec.build(workload, business));
  }
  std::vector<stordep::FailureScenario> scenarios;
  for (const opt::ScenarioCase& sc : opt::caseStudyScenarios()) {
    scenarios.push_back(sc.scenario);
  }

  // Equivalence: the JSON and structural families must induce the same
  // partition over the population (and, sanity-wise, distinguish designs the
  // canonical serialization distinguishes).
  std::vector<eng::Fingerprint> jsonFps;
  std::vector<eng::Fingerprint> structFps;
  jsonFps.reserve(designs.size() + scenarios.size());
  structFps.reserve(designs.size() + scenarios.size());
  for (const stordep::StorageDesign& design : designs) {
    jsonFps.push_back(eng::fingerprintDesignJson(design));
    structFps.push_back(eng::fingerprintDesign(design));
  }
  for (const stordep::FailureScenario& scenario : scenarios) {
    jsonFps.push_back(eng::fingerprintScenarioJson(scenario));
    structFps.push_back(eng::fingerprintScenario(scenario));
  }
  const bool samePartition = partitionOf(jsonFps) == partitionOf(structFps);

  // Repetitions sized so each timed section runs long enough to measure the
  // structural path (~sub-microsecond per op) against a steady clock.
  const std::size_t opsPerRep = designs.size() + scenarios.size();
  const std::size_t reps = 200;
  std::uint64_t checksum = 0;  // defeat dead-code elimination

  const auto jsonStart = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    for (const stordep::StorageDesign& design : designs) {
      const eng::Fingerprint fp = eng::fingerprintDesignJson(design);
      checksum ^= fp.hi ^ fp.lo;
    }
    for (const stordep::FailureScenario& scenario : scenarios) {
      const eng::Fingerprint fp = eng::fingerprintScenarioJson(scenario);
      checksum ^= fp.hi ^ fp.lo;
    }
  }
  const double jsonSeconds = secondsSince(jsonStart);
  const double jsonNsPerOp =
      jsonSeconds * 1e9 / static_cast<double>(reps * opsPerRep);

  eng::setFingerprintTiming(true);
  eng::resetFingerprintCounters();
  const auto structStart = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    for (const stordep::StorageDesign& design : designs) {
      const eng::Fingerprint fp = eng::fingerprintDesign(design);
      checksum ^= fp.hi ^ fp.lo;
    }
    for (const stordep::FailureScenario& scenario : scenarios) {
      const eng::Fingerprint fp = eng::fingerprintScenario(scenario);
      checksum ^= fp.hi ^ fp.lo;
    }
  }
  const double structSeconds = secondsSince(structStart);
  eng::setFingerprintTiming(false);
  const eng::FingerprintCounters counters = eng::fingerprintCounters();
  const double structNsPerOp =
      structSeconds * 1e9 / static_cast<double>(reps * opsPerRep);
  const double speedup =
      structNsPerOp > 0.0 ? jsonNsPerOp / structNsPerOp : 0.0;

  bool ok = true;
  if (!samePartition) {
    std::cerr << "FAIL: structural and JSON fingerprints partition the "
                 "population differently\n";
    ok = false;
  }
  if (speedup < 5.0) {
    std::cerr << "FAIL: structural fingerprint speedup " << speedup
              << "x < 5x over the JSON path\n";
    ok = false;
  }

  Json doc{JsonObject{}};
  doc.set("bench", Json("fingerprint"));
  doc.set("designs", Json(static_cast<std::int64_t>(designs.size())));
  doc.set("scenarios", Json(static_cast<std::int64_t>(scenarios.size())));
  doc.set("repetitions", Json(static_cast<std::int64_t>(reps)));
  doc.set("jsonNsPerOp", Json(jsonNsPerOp));
  doc.set("structuralNsPerOp", Json(structNsPerOp));
  doc.set("speedup", Json(speedup));
  doc.set("counterNsPerOp", Json(counters.nanosPerFingerprint()));
  doc.set("bytesHashedPerOp",
          Json(static_cast<double>(counters.bytesHashed) /
               static_cast<double>(counters.designFingerprints +
                                   counters.scenarioFingerprints)));
  doc.set("samePartition", Json(samePartition));
  doc.set("checksum", Json(static_cast<std::int64_t>(checksum & 0x7FFFFFFF)));
  doc.set("ok", Json(ok));

  const std::string out = doc.pretty();
  std::cout << out << "\n";
  std::ofstream file("BENCH_fingerprint.json");
  file << out << "\n";
  return ok ? 0 : 1;
}
