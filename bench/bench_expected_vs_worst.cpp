// bench_expected_vs_worst — expected-case vs worst-case data loss.
//
// The paper reports worst-case data loss only (business-continuity
// practice). This experiment adds the expected case — analytically
// (uniform failure instant: the in-flight wait averages to half a window)
// and empirically (Monte-Carlo failure injection over the simulated RP
// schedules) — and cross-validates the two: the analytic mean must match
// the simulated mean to within a few percent for every single-
// representation design, while the worst case is roughly expected + accW/2.
#include <cmath>
#include <iostream>

#include "casestudy/casestudy.hpp"
#include "report/report.hpp"
#include "sim/failure_injector.hpp"
#include "stochastic/evaluator.hpp"

int main() {
  namespace cs = stordep::casestudy;
  using stordep::report::Align;
  using stordep::report::TextTable;
  using stordep::report::fixed;

  TextTable table({"Design", "Scenario", "Worst (paper-style)",
                   "Expected (analytic)", "Mean (simulated)", "Match"});
  for (size_t c = 2; c < 6; ++c) table.align(c, Align::kRight);
  table.title("Worst-case vs expected recent data loss (analytic means "
              "validated by simulation)");

  struct Case {
    const char* design;
    const char* scenario;
  };
  bool allMatch = true;

  for (const auto& [label, design] :
       std::vector<std::pair<std::string, stordep::StorageDesign>>{
           {"Baseline", cs::baseline()},
           {"Weekly vault, daily F", cs::weeklyVaultDailyFull()},
           {"AsyncB mirror, 1 link", cs::asyncBatchMirror(1)}}) {
    const bool isMirror = label.find("AsyncB") != std::string::npos;
    stordep::sim::RpSimOptions options;
    options.horizon = isMirror ? stordep::hours(12) : stordep::days(250);
    stordep::sim::RpLifecycleSimulator sim(design, options);
    sim.run();
    stordep::sim::FailureInjector injector(sim, stordep::sim::Rng(2026));

    std::vector<std::pair<std::string, stordep::FailureScenario>> scenarios{
        {"array", cs::arrayFailure()}, {"site", cs::siteDisaster()}};
    if (!isMirror) scenarios.emplace_back("object", cs::objectFailure());

    for (const auto& [name, scenario] : scenarios) {
      const auto source = chooseRecoverySource(design, scenario);
      if (!source) continue;
      const stordep::Duration worst = source->dataLoss;
      const stordep::Duration expected =
          expectedDataLoss(design, source->level, scenario);
      const auto stats = injector.validateDataLoss(scenario, 20'000);
      const double relErr =
          std::fabs(expected.secs() - stats.meanObserved.secs()) /
          std::max(1.0, expected.secs());
      const bool match = relErr < 0.05;
      allMatch = allMatch && match;
      table.addRow({label, name, toString(worst), toString(expected),
                    toString(stats.meanObserved),
                    fixed(relErr * 100.0, 1) + "%"});
    }
  }
  std::cout << table.render();

  // Second table: the same story in dollars, through the Monte-Carlo layer.
  // Expected penalty (mean over sampled failure instants) must never exceed
  // the analytic worst-case penalty — that is what makes the ExpectedPenalty
  // search objective a relaxation, not a different model.
  TextTable penTable({"Design", "Scenario", "Worst-case penalty",
                      "Expected penalty", "Ratio"});
  for (size_t c = 2; c < 5; ++c) penTable.align(c, Align::kRight);
  penTable.title(
      "Worst-case vs expected outage+loss penalty (2,000 trials per row)");

  bool penaltyBounded = true;
  for (const auto& [label, design] :
       std::vector<std::pair<std::string, stordep::StorageDesign>>{
           {"Baseline", cs::baseline()},
           {"Weekly vault, F+I", cs::weeklyVaultFullPlusIncremental()},
           {"Weekly vault, daily F", cs::weeklyVaultDailyFull()}}) {
    stordep::stochastic::StochasticOptions sopt;
    sopt.trials = 2000;
    sopt.seed = 2026;
    sopt.sim.horizon = stordep::days(250);
    const stordep::stochastic::StochasticEvaluator eval(design, sopt);
    for (const auto& [name, scenario] :
         std::vector<std::pair<std::string, stordep::FailureScenario>>{
             {"array", cs::arrayFailure()}, {"site", cs::siteDisaster()}}) {
      const auto outcome = eval.distributionFor(scenario);
      if (!outcome.ok()) {
        std::cerr << "evaluation failed for " << label << "/" << name << ": "
                  << outcome.error().describe() << "\n";
        return 1;
      }
      const auto& dist = outcome.value();
      const double worst = dist.worstCasePenalty.usd();
      const double expected = dist.expectedPenalty.usd();
      const bool bounded = expected <= worst * (1.0 + 1e-9);
      penaltyBounded = penaltyBounded && bounded && dist.unrecoverable == 0;
      penTable.addRow({label, name, toString(dist.worstCasePenalty),
                       toString(dist.expectedPenalty),
                       worst > 0 ? fixed(expected / worst * 100.0, 1) + "%"
                                 : "n/a"});
    }
  }
  std::cout << "\n" << penTable.render();

  std::cout
      << "\nTakeaway: the paper's worst-case numbers overstate the typical "
         "exposure by half\nan accumulation window — e.g. the baseline's "
         "217 h array-failure worst case is a\n133 h expectation. Planning "
         "to the worst case is the right business-continuity\npractice, but "
         "the expectation is what belongs in an annualized risk model\n"
         "(core/risk.hpp deliberately uses the worst case: conservative "
         "expectations).\n";
  std::cout << "analytic means match simulated means (<5% error): "
            << (allMatch ? "yes" : "NO") << "\n";
  std::cout << "expected penalty bounded by worst case in every row: "
            << (penaltyBounded ? "yes" : "NO") << "\n";
  return allMatch && penaltyBounded ? 0 : 1;
}
