// bench_sensitivity_links — sensitivity of the mirrored design to link
// provisioning (extends Table 7's two AsyncB rows into a full series).
//
// Sweeps the OC-3 link count 1..16 and reports recovery time, penalties,
// outlays and total cost for array failure and site disaster, locating the
// two structural crossovers the paper's rows hint at:
//  * the RT knee where WAN drain stops dominating (site RT flattens at the
//    9 h facility provisioning floor);
//  * the cost minimum: link outlays grow linearly while penalties shrink
//    hyperbolically, so total cost is U-shaped with its minimum at the low
//    end for the case study's penalty rates.
#include <iostream>

#include "casestudy/casestudy.hpp"
#include "report/csv.hpp"
#include "report/report.hpp"

int main() {
  namespace cs = stordep::casestudy;
  using stordep::report::Align;
  using stordep::report::CsvWriter;
  using stordep::report::TextTable;
  using stordep::report::fixed;

  TextTable table({"Links", "Array RT (hr)", "Site RT (hr)", "Outlays ($M)",
                   "Array total ($M)", "Site total ($M)"});
  for (size_t c = 0; c < 6; ++c) table.align(c, Align::kRight);
  table.title("Async-batch mirroring vs OC-3 link count (cello workload, "
              "$50k/hr penalties)");
  CsvWriter csv({"links", "array_rt_hr", "site_rt_hr", "outlays_musd",
                 "array_total_musd", "site_total_musd"});

  double bestTotal = 1e300;
  int bestLinks = 0;
  double prevSiteRt = 1e300;
  bool rtMonotone = true;
  double kneeLinks = 0;

  for (int links = 1; links <= 16; ++links) {
    const stordep::StorageDesign design = cs::asyncBatchMirror(links);
    const auto array = evaluate(design, cs::arrayFailure());
    const auto site = evaluate(design, cs::siteDisaster());
    const double arrayRt = array.recovery.recoveryTime.hrs();
    const double siteRt = site.recovery.recoveryTime.hrs();
    const double outlays = array.cost.totalOutlays.millionUsd();
    const double arrayTotal = array.cost.totalCost.millionUsd();
    const double siteTotal = site.cost.totalCost.millionUsd();

    table.addRow({std::to_string(links), fixed(arrayRt, 2), fixed(siteRt, 2),
                  fixed(outlays, 2), fixed(arrayTotal, 2),
                  fixed(siteTotal, 2)});
    csv.addRow({std::to_string(links), fixed(arrayRt, 3), fixed(siteRt, 3),
                fixed(outlays, 3), fixed(arrayTotal, 3),
                fixed(siteTotal, 3)});

    if (arrayTotal < bestTotal) {
      bestTotal = arrayTotal;
      bestLinks = links;
    }
    if (siteRt > prevSiteRt + 1e-9) rtMonotone = false;
    // The knee: first link count where site RT hits the provisioning floor.
    if (kneeLinks == 0 && siteRt < 9.0 + 1.0) kneeLinks = links;
    prevSiteRt = siteRt;
  }
  std::cout << table.render();
  csv.writeFile("sensitivity_links.csv");
  std::cout << "\nCSV written to sensitivity_links.csv\n";

  std::cout << "\ncheapest configuration: " << bestLinks
            << " link(s). The paper compared only 1 vs 10 links and "
               "concluded the 1-link\nsystem wins; the fine-grained sweep "
               "refines that — the true optimum sits at the\nlow end (1-2 "
               "links: the second link halves the outage penalty for one "
               "link's\nrent), far below the 10-link configuration.\n";
  std::cout << "site RT flattens at the 9 h facility-provisioning floor "
               "from "
            << kneeLinks << " links onward\n";
  const bool ok = bestLinks <= 2 && rtMonotone && kneeLinks >= 2 &&
                  kneeLinks <= 4;
  std::cout << "shape checks (cost minimum at 1-2 links, RT monotone, knee "
               "at 2-4 links): "
            << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
