// bench_figure5_costs — regenerates paper Figure 5.
//
// "Overall system cost for baseline system": for each failure scenario, a
// stacked breakdown of annual outlays by data protection technique plus the
// outage and recent-data-loss penalties — rendered as a table and as an
// ASCII bar chart mirroring the figure.
#include <algorithm>
#include <iostream>

#include "casestudy/casestudy.hpp"
#include "report/report.hpp"

namespace {

std::string bar(double millions, double perChar) {
  const int len = std::max(0, static_cast<int>(millions / perChar + 0.5));
  return std::string(static_cast<size_t>(len), '#');
}

}  // namespace

int main() {
  namespace cs = stordep::casestudy;
  using stordep::report::Align;
  using stordep::report::TextTable;
  using stordep::report::fixed;

  const stordep::StorageDesign design = cs::baseline();
  const std::vector<std::pair<std::string, stordep::FailureScenario>>
      scenarios = {{"object", cs::objectFailure()},
                   {"array", cs::arrayFailure()},
                   {"site", cs::siteDisaster()}};

  TextTable table({"Cost component", "object", "array", "site"});
  for (size_t c = 1; c < 4; ++c) table.align(c, Align::kRight);
  table.title("Figure 5: overall system cost for the baseline (annual, $M)");

  std::vector<stordep::CostResult> costs;
  for (const auto& [name, scenario] : scenarios) {
    costs.push_back(
        computeCosts(design, computeRecovery(design, scenario)));
  }

  // Outlay rows are scenario-independent; list them from the first result.
  for (const auto& outlay : costs[0].outlays) {
    std::vector<std::string> row{"outlay: " + outlay.technique};
    for (const auto& cost : costs) {
      row.push_back(fixed(cost.find(outlay.technique)->total().millionUsd(),
                          3));
    }
    table.addRow(std::move(row));
  }
  table.addSeparator();
  auto metricRow = [&](const std::string& label, auto getter) {
    std::vector<std::string> row{label};
    for (const auto& cost : costs) {
      row.push_back(fixed(getter(cost).millionUsd(), 2));
    }
    table.addRow(std::move(row));
  };
  metricRow("outage penalty",
            [](const stordep::CostResult& c) { return c.outagePenalty; });
  metricRow("recent data loss penalty",
            [](const stordep::CostResult& c) { return c.lossPenalty; });
  table.addSeparator();
  metricRow("TOTAL", [](const stordep::CostResult& c) { return c.totalCost; });
  std::cout << table.render();

  std::cout << "\nFigure 5 (each # = $2M):\n";
  for (size_t i = 0; i < scenarios.size(); ++i) {
    const auto& c = costs[i];
    std::cout << "  " << scenarios[i].first << " failure  total $"
              << fixed(c.totalCost.millionUsd(), 2) << "M\n";
    std::cout << "    outlays   |" << bar(c.totalOutlays.millionUsd(), 2.0)
              << "\n";
    std::cout << "    penalties |" << bar(c.totalPenalties.millionUsd(), 2.0)
              << "\n";
  }

  std::cout
      << "\nShape checks (paper Sec 4.1): penalty costs — especially recent "
         "data loss —\ndominate for array and site failures; outlays split "
         "roughly evenly between the\nforeground workload, split mirroring "
         "and tape backup, with negligible vaulting.\n";

  const auto& arrayCost = costs[1];
  const bool shape =
      arrayCost.lossPenalty.usd() > 5.0 * arrayCost.totalOutlays.usd() &&
      costs[2].lossPenalty.usd() > costs[1].lossPenalty.usd() &&
      arrayCost.find("remote vaulting")->total().usd() <
          0.25 * arrayCost.find("split mirror")->total().usd();
  std::cout << "shape reproduced: " << (shape ? "yes" : "NO") << "\n";
  return shape ? 0 : 1;
}
