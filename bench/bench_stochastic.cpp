// bench_stochastic — throughput, speedup and determinism gate for the
// Monte-Carlo layer.
//
// Three modes of the same workload run back to back: the legacy per-trial
// sampler (usePlan=false, 1 thread), the compiled TrialPlan serially, and
// the TrialPlan fanned out over 8 threads. The bench hard-fails unless
//
//   * the serial plan runs the 10,000-trial conditional distribution at
//     >= 5x the in-run legacy rate AND >= 5x the recorded seed baseline
//     (kSeedLegacyConditionalTrialsPerSec) — the compile-once fast path
//     must stay an order-of-magnitude win, not drift back to parity;
//   * the 8-thread plan finishes the replay-heavy 2,000-trial mission
//     sample in <= 1/4 of the serial legacy wall time, even on one core;
//   * every mode agrees on every bit of the result envelope — parallelism
//     and the plan are wall-time knobs, never result knobs.
//
// The mission workload overrides every device to a 30-day exponential
// failure process (12-hour repairs) plus 2 site shocks/year, so trials are
// replay-heavy (~40 events/year) rather than RNG-bound; that is the regime
// the plan's precompiled scenario rows accelerate.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "casestudy/casestudy.hpp"
#include "config/json.hpp"
#include "core/reliability.hpp"
#include "report/report.hpp"
#include "stochastic/evaluator.hpp"

namespace {

namespace cs = stordep::casestudy;
namespace st = stordep::stochastic;
using stordep::config::Json;
using stordep::config::JsonObject;

constexpr int kConditionalTrials = 10'000;
constexpr int kMissionTrials = 2'000;

// Legacy serial conditional throughput on the seed machine (trials/sec,
// weekly vault F+I, array failure, 10k trials). The serial plan must beat
// 5x this recorded floor as well as 5x the in-run legacy rate, so a
// regression shows up even if the legacy loop slows down alongside it.
constexpr double kSeedLegacyConditionalTrialsPerSec = 574771.0;
constexpr double kConditionalSpeedupFloor = 5.0;
// The 8-thread plan must finish the mission sample in <= wall/this of the
// serial legacy loop.
constexpr double kMissionSpeedupFloor = 4.0;

st::StochasticOptions optionsFor(int threads, bool usePlan) {
  st::StochasticOptions opts;
  opts.trials = kConditionalTrials;
  opts.seed = 7;
  opts.threads = threads;
  opts.usePlan = usePlan;
  opts.sim.horizon = stordep::days(250);
  return opts;
}

/// Replay-heavy mission reliability: every storage device fails every ~30
/// days and repairs in ~12 hours, plus correlated site shocks.
stordep::ReliabilitySpec missionReliability(const stordep::StorageDesign&
                                                design) {
  stordep::ReliabilitySpec spec;
  spec.siteShockAnnualRate = 2.0;
  for (const auto& [device, rel] : resolveReliability(design, spec)) {
    stordep::DeviceReliability heavy;
    heavy.failure = {stordep::ProcessKind::kExponential, stordep::days(30),
                     1.0};
    heavy.repair = {stordep::ProcessKind::kExponential, stordep::hours(12),
                    1.0};
    spec.devices[device->name()] = heavy;
  }
  return spec;
}

bool identical(double a, double b) {
  // Bit-identity including the NaN/Inf cases the envelope can carry.
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  return a == b;
}

bool identical(const st::Distribution& a, const st::Distribution& b) {
  return a.count == b.count && identical(a.min, b.min) &&
         identical(a.max, b.max) && identical(a.mean, b.mean) &&
         identical(a.ci95, b.ci95) && identical(a.p50, b.p50) &&
         identical(a.p95, b.p95) && identical(a.p99, b.p99);
}

bool identical(const st::ScenarioDistribution& a,
               const st::ScenarioDistribution& b) {
  // Field-by-field on the deterministic envelope; the wallSeconds /
  // trialsPerSec / usedPlan trio varies by construction and is excluded.
  return a.trials == b.trials && a.unrecoverable == b.unrecoverable &&
         identical(a.rt, b.rt) && identical(a.dl, b.dl) &&
         identical(a.penalty, b.penalty) &&
         identical(a.minPayload.bytes(), b.minPayload.bytes()) &&
         identical(a.meanPayload.bytes(), b.meanPayload.bytes()) &&
         identical(a.maxPayload.bytes(), b.maxPayload.bytes()) &&
         identical(a.expectedPenalty.usd(), b.expectedPenalty.usd());
}

bool identical(const st::AnnualizedRisk& a, const st::AnnualizedRisk& b) {
  return a.trials == b.trials && identical(a.eventsPerYear, b.eventsPerYear) &&
         identical(a.unrecoverableTrialFraction,
                   b.unrecoverableTrialFraction) &&
         identical(a.expectedAnnualLossBytes.bytes(),
                   b.expectedAnnualLossBytes.bytes()) &&
         identical(a.expectedAnnualPenalty.usd(),
                   b.expectedAnnualPenalty.usd()) &&
         identical(a.expectedAnnualDowntimeHours,
                   b.expectedAnnualDowntimeHours) &&
         identical(a.eventRt, b.eventRt) && identical(a.eventDl, b.eventDl) &&
         identical(a.annualPenalty, b.annualPenalty);
}

struct Mode {
  const char* label;
  int threads;
  bool usePlan;
};

constexpr Mode kModes[] = {
    {"legacy", 1, false},
    {"plan", 1, true},
    {"plan", 8, true},
};

}  // namespace

int main() {
  using stordep::report::Align;
  using stordep::report::TextTable;
  using stordep::report::fixed;

  const stordep::StorageDesign design = cs::weeklyVaultFullPlusIncremental();
  const stordep::FailureScenario scenario = cs::arrayFailure();

  TextTable table({"Phase", "Mode", "Threads", "Trials", "Wall (s)",
                   "Trials/sec"});
  for (size_t c = 2; c < 6; ++c) table.align(c, Align::kRight);
  table.title("Monte-Carlo throughput (weekly vault F+I, array failure)");

  bool ok = true;
  Json doc{JsonObject{}};
  doc.set("bench", Json("stochastic"));
  doc.set("conditionalTrials",
          Json(static_cast<std::int64_t>(kConditionalTrials)));
  doc.set("missionTrials", Json(static_cast<std::int64_t>(kMissionTrials)));
  doc.set("seedLegacyConditionalTrialsPerSec",
          Json(kSeedLegacyConditionalTrialsPerSec));

  // --- Conditional distribution: legacy, plan serial, plan 8T ------------
  st::ScenarioDistribution conditional[3];
  double condRate[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    const Mode& mode = kModes[i];
    const st::StochasticEvaluator eval(design,
                                       optionsFor(mode.threads, mode.usePlan));
    const auto outcome = eval.distributionFor(scenario);
    if (!outcome.ok()) {
      std::cerr << "FAIL: conditional evaluation errored: "
                << outcome.error().describe() << "\n";
      return 1;
    }
    conditional[i] = outcome.value();
    // The envelope's own timing covers exactly the trial loop (the part the
    // plan compiles away), not the shared quantile post-pass.
    condRate[i] = conditional[i].trialsPerSec;
    table.addRow({"conditional", mode.label, std::to_string(mode.threads),
                  std::to_string(kConditionalTrials),
                  fixed(conditional[i].wallSeconds, 3),
                  fixed(condRate[i], 0)});
  }
  if (!identical(conditional[0], conditional[1]) ||
      !identical(conditional[1], conditional[2])) {
    std::cerr << "FAIL: conditional envelope differs across modes "
                 "(plan-vs-legacy / thread-count determinism broken)\n";
    ok = false;
  }
  const double condSpeedup = condRate[1] / condRate[0];
  if (condSpeedup < kConditionalSpeedupFloor) {
    std::cerr << "FAIL: serial plan conditional speedup " << condSpeedup
              << "x < required " << kConditionalSpeedupFloor
              << "x over the in-run legacy loop\n";
    ok = false;
  }
  if (condRate[1] <
      kConditionalSpeedupFloor * kSeedLegacyConditionalTrialsPerSec) {
    std::cerr << "FAIL: serial plan conditional rate " << condRate[1]
              << " trials/s < required "
              << kConditionalSpeedupFloor * kSeedLegacyConditionalTrialsPerSec
              << " (5x the recorded seed-machine legacy baseline)\n";
    ok = false;
  }

  // --- Mission-window sample: replay-heavy reliability --------------------
  const stordep::ReliabilitySpec heavy = missionReliability(design);
  st::AnnualizedRisk mission[3];
  double missionWall[3] = {0, 0, 0};
  double missionRate[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    const Mode& mode = kModes[i];
    st::StochasticOptions opts = optionsFor(mode.threads, mode.usePlan);
    opts.trials = kMissionTrials;
    opts.reliability = heavy;
    const st::StochasticEvaluator eval(design, opts);
    const auto outcome = eval.annualizedRisk();
    if (!outcome.ok()) {
      std::cerr << "FAIL: mission-window evaluation errored: "
                << outcome.error().describe() << "\n";
      return 1;
    }
    mission[i] = outcome.value();
    missionWall[i] = mission[i].wallSeconds;
    missionRate[i] = mission[i].trialsPerSec;
    table.addRow({"mission", mode.label, std::to_string(mode.threads),
                  std::to_string(kMissionTrials), fixed(missionWall[i], 3),
                  fixed(missionRate[i], 0)});
  }
  if (!identical(mission[0], mission[1]) ||
      !identical(mission[1], mission[2])) {
    std::cerr << "FAIL: annualized-risk envelope differs across modes "
                 "(plan-vs-legacy / thread-count determinism broken)\n";
    ok = false;
  }
  const double missionSpeedup = missionWall[0] / missionWall[2];
  if (missionSpeedup < kMissionSpeedupFloor) {
    std::cerr << "FAIL: 8-thread plan mission wall " << missionWall[2]
              << " s is only " << missionSpeedup << "x faster than the "
              << "serial legacy wall " << missionWall[0] << " s (need "
              << kMissionSpeedupFloor << "x)\n";
    ok = false;
  }

  std::cout << table.render();
  std::cout << "\nconditional plan speedup (serial, in-run): "
            << fixed(condSpeedup, 1)
            << "x\nmission plan-8T speedup over legacy serial: "
            << fixed(missionSpeedup, 1)
            << "x\nall modes bit-identical and gates met: "
            << (ok ? "yes" : "NO") << "\n";

  doc.set("conditionalLegacyTrialsPerSec1T", Json(condRate[0]));
  doc.set("conditionalTrialsPerSec1T", Json(condRate[1]));
  doc.set("conditionalTrialsPerSec8T", Json(condRate[2]));
  doc.set("conditionalPlanSpeedup", Json(condSpeedup));
  doc.set("missionLegacyTrialsPerSec1T", Json(missionRate[0]));
  doc.set("missionTrialsPerSec1T", Json(missionRate[1]));
  doc.set("missionTrialsPerSec8T", Json(missionRate[2]));
  doc.set("missionPlan8TSpeedup", Json(missionSpeedup));
  doc.set("eventsPerYear", Json(mission[0].eventsPerYear));
  doc.set("deterministic", Json(ok));
  doc.set("ok", Json(ok));

  const std::string out = doc.pretty();
  std::cout << out << "\n";
  std::ofstream file("BENCH_stochastic.json");
  file << out << "\n";
  return ok ? 0 : 1;
}
