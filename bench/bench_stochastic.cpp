// bench_stochastic — throughput and determinism gate for the Monte-Carlo
// layer.
//
// Runs the same 10,000-trial conditional distribution and a 2,000-trial
// mission-window (annualizedRisk) sample at 1 and 8 threads, reports
// trials/sec for the perf trajectory (BENCH_stochastic.json), and fails if
// the two thread counts disagree on a single bit of the result envelope —
// the subsystem's core contract is that parallelism is a wall-time knob,
// never a result knob.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "casestudy/casestudy.hpp"
#include "config/json.hpp"
#include "report/report.hpp"
#include "stochastic/evaluator.hpp"

namespace {

namespace cs = stordep::casestudy;
namespace st = stordep::stochastic;
using stordep::config::Json;
using stordep::config::JsonObject;

constexpr int kConditionalTrials = 10'000;
constexpr int kMissionTrials = 2'000;

st::StochasticOptions optionsFor(int threads) {
  st::StochasticOptions opts;
  opts.trials = kConditionalTrials;
  opts.seed = 7;
  opts.threads = threads;
  opts.sim.horizon = stordep::days(250);
  return opts;
}

bool identical(double a, double b) {
  // Bit-identity including the NaN/Inf cases the envelope can carry.
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  return a == b;
}

bool identical(const st::Distribution& a, const st::Distribution& b) {
  return a.count == b.count && identical(a.min, b.min) &&
         identical(a.max, b.max) && identical(a.mean, b.mean) &&
         identical(a.ci95, b.ci95) && identical(a.p50, b.p50) &&
         identical(a.p95, b.p95) && identical(a.p99, b.p99);
}

bool identical(const st::ScenarioDistribution& a,
               const st::ScenarioDistribution& b) {
  return a.trials == b.trials && a.unrecoverable == b.unrecoverable &&
         identical(a.rt, b.rt) && identical(a.dl, b.dl) &&
         identical(a.penalty, b.penalty) &&
         identical(a.minPayload.bytes(), b.minPayload.bytes()) &&
         identical(a.meanPayload.bytes(), b.meanPayload.bytes()) &&
         identical(a.maxPayload.bytes(), b.maxPayload.bytes()) &&
         identical(a.expectedPenalty.usd(), b.expectedPenalty.usd());
}

bool identical(const st::AnnualizedRisk& a, const st::AnnualizedRisk& b) {
  return a.trials == b.trials && identical(a.eventsPerYear, b.eventsPerYear) &&
         identical(a.unrecoverableTrialFraction,
                   b.unrecoverableTrialFraction) &&
         identical(a.expectedAnnualLossBytes.bytes(),
                   b.expectedAnnualLossBytes.bytes()) &&
         identical(a.expectedAnnualPenalty.usd(),
                   b.expectedAnnualPenalty.usd()) &&
         identical(a.expectedAnnualDowntimeHours,
                   b.expectedAnnualDowntimeHours) &&
         identical(a.eventRt, b.eventRt) && identical(a.eventDl, b.eventDl) &&
         identical(a.annualPenalty, b.annualPenalty);
}

struct Timed {
  double seconds = 0;
};

template <typename F>
auto timed(Timed& t, F&& f) {
  const auto begin = std::chrono::steady_clock::now();
  auto result = f();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - begin;
  t.seconds = wall.count();
  return result;
}

}  // namespace

int main() {
  using stordep::report::Align;
  using stordep::report::TextTable;
  using stordep::report::fixed;

  const stordep::StorageDesign design = cs::weeklyVaultFullPlusIncremental();
  const stordep::FailureScenario scenario = cs::arrayFailure();

  TextTable table({"Mode", "Threads", "Trials", "Wall (s)", "Trials/sec"});
  for (size_t c = 1; c < 5; ++c) table.align(c, Align::kRight);
  table.title("Monte-Carlo throughput (weekly vault F+I, array failure)");

  bool ok = true;
  Json doc{JsonObject{}};
  doc.set("bench", Json("stochastic"));
  doc.set("conditionalTrials",
          Json(static_cast<std::int64_t>(kConditionalTrials)));
  doc.set("missionTrials", Json(static_cast<std::int64_t>(kMissionTrials)));

  // --- Conditional distribution at 1 and 8 threads -----------------------
  st::ScenarioDistribution conditional[2];
  double condRate[2] = {0, 0};
  for (int i = 0; i < 2; ++i) {
    const int threads = i == 0 ? 1 : 8;
    const st::StochasticEvaluator eval(design, optionsFor(threads));
    Timed t;
    const auto outcome = timed(t, [&] { return eval.distributionFor(scenario); });
    if (!outcome.ok()) {
      std::cerr << "FAIL: conditional evaluation errored: "
                << outcome.error().describe() << "\n";
      return 1;
    }
    conditional[i] = outcome.value();
    condRate[i] = kConditionalTrials / t.seconds;
    table.addRow({"conditional", std::to_string(threads),
                  std::to_string(kConditionalTrials), fixed(t.seconds, 3),
                  fixed(condRate[i], 0)});
  }
  if (!identical(conditional[0], conditional[1])) {
    std::cerr << "FAIL: conditional envelope differs between 1 and 8 "
                 "threads (determinism contract broken)\n";
    ok = false;
  }

  // --- Mission-window sample at 1 and 8 threads --------------------------
  st::AnnualizedRisk mission[2];
  double missionRate[2] = {0, 0};
  for (int i = 0; i < 2; ++i) {
    const int threads = i == 0 ? 1 : 8;
    st::StochasticOptions opts = optionsFor(threads);
    opts.trials = kMissionTrials;
    // Class-default processes plus a site-shock rate, so the bench also
    // exercises the correlated-failure path.
    opts.reliability.siteShockAnnualRate = 0.1;
    const st::StochasticEvaluator eval(design, opts);
    Timed t;
    const auto outcome = timed(t, [&] { return eval.annualizedRisk(); });
    if (!outcome.ok()) {
      std::cerr << "FAIL: mission-window evaluation errored: "
                << outcome.error().describe() << "\n";
      return 1;
    }
    mission[i] = outcome.value();
    missionRate[i] = kMissionTrials / t.seconds;
    table.addRow({"mission", std::to_string(threads),
                  std::to_string(kMissionTrials), fixed(t.seconds, 3),
                  fixed(missionRate[i], 0)});
  }
  if (!identical(mission[0], mission[1])) {
    std::cerr << "FAIL: annualized-risk envelope differs between 1 and 8 "
                 "threads (determinism contract broken)\n";
    ok = false;
  }

  std::cout << table.render();
  std::cout << "\n1-vs-8-thread results bit-identical: " << (ok ? "yes" : "NO")
            << "\n";

  doc.set("conditionalTrialsPerSec1T", Json(condRate[0]));
  doc.set("conditionalTrialsPerSec8T", Json(condRate[1]));
  doc.set("missionTrialsPerSec1T", Json(missionRate[0]));
  doc.set("missionTrialsPerSec8T", Json(missionRate[1]));
  doc.set("eventsPerYear", Json(mission[0].eventsPerYear));
  doc.set("deterministic", Json(ok));
  doc.set("ok", Json(ok));

  const std::string out = doc.pretty();
  std::cout << out << "\n";
  std::ofstream file("BENCH_stochastic.json");
  file << out << "\n";
  return ok ? 0 : 1;
}
