// bench_figure3_rp_ranges — regenerates paper Figure 3's quantities.
//
// "Range of RPs guaranteed to be present at a level": for each level of the
// baseline hierarchy, the time lag (youngest guaranteed RP age) and the
// oldest guaranteed RP age, plus an ASCII timeline rendering of the
// guaranteed window, cross-validated against the discrete-event simulation
// of the actual RP schedules.
#include <algorithm>
#include <iostream>

#include "casestudy/casestudy.hpp"
#include "core/propagation.hpp"
#include "report/report.hpp"
#include "sim/rp_simulator.hpp"

int main() {
  namespace cs = stordep::casestudy;
  using stordep::report::Align;
  using stordep::report::TextTable;
  using stordep::report::fixed;

  const stordep::StorageDesign design = cs::baseline();

  std::cout << "Figure 3: guaranteed RP ranges per level (baseline)\n\n";
  std::cout << stordep::report::rpRangeTable(design).render();

  // ASCII timeline, log-ish scale: one column per bucket of age.
  std::cout << "\nGuaranteed coverage timeline (each column ~ 1 week of "
               "age, '#' = guaranteed RP coverage):\n";
  const double totalWeeks = 3 * 52.0;
  for (int level = 1; level < design.levelCount(); ++level) {
    const stordep::RpRange range = guaranteedRange(design, level);
    std::string line;
    for (int wk = 0; wk < static_cast<int>(totalWeeks); ++wk) {
      const double lo = wk * 7.0 * 86400.0;
      const double hi = (wk + 1) * 7.0 * 86400.0;
      const bool covered = range.oldestAge.secs() >= lo &&
                           range.youngestAge.secs() <= hi &&
                           !range.empty();
      line += covered ? '#' : '.';
    }
    std::cout << "  L" << level << " " << design.level(level).name() << "\n"
              << "     now[" << line << "]3 yr ago\n";
  }

  // Cross-validate against the simulated schedules: the observed age of the
  // newest visible RP at each level must stay within [transit, lag].
  std::cout << "\nCross-validation against the RP-lifecycle simulation (200 "
               "days):\n";
  stordep::sim::RpSimOptions options;
  options.horizon = stordep::days(200);
  stordep::sim::RpLifecycleSimulator sim(design, options);
  sim.run();

  TextTable check({"Level", "Analytic lag", "Max simulated age",
                   "Analytic oldest", "Within bounds"});
  for (size_t c = 1; c < 5; ++c) check.align(c, Align::kRight);
  bool allOk = true;
  for (int level = 1; level < design.levelCount(); ++level) {
    const stordep::Duration lag = rpTimeLag(design, level);
    double maxAge = 0;
    const double warmup = sim.warmupTime();
    for (double t = warmup; t < sim.horizon(); t += 3600.0) {
      const auto rp = sim.bestVisibleRp(level, t, t);
      if (rp) maxAge = std::max(maxAge, t - rp->dataTime);
    }
    const bool ok = maxAge <= lag.secs() * (1 + 1e-9);
    allOk = allOk && ok;
    check.addRow({design.level(level).name(), toString(lag),
                  toString(stordep::seconds(maxAge)),
                  toString(guaranteedRange(design, level).oldestAge),
                  ok ? "yes" : "NO"});
  }
  std::cout << check.render();
  std::cout << "\nanalytic lag bounds the simulated worst staleness at every "
               "level: "
            << (allOk ? "yes" : "NO") << "\n";
  return allOk ? 0 : 1;
}
