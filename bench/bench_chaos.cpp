// bench_chaos — closed-loop chaos soak for the resilience layer.
//
// Starts the embedded evaluation server in-process, puts the deterministic
// ChaosProxy in front of it (connection resets, accept stalls, torn
// writes, response truncation, slow-loris trickle, black-hole timeouts,
// all planned as a pure function of (--chaos-seed, connId)), and drives
// closed-loop ResilientClient threads through the proxy. The gate:
//
//   * every request produces exactly one outcome — no lost or duplicated
//     responses;
//   * every success is bit-identical to the chaos-free serial-engine
//     answer for that payload — no corrupted responses;
//   * every failure is a structured engine-taxonomy error (kUnavailable,
//     transient), never a raw exception;
//   * the proxy's recorded fault schedule replays exactly from the seed
//     (audit: every decision matches a planFor() recomputation);
//   * forced brown-out tiers are observable over /healthz and /metrics,
//     shed cold requests and keep warm ones bit-identical;
//   * after the server dies, the client's circuit breaker opens and fails
//     fast.
//
// Emits BENCH_chaos.json (stdout + --out) and exits non-zero on any
// violation. Usage:
//   bench_chaos [--chaos-seed N] [--requests N] [--threads N] [--out PATH]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "casestudy/casestudy.hpp"
#include "config/design_io.hpp"
#include "engine/batch.hpp"
#include "service/client.hpp"
#include "service/json_api.hpp"
#include "service/resilience/chaos_proxy.hpp"
#include "service/resilience/resilient_client.hpp"
#include "service/server.hpp"

namespace {

namespace cs = stordep::casestudy;
namespace eng = stordep::engine;
namespace svc = stordep::service;
namespace res = stordep::service::resilience;
using stordep::FailureScenario;
using stordep::StorageDesign;
using stordep::config::Json;
using stordep::config::JsonObject;
using std::chrono::milliseconds;

struct Pair {
  std::string payload;
  std::string expectedBody;  ///< the chaos-free serial-engine answer
};

/// The case-study what-if designs crossed with the three scenarios, each
/// with the byte-exact response a chaos-free run must produce.
std::vector<Pair> makePairs() {
  eng::Engine serial(eng::EngineOptions{.threads = 1});
  std::vector<Pair> pairs;
  for (const auto& [label, design] : cs::allWhatIfDesigns()) {
    for (const FailureScenario& scenario :
         {cs::objectFailure(), cs::arrayFailure(), cs::siteDisaster()}) {
      const Json designJson = stordep::config::designToJson(design);
      const StorageDesign roundTripped =
          stordep::config::designFromJson(designJson);
      Json payload{JsonObject{}};
      payload.set("design", designJson);
      payload.set("scenario", stordep::config::scenarioToJson(scenario));
      const eng::EvalOutcome outcome =
          serial.tryEvaluate(roundTripped, scenario);
      Pair pair;
      pair.payload = payload.dump();
      pair.expectedBody =
          outcome.ok() ? svc::evaluationToJson(roundTripped, scenario,
                                               outcome.value())
                             .dump()
                       : svc::evalErrorToJson(outcome.error()).dump();
      pairs.push_back(std::move(pair));
    }
  }
  return pairs;
}

int failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    ++failures;
    std::cerr << "FAIL: " << what << "\n";
  }
}

bool waitFor(const std::function<bool()>& condition, milliseconds budget) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::sleep_for(milliseconds{2});
  }
  return condition();
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t chaosSeed = 1;
  int requestsPerThread = 150;
  int threads = 4;
  std::string outPath = "BENCH_chaos.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--chaos-seed") {
      chaosSeed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--requests") {
      requestsPerThread = std::atoi(next().c_str());
    } else if (arg == "--threads") {
      threads = std::atoi(next().c_str());
    } else if (arg == "--out") {
      outPath = next();
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }

  const std::vector<Pair> pairs = makePairs();

  svc::ServerOptions serverOptions;
  serverOptions.engineThreads = std::max(2, threads);
  svc::Server server(serverOptions);
  server.start();

  res::ChaosOptions chaos;
  chaos.seed = chaosSeed;
  chaos.resetProb = 0.05;
  chaos.stallProb = 0.03;
  chaos.tornWriteProb = 0.15;
  chaos.truncateProb = 0.08;
  chaos.trickleProb = 0.04;
  chaos.blackholeProb = 0.02;
  chaos.stall = milliseconds{20};
  chaos.blackholeHold = milliseconds{300};
  chaos.trickleBudget = 8;    // a trickling keep-alive conn slows a whole
  chaos.blackholeBudget = 8;  // thread; bound the worst cases
  res::ChaosProxy proxy("127.0.0.1", server.port(), chaos);
  proxy.start();

  // ---- Phase 1: closed-loop soak through the proxy -------------------------
  std::atomic<std::uint64_t> successes{0};
  std::atomic<std::uint64_t> structuredFailures{0};
  std::atomic<std::uint64_t> corrupted{0};
  std::atomic<std::uint64_t> unstructured{0};
  std::atomic<std::uint64_t> httpErrors{0};
  std::atomic<std::uint64_t> outcomes{0};
  std::atomic<std::uint64_t> attempts{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> hedges{0};
  std::atomic<std::uint64_t> hedgeWins{0};

  const auto begin = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        res::ResilientClientOptions clientOptions;
        clientOptions.seed = chaosSeed * 1000 + static_cast<std::uint64_t>(t);
        clientOptions.timeout = milliseconds{2000};
        clientOptions.retry.maxAttempts = 5;
        clientOptions.retry.baseBackoff = milliseconds{5};
        clientOptions.retry.maxBackoff = milliseconds{100};
        clientOptions.hedging = true;
        clientOptions.hedgeFloor = milliseconds{50};
        res::ResilientClient client("127.0.0.1", proxy.port(), clientOptions);
        for (int i = 0; i < requestsPerThread; ++i) {
          const Pair& pair =
              pairs[static_cast<std::size_t>(t + i) % pairs.size()];
          const res::ResilientClient::Result result =
              client.post("/v1/evaluate", pair.payload);
          outcomes.fetch_add(1);
          if (result.ok()) {
            if (result.value().status == 200) {
              if (result.value().body == pair.expectedBody) {
                successes.fetch_add(1);
              } else {
                corrupted.fetch_add(1);
                std::cerr << "CORRUPTED thread=" << t << " i=" << i
                          << "\n  got:  " << result.value().body.substr(0, 200)
                          << "\n  want: " << pair.expectedBody.substr(0, 200)
                          << "\n";
              }
            } else {
              // A non-200 must still be a structured service error body.
              httpErrors.fetch_add(1);
              if (result.value().body.find("\"error\"") ==
                  std::string::npos) {
                unstructured.fetch_add(1);
              }
            }
          } else if (result.error().code ==
                         eng::EvalErrorCode::kUnavailable &&
                     result.error().transient) {
            structuredFailures.fetch_add(1);
          } else {
            unstructured.fetch_add(1);
          }
        }
        attempts.fetch_add(client.stats().attempts);
        retries.fetch_add(client.stats().retries);
        hedges.fetch_add(client.stats().hedges);
        hedgeWins.fetch_add(client.stats().hedgeWins);
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - begin;

  const std::uint64_t total =
      static_cast<std::uint64_t>(threads) *
      static_cast<std::uint64_t>(requestsPerThread);
  check(outcomes.load() == total, "every request must have exactly one "
                                  "outcome (lost or duplicated responses)");
  check(corrupted.load() == 0, "corrupted responses observed");
  check(unstructured.load() == 0, "failures outside the structured error "
                                  "taxonomy observed");
  check(successes.load() > 0, "no successful requests at all");

  // The audit trail: the proxy's schedule must replay from the seed.
  const res::ChaosProxy::Stats proxyStats = proxy.stats();
  const std::vector<res::ChaosDecision> decisions = proxy.decisions();
  check(proxyStats.connections > 0, "proxy saw no connections");
  check(proxyStats.faultsInjected > 0,
        "no faults injected — the soak proved nothing");
  for (const res::ChaosDecision& decision : decisions) {
    const res::ChaosDecision replanned =
        res::ChaosProxy::planFor(chaos, decision.connId);
    check(decision.fault == replanned.fault &&
              decision.param == replanned.param,
          "decision for conn " + std::to_string(decision.connId) +
              " does not replay from the seed");
  }

  // ---- Phase 2: forced brown-out, observable over the wire -----------------
  {
    svc::Client direct("127.0.0.1", server.port());
    server.forceBrownoutTier(2);
    check(waitFor([&] { return server.brownoutTier() == 2; },
                  milliseconds{2000}),
          "forced brown-out tier was not applied");
    const svc::HttpClientResponse health = direct.get("/healthz");
    check(health.status == 200 &&
              health.body.find("degraded") != std::string::npos,
          "/healthz does not report degraded under tier 2");

    // Warm request: served from cache, still bit-identical.
    const svc::HttpClientResponse warm =
        direct.post("/v1/evaluate", pairs[0].payload);
    check(warm.status == 200 && warm.body == pairs[0].expectedBody,
          "warm request under tier 2 was not served bit-identically");

    // Cold request: clear the shared cache, expect a structured 503.
    server.engine().cache().clear();
    const svc::HttpClientResponse cold =
        direct.post("/v1/evaluate", pairs[1].payload);
    check(cold.status == 503, "cold request under tier 2 was not shed");
    check(cold.header("Retry-After") != nullptr,
          "shed response carries no Retry-After");

    const Json metrics = Json::parse(direct.get("/metrics").body);
    check(metrics.at("resilience").at("brownoutTier").asNumber() == 2.0,
          "/metrics does not report the forced tier");
    check(metrics.at("resilience").at("shedCold").asNumber() >= 1.0,
          "/metrics does not count shed cold requests");
    check(metrics.at("resilience").at("brownoutTransitions").asNumber() >=
              1.0,
          "/metrics does not count brown-out transitions");

    server.forceBrownoutTier(-1);
    check(waitFor([&] { return server.brownoutTier() == 0; },
                  milliseconds{2000}),
          "brown-out pin release did not recover to tier 0");
  }

  // ---- Phase 3: dead server opens the circuit breaker ----------------------
  proxy.stop();
  const std::uint16_t deadPort = server.port();
  server.shutdown();
  std::uint64_t shortCircuits = 0;
  std::string breakerState;
  {
    res::ResilientClientOptions clientOptions;
    clientOptions.timeout = milliseconds{200};
    clientOptions.retry.maxAttempts = 2;
    clientOptions.retry.baseBackoff = milliseconds{1};
    clientOptions.retry.maxBackoff = milliseconds{5};
    clientOptions.breaker.minSamples = 3;
    clientOptions.breaker.window = 8;
    clientOptions.breaker.openFor = milliseconds{60'000};
    res::ResilientClient client("127.0.0.1", deadPort, clientOptions);
    for (int i = 0; i < 5; ++i) {
      const res::ResilientClient::Result result =
          client.post("/v1/evaluate", pairs[0].payload);
      check(!result.ok() &&
                result.error().code == eng::EvalErrorCode::kUnavailable,
            "dead server must yield structured kUnavailable");
    }
    breakerState = res::toString(client.breakerState("/v1/evaluate"));
    shortCircuits = client.stats().breakerShortCircuits;
    check(breakerState == std::string("open"),
          "circuit breaker did not open against a dead server");
    check(shortCircuits > 0, "open breaker never failed fast");
  }

  // ---- Report --------------------------------------------------------------
  Json byFault{JsonObject{}};
  for (int f = 0; f < res::kChaosFaultKinds; ++f) {
    byFault.set(res::toString(static_cast<res::ChaosFault>(f)),
                Json(static_cast<double>(
                    proxyStats.byFault[static_cast<std::size_t>(f)])));
  }
  Json report{JsonObject{}};
  report.set("bench", Json(std::string("chaos")));
  report.set("chaosSeed", Json(static_cast<double>(chaosSeed)));
  report.set("threads", Json(static_cast<double>(threads)));
  report.set("requests", Json(static_cast<double>(total)));
  report.set("successes", Json(static_cast<double>(successes.load())));
  report.set("structuredFailures",
             Json(static_cast<double>(structuredFailures.load())));
  report.set("httpErrors", Json(static_cast<double>(httpErrors.load())));
  report.set("corrupted", Json(static_cast<double>(corrupted.load())));
  report.set("unstructured", Json(static_cast<double>(unstructured.load())));
  report.set("attempts", Json(static_cast<double>(attempts.load())));
  report.set("retries", Json(static_cast<double>(retries.load())));
  report.set("hedges", Json(static_cast<double>(hedges.load())));
  report.set("hedgeWins", Json(static_cast<double>(hedgeWins.load())));
  report.set("proxyConnections",
             Json(static_cast<double>(proxyStats.connections)));
  report.set("faultsInjected",
             Json(static_cast<double>(proxyStats.faultsInjected)));
  report.set("faultsByKind", byFault);
  report.set("breakerState", Json(breakerState));
  report.set("breakerShortCircuits",
             Json(static_cast<double>(shortCircuits)));
  report.set("wallSeconds", Json(wall.count()));
  report.set("passed", Json(failures == 0));
  const std::string out = report.dump();
  std::cout << out << "\n";
  std::ofstream(outPath) << out << "\n";

  if (failures != 0) {
    std::cerr << failures << " chaos-soak violation(s)\n";
    return 1;
  }
  std::cout << "chaos soak passed: " << successes.load() << "/" << total
            << " successes, " << proxyStats.faultsInjected
            << " faults injected, breaker " << breakerState << "\n";
  return 0;
}
