// bench_figure4_recovery_timeline — regenerates paper Figure 4.
//
// "Recovery time dependencies": the site-disaster recovery path (vault ->
// shipment -> tape library -> replacement primary), showing which phases
// serialize and which overlap — facility provisioning proceeds in parallel
// with the tape shipment, data transfer waits for both. Rendered as the
// step table plus an ASCII Gantt chart.
#include <algorithm>
#include <iostream>

#include "casestudy/casestudy.hpp"
#include "report/report.hpp"

namespace {

std::string gantt(double start, double end, double total, int width) {
  std::string line(static_cast<size_t>(width), '.');
  const int a = std::clamp(static_cast<int>(start / total * width), 0,
                           width - 1);
  const int b = std::clamp(static_cast<int>(end / total * width), a + 1,
                           width);
  for (int i = a; i < b; ++i) line[static_cast<size_t>(i)] = '#';
  return line;
}

}  // namespace

int main() {
  namespace cs = stordep::casestudy;
  using stordep::report::fixed;

  const stordep::StorageDesign design = cs::baseline();
  const auto scenario = cs::siteDisaster();
  const stordep::RecoveryResult recovery = computeRecovery(design, scenario);
  if (!recovery.recoverable) {
    std::cerr << "unexpected: site disaster unrecoverable\n";
    return 1;
  }

  std::cout << "Figure 4: recovery-time dependencies — site disaster, "
               "baseline design\n\n";
  std::cout << "recovery source: " << recovery.sourceName << ", payload "
            << toString(recovery.payload) << ", total recovery time "
            << toString(recovery.recoveryTime) << " (paper: 26.4 hr)\n\n";
  std::cout << stordep::report::recoveryTimelineTable(recovery).render();

  // ASCII Gantt: provisioning bars (parallel) + each leg's serialized span.
  const double total = recovery.recoveryTime.secs();
  const int width = 60;
  std::cout << "\nOverlap structure (0 .. " << toString(recovery.recoveryTime)
            << "):\n";
  if (design.facility()) {
    const double prov = design.facility()->provisioningTime.secs();
    std::cout << "  provision facility resources  |"
              << gantt(0, prov, total, width) << "| "
              << toString(design.facility()->provisioningTime) << "\n";
  }
  for (const auto& step : recovery.timeline) {
    const double start = step.startTime.secs();
    std::cout << "  " << step.description;
    for (size_t pad = step.description.size(); pad < 30; ++pad) {
      std::cout << ' ';
    }
    std::cout << "|" << gantt(start, step.readyTime.secs(), total, width)
              << "| " << toString(step.readyTime - step.startTime) << "\n";
  }
  for (const auto& note : recovery.notes) {
    std::cout << "  note: " << note << "\n";
  }

  // The figure's key property: provisioning is hidden inside the shipment.
  const double shipmentEnd = recovery.timeline.front().readyTime.secs();
  const bool overlapped =
      design.facility() &&
      design.facility()->provisioningTime.secs() < shipmentEnd &&
      recovery.recoveryTime.hrs() < 28.0;
  std::cout << "\nprovisioning fully overlapped by shipment (recovery < 28 "
               "hr rather than 33+ hr if serialized): "
            << (overlapped ? "yes" : "NO") << "\n";

  // Contrast with the array-failure path (no shipment, spare in minutes).
  const stordep::RecoveryResult array =
      computeRecovery(design, cs::arrayFailure());
  std::cout << "\nFor contrast, the array-failure path (paper: 2.4 hr):\n"
            << stordep::report::recoveryTimelineTable(array).render();
  return overlapped ? 0 : 1;
}
