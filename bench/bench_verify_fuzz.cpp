// bench_verify_fuzz — microbenchmarks of the property-based verification
// subsystem. The fuzzer's value scales with throughput (cases checked per
// CPU-second in the nightly budget), so generation, the metamorphic sweep,
// and shrinking are each measured in isolation.
#include <benchmark/benchmark.h>

#include "verify/gen.hpp"
#include "verify/harness.hpp"
#include "verify/metamorphic.hpp"

namespace {

using namespace stordep;

void BM_GenerateCase(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::caseForSeed(42, i++));
  }
}
BENCHMARK(BM_GenerateCase);

void BM_RelationSweepPerCase(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    const verify::CaseSpec spec = verify::caseForSeed(42, i++);
    benchmark::DoNotOptimize(verify::checkRelations(spec));
  }
}
BENCHMARK(BM_RelationSweepPerCase);

void BM_RoundTripOracle(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::roundTripOracle(verify::caseForSeed(42, i++)));
  }
}
BENCHMARK(BM_RoundTripOracle);

void BM_SimBoundOracle(benchmark::State& state) {
  // A fixed case keeps the simulated horizon comparable across iterations.
  const verify::CaseSpec spec;  // case-study-shaped default
  const verify::OracleOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::simBoundOracle(spec, options));
  }
}
BENCHMARK(BM_SimBoundOracle);

void BM_ShrinkAlwaysFailing(benchmark::State& state) {
  // Upper bound on shrinking cost: every simplification is accepted, so the
  // pass walks the whole move table down to the all-defaults origin.
  const verify::CaseSpec complex = verify::caseForSeed(7, 123);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        verify::shrinkCase(complex, [](const verify::CaseSpec&) {
          return true;
        }));
  }
}
BENCHMARK(BM_ShrinkAlwaysFailing);

void BM_FuzzHundredCases(benchmark::State& state) {
  verify::FuzzOptions options;
  options.cases = 100;
  options.simEvery = 0;  // relation + IO oracles only: the steady-state mix
  options.searchEvery = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::runFuzz(options));
  }
  state.SetItemsProcessed(state.iterations() * options.cases);
}
BENCHMARK(BM_FuzzHundredCases)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
