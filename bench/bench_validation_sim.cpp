// bench_validation_sim — simulation validation of the analytic data-loss
// bounds across all seven case-study designs (beyond the paper: the paper
// lists validation as future work).
//
// For every design and every applicable scenario: run the RP-lifecycle
// simulation, inject failures by dense sweep, and report bound satisfaction
// and tightness. Exit status is non-zero if any aligned-schedule bound is
// violated.
#include <iostream>

#include "casestudy/casestudy.hpp"
#include "report/report.hpp"
#include "sim/failure_injector.hpp"

int main() {
  namespace cs = stordep::casestudy;
  using stordep::report::Align;
  using stordep::report::TextTable;
  using stordep::report::fixed;

  TextTable table({"Design", "Scenario", "Analytic DL", "Max simulated",
                   "Tightness", "Bound"});
  for (size_t c = 2; c < 6; ++c) table.align(c, Align::kRight);
  table.title(
      "Analytic worst-case data loss vs dense-sweep simulation (aligned "
      "schedules)");

  bool allExplained = true;
  bool sawDeadZone = false;
  for (const auto& [label, design] : cs::allWhatIfDesigns()) {
    const bool isMirror = label.find("AsyncB") != std::string::npos;
    stordep::sim::RpSimOptions options;
    // Mirror designs batch every minute: a short horizon keeps the event
    // count reasonable while covering thousands of cycles.
    options.horizon = isMirror ? stordep::hours(12) : stordep::days(250);
    stordep::sim::RpLifecycleSimulator sim(design, options);
    sim.run();
    stordep::sim::FailureInjector injector(sim, stordep::sim::Rng(42));

    // Cyclic (full + incremental) backup schedules have an end-of-cycle
    // dead zone the paper's lag formula does not model: after the last
    // incremental of a cycle, no RP arrives until the next cycle's first
    // incremental. The simulation exposes the extra exposure; we verify it
    // is exactly the dead-zone length (see EXPERIMENTS.md).
    stordep::Duration deadZoneExcess = stordep::Duration::zero();
    for (int i = 1; i < design.levelCount(); ++i) {
      const stordep::ProtectionPolicy* p = design.level(i).policy();
      if (p != nullptr && p->isCyclic()) {
        const stordep::Duration covered =
            p->secondaryWindows()->accW *
            static_cast<double>(p->cycleCount());
        const stordep::Duration gap =
            p->cyclePeriod() - covered + p->secondaryWindows()->propW -
            p->worstPropW();
        deadZoneExcess = std::max(deadZoneExcess, gap);
      }
    }

    std::vector<std::pair<std::string, stordep::FailureScenario>> scenarios =
        {{"array", cs::arrayFailure()}, {"site", cs::siteDisaster()}};
    if (!isMirror) {
      scenarios.emplace_back("object", cs::objectFailure());
    }
    for (const auto& [name, scenario] : scenarios) {
      const auto stats = injector.sweepDataLoss(scenario, 10'000);
      std::string verdict = "holds";
      if (!stats.boundHolds) {
        const stordep::Duration excess =
            stats.maxObserved - stats.analyticWorstCase;
        if (excess <= deadZoneExcess + stordep::minutes(1)) {
          verdict = "exceeded: cycle dead zone (+" + toString(excess) + ")";
          sawDeadZone = true;
        } else {
          verdict = "VIOLATED";
          allExplained = false;
        }
      }
      table.addRow({label, name, toString(stats.analyticWorstCase),
                    toString(stats.maxObserved), fixed(stats.tightness, 3),
                    verdict});
    }
  }
  std::cout << table.render();
  std::cout
      << "\nFinding: the paper's lag formula is tight for single-"
         "representation schedules\nbut optimistic for cyclic (full + "
         "incremental) ones — it charges only one\nincremental accW of "
         "exposure, yet after the cycle's last incremental no RP\narrives "
         "until the next cycle ('weekend gap'). For the F+I design the true\n"
         "worst case is holdW + propW_incr + (cyclePer - cycleCnt x "
         "accW_incr) + accW_incr\n= 85 h, not 73 h. All other bounds hold "
         "and are tight.\n";
  std::cout << "\nall bounds hold or are explained by the dead-zone finding: "
            << (allExplained ? "yes" : "NO")
            << (sawDeadZone ? " (dead-zone rows present)" : "") << "\n";
  return allExplained ? 0 : 1;
}
