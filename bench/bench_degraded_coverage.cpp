// bench_degraded_coverage — degraded-mode protection coverage (extends the
// paper: its Sec 5 lists degraded-mode evaluation as future work).
//
// For the baseline design and each single technique outage (48 h down),
// evaluates residual dependability under each failure scenario, plus the
// post-repair catch-up times. Exposes which outages matter (a broken tape
// robot adds its downtime 1:1 to array-failure exposure) and which don't
// (a vaulting pause is invisible unless the whole site burns).
#include <iostream>

#include "casestudy/casestudy.hpp"
#include "core/degraded.hpp"
#include "report/report.hpp"

int main() {
  namespace cs = stordep::casestudy;
  using stordep::report::Align;
  using stordep::report::TextTable;
  using stordep::report::fixed;

  const stordep::StorageDesign design = cs::baseline();
  const stordep::Duration elapsed = stordep::hours(48);
  const std::vector<std::pair<std::string, stordep::FailureScenario>>
      scenarios{{"object", cs::objectFailure()},
                {"array", cs::arrayFailure()},
                {"site", cs::siteDisaster()}};

  const auto matrix = protectionCoverage(design, scenarios, elapsed);

  TextTable table({"Technique down (48 h)", "Scenario", "Source", "DL",
                   "DL increase", "RT"});
  for (size_t c = 3; c < 6; ++c) table.align(c, Align::kRight);
  table.title("Protection coverage under single technique outages "
              "(baseline design)");
  bool allRecoverable = true;
  int lastDown = 0;
  for (const auto& cell : matrix) {
    if (cell.downLevel != lastDown && lastDown != 0) table.addSeparator();
    lastDown = cell.downLevel;
    allRecoverable = allRecoverable && cell.recoverable;
    table.addRow({cell.downName, cell.scenarioName,
                  cell.recoverable
                      ? design.level(cell.sourceLevel).name()
                      : "(unrecoverable)",
                  cell.recoverable ? toString(cell.dataLoss) : "total",
                  toString(cell.lossIncrease), toString(cell.recoveryTime)});
  }
  std::cout << table.render();

  std::cout << "\nPost-repair catch-up (backlog propagation) per level:\n";
  for (int level = 1; level < design.levelCount(); ++level) {
    std::cout << "  " << design.level(level).name() << ": after 48 h down, "
              << toString(catchUpTime(design, level, elapsed))
              << "; after 2 weeks down, "
              << toString(catchUpTime(design, level, stordep::weeks(2)))
              << "\n";
  }

  // Shape assertions: no single point of failure in the baseline; a backup
  // outage costs array-failure exposure 1:1; a vault outage costs nothing
  // there.
  bool backupHurts = false, vaultFree = false;
  for (const auto& cell : matrix) {
    if (cell.downLevel == 2 && cell.scenarioName == "array" &&
        approxEqual(cell.lossIncrease, elapsed)) {
      backupHurts = true;
    }
    if (cell.downLevel == 3 && cell.scenarioName == "array" &&
        cell.lossIncrease == stordep::Duration::zero()) {
      vaultFree = true;
    }
  }
  const bool ok = allRecoverable && backupHurts && vaultFree;
  std::cout << "\nshape checks (no single point of failure; backup outage "
               "adds 48 h to array exposure; vault outage free there): "
            << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
