// bench_parallel_search — throughput of the batch-evaluation engine.
//
// Runs the same ~500-candidate design-space sweep (the paper's automated
// optimization loop, on a grid denser than the default) three ways:
//
//  * the serial reference path (pre-engine: one thread, no cache);
//  * engine-backed at 1/2/4/8 threads, cold cache (parallel speedup);
//  * the same engine again, warm cache (memoization hit rate).
//
// Emits a JSON document on stdout so the perf trajectory can be tracked
// across PRs, and exits non-zero if the engine's results diverge from the
// serial reference (determinism is part of the contract being benchmarked)
// or if a warm re-sweep falls under a 90% cache hit rate.
//
// Speedup expectations are hardware-relative: the container this repo is
// grown in may expose a single core (reported as hardwareThreads), in which
// case thread counts above it add scheduling overhead instead of speedup.
// On >= 8 real cores the 8-thread sweep is expected to clear 3x serial.
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "casestudy/casestudy.hpp"
#include "config/json.hpp"
#include "engine/batch.hpp"
#include "optimizer/search.hpp"

namespace {

namespace cs = stordep::casestudy;
namespace opt = stordep::optimizer;
using stordep::config::Json;
using stordep::config::JsonArray;
using stordep::config::JsonObject;

double secondsSince(std::chrono::steady_clock::time_point start) {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

/// A denser grid than the default ~200-candidate space: >= 500 structurally
/// valid candidates.
std::vector<opt::CandidateSpec> denseCandidates() {
  opt::DesignSpaceOptions options;
  options.pitAccWs = {stordep::hours(6), stordep::hours(12),
                      stordep::hours(24), stordep::hours(48)};
  options.pitRetentionCounts = {2, 4};
  options.backupAccWs = {stordep::hours(24), stordep::weeks(1),
                         stordep::weeks(2)};
  options.mirrorLinkCounts = {1, 2, 4, 10};
  return opt::enumerateDesignSpace(options);
}

bool sameRanking(const opt::SearchResult& a, const opt::SearchResult& b) {
  if (a.ranked.size() != b.ranked.size() ||
      a.rejected.size() != b.rejected.size()) {
    return false;
  }
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    if (a.ranked[i].label != b.ranked[i].label ||
        a.ranked[i].totalCost.raw() != b.ranked[i].totalCost.raw() ||
        a.ranked[i].worstRecoveryTime.raw() !=
            b.ranked[i].worstRecoveryTime.raw() ||
        a.ranked[i].worstDataLoss.raw() != b.ranked[i].worstDataLoss.raw()) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const std::vector<opt::CandidateSpec> candidates = denseCandidates();
  const std::vector<opt::ScenarioCase> scenarios = opt::caseStudyScenarios();
  const stordep::WorkloadSpec workload = cs::celloWorkload();
  const stordep::BusinessRequirements business = cs::requirements();

  const auto serialStart = std::chrono::steady_clock::now();
  const opt::SearchResult serial =
      opt::searchDesignSpaceSerial(candidates, workload, business, scenarios);
  const double serialSeconds = secondsSince(serialStart);

  Json doc{JsonObject{}};
  doc.set("bench", Json("parallel_search"));
  doc.set("candidates", Json(static_cast<std::int64_t>(candidates.size())));
  doc.set("scenarios", Json(static_cast<std::int64_t>(scenarios.size())));
  doc.set("hardwareThreads",
          Json(static_cast<std::int64_t>(
              std::thread::hardware_concurrency())));
  doc.set("serialSeconds", Json(serialSeconds));
  doc.set("serialEvalsPerSec",
          Json(static_cast<double>(candidates.size() * scenarios.size()) /
               serialSeconds));

  bool ok = true;
  JsonArray runs;
  for (const int threads : {1, 2, 4, 8}) {
    stordep::engine::Engine engine(
        stordep::engine::EngineOptions{.threads = threads});

    const auto coldStart = std::chrono::steady_clock::now();
    const opt::SearchResult cold = opt::searchDesignSpace(
        candidates, workload, business, scenarios, &engine);
    const double coldSeconds = secondsSince(coldStart);
    const auto afterCold = engine.cache().stats();

    const auto warmStart = std::chrono::steady_clock::now();
    const opt::SearchResult warm = opt::searchDesignSpace(
        candidates, workload, business, scenarios, &engine);
    const double warmSeconds = secondsSince(warmStart);
    const auto stats = engine.cache().stats();

    const double warmHits = static_cast<double>(stats.hits - afterCold.hits);
    const double warmLookups =
        static_cast<double>((stats.hits + stats.misses) -
                            (afterCold.hits + afterCold.misses));
    const double warmHitRate =
        warmLookups > 0.0 ? warmHits / warmLookups : 0.0;

    if (!sameRanking(serial, cold) || !sameRanking(serial, warm)) {
      std::cerr << "FAIL: engine-backed ranking diverged from serial at "
                << threads << " threads\n";
      ok = false;
    }
    if (warmHitRate < 0.9) {
      std::cerr << "FAIL: warm re-sweep hit rate " << warmHitRate
                << " < 0.9 at " << threads << " threads\n";
      ok = false;
    }

    Json run{JsonObject{}};
    run.set("threads", Json(threads));
    run.set("coldSeconds", Json(coldSeconds));
    run.set("coldSpeedupVsSerial", Json(serialSeconds / coldSeconds));
    run.set("coldEvalsPerSec",
            Json(static_cast<double>(candidates.size() * scenarios.size()) /
                 coldSeconds));
    run.set("warmSeconds", Json(warmSeconds));
    run.set("warmSpeedupVsSerial", Json(serialSeconds / warmSeconds));
    run.set("warmCacheHitRate", Json(warmHitRate));
    run.set("cacheEntries", Json(static_cast<std::int64_t>(stats.entries)));
    runs.push_back(std::move(run));
  }
  doc.set("runs", Json(std::move(runs)));
  doc.set("ok", Json(ok));

  std::cout << doc.pretty() << "\n";
  return ok ? 0 : 1;
}
