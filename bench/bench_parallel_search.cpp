// bench_parallel_search — throughput of the batch-evaluation engine.
//
// Runs the same ~500-candidate design-space sweep (the paper's automated
// optimization loop, on a grid denser than the default) several ways:
//
//  * the serial reference path (pre-engine: one thread, no cache);
//  * engine-backed at 1/2/4/8 threads, cold cache (parallel speedup),
//    pinned to the legacy cache-backed path (usePlan = false) so the
//    memoization machinery keeps getting measured;
//  * the same engine again, warm cache (memoization hit rate);
//  * the compiled-plan fast path (engine/plan.hpp): plan-routed sweeps
//    (ranking parity with serial, speedup reported), plus the gated
//    compile-once-evaluate-many matrix — every plannable design under 24
//    scenario variants, serial and cold 8-thread, vs a legacy serial loop
//    over the identical pairs.
//
// Emits a JSON document on stdout so the perf trajectory can be tracked
// across PRs, and exits non-zero if the engine's results diverge from the
// serial reference (determinism is part of the contract being benchmarked),
// if a warm re-sweep falls under a 90% cache hit rate, or if the plan path
// misses its throughput gates (see kSeedSerialEvalsPerSec below).
//
// Speedup expectations for the *thread* runs are hardware-relative: the
// container this repo is grown in may expose a single core (reported as
// hardwareThreads), in which case thread counts above it add scheduling
// overhead instead of speedup. The *plan* gates are not: compiling a design
// once and folding scenarios allocation-free must beat the legacy evaluate()
// per-eval cost by a wide margin on any hardware, so those gates fail the
// job rather than merely noting a slow machine.
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "casestudy/casestudy.hpp"
#include "config/json.hpp"
#include "engine/batch.hpp"
#include "optimizer/search.hpp"

namespace {

namespace cs = stordep::casestudy;
namespace opt = stordep::optimizer;
using stordep::config::Json;
using stordep::config::JsonArray;
using stordep::config::JsonObject;

double secondsSince(std::chrono::steady_clock::time_point start) {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

/// The legacy serial evaluate() throughput recorded when the plan fast path
/// landed (single-core container, RelWithDebInfo): ~143k (design, scenario)
/// evaluations per second. The serial compile-once-evaluate-many loop must
/// clear 5x this absolute floor — the gate that keeps the cold path's
/// per-eval win from regressing silently. The in-run relative gate next to
/// it (plan >= 5x the legacy loop measured in the same process) covers
/// machines meaningfully slower or faster than the one this constant was
/// recorded on.
constexpr double kSeedSerialEvalsPerSec = 143077.0;

/// A denser grid than the default ~200-candidate space: >= 500 structurally
/// valid candidates.
std::vector<opt::CandidateSpec> denseCandidates() {
  opt::DesignSpaceOptions options;
  options.pitAccWs = {stordep::hours(6), stordep::hours(12),
                      stordep::hours(24), stordep::hours(48)};
  options.pitRetentionCounts = {2, 4};
  options.backupAccWs = {stordep::hours(24), stordep::weeks(1),
                         stordep::weeks(2)};
  options.mirrorLinkCounts = {1, 2, 4, 10};
  return opt::enumerateDesignSpace(options);
}

/// A >= 10k-point grid for the streaming sweep: dense enough that the
/// candidate vector is worth not materializing.
opt::DesignSpaceOptions bigGridOptions() {
  opt::DesignSpaceOptions options;
  options.pitAccWs = {stordep::hours(3),  stordep::hours(6),
                      stordep::hours(12), stordep::hours(24),
                      stordep::hours(48)};
  options.pitRetentionCounts = {1, 2, 4, 8};
  options.backupAccWs = {stordep::hours(24), stordep::days(3),
                         stordep::weeks(1), stordep::weeks(2)};
  options.vaultAccWs = {stordep::weeks(1), stordep::weeks(4),
                        stordep::weeks(12)};
  options.mirrorChoices = {opt::MirrorChoice::kNone, opt::MirrorChoice::kAsync,
                           opt::MirrorChoice::kAsyncBatch};
  options.mirrorLinkCounts = {1, 2, 4, 8, 16};
  return options;
}

bool sameRanking(const opt::SearchResult& a, const opt::SearchResult& b) {
  if (a.ranked.size() != b.ranked.size() ||
      a.rejected.size() != b.rejected.size()) {
    return false;
  }
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    if (a.ranked[i].label != b.ranked[i].label ||
        a.ranked[i].totalCost.raw() != b.ranked[i].totalCost.raw() ||
        a.ranked[i].worstRecoveryTime.raw() !=
            b.ranked[i].worstRecoveryTime.raw() ||
        a.ranked[i].worstDataLoss.raw() != b.ranked[i].worstDataLoss.raw()) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const std::vector<opt::CandidateSpec> candidates = denseCandidates();
  const std::vector<opt::ScenarioCase> scenarios = opt::caseStudyScenarios();
  const stordep::WorkloadSpec workload = cs::celloWorkload();
  const stordep::BusinessRequirements business = cs::requirements();

  const auto serialStart = std::chrono::steady_clock::now();
  const opt::SearchResult serial =
      opt::searchDesignSpaceSerial(candidates, workload, business, scenarios);
  const double serialSeconds = secondsSince(serialStart);

  Json doc{JsonObject{}};
  doc.set("bench", Json("parallel_search"));
  doc.set("candidates", Json(static_cast<std::int64_t>(candidates.size())));
  doc.set("scenarios", Json(static_cast<std::int64_t>(scenarios.size())));
  doc.set("hardwareThreads",
          Json(static_cast<std::int64_t>(
              std::thread::hardware_concurrency())));
  doc.set("serialSeconds", Json(serialSeconds));
  doc.set("serialEvalsPerSec",
          Json(static_cast<double>(candidates.size() * scenarios.size()) /
               serialSeconds));

  bool ok = true;
  JsonArray runs;
  for (const int threads : {1, 2, 4, 8}) {
    stordep::engine::Engine engine(
        stordep::engine::EngineOptions{.threads = threads});
    // These are the *legacy-path* reference sections: pin the plan routing
    // off so the keyed evaluate / cache machinery is what gets timed (and
    // so the warm hit-rate gate keeps meaning something).
    opt::SearchOptions legacyOptions;
    legacyOptions.eng = &engine;
    legacyOptions.maxRetries = 0;
    legacyOptions.usePlan = false;

    const auto coldStart = std::chrono::steady_clock::now();
    const opt::SearchResult cold = opt::searchDesignSpace(
        candidates, workload, business, scenarios, legacyOptions);
    const double coldSeconds = secondsSince(coldStart);
    const auto afterCold = engine.cache().stats();

    const auto warmStart = std::chrono::steady_clock::now();
    const opt::SearchResult warm = opt::searchDesignSpace(
        candidates, workload, business, scenarios, legacyOptions);
    const double warmSeconds = secondsSince(warmStart);
    const auto stats = engine.cache().stats();

    const double warmHits = static_cast<double>(stats.hits - afterCold.hits);
    const double warmLookups =
        static_cast<double>((stats.hits + stats.misses) -
                            (afterCold.hits + afterCold.misses));
    const double warmHitRate =
        warmLookups > 0.0 ? warmHits / warmLookups : 0.0;

    if (!sameRanking(serial, cold) || !sameRanking(serial, warm)) {
      std::cerr << "FAIL: engine-backed ranking diverged from serial at "
                << threads << " threads\n";
      ok = false;
    }
    if (warmHitRate < 0.9) {
      std::cerr << "FAIL: warm re-sweep hit rate " << warmHitRate
                << " < 0.9 at " << threads << " threads\n";
      ok = false;
    }

    Json run{JsonObject{}};
    run.set("threads", Json(threads));
    run.set("coldSeconds", Json(coldSeconds));
    run.set("coldSpeedupVsSerial", Json(serialSeconds / coldSeconds));
    run.set("coldEvalsPerSec",
            Json(static_cast<double>(candidates.size() * scenarios.size()) /
                 coldSeconds));
    run.set("warmSeconds", Json(warmSeconds));
    run.set("warmSpeedupVsSerial", Json(serialSeconds / warmSeconds));
    run.set("warmCacheHitRate", Json(warmHitRate));
    run.set("cacheEntries", Json(static_cast<std::int64_t>(stats.entries)));
    runs.push_back(std::move(run));
  }
  doc.set("runs", Json(std::move(runs)));

  // Streaming sweep over a >= 10k-candidate grid: the cursor drains chunks
  // into the pool without ever materializing the candidate vector. The
  // serial reference runs over the materialized vector (which also validates
  // that the cursor reproduces enumerateDesignSpace exactly), and both the
  // cold and warm streaming rankings must be bit-identical to it. Cold
  // throughput is hardware-relative like the thread runs above — on one
  // core the engine's cache bookkeeping roughly washes out against its
  // partial-result reuse — so the hard guards are the machine-independent
  // contracts: no divergence, the warm (memoized) sweep beats serial, and
  // cold streaming stays within 30% of serial even with no cores to fan
  // out to.
  {
    const opt::DesignSpaceOptions bigOptions = bigGridOptions();
    const std::vector<opt::CandidateSpec> bigGrid =
        opt::enumerateDesignSpace(bigOptions);

    const opt::SearchResult bigSerial =
        opt::searchDesignSpaceSerial(bigGrid, workload, business, scenarios);

    stordep::engine::Engine engine(stordep::engine::EngineOptions{});
    opt::SearchOptions searchOptions;
    searchOptions.eng = &engine;
    // Legacy reference section, like the thread runs above.
    searchOptions.usePlan = false;

    opt::DesignSpaceCursor coldCursor(bigOptions);
    const opt::SearchResult cold = opt::searchDesignSpaceStreaming(
        coldCursor, workload, business, scenarios, searchOptions);

    opt::DesignSpaceCursor warmCursor(bigOptions);
    const opt::SearchResult warm = opt::searchDesignSpaceStreaming(
        warmCursor, workload, business, scenarios, searchOptions);

    if (bigGrid.size() < 10000) {
      std::cerr << "FAIL: big grid produced only " << bigGrid.size()
                << " candidates (< 10000)\n";
      ok = false;
    }
    if (!sameRanking(bigSerial, cold) || !sameRanking(bigSerial, warm)) {
      std::cerr << "FAIL: streaming sweep ranking diverged from serial on "
                << bigGrid.size() << " candidates\n";
      ok = false;
    }
    if (warm.candidatesPerSec <= bigSerial.candidatesPerSec) {
      std::cerr << "FAIL: warm streaming sweep " << warm.candidatesPerSec
                << " candidates/sec did not beat serial "
                << bigSerial.candidatesPerSec << "\n";
      ok = false;
    }
    if (cold.candidatesPerSec < 0.7 * bigSerial.candidatesPerSec) {
      std::cerr << "FAIL: cold streaming sweep " << cold.candidatesPerSec
                << " candidates/sec fell below 70% of serial "
                << bigSerial.candidatesPerSec << "\n";
      ok = false;
    }

    Json big{JsonObject{}};
    big.set("candidates", Json(static_cast<std::int64_t>(bigGrid.size())));
    big.set("gridCardinality",
            Json(static_cast<std::int64_t>(opt::gridCardinality(bigOptions))));
    big.set("serialSeconds", Json(bigSerial.wallSeconds));
    big.set("serialCandidatesPerSec", Json(bigSerial.candidatesPerSec));
    big.set("coldStreamingSeconds", Json(cold.wallSeconds));
    big.set("coldStreamingCandidatesPerSec", Json(cold.candidatesPerSec));
    big.set("coldStreamingSpeedup",
            Json(cold.candidatesPerSec /
                 (bigSerial.candidatesPerSec > 0.0 ? bigSerial.candidatesPerSec
                                                   : 1.0)));
    big.set("warmStreamingSeconds", Json(warm.wallSeconds));
    big.set("warmStreamingCandidatesPerSec", Json(warm.candidatesPerSec));
    big.set("warmStreamingSpeedup",
            Json(warm.candidatesPerSec /
                 (bigSerial.candidatesPerSec > 0.0 ? bigSerial.candidatesPerSec
                                                   : 1.0)));
    doc.set("bigGrid", Json(std::move(big)));
  }

  // ---- Compiled-plan fast path --------------------------------------------
  // The cold-path scaling target lives here. The workload is the paper's
  // dependability matrix — every design evaluated under a *set* of failure
  // scenarios (object/array/site across a spread of recovery target ages),
  // which is exactly the shape the compile-once plan amortizes over. All of
  // these are HARD gates (they fail the job, not just note a slow machine —
  // the plan's per-eval win is not hardware-relative):
  //
  //  1. serial (1-thread) plan matrix: >= 5x evals/sec vs BOTH the in-run
  //     legacy evaluate() loop over the same pairs and the recorded seed
  //     baseline (kSeedSerialEvalsPerSec);
  //  2. cold 8-thread plan matrix: >= 4x the serial legacy wall time, even
  //     on one core (per-eval win must survive the thread fan-out);
  //  3. the plan-routed candidate *sweep* must reproduce the serial legacy
  //     ranking exactly (its speedup is reported but not gated: a 3-scenario
  //     sweep is dominated by candidate build + compile, which the matrix
  //     workload amortizes away).
  {
    // Gate (3): plan-routed sweeps, serial and 8-thread, fresh engine each.
    auto timedPlanSearch = [&](int threads, double& bestSeconds) {
      opt::SearchResult result;
      bestSeconds = -1.0;
      for (int attempt = 0; attempt < 3; ++attempt) {
        stordep::engine::Engine engine(
            stordep::engine::EngineOptions{.threads = threads});
        opt::SearchOptions planOptions;
        planOptions.eng = &engine;
        planOptions.maxRetries = 0;
        planOptions.usePlan = true;
        const auto start = std::chrono::steady_clock::now();
        result = opt::searchDesignSpace(candidates, workload, business,
                                        scenarios, planOptions);
        const double seconds = secondsSince(start);
        if (bestSeconds < 0.0 || seconds < bestSeconds) bestSeconds = seconds;
      }
      return result;
    };

    double planSerialSweepSeconds = 0.0;
    const opt::SearchResult planSerialSweep =
        timedPlanSearch(1, planSerialSweepSeconds);
    double planColdSweepSeconds = 0.0;
    const opt::SearchResult planColdSweep =
        timedPlanSearch(8, planColdSweepSeconds);
    if (!sameRanking(serial, planSerialSweep) ||
        !sameRanking(serial, planColdSweep)) {
      std::cerr << "FAIL: plan-routed sweep ranking diverged from serial\n";
      ok = false;
    }

    // The matrix workload: every plannable design from the dense grid under
    // 24 scenarios (the 3 case-study failures x 8 recovery target ages).
    // Designs that either path cannot evaluate without throwing are skipped
    // (the sweeps above have per-candidate isolation; these loops have none).
    std::vector<std::shared_ptr<const stordep::StorageDesign>> designs;
    designs.reserve(candidates.size());
    std::vector<stordep::FailureScenario> matrixScenarios;
    for (const opt::ScenarioCase& sc : scenarios) {
      for (const double ageHours : {0.0, 1.0, 6.0, 24.0, 72.0, 168.0, 336.0,
                                    720.0}) {
        stordep::FailureScenario variant = sc.scenario;
        variant.recoveryTargetAge = stordep::hours(ageHours);
        matrixScenarios.push_back(std::move(variant));
      }
    }
    for (const opt::CandidateSpec& spec : candidates) {
      try {
        stordep::StorageDesign design = spec.build(workload, business);
        for (const stordep::FailureScenario& sc : matrixScenarios) {
          (void)stordep::evaluate(design, sc);
        }
        if (stordep::engine::EvalPlan::compile(design) == nullptr) continue;
        designs.push_back(
            std::make_shared<const stordep::StorageDesign>(std::move(design)));
      } catch (const std::exception&) {
        continue;
      }
    }
    const std::size_t pairs = designs.size() * matrixScenarios.size();

    // Legacy serial reference over the same pairs, same order as the
    // matrix's design-major output.
    double legacyChecksum = 0.0;
    const auto legacyStart = std::chrono::steady_clock::now();
    for (const auto& design : designs) {
      for (const stordep::FailureScenario& sc : matrixScenarios) {
        legacyChecksum +=
            stordep::summarizeEvaluation(stordep::evaluate(*design, sc))
                .totalCost.raw();
      }
    }
    const double legacySeconds = secondsSince(legacyStart);
    const double legacyEvalsPerSec =
        static_cast<double>(pairs) / legacySeconds;

    auto matrixChecksum =
        [](const std::vector<stordep::EvaluationMetrics>& rows) {
          double sum = 0.0;
          for (const stordep::EvaluationMetrics& m : rows) {
            sum += m.totalCost.raw();
          }
          return sum;
        };

    // Gate (1): serial plan matrix (compile included — this is the cold
    // path, nothing is pre-warmed).
    stordep::engine::Engine serialEngine(
        stordep::engine::EngineOptions{.threads = 1});
    stordep::engine::Engine::PlanBatchStats serialStats;
    const auto planSerialStart = std::chrono::steady_clock::now();
    const std::vector<stordep::EvaluationMetrics> serialMatrix =
        serialEngine.evaluatePlanMatrix(designs, matrixScenarios,
                                        &serialStats);
    const double planSerialSeconds = secondsSince(planSerialStart);
    const double planSerialEvalsPerSec =
        static_cast<double>(pairs) / planSerialSeconds;

    // Gate (2): cold 8-thread plan matrix.
    stordep::engine::Engine coldEngine(
        stordep::engine::EngineOptions{.threads = 8});
    stordep::engine::Engine::PlanBatchStats coldStats;
    const auto planColdStart = std::chrono::steady_clock::now();
    const std::vector<stordep::EvaluationMetrics> coldMatrix =
        coldEngine.evaluatePlanMatrix(designs, matrixScenarios, &coldStats);
    const double planColdSeconds = secondsSince(planColdStart);
    const double planColdSpeedup = legacySeconds / planColdSeconds;

    // Every pair agrees with the legacy loop bit-for-bit: identical fold
    // order makes the checksums comparable exactly (the fuzz oracle checks
    // per-field equality; this is the cheap whole-matrix cross-check).
    if (matrixChecksum(serialMatrix) != legacyChecksum ||
        matrixChecksum(coldMatrix) != legacyChecksum) {
      std::cerr << "FAIL: plan matrix checksum diverged from the legacy "
                   "evaluate() loop\n";
      ok = false;
    }
    if (planSerialEvalsPerSec < 5.0 * legacyEvalsPerSec) {
      std::cerr << "FAIL: serial plan matrix " << planSerialEvalsPerSec
                << " evals/sec < 5x in-run legacy " << legacyEvalsPerSec
                << "\n";
      ok = false;
    }
    if (planSerialEvalsPerSec < 5.0 * kSeedSerialEvalsPerSec) {
      std::cerr << "FAIL: serial plan matrix " << planSerialEvalsPerSec
                << " evals/sec < 5x seed baseline " << kSeedSerialEvalsPerSec
                << "\n";
      ok = false;
    }
    if (planColdSpeedup < 4.0) {
      std::cerr << "FAIL: cold 8-thread plan matrix only " << planColdSpeedup
                << "x the serial legacy loop (< 4x)\n";
      ok = false;
    }

    Json plan{JsonObject{}};
    plan.set("matrixDesigns", Json(static_cast<std::int64_t>(designs.size())));
    plan.set("matrixScenarios",
             Json(static_cast<std::int64_t>(matrixScenarios.size())));
    plan.set("matrixPairs", Json(static_cast<std::int64_t>(pairs)));
    plan.set("legacySerialSeconds", Json(legacySeconds));
    plan.set("legacySerialEvalsPerSec", Json(legacyEvalsPerSec));
    plan.set("serialSeconds", Json(planSerialSeconds));
    plan.set("serialEvalsPerSec", Json(planSerialEvalsPerSec));
    plan.set("serialSpeedupVsLegacy",
             Json(planSerialEvalsPerSec / legacyEvalsPerSec));
    plan.set("serialSpeedupVsSeedBaseline",
             Json(planSerialEvalsPerSec / kSeedSerialEvalsPerSec));
    plan.set("seedBaselineEvalsPerSec", Json(kSeedSerialEvalsPerSec));
    plan.set("cold8Seconds", Json(planColdSeconds));
    plan.set("cold8SpeedupVsLegacySerial", Json(planColdSpeedup));
    plan.set("cold8PairsPerSec", Json(coldStats.pairsPerSec));
    plan.set("cold8ThreadsUsed",
             Json(static_cast<std::int64_t>(coldStats.threadsUsed)));
    plan.set("planCompiles",
             Json(static_cast<std::int64_t>(coldStats.planCompiles)));
    plan.set("planIncompatible",
             Json(static_cast<std::int64_t>(coldStats.planIncompatible)));
    plan.set("sweepSerialSeconds", Json(planSerialSweepSeconds));
    plan.set("sweepSerialSpeedupVsSerialSearch",
             Json(serialSeconds / planSerialSweepSeconds));
    plan.set("sweepCold8Seconds", Json(planColdSweepSeconds));
    plan.set("sweepCold8SpeedupVsSerialSearch",
             Json(serialSeconds / planColdSweepSeconds));
    doc.set("plan", Json(std::move(plan)));
  }

  doc.set("ok", Json(ok));

  const std::string out = doc.pretty();
  std::cout << out << "\n";
  std::ofstream file("BENCH_parallel_search.json");
  file << out << "\n";
  return ok ? 0 : 1;
}
