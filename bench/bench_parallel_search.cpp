// bench_parallel_search — throughput of the batch-evaluation engine.
//
// Runs the same ~500-candidate design-space sweep (the paper's automated
// optimization loop, on a grid denser than the default) three ways:
//
//  * the serial reference path (pre-engine: one thread, no cache);
//  * engine-backed at 1/2/4/8 threads, cold cache (parallel speedup);
//  * the same engine again, warm cache (memoization hit rate).
//
// Emits a JSON document on stdout so the perf trajectory can be tracked
// across PRs, and exits non-zero if the engine's results diverge from the
// serial reference (determinism is part of the contract being benchmarked)
// or if a warm re-sweep falls under a 90% cache hit rate.
//
// Speedup expectations are hardware-relative: the container this repo is
// grown in may expose a single core (reported as hardwareThreads), in which
// case thread counts above it add scheduling overhead instead of speedup.
// On >= 8 real cores the 8-thread sweep is expected to clear 3x serial.
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "casestudy/casestudy.hpp"
#include "config/json.hpp"
#include "engine/batch.hpp"
#include "optimizer/search.hpp"

namespace {

namespace cs = stordep::casestudy;
namespace opt = stordep::optimizer;
using stordep::config::Json;
using stordep::config::JsonArray;
using stordep::config::JsonObject;

double secondsSince(std::chrono::steady_clock::time_point start) {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

/// A denser grid than the default ~200-candidate space: >= 500 structurally
/// valid candidates.
std::vector<opt::CandidateSpec> denseCandidates() {
  opt::DesignSpaceOptions options;
  options.pitAccWs = {stordep::hours(6), stordep::hours(12),
                      stordep::hours(24), stordep::hours(48)};
  options.pitRetentionCounts = {2, 4};
  options.backupAccWs = {stordep::hours(24), stordep::weeks(1),
                         stordep::weeks(2)};
  options.mirrorLinkCounts = {1, 2, 4, 10};
  return opt::enumerateDesignSpace(options);
}

/// A >= 10k-point grid for the streaming sweep: dense enough that the
/// candidate vector is worth not materializing.
opt::DesignSpaceOptions bigGridOptions() {
  opt::DesignSpaceOptions options;
  options.pitAccWs = {stordep::hours(3),  stordep::hours(6),
                      stordep::hours(12), stordep::hours(24),
                      stordep::hours(48)};
  options.pitRetentionCounts = {1, 2, 4, 8};
  options.backupAccWs = {stordep::hours(24), stordep::days(3),
                         stordep::weeks(1), stordep::weeks(2)};
  options.vaultAccWs = {stordep::weeks(1), stordep::weeks(4),
                        stordep::weeks(12)};
  options.mirrorChoices = {opt::MirrorChoice::kNone, opt::MirrorChoice::kAsync,
                           opt::MirrorChoice::kAsyncBatch};
  options.mirrorLinkCounts = {1, 2, 4, 8, 16};
  return options;
}

bool sameRanking(const opt::SearchResult& a, const opt::SearchResult& b) {
  if (a.ranked.size() != b.ranked.size() ||
      a.rejected.size() != b.rejected.size()) {
    return false;
  }
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    if (a.ranked[i].label != b.ranked[i].label ||
        a.ranked[i].totalCost.raw() != b.ranked[i].totalCost.raw() ||
        a.ranked[i].worstRecoveryTime.raw() !=
            b.ranked[i].worstRecoveryTime.raw() ||
        a.ranked[i].worstDataLoss.raw() != b.ranked[i].worstDataLoss.raw()) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const std::vector<opt::CandidateSpec> candidates = denseCandidates();
  const std::vector<opt::ScenarioCase> scenarios = opt::caseStudyScenarios();
  const stordep::WorkloadSpec workload = cs::celloWorkload();
  const stordep::BusinessRequirements business = cs::requirements();

  const auto serialStart = std::chrono::steady_clock::now();
  const opt::SearchResult serial =
      opt::searchDesignSpaceSerial(candidates, workload, business, scenarios);
  const double serialSeconds = secondsSince(serialStart);

  Json doc{JsonObject{}};
  doc.set("bench", Json("parallel_search"));
  doc.set("candidates", Json(static_cast<std::int64_t>(candidates.size())));
  doc.set("scenarios", Json(static_cast<std::int64_t>(scenarios.size())));
  doc.set("hardwareThreads",
          Json(static_cast<std::int64_t>(
              std::thread::hardware_concurrency())));
  doc.set("serialSeconds", Json(serialSeconds));
  doc.set("serialEvalsPerSec",
          Json(static_cast<double>(candidates.size() * scenarios.size()) /
               serialSeconds));

  bool ok = true;
  JsonArray runs;
  for (const int threads : {1, 2, 4, 8}) {
    stordep::engine::Engine engine(
        stordep::engine::EngineOptions{.threads = threads});

    const auto coldStart = std::chrono::steady_clock::now();
    const opt::SearchResult cold = opt::searchDesignSpace(
        candidates, workload, business, scenarios, &engine);
    const double coldSeconds = secondsSince(coldStart);
    const auto afterCold = engine.cache().stats();

    const auto warmStart = std::chrono::steady_clock::now();
    const opt::SearchResult warm = opt::searchDesignSpace(
        candidates, workload, business, scenarios, &engine);
    const double warmSeconds = secondsSince(warmStart);
    const auto stats = engine.cache().stats();

    const double warmHits = static_cast<double>(stats.hits - afterCold.hits);
    const double warmLookups =
        static_cast<double>((stats.hits + stats.misses) -
                            (afterCold.hits + afterCold.misses));
    const double warmHitRate =
        warmLookups > 0.0 ? warmHits / warmLookups : 0.0;

    if (!sameRanking(serial, cold) || !sameRanking(serial, warm)) {
      std::cerr << "FAIL: engine-backed ranking diverged from serial at "
                << threads << " threads\n";
      ok = false;
    }
    if (warmHitRate < 0.9) {
      std::cerr << "FAIL: warm re-sweep hit rate " << warmHitRate
                << " < 0.9 at " << threads << " threads\n";
      ok = false;
    }

    Json run{JsonObject{}};
    run.set("threads", Json(threads));
    run.set("coldSeconds", Json(coldSeconds));
    run.set("coldSpeedupVsSerial", Json(serialSeconds / coldSeconds));
    run.set("coldEvalsPerSec",
            Json(static_cast<double>(candidates.size() * scenarios.size()) /
                 coldSeconds));
    run.set("warmSeconds", Json(warmSeconds));
    run.set("warmSpeedupVsSerial", Json(serialSeconds / warmSeconds));
    run.set("warmCacheHitRate", Json(warmHitRate));
    run.set("cacheEntries", Json(static_cast<std::int64_t>(stats.entries)));
    runs.push_back(std::move(run));
  }
  doc.set("runs", Json(std::move(runs)));

  // Streaming sweep over a >= 10k-candidate grid: the cursor drains chunks
  // into the pool without ever materializing the candidate vector. The
  // serial reference runs over the materialized vector (which also validates
  // that the cursor reproduces enumerateDesignSpace exactly), and both the
  // cold and warm streaming rankings must be bit-identical to it. Cold
  // throughput is hardware-relative like the thread runs above — on one
  // core the engine's cache bookkeeping roughly washes out against its
  // partial-result reuse — so the hard guards are the machine-independent
  // contracts: no divergence, the warm (memoized) sweep beats serial, and
  // cold streaming stays within 30% of serial even with no cores to fan
  // out to.
  {
    const opt::DesignSpaceOptions bigOptions = bigGridOptions();
    const std::vector<opt::CandidateSpec> bigGrid =
        opt::enumerateDesignSpace(bigOptions);

    const opt::SearchResult bigSerial =
        opt::searchDesignSpaceSerial(bigGrid, workload, business, scenarios);

    stordep::engine::Engine engine(stordep::engine::EngineOptions{});
    opt::SearchOptions searchOptions;
    searchOptions.eng = &engine;

    opt::DesignSpaceCursor coldCursor(bigOptions);
    const opt::SearchResult cold = opt::searchDesignSpaceStreaming(
        coldCursor, workload, business, scenarios, searchOptions);

    opt::DesignSpaceCursor warmCursor(bigOptions);
    const opt::SearchResult warm = opt::searchDesignSpaceStreaming(
        warmCursor, workload, business, scenarios, searchOptions);

    if (bigGrid.size() < 10000) {
      std::cerr << "FAIL: big grid produced only " << bigGrid.size()
                << " candidates (< 10000)\n";
      ok = false;
    }
    if (!sameRanking(bigSerial, cold) || !sameRanking(bigSerial, warm)) {
      std::cerr << "FAIL: streaming sweep ranking diverged from serial on "
                << bigGrid.size() << " candidates\n";
      ok = false;
    }
    if (warm.candidatesPerSec <= bigSerial.candidatesPerSec) {
      std::cerr << "FAIL: warm streaming sweep " << warm.candidatesPerSec
                << " candidates/sec did not beat serial "
                << bigSerial.candidatesPerSec << "\n";
      ok = false;
    }
    if (cold.candidatesPerSec < 0.7 * bigSerial.candidatesPerSec) {
      std::cerr << "FAIL: cold streaming sweep " << cold.candidatesPerSec
                << " candidates/sec fell below 70% of serial "
                << bigSerial.candidatesPerSec << "\n";
      ok = false;
    }

    Json big{JsonObject{}};
    big.set("candidates", Json(static_cast<std::int64_t>(bigGrid.size())));
    big.set("gridCardinality",
            Json(static_cast<std::int64_t>(opt::gridCardinality(bigOptions))));
    big.set("serialSeconds", Json(bigSerial.wallSeconds));
    big.set("serialCandidatesPerSec", Json(bigSerial.candidatesPerSec));
    big.set("coldStreamingSeconds", Json(cold.wallSeconds));
    big.set("coldStreamingCandidatesPerSec", Json(cold.candidatesPerSec));
    big.set("coldStreamingSpeedup",
            Json(cold.candidatesPerSec /
                 (bigSerial.candidatesPerSec > 0.0 ? bigSerial.candidatesPerSec
                                                   : 1.0)));
    big.set("warmStreamingSeconds", Json(warm.wallSeconds));
    big.set("warmStreamingCandidatesPerSec", Json(warm.candidatesPerSec));
    big.set("warmStreamingSpeedup",
            Json(warm.candidatesPerSec /
                 (bigSerial.candidatesPerSec > 0.0 ? bigSerial.candidatesPerSec
                                                   : 1.0)));
    doc.set("bigGrid", Json(std::move(big)));
  }

  doc.set("ok", Json(ok));

  const std::string out = doc.pretty();
  std::cout << out << "\n";
  std::ofstream file("BENCH_parallel_search.json");
  file << out << "\n";
  return ok ? 0 : 1;
}
