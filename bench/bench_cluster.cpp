// bench_cluster — aggregate warm-cache throughput of a 3-node loopback
// cluster versus a single node, driven by ring-aware clients.
//
// Starts one solo cluster member, warms its cache over the case-study
// what-if designs crossed with the three failure scenarios, and measures
// closed-loop throughput; then starts three members on loopback ephemeral
// ports, converges membership with explicit gossip rounds, and repeats the
// measurement with clients that compute each payload's evaluation
// fingerprint and dial the ring owner directly — the same placement the
// nodes themselves use, so the hot path never pays a forwarding hop.
//
// Hard gates (machine-independent, fail on any hardware):
//   * every clustered response — owner-routed AND deliberately sent to a
//     non-owner so it traverses the forwarding path — must be byte-identical
//     to the solo node's response for the same payload;
//   * zero non-200 responses in both measured phases.
// The scaling gate is hardware-relative, like the thread runs in
// bench_parallel_search: with >= 4 hardware threads the 3-node aggregate
// must sustain >= 1.8x the solo RPS; on smaller machines (this repo is
// grown in a container that may expose a single core) the ratio is
// reported in BENCH_cluster.json but cannot fail the run, because three
// event loops on one core time-slice instead of scaling.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "casestudy/casestudy.hpp"
#include "cluster/node.hpp"
#include "cluster/ring.hpp"
#include "config/design_io.hpp"
#include "engine/fingerprint.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

namespace {

namespace cs = stordep::casestudy;
namespace svc = stordep::service;
namespace cl = stordep::cluster;
using stordep::FailureScenario;
using stordep::config::Json;
using stordep::config::JsonObject;

constexpr int kEngineThreadsPerNode = 2;
constexpr int kClientThreadsPerNode = 4;
constexpr double kMeasureSeconds = 3.0;
constexpr double kMinSpeedup = 1.8;
constexpr unsigned kSpeedupGateCores = 4;

struct Payload {
  std::string body;
  stordep::engine::Fingerprint key;
};

std::vector<Payload> makePayloads() {
  std::vector<Payload> payloads;
  for (const auto& [label, design] : cs::allWhatIfDesigns()) {
    for (const FailureScenario& scenario :
         {cs::objectFailure(), cs::arrayFailure(), cs::siteDisaster()}) {
      Json body{JsonObject{}};
      body.set("design", stordep::config::designToJson(design));
      body.set("scenario", stordep::config::scenarioToJson(scenario));
      payloads.push_back(Payload{
          body.dump(), stordep::engine::fingerprintEvaluation(design,
                                                              scenario)});
    }
  }
  return payloads;
}

struct LoadResult {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  double wallSeconds = 0.0;
  double rps = 0.0;
};

/// Closed-loop load: `clientThreads` threads round-robin the payloads, each
/// request dialed at targetPorts[i] (one keep-alive Client per distinct
/// port per thread).
LoadResult measure(const std::vector<Payload>& payloads,
                   const std::vector<int>& targetPorts, int clientThreads) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::uint64_t> counts(
      static_cast<std::size_t>(clientThreads), 0);
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(clientThreads));

  const auto begin = std::chrono::steady_clock::now();
  for (int t = 0; t < clientThreads; ++t) {
    clients.emplace_back([&, t] {
      std::map<int, std::unique_ptr<svc::Client>> byPort;
      std::uint64_t done = 0;
      std::size_t next = static_cast<std::size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t i = next % payloads.size();
        next += 1;
        std::unique_ptr<svc::Client>& client = byPort[targetPorts[i]];
        if (!client) {
          client = std::make_unique<svc::Client>("127.0.0.1",
                                                 targetPorts[i]);
        }
        try {
          const svc::HttpClientResponse response =
              client->post("/v1/evaluate", payloads[i].body);
          if (response.status == 200) {
            done += 1;
          } else {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (const svc::TransportError&) {
          errors.fetch_add(1, std::memory_order_relaxed);
          client.reset();
        }
      }
      counts[static_cast<std::size_t>(t)] = done;
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(kMeasureSeconds));
  stop.store(true);
  for (std::thread& thread : clients) thread.join();

  LoadResult result;
  result.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  for (const std::uint64_t count : counts) result.requests += count;
  result.errors = errors.load();
  result.rps = static_cast<double>(result.requests) / result.wallSeconds;
  return result;
}

svc::ServerOptions nodeServerOptions() {
  svc::ServerOptions options;
  options.engineThreads = kEngineThreadsPerNode;
  return options;
}

}  // namespace

int main() {
  const std::vector<Payload> payloads = makePayloads();
  bool ok = true;

  // -- Phase 1: solo member. Its warm-pass responses are the byte oracle
  // for everything the cluster serves later.
  std::vector<std::string> oracle;
  oracle.reserve(payloads.size());
  LoadResult solo;
  {
    svc::Server server(nodeServerOptions());
    cl::ClusterNodeOptions nodeOptions;
    nodeOptions.nodeId = "solo";
    nodeOptions.enableHeartbeat = false;
    cl::ClusterNode node(server, nodeOptions);
    server.start();
    node.start();

    svc::Client client("127.0.0.1", server.port());
    for (const Payload& payload : payloads) {
      const svc::HttpClientResponse response =
          client.post("/v1/evaluate", payload.body);
      if (response.status != 200) {
        std::cerr << "FAIL: solo warmup got HTTP " << response.status << ": "
                  << response.body << "\n";
        node.stop();
        return 1;
      }
      oracle.push_back(response.body);
    }

    const std::vector<int> targets(payloads.size(),
                                   static_cast<int>(server.port()));
    solo = measure(payloads, targets, kClientThreadsPerNode);
    node.stop();
  }

  // -- Phase 2: three members, explicit gossip convergence, ring-aware
  // routing.
  LoadResult cluster;
  std::uint64_t forwardChecked = 0;
  std::uint64_t byteMismatches = 0;
  {
    svc::Server serverA(nodeServerOptions());
    svc::Server serverB(nodeServerOptions());
    svc::Server serverC(nodeServerOptions());
    serverA.start();
    serverB.start();
    serverC.start();

    auto makeNode = [&](svc::Server& server, const std::string& id,
                        int seedPort) {
      cl::ClusterNodeOptions nodeOptions;
      nodeOptions.nodeId = id;
      nodeOptions.enableHeartbeat = false;
      if (seedPort != 0) nodeOptions.seeds.push_back({"127.0.0.1", seedPort});
      return std::make_unique<cl::ClusterNode>(server, nodeOptions);
    };
    std::unique_ptr<cl::ClusterNode> nodeA =
        makeNode(serverA, "bench-a", 0);
    std::unique_ptr<cl::ClusterNode> nodeB =
        makeNode(serverB, "bench-b", static_cast<int>(serverA.port()));
    std::unique_ptr<cl::ClusterNode> nodeC =
        makeNode(serverC, "bench-c", static_cast<int>(serverA.port()));
    nodeA->start();
    nodeB->start();
    nodeC->start();
    for (int round = 0; round < 3; ++round) {
      nodeA->gossipOnce();
      nodeB->gossipOnce();
      nodeC->gossipOnce();
    }

    // The clients place keys with the same ring the members rebuilt from
    // the converged member set.
    cl::HashRing ring;
    ring.rebuild({"bench-a", "bench-b", "bench-c"});
    std::map<std::string, int> portOf{
        {"bench-a", static_cast<int>(serverA.port())},
        {"bench-b", static_cast<int>(serverB.port())},
        {"bench-c", static_cast<int>(serverC.port())}};
    std::vector<int> targets;
    targets.reserve(payloads.size());
    for (const Payload& payload : payloads) {
      targets.push_back(portOf.at(ring.ownerOf(payload.key)));
    }

    // Warm pass doubling as the byte-identity gate: every payload goes to
    // its owner AND to one non-owner (exercising the forwarding path), and
    // both responses must match the solo oracle exactly.
    {
      std::map<int, std::unique_ptr<svc::Client>> byPort;
      auto clientFor = [&](int port) -> svc::Client& {
        std::unique_ptr<svc::Client>& client = byPort[port];
        if (!client) client = std::make_unique<svc::Client>("127.0.0.1", port);
        return *client;
      };
      for (std::size_t i = 0; i < payloads.size(); ++i) {
        const svc::HttpClientResponse owned =
            clientFor(targets[i]).post("/v1/evaluate", payloads[i].body);
        int nonOwner = 0;
        for (const auto& [id, port] : portOf) {
          if (port != targets[i]) nonOwner = port;
        }
        const svc::HttpClientResponse forwarded =
            clientFor(nonOwner).post("/v1/evaluate", payloads[i].body);
        forwardChecked += 1;
        if (owned.status != 200 || forwarded.status != 200) {
          std::cerr << "FAIL: cluster warmup got HTTP " << owned.status
                    << " / " << forwarded.status << "\n";
          ok = false;
          byteMismatches += 1;
          continue;
        }
        if (owned.body != oracle[i] || forwarded.body != oracle[i]) {
          byteMismatches += 1;
        }
      }
    }
    if (byteMismatches != 0) {
      std::cerr << "FAIL: " << byteMismatches << " of " << forwardChecked
                << " clustered responses differ from the solo node\n";
      ok = false;
    }

    cluster = measure(payloads, targets, 3 * kClientThreadsPerNode);
    nodeC->stop();
    nodeB->stop();
    nodeA->stop();
  }

  const double speedup = solo.rps > 0.0 ? cluster.rps / solo.rps : 0.0;
  const unsigned cores = std::thread::hardware_concurrency();
  const bool speedupGated = cores >= kSpeedupGateCores;

  if (solo.errors != 0 || cluster.errors != 0) {
    std::cerr << "FAIL: non-200 responses (solo " << solo.errors
              << ", cluster " << cluster.errors << ")\n";
    ok = false;
  }
  if (speedupGated && speedup < kMinSpeedup) {
    std::cerr << "FAIL: 3-node aggregate " << cluster.rps << " RPS is only "
              << speedup << "x the solo " << solo.rps << " RPS (floor "
              << kMinSpeedup << "x)\n";
    ok = false;
  }

  Json doc{JsonObject{}};
  doc.set("bench", Json("cluster"));
  doc.set("nodes", Json(static_cast<std::int64_t>(3)));
  doc.set("engineThreadsPerNode",
          Json(static_cast<std::int64_t>(kEngineThreadsPerNode)));
  doc.set("hardwareThreads", Json(static_cast<std::int64_t>(cores)));
  doc.set("distinctPayloads",
          Json(static_cast<std::int64_t>(payloads.size())));
  doc.set("soloClientThreads",
          Json(static_cast<std::int64_t>(kClientThreadsPerNode)));
  doc.set("soloRequests", Json(static_cast<std::int64_t>(solo.requests)));
  doc.set("soloRps", Json(solo.rps));
  doc.set("clusterClientThreads",
          Json(static_cast<std::int64_t>(3 * kClientThreadsPerNode)));
  doc.set("clusterRequests",
          Json(static_cast<std::int64_t>(cluster.requests)));
  doc.set("clusterRps", Json(cluster.rps));
  doc.set("speedup", Json(speedup));
  doc.set("speedupFloor", Json(kMinSpeedup));
  doc.set("speedupGated", Json(speedupGated));
  doc.set("forwardChecked",
          Json(static_cast<std::int64_t>(forwardChecked)));
  doc.set("byteMismatches",
          Json(static_cast<std::int64_t>(byteMismatches)));
  doc.set("errors", Json(static_cast<std::int64_t>(solo.errors +
                                                   cluster.errors)));
  doc.set("ok", Json(ok));

  const std::string out = doc.pretty();
  std::cout << out << "\n";
  std::ofstream file("BENCH_cluster.json");
  file << out << "\n";
  return ok ? 0 : 1;
}
