// bench_sensitivity_penalty — where do the paper's conclusions flip?
//
// Table 7's punchline (the 1-link mirror is cheapest) holds at $50k/hr
// penalty rates. This sweep varies the outage/loss penalty rate over three
// orders of magnitude and, at each point, re-ranks the seven case-study
// designs by array-failure total cost — locating the crossover rates where
// more protection (10 links; tape hierarchies) starts or stops paying off.
#include <iostream>

#include "casestudy/casestudy.hpp"
#include "report/csv.hpp"
#include "report/report.hpp"

namespace {

/// Rebuilds a design with different penalty rates (designs are immutable).
stordep::StorageDesign withPenaltyRate(const stordep::StorageDesign& base,
                                       stordep::MoneyRate rate) {
  std::vector<stordep::TechniquePtr> levels;
  for (int i = 0; i < base.levelCount(); ++i) {
    levels.push_back(base.levelPtr(i));
  }
  stordep::BusinessRequirements business = base.business();
  business.unavailabilityPenaltyRate = rate;
  business.lossPenaltyRate = rate;
  return stordep::StorageDesign(base.name(), base.workload(), business,
                                std::move(levels), base.facility());
}

}  // namespace

int main() {
  namespace cs = stordep::casestudy;
  using stordep::report::Align;
  using stordep::report::CsvWriter;
  using stordep::report::TextTable;
  using stordep::report::fixed;

  const auto designs = cs::allWhatIfDesigns();

  TextTable table({"Penalty $/hr", "Cheapest design (array failure)",
                   "Total ($M)", "Runner-up"});
  table.align(0, Align::kRight).align(2, Align::kRight);
  table.title("Cheapest of the seven Table 7 designs as the penalty rate "
              "varies");
  CsvWriter csv({"penalty_per_hr", "design", "array_total_musd"});

  std::string cheapAt1k, cheapAt50k, cheapAt1m;
  for (const double rate : {1e3, 5e3, 1e4, 5e4, 1e5, 5e5, 1e6}) {
    std::string bestLabel, secondLabel;
    double best = 1e300, second = 1e300;
    for (const auto& [label, design] : designs) {
      const stordep::StorageDesign variant =
          withPenaltyRate(design, stordep::dollarsPerHour(rate));
      const auto result = evaluate(variant, cs::arrayFailure());
      const double total = result.cost.totalCost.millionUsd();
      csv.addRow({fixed(rate, 0), label, fixed(total, 3)});
      if (total < best) {
        second = best;
        secondLabel = bestLabel;
        best = total;
        bestLabel = label;
      } else if (total < second) {
        second = total;
        secondLabel = label;
      }
    }
    table.addRow({fixed(rate, 0), bestLabel, fixed(best, 2), secondLabel});
    if (rate == 1e3) cheapAt1k = bestLabel;
    if (rate == 5e4) cheapAt50k = bestLabel;
    if (rate == 1e6) cheapAt1m = bestLabel;
  }
  std::cout << table.render();
  csv.writeFile("sensitivity_penalty.csv");
  std::cout << "\nCSV written to sensitivity_penalty.csv\n";

  std::cout
      << "\nReading the sweep: at low penalty rates cheap tape hierarchies "
         "win (penalties\nbarely matter); at the paper's $50k/hr the 1-link "
         "mirror wins; at very high rates\nthe better-provisioned 10-link "
         "mirror takes over (its $4M of extra links now\nbuy their keep in "
         "avoided outage).\n";
  const bool ok = cheapAt50k == "AsyncB mirror, 1 link" &&
                  cheapAt1m == "AsyncB mirror, 10 links" &&
                  cheapAt1k != cheapAt1m;
  std::cout << "crossovers present: " << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
