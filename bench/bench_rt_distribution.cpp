// bench_rt_distribution — typical vs worst-case recovery, simulated.
//
// The paper's recovery times are worst cases. This experiment runs the
// Monte-Carlo layer (stochastic::StochasticEvaluator) over the coupled
// RP-lifecycle + restore simulation to get the *distribution* of achieved
// recovery times across failure instants: for full-only schedules the
// restore payload is constant, so RT is deterministic; for
// full+incremental schedules the payload swings across the cycle (full
// alone just after the full lands; full + five days of updates at the end),
// and the restorability rule that an incremental is useless until its base
// full has finished propagating makes even the lightest restore carry one
// incremental.
#include <iostream>

#include "casestudy/casestudy.hpp"
#include "report/report.hpp"
#include "stochastic/evaluator.hpp"

int main() {
  namespace cs = stordep::casestudy;
  using stordep::report::Align;
  using stordep::report::TextTable;
  using stordep::report::fixed;

  TextTable table({"Design", "Scenario", "Worst RT (analytic)",
                   "Max RT (sim)", "Mean RT (sim)", "Payload min-max (GB)",
                   "Bound"});
  for (size_t c = 2; c < 7; ++c) table.align(c, Align::kRight);
  table.title("Recovery-time distributions from 5,000 simulated failure "
              "instants per row");

  bool allHold = true;
  for (const auto& [label, design] :
       std::vector<std::pair<std::string, stordep::StorageDesign>>{
           {"Baseline (weekly fulls)", cs::baseline()},
           {"Weekly vault, F+I", cs::weeklyVaultFullPlusIncremental()},
           {"Weekly vault, daily F", cs::weeklyVaultDailyFull()}}) {
    stordep::stochastic::StochasticOptions options;
    options.trials = 5000;
    options.seed = 99;
    options.sim.horizon = stordep::days(250);
    const stordep::stochastic::StochasticEvaluator eval(design, options);

    for (const auto& [name, scenario] :
         std::vector<std::pair<std::string, stordep::FailureScenario>>{
             {"array", cs::arrayFailure()}, {"site", cs::siteDisaster()}}) {
      const auto outcome = eval.distributionFor(scenario);
      if (!outcome.ok()) {
        std::cerr << "evaluation failed for " << label << "/" << name << ": "
                  << outcome.error().describe() << "\n";
        return 1;
      }
      const auto& dist = outcome.value();
      allHold = allHold && dist.rtBoundHolds && dist.unrecoverable == 0;
      table.addRow(
          {label, name, fixed(dist.analyticWorstRt.hrs(), 2) + " hr",
           fixed(stordep::Duration{dist.rt.max}.hrs(), 2) + " hr",
           fixed(stordep::Duration{dist.rt.mean}.hrs(), 2) + " hr",
           fixed(dist.minPayload.gigabytes(), 0) + "-" +
               fixed(dist.maxPayload.gigabytes(), 0),
           dist.rtBoundHolds ? "holds" : "VIOLATED"});
    }
  }
  std::cout << table.render();
  std::cout
      << "\nReading the table: full-only schedules restore a constant "
         "payload, so achieved\nRT equals the worst case at every instant. "
         "The F+I schedule's payload swings\n~1386-1490 GB across the week "
         "(never bare 1360: the day-1 incremental lands\nbefore its base "
         "full finishes propagating, so every restore replays at least "
         "one\nincrement), yet the analytic worst case bounds every sample."
         "\n";
  std::cout << "analytic worst case bounds every simulated restore: "
            << (allHold ? "yes" : "NO") << "\n";
  return allHold ? 0 : 1;
}
