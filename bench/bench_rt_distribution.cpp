// bench_rt_distribution — typical vs worst-case recovery, simulated.
//
// The paper's recovery times are worst cases. This experiment couples the
// RP-lifecycle simulation with the restore model to get the *distribution*
// of achieved recovery times across failure instants: for full-only
// schedules the restore payload is constant, so RT is deterministic; for
// full+incremental schedules the payload swings across the cycle (full
// alone just after the full lands; full + five days of updates at the end),
// and the restorability rule that an incremental is useless until its base
// full has finished propagating makes even the lightest restore carry one
// incremental.
#include <iostream>

#include "casestudy/casestudy.hpp"
#include "report/report.hpp"
#include "sim/recovery_simulator.hpp"

int main() {
  namespace cs = stordep::casestudy;
  using stordep::report::Align;
  using stordep::report::TextTable;
  using stordep::report::fixed;

  TextTable table({"Design", "Scenario", "Worst RT (analytic)",
                   "Max RT (sim)", "Mean RT (sim)", "Payload min-max (GB)",
                   "Bound"});
  for (size_t c = 2; c < 7; ++c) table.align(c, Align::kRight);
  table.title("Recovery-time distributions from 5,000 simulated failure "
              "instants per row");

  bool allHold = true;
  for (const auto& [label, design] :
       std::vector<std::pair<std::string, stordep::StorageDesign>>{
           {"Baseline (weekly fulls)", cs::baseline()},
           {"Weekly vault, F+I", cs::weeklyVaultFullPlusIncremental()},
           {"Weekly vault, daily F", cs::weeklyVaultDailyFull()}}) {
    stordep::sim::RpSimOptions options;
    options.horizon = stordep::days(250);
    stordep::sim::RpLifecycleSimulator sim(design, options);
    sim.run();
    const stordep::sim::RecoverySimulator rec(sim);

    for (const auto& [name, scenario] :
         std::vector<std::pair<std::string, stordep::FailureScenario>>{
             {"array", cs::arrayFailure()}, {"site", cs::siteDisaster()}}) {
      const auto dist =
          rec.distribution(scenario, 5000, stordep::sim::Rng(99));
      allHold = allHold && dist.rtBoundHolds && dist.unrecoverable == 0;
      table.addRow(
          {label, name, fixed(dist.analyticWorstRt.hrs(), 2) + " hr",
           fixed(dist.maxRt.hrs(), 2) + " hr",
           fixed(dist.meanRt.hrs(), 2) + " hr",
           fixed(dist.minPayload.gigabytes(), 0) + "-" +
               fixed(dist.maxPayload.gigabytes(), 0),
           dist.rtBoundHolds ? "holds" : "VIOLATED"});
    }
  }
  std::cout << table.render();
  std::cout
      << "\nReading the table: full-only schedules restore a constant "
         "payload, so achieved\nRT equals the worst case at every instant. "
         "The F+I schedule's payload swings\n~1386-1490 GB across the week "
         "(never bare 1360: the day-1 incremental lands\nbefore its base "
         "full finishes propagating, so every restore replays at least "
         "one\nincrement), yet the analytic worst case bounds every sample."
         "\n";
  std::cout << "analytic worst case bounds every simulated restore: "
            << (allHold ? "yes" : "NO") << "\n";
  return allHold ? 0 : 1;
}
