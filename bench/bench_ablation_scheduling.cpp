// bench_ablation_scheduling — ablation of the model's scheduling assumption.
//
// The paper's lag formula (Sec 3.3.2) implicitly assumes each level's RP
// creation grid is phase-aligned with upstream arrivals (its conventions
// accW_i >= cyclePer_{i-1} make that achievable). This ablation sweeps the
// backup level's phase offset across a week and measures the worst observed
// data loss: aligned phases meet the analytic bound exactly; adversarial
// phases exceed it by up to one upstream accumulation window (12 h for the
// baseline's split mirrors) — quantifying the cost of sloppy scheduling.
#include <iostream>

#include "casestudy/casestudy.hpp"
#include "report/report.hpp"
#include "sim/failure_injector.hpp"

int main() {
  namespace cs = stordep::casestudy;
  using stordep::report::Align;
  using stordep::report::TextTable;
  using stordep::report::fixed;

  const stordep::StorageDesign design = cs::baseline();
  const stordep::Duration analytic =
      chooseRecoverySource(design, cs::arrayFailure())->dataLoss;

  TextTable table({"Backup phase offset", "Max observed DL", "vs analytic",
                   "Excess"});
  for (size_t c = 1; c < 4; ++c) table.align(c, Align::kRight);
  table.title("Worst observed array-failure data loss vs backup schedule "
              "phase (analytic bound " +
              toString(analytic) + ")");

  bool alignedTight = false;
  double worstExcessHours = 0;
  for (const double offsetHours : {0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 11.9}) {
    stordep::sim::RpSimOptions options;
    options.horizon = stordep::days(250);
    options.alignSchedules = false;
    // Phase 0 is aligned for the baseline (mirrors split on the 12 h grid,
    // backups fire on the week grid); offsetting the backup by `offset`
    // makes it capture an `offset`-stale mirror.
    options.phases = {stordep::Duration::zero(), stordep::Duration::zero(),
                      stordep::hours(offsetHours),
                      stordep::hours(offsetHours) + stordep::hours(49)};
    stordep::sim::RpLifecycleSimulator sim(design, options);
    sim.run();
    stordep::sim::FailureInjector injector(sim, stordep::sim::Rng(17));
    const auto stats = injector.sweepDataLoss(cs::arrayFailure(), 8'000);

    const double excess = stats.maxObserved.hrs() - analytic.hrs();
    worstExcessHours = std::max(worstExcessHours, excess);
    if (offsetHours == 0.0 && stats.tightness > 0.99 && stats.boundHolds) {
      alignedTight = true;
    }
    table.addRow({toString(stordep::hours(offsetHours)),
                  toString(stats.maxObserved),
                  fixed(stats.tightness * 100.0, 1) + "%",
                  fixed(excess, 1) + " hr"});
  }
  std::cout << table.render();

  std::cout << "\naligned schedule meets the bound tightly: "
            << (alignedTight ? "yes" : "NO")
            << "\nworst misalignment excess: " << fixed(worstExcessHours, 1)
            << " hr (theory: up to one upstream accW = 12 hr)\n";
  const bool ok = alignedTight && worstExcessHours <= 12.0 + 0.5;
  return ok ? 0 : 1;
}
