// bench_table7_whatif — regenerates paper Table 7.
//
// "Recovery time (RT), recent data loss (DL) and cost results for what-if
// scenarios": all seven designs x {array failure, site disaster}, with the
// paper's published values interleaved for comparison, plus a CSV export
// for downstream plotting.
#include <iostream>

#include "casestudy/casestudy.hpp"
#include "report/csv.hpp"
#include "report/report.hpp"

namespace {

struct PaperRow {
  const char* label;
  double outlaysM;
  double arrayRt, arrayDl, arrayTotalM;
  double siteRt, siteDl, siteTotalM;
};

// Published Table 7 (site totals for the tape rows recomputed from the
// paper's own RT/DL at $50k/hr; see EXPERIMENTS.md on the paper's
// arithmetic inconsistency in the baseline site row).
constexpr PaperRow kPaper[] = {
    {"Baseline", 0.97, 2.4, 217, 11.94, 26.4, 1429, 73.74},
    {"Weekly vault", 0.99, 2.4, 217, 11.96, 26.4, 253, 14.96},
    {"Weekly vault, F+I", 0.99, 4.0, 73, 4.84, 26.4, 253, 14.96},
    {"Weekly vault, daily F", 1.01, 2.4, 37, 2.98, 26.4, 217, 13.18},
    {"Weekly vault, daily F, snapshot", 0.76, 2.4, 37, 2.73, 26.4, 217,
     12.93},
    {"AsyncB mirror, 1 link", 0.93, 21.7, 0.03, 2.01, 21.7, 0.03, 2.01},
    {"AsyncB mirror, 10 links", 5.03, 2.8, 0.03, 5.18, 9.8, 0.03, 5.52},
};

std::string m(double millions) {
  return "$" + stordep::report::fixed(millions, 2) + "M";
}

std::string h(stordep::Duration d) {
  return stordep::report::fixed(d.hrs(), d.hrs() < 1 ? 2 : 1);
}

}  // namespace

int main() {
  namespace cs = stordep::casestudy;
  using stordep::report::Align;
  using stordep::report::CsvWriter;
  using stordep::report::TextTable;
  using stordep::report::fixed;

  const auto designs = cs::allWhatIfDesigns();

  TextTable table({"Design", "Outlays", "ArrRT hr", "ArrDL hr", "ArrTotal",
                   "SiteRT hr", "SiteDL hr", "SiteTotal"});
  for (size_t c = 1; c < 8; ++c) table.align(c, Align::kRight);
  table.title(
      "Table 7: what-if scenario results — model rows above paper rows");

  CsvWriter csv({"design", "source", "outlays_musd", "array_rt_hr",
                 "array_dl_hr", "array_total_musd", "site_rt_hr",
                 "site_dl_hr", "site_total_musd"});

  for (size_t i = 0; i < designs.size(); ++i) {
    const auto& [label, design] = designs[i];
    const auto array = evaluate(design, cs::arrayFailure());
    const auto site = evaluate(design, cs::siteDisaster());
    const PaperRow& paper = kPaper[i];

    table.addRow({label + " (model)",
                  m(array.cost.totalOutlays.millionUsd()),
                  h(array.recovery.recoveryTime), h(array.recovery.dataLoss),
                  m(array.cost.totalCost.millionUsd()),
                  h(site.recovery.recoveryTime), h(site.recovery.dataLoss),
                  m(site.cost.totalCost.millionUsd())});
    table.addRow({"         (paper)", m(paper.outlaysM),
                  fixed(paper.arrayRt, 1), fixed(paper.arrayDl, 1),
                  m(paper.arrayTotalM), fixed(paper.siteRt, 1),
                  fixed(paper.siteDl, 1), m(paper.siteTotalM)});
    if (i + 1 < designs.size()) table.addSeparator();

    csv.addRow({label, "model",
                fixed(array.cost.totalOutlays.millionUsd(), 3),
                fixed(array.recovery.recoveryTime.hrs(), 3),
                fixed(array.recovery.dataLoss.hrs(), 3),
                fixed(array.cost.totalCost.millionUsd(), 3),
                fixed(site.recovery.recoveryTime.hrs(), 3),
                fixed(site.recovery.dataLoss.hrs(), 3),
                fixed(site.cost.totalCost.millionUsd(), 3)});
    csv.addRow({label, "paper", fixed(paper.outlaysM, 3),
                fixed(paper.arrayRt, 3), fixed(paper.arrayDl, 3),
                fixed(paper.arrayTotalM, 3), fixed(paper.siteRt, 3),
                fixed(paper.siteDl, 3), fixed(paper.siteTotalM, 3)});
  }
  std::cout << table.render();

  const std::string csvPath = "table7_whatif.csv";
  csv.writeFile(csvPath);
  std::cout << "\nCSV written to " << csvPath << "\n";

  // The orderings the paper draws conclusions from must hold exactly.
  auto total = [&](size_t i, const stordep::FailureScenario& s) {
    return evaluate(designs[i].second, s).cost.totalCost.usd();
  };
  const auto site = cs::siteDisaster();
  const auto array = cs::arrayFailure();
  const bool ordering =
      total(1, site) < total(0, site) &&        // weekly vault helps sites
      total(2, array) < total(1, array) &&      // F+I helps arrays
      total(3, array) < total(2, array) &&      // daily fulls help more
      total(4, array) < total(3, array) &&      // snapshots shave outlays
      total(5, array) < total(6, array) &&      // 1 link cheaper than 10
      total(5, array) < total(4, array);        // mirror cheapest overall
  std::cout << "paper orderings reproduced: " << (ordering ? "yes" : "NO")
            << "\n";
  return ordering ? 0 : 1;
}
