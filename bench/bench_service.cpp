// bench_service — closed-loop load generator for the evaluation service.
//
// Starts the embedded HTTP server in-process on a loopback ephemeral port,
// warms the shared EvalCache with one pass over the case-study what-if
// designs crossed with the three failure scenarios, then drives a fixed
// number of closed-loop client threads (each posts /v1/evaluate, waits for
// the response, posts again) for a measured interval and reports
// throughput plus the client-observed latency distribution.
//
// The warm-cache configuration isolates service overhead — HTTP framing,
// JSON decode/encode, batching, and the memo lookup — from model math, so
// this number tracks the cost of putting the evaluator behind a socket.
//
// Emits BENCH_service.json (stdout and the working directory) so the perf
// trajectory can be tracked across PRs, and exits non-zero if the sustained
// throughput falls below the 1k RPS floor (4 closed-loop threads).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "casestudy/casestudy.hpp"
#include "config/design_io.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

namespace {

namespace cs = stordep::casestudy;
namespace svc = stordep::service;
using stordep::FailureScenario;
using stordep::config::Json;
using stordep::config::JsonObject;

constexpr int kClientThreads = 4;
constexpr double kMeasureSeconds = 3.0;
constexpr double kMinRps = 1000.0;

std::vector<std::string> makePayloads() {
  std::vector<std::string> payloads;
  for (const auto& [label, design] : cs::allWhatIfDesigns()) {
    for (const FailureScenario& scenario :
         {cs::objectFailure(), cs::arrayFailure(), cs::siteDisaster()}) {
      Json payload{JsonObject{}};
      payload.set("design", stordep::config::designToJson(design));
      payload.set("scenario", stordep::config::scenarioToJson(scenario));
      payloads.push_back(payload.dump());
    }
  }
  return payloads;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main() {
  const std::vector<std::string> payloads = makePayloads();

  svc::ServerOptions options;
  options.engineThreads = kClientThreads;
  svc::Server server(options);
  server.start();

  // Warm pass: every payload evaluated once, so the measured loop hits the
  // shared cache on every request.
  {
    svc::Client client("127.0.0.1", server.port());
    for (const std::string& payload : payloads) {
      const svc::HttpClientResponse response =
          client.post("/v1/evaluate", payload);
      if (response.status != 200) {
        std::cerr << "FAIL: warmup request got HTTP " << response.status
                  << ": " << response.body << "\n";
        server.shutdown();
        return 1;
      }
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::vector<double>> latenciesMs(kClientThreads);
  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);

  const auto begin = std::chrono::steady_clock::now();
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      svc::Client client("127.0.0.1", server.port());
      std::vector<double>& samples = latenciesMs[static_cast<std::size_t>(t)];
      samples.reserve(1 << 16);
      std::size_t next = static_cast<std::size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string& payload = payloads[next % payloads.size()];
        next += 1;
        const auto reqStart = std::chrono::steady_clock::now();
        const svc::HttpClientResponse response =
            client.post("/v1/evaluate", payload);
        const std::chrono::duration<double, std::milli> elapsed =
            std::chrono::steady_clock::now() - reqStart;
        if (response.status == 200) {
          samples.push_back(elapsed.count());
        } else {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(kMeasureSeconds));
  stop.store(true);
  for (std::thread& thread : clients) thread.join();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - begin;
  const int engineThreads = server.engine().threads();
  server.shutdown();

  std::vector<double> all;
  for (const std::vector<double>& samples : latenciesMs) {
    all.insert(all.end(), samples.begin(), samples.end());
  }
  std::sort(all.begin(), all.end());
  const double rps = static_cast<double>(all.size()) / wall.count();
  const double p50 = percentile(all, 0.50);
  const double p99 = percentile(all, 0.99);

  bool ok = true;
  if (errors.load() != 0) {
    std::cerr << "FAIL: " << errors.load() << " non-200 responses\n";
    ok = false;
  }
  if (rps < kMinRps) {
    std::cerr << "FAIL: sustained " << rps << " RPS < " << kMinRps
              << " RPS floor\n";
    ok = false;
  }

  Json doc{JsonObject{}};
  doc.set("bench", Json("service"));
  doc.set("clientThreads", Json(static_cast<std::int64_t>(kClientThreads)));
  doc.set("engineThreads", Json(static_cast<std::int64_t>(engineThreads)));
  doc.set("distinctPayloads",
          Json(static_cast<std::int64_t>(payloads.size())));
  doc.set("measureSeconds", Json(wall.count()));
  doc.set("requests", Json(static_cast<std::int64_t>(all.size())));
  doc.set("errors", Json(static_cast<std::int64_t>(errors.load())));
  doc.set("rps", Json(rps));
  doc.set("p50Ms", Json(p50));
  doc.set("p99Ms", Json(p99));
  doc.set("maxMs", Json(all.empty() ? 0.0 : all.back()));
  doc.set("ok", Json(ok));

  const std::string out = doc.pretty();
  std::cout << out << "\n";
  std::ofstream file("BENCH_service.json");
  file << out << "\n";
  return ok ? 0 : 1;
}
