// bench_perf — google-benchmark microbenchmarks of the framework itself.
//
// The paper positions the models as the inner-most loop of an automated
// design-optimization system, so evaluation throughput matters. These
// benchmarks measure the cost of a full evaluate() (all four output
// metrics), its sub-models, design-space search, JSON round-trips, and the
// discrete-event simulator's event rate.
#include <benchmark/benchmark.h>

#include "casestudy/casestudy.hpp"
#include "config/design_io.hpp"
#include "optimizer/search.hpp"
#include "sim/rp_simulator.hpp"

namespace {

namespace cs = stordep::casestudy;

void BM_EvaluateBaseline(benchmark::State& state) {
  const stordep::StorageDesign design = cs::baseline();
  const auto scenario = cs::siteDisaster();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stordep::evaluate(design, scenario));
  }
}
BENCHMARK(BM_EvaluateBaseline);

void BM_EvaluateAllScenarios(benchmark::State& state) {
  const stordep::StorageDesign design = cs::baseline();
  const std::vector<stordep::FailureScenario> scenarios = {
      cs::objectFailure(), cs::arrayFailure(), cs::siteDisaster()};
  for (auto _ : state) {
    for (const auto& scenario : scenarios) {
      benchmark::DoNotOptimize(stordep::evaluate(design, scenario));
    }
  }
}
BENCHMARK(BM_EvaluateAllScenarios);

void BM_UtilizationOnly(benchmark::State& state) {
  const stordep::StorageDesign design = cs::baseline();
  for (auto _ : state) {
    benchmark::DoNotOptimize(computeUtilization(design));
  }
}
BENCHMARK(BM_UtilizationOnly);

void BM_RecoveryOnly(benchmark::State& state) {
  const stordep::StorageDesign design = cs::baseline();
  const auto scenario = cs::siteDisaster();
  for (auto _ : state) {
    benchmark::DoNotOptimize(computeRecovery(design, scenario));
  }
}
BENCHMARK(BM_RecoveryOnly);

void BM_BuildBaselineDesign(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(cs::baseline());
  }
}
BENCHMARK(BM_BuildBaselineDesign);

void BM_DesignSpaceSearch(benchmark::State& state) {
  const auto candidates = stordep::optimizer::enumerateDesignSpace();
  const auto scenarios = stordep::optimizer::caseStudyScenarios();
  const auto workload = cs::celloWorkload();
  const auto business = cs::requirements();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stordep::optimizer::searchDesignSpace(
        candidates, workload, business, scenarios));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(candidates.size()));
}
BENCHMARK(BM_DesignSpaceSearch);

void BM_JsonRoundTrip(benchmark::State& state) {
  const std::string text = stordep::config::saveDesign(cs::baseline());
  for (auto _ : state) {
    benchmark::DoNotOptimize(stordep::config::loadDesign(text));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_JsonRoundTrip);

void BM_RpSimulation(benchmark::State& state) {
  const stordep::StorageDesign design = cs::baseline();
  stordep::sim::RpSimOptions options;
  options.horizon = stordep::days(static_cast<double>(state.range(0)));
  for (auto _ : state) {
    stordep::sim::RpLifecycleSimulator sim(design, options);
    sim.run();
    benchmark::DoNotOptimize(sim.eventsProcessed());
  }
}
BENCHMARK(BM_RpSimulation)->Arg(100)->Arg(400);

void BM_ObservedDataLossQuery(benchmark::State& state) {
  const stordep::StorageDesign design = cs::baseline();
  stordep::sim::RpSimOptions options;
  options.horizon = stordep::days(200);
  stordep::sim::RpLifecycleSimulator sim(design, options);
  sim.run();
  const auto scenario = cs::arrayFailure();
  double t = sim.warmupTime();
  for (auto _ : state) {
    t += 3617.0;
    if (t >= sim.horizon()) t = sim.warmupTime();
    benchmark::DoNotOptimize(sim.observedDataLoss(scenario, t));
  }
}
BENCHMARK(BM_ObservedDataLossQuery);

}  // namespace

BENCHMARK_MAIN();
