// bench_table6_recovery — regenerates paper Table 6.
//
// "Worst case recovery time and recent data loss results for baseline
// system": the three failure scopes (object / array / site), the chosen
// recovery source, and the RT/DL metrics, next to the published values.
// Prints the baseline policy parameters (Table 3) as the inputs.
#include <iostream>

#include "casestudy/casestudy.hpp"
#include "report/report.hpp"

int main() {
  namespace cs = stordep::casestudy;
  using stordep::report::Align;
  using stordep::report::TextTable;
  using stordep::report::fixed;

  const stordep::StorageDesign design = cs::baseline();

  std::cout << "== Inputs (paper Table 3: baseline policies) ==\n";
  TextTable policies({"Technique", "accW", "propW", "holdW", "retCnt",
                      "retW"});
  for (int i = 1; i < design.levelCount(); ++i) {
    const stordep::ProtectionPolicy& p = *design.level(i).policy();
    policies.addRow({design.level(i).name(),
                     toString(p.primaryWindows().accW),
                     toString(p.primaryWindows().propW),
                     toString(p.primaryWindows().holdW),
                     std::to_string(p.retentionCount()),
                     toString(p.retentionWindow())});
  }
  std::cout << policies.render();

  struct Case {
    const char* scope;
    stordep::FailureScenario scenario;
    const char* paperSource;
    double paperRtHr;
    double paperDlHr;
  };
  const Case cases[] = {
      {"object", cs::objectFailure(), "split mirror", 0.004 / 3600.0, 12},
      {"array", cs::arrayFailure(), "tape backup", 2.4, 217},
      {"site", cs::siteDisaster(), "remote vaulting", 26.4, 1429},
  };

  std::cout << "\n== Table 6: worst-case recovery time and recent data loss "
               "==\n";
  TextTable table({"Failure scope", "Recovery source", "RT (model)",
                   "RT (paper)", "DL (model)", "DL (paper)"});
  for (size_t c = 2; c < 6; ++c) table.align(c, Align::kRight);

  bool allRecoverable = true;
  for (const Case& c : cases) {
    const stordep::RecoveryResult r = computeRecovery(design, c.scenario);
    allRecoverable = allRecoverable && r.recoverable;
    // Print in the paper's units (hours; seconds for the instant case).
    const std::string rtModel = r.recoveryTime < stordep::minutes(1)
                                    ? toString(r.recoveryTime)
                                    : fixed(r.recoveryTime.hrs(), 1) + " hr";
    table.addRow({c.scope, r.sourceName, rtModel,
                  c.paperRtHr < 0.01
                      ? "0.004 s"
                      : fixed(c.paperRtHr, 1) + " hr",
                  fixed(r.dataLoss.hrs(), 0) + " hr",
                  fixed(c.paperDlHr, 0) + " hr"});
  }
  std::cout << table.render();

  std::cout << "\nShape checks: object recovery is an instant intra-array "
               "copy; array recovery\nis dominated by the tape transfer; "
               "site recovery adds the 24 h shipment with\nfacility "
               "provisioning hidden inside it; data losses are exact window "
               "arithmetic\n(12 h / 217 h / 1429 h).\n";
  return allRecoverable ? 0 : 1;
}
