// bench_ablation_d2d — disk-to-disk vs tape backup ablation.
//
// The framework's technique abstraction makes the backup device pluggable;
// this ablation swaps the tape library for a nearline SATA array across a
// range of backup frequencies and reports the restore-time / outlay
// trade-off: disk restores are ~2x faster (no load/seek, higher bandwidth)
// but the media cost an order of magnitude more per GB, so D2D only pays
// for itself when outage penalties are high or restores frequent.
#include <iostream>

#include "casestudy/casestudy.hpp"
#include "core/techniques/backup.hpp"
#include "core/techniques/split_mirror.hpp"
#include "devices/catalog.hpp"
#include "report/report.hpp"

namespace {

using namespace stordep;
namespace cs = stordep::casestudy;

StorageDesign makeDesign(bool d2d, Duration accW) {
  auto array = catalog::midrangeDiskArray(cs::kPrimaryArrayName,
                                          Location::at(cs::kPrimarySite));
  DevicePtr backupDevice;
  if (d2d) {
    backupDevice =
        catalog::nearlineDiskArray("nearline", Location::at(cs::kPrimarySite));
  } else {
    backupDevice = catalog::enterpriseTapeLibrary(
        "tape-library", Location::at(cs::kPrimarySite));
  }
  const int retCnt = std::max(1, static_cast<int>(weeks(4) / accW));
  std::vector<TechniquePtr> levels;
  levels.push_back(std::make_shared<PrimaryCopy>(array));
  levels.push_back(std::make_shared<SplitMirror>(
      "mirrors", array,
      ProtectionPolicy(WindowSpec{.accW = hours(12)}, 4, days(2))));
  levels.push_back(std::make_shared<Backup>(
      "backup", BackupStyle::kFullOnly, array, backupDevice,
      ProtectionPolicy(
          WindowSpec{.accW = accW, .propW = accW * 0.5, .holdW = hours(1)},
          retCnt, weeks(4))));
  return StorageDesign(d2d ? "d2d" : "tape", cs::celloWorkload(),
                       cs::requirements(), std::move(levels),
                       cs::recoveryFacility());
}

}  // namespace

int main() {
  using report::Align;
  using report::TextTable;
  using report::fixed;

  TextTable table({"Backup freq", "Target", "Restore RT (hr)", "DL (hr)",
                   "Backup outlay ($K/yr)", "Array total ($M)"});
  for (size_t c = 2; c < 6; ++c) table.align(c, Align::kRight);
  table.title("Disk-to-disk vs tape backup across backup frequencies "
              "(array-failure scenario)");

  bool d2dAlwaysFaster = true;
  std::vector<double> outlayGap;  // disk backup outlay minus tape's, $/yr
  double bestTapeTotal = 1e300, bestD2dTotal = 1e300;
  for (const double accH : {168.0, 48.0, 24.0}) {
    for (const bool d2d : {false, true}) {
      const StorageDesign design = makeDesign(d2d, hours(accH));
      const auto result = evaluate(design, cs::arrayFailure());
      if (!result.recovery.recoverable || !result.utilization.feasible()) {
        std::cerr << "unexpected infeasibility\n";
        return 1;
      }
      const auto* outlay = result.cost.find("backup");
      table.addRow({fixed(accH, 0) + " hr", d2d ? "nearline disk" : "tape",
                    fixed(result.recovery.recoveryTime.hrs(), 2),
                    fixed(result.recovery.dataLoss.hrs(), 0),
                    fixed(outlay->total().usd() / 1000, 0),
                    fixed(result.cost.totalCost.millionUsd(), 2)});
      (d2d ? bestD2dTotal : bestTapeTotal) = std::min(
          d2d ? bestD2dTotal : bestTapeTotal,
          result.cost.totalCost.millionUsd());
    }
    // Pairwise shape checks at this frequency.
    const auto tape = evaluate(makeDesign(false, hours(accH)),
                               cs::arrayFailure());
    const auto disk = evaluate(makeDesign(true, hours(accH)),
                               cs::arrayFailure());
    d2dAlwaysFaster = d2dAlwaysFaster &&
                      disk.recovery.recoveryTime < tape.recovery.recoveryTime;
    outlayGap.push_back(disk.cost.find("backup")->total().usd() -
                        tape.cost.find("backup")->total().usd());
    table.addSeparator();
  }
  std::cout << table.render();

  std::cout
      << "\nTwo effects are visible. (1) Restore speed: the nearline array "
         "always restores\n~40 min faster (no load/seek, 400 vs 240 MB/s). "
         "(2) Media economics flip with\nretained volume: the tape library's "
         "large enclosure fixed cost needs volume to\namortize, so at "
         "*weekly* backups the nearline array is actually the cheaper\n"
         "backup target; by *daily* backups (29 retained fulls) tape's "
         "10x-cheaper media\ndominate and the disk premium reaches ~$"
      << fixed(outlayGap.back() / 1000, 0) << "K/yr.\n";
  (void)bestTapeTotal;
  (void)bestD2dTotal;

  const bool gapGrows = outlayGap.size() == 3 && outlayGap[0] < outlayGap[1] &&
                        outlayGap[1] < outlayGap[2];
  const bool tapeWinsDaily = outlayGap.back() > 0;
  const bool diskWinsWeekly = outlayGap.front() < 0;
  std::cout << "shape checks (D2D always restores faster; disk premium grows "
               "with retained volume;\ndisk cheaper at weekly, tape cheaper "
               "at daily): "
            << (d2dAlwaysFaster && gapGrows && tapeWinsDaily && diskWinsWeekly
                    ? "yes"
                    : "NO")
            << "\n";
  return d2dAlwaysFaster && gapGrows && tapeWinsDaily && diskWinsWeekly ? 0
                                                                        : 1;
}
