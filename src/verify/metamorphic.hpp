// metamorphic.hpp — paper-derived metamorphic relations over the evaluator.
//
// A metamorphic relation states how the model's outputs must move when an
// input is transformed in a known way — "adding a protection technique never
// worsens worst-case data loss", "penalties scale linearly in the penalty
// rates" — without knowing the correct absolute value for either point.
// Each relation here cites the paper statement (Keeton & Merchant, DSN'04)
// it is derived from; see DESIGN.md "Verification" for the full list with
// the derivations and soundness caveats (some relations are theorems only
// under side conditions, which the checker encodes as applicability guards).
//
// Relations are pure predicates over a generated CaseSpec plus an evaluation
// hook; tests swap the hook for a deliberately broken evaluator to prove the
// checker catches (and the shrinker minimizes) real model bugs.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "verify/gen.hpp"

namespace stordep::verify {

/// Evaluation hook. Defaults to the analytic stordep::evaluate; tests
/// substitute fault-injected variants.
using EvalFn = std::function<EvaluationResult(const StorageDesign&,
                                              const FailureScenario&)>;

struct MetamorphicContext {
  /// Null means the real analytic evaluator.
  EvalFn eval;
};

/// Outcome of checking one relation against one case.
struct RelationResult {
  std::string relation;
  /// False when the case does not satisfy the relation's side conditions
  /// (e.g., cycle monotonicity needs a full-only backup level to perturb).
  bool applicable = true;
  bool holds = true;
  /// Human-readable violation description (empty when holds).
  std::string detail;
};

/// Static description of one relation, for docs/reports.
struct RelationInfo {
  std::string name;
  std::string summary;
  std::string citation;  ///< paper section the relation is derived from
};

/// All relations the checker knows, in check order.
[[nodiscard]] std::vector<RelationInfo> listRelations();

/// Checks every relation against `spec`. Inapplicable relations are
/// reported with applicable=false, holds=true.
[[nodiscard]] std::vector<RelationResult> checkRelations(
    const CaseSpec& spec, const MetamorphicContext& ctx = {});

/// Checks a single relation by name (the shrinking predicate re-runs just
/// the relation that failed). Throws std::invalid_argument on unknown names.
[[nodiscard]] RelationResult checkRelation(const std::string& name,
                                           const CaseSpec& spec,
                                           const MetamorphicContext& ctx = {});

}  // namespace stordep::verify
