// gen.hpp — seeded, shrinking generation of random-but-valid model inputs.
//
// The property-based verification layer (metamorphic.hpp, differential.hpp)
// needs arbitrary points of the framework's input space, not just the
// case-study fixtures: workloads spanning the paper's Table 1-2 parameter
// ranges, business requirements with and without hard objectives, composed
// protection hierarchies over the case-study device catalog, and failure
// scenarios at every scope. A generated test case is a flat CaseSpec of
// scalar parameters; every field has a *default* (the case-study-shaped
// simplest value) so a failing case can be greedily shrunk toward the
// minimal counterexample — the handful of parameters that actually matter.
//
// Seed protocol: a fuzzing run is identified by one 64-bit seed; case i of
// run s is generated from Rng(mixSeed(s, i)) (splitmix64 over s and i), so
// any failure replays from (seed, index) alone, on any platform — the RNG
// is the repo's own xoshiro256**, not the standard library's.
#pragma once

#include <cstdint>
#include <string>
#include <functional>
#include <vector>

#include "config/json.hpp"
#include "core/business.hpp"
#include "core/failure.hpp"
#include "core/hierarchy.hpp"
#include "core/workload.hpp"
#include "optimizer/design_space.hpp"
#include "sim/rng.hpp"

namespace stordep::verify {

/// Deterministic per-case seed derivation (splitmix64 finalizer over the
/// run seed and the case index).
[[nodiscard]] std::uint64_t mixSeed(std::uint64_t seed, std::uint64_t index);

/// One generated verification case: a workload, business requirements, a
/// composed protection design (as an optimizer::CandidateSpec over the
/// case-study catalog) and one failure scenario. Default-constructed fields
/// are the shrinking targets — together they describe the case-study-shaped
/// "simplest" case (split mirror only, array failure, no objectives).
struct CaseSpec {
  // -- workload (paper Table 1/2 ranges) -----------------------------------
  double dataCapGB = 1360.0;    ///< [10, 10000], log-uniform
  double accessKBps = 1028.0;   ///< [50, 100000], log-uniform
  double updateKBps = 799.0;    ///< <= accessKBps
  double burstM = 10.0;         ///< [1, 20]
  int curvePoints = 0;          ///< 0..5 measured batch-curve points (0=none)
  double curveDecay = 1.0;      ///< unique-rate fraction left at 1 wk (0,1]

  // -- business requirements (paper Sec 3.1.2) -----------------------------
  double outagePenaltyPerHour = 50'000.0;  ///< [0, 1e6] $/hr
  double lossPenaltyPerHour = 50'000.0;    ///< [0, 1e6] $/hr
  double rtoHours = 0.0;  ///< <= 0 means "no RTO objective"
  double rpoHours = 0.0;  ///< <= 0 means "no RPO objective"

  // -- protection hierarchy (composed policies, paper Sec 3.2) -------------
  optimizer::CandidateSpec candidate{
      .pit = optimizer::PitChoice::kSplitMirror};  // simplest valid design

  // -- failure scenario (paper Sec 3.1.3) ----------------------------------
  FailureScope scope = FailureScope::kArray;
  double targetAgeHours = 0.0;   ///< rollback age; used by kDataObject only
  double recoverySizeMB = 1.0;   ///< restore size for kDataObject

  /// Auxiliary stream for per-case randomized oracles (JSON mutations).
  /// Not a model parameter: shrinking holds it fixed and it never counts
  /// toward paramsFromDefault().
  std::uint64_t auxSeed = 0;

  friend bool operator==(const CaseSpec&, const CaseSpec&) = default;
};

/// Draws a case uniformly from the generator's parameter ranges. Every
/// returned case satisfies caseIsValid().
[[nodiscard]] CaseSpec generateCase(sim::Rng& rng);

/// Case `index` of run `seed` under the seed protocol.
[[nodiscard]] CaseSpec caseForSeed(std::uint64_t seed, std::uint64_t index);

/// Structural validity: the candidate builds, the workload constructor's
/// invariants hold, scenario parameters are in range. Shrinking uses this to
/// discard meaningless intermediate specs.
[[nodiscard]] bool caseIsValid(const CaseSpec& spec);

// ---- Materialization -------------------------------------------------------

[[nodiscard]] WorkloadSpec makeWorkload(const CaseSpec& spec);
[[nodiscard]] BusinessRequirements makeBusiness(const CaseSpec& spec);
[[nodiscard]] FailureScenario makeScenario(const CaseSpec& spec);
/// candidate.build() over the case-study catalog with this case's workload
/// and business requirements.
[[nodiscard]] StorageDesign makeDesign(const CaseSpec& spec);

/// Reproducer rendering (stable JSON; field names match CaseSpec members).
[[nodiscard]] config::Json caseToJson(const CaseSpec& spec);
[[nodiscard]] std::string describeCase(const CaseSpec& spec);

// ---- Shrinking -------------------------------------------------------------

/// Number of CaseSpec parameters that differ from their defaults — the
/// "size" of a counterexample (auxSeed excluded).
[[nodiscard]] int paramsFromDefault(const CaseSpec& spec);

/// Predicate deciding whether a candidate spec still reproduces the failure
/// being minimized. Must be deterministic.
using CasePredicate = std::function<bool(const CaseSpec&)>;

struct ShrinkResult {
  CaseSpec spec;            ///< the minimized case (== input if nothing shrank)
  int stepsTried = 0;       ///< predicate evaluations spent
  int stepsAccepted = 0;    ///< simplifications that kept the failure alive
};

/// Greedy shrinking: repeatedly tries to move each parameter to its default
/// (and numeric parameters halfway toward it), keeping any change under
/// which `stillFails` returns true, until a fixpoint. The result is
/// 1-minimal in the sense that no single tried simplification preserves the
/// failure.
[[nodiscard]] ShrinkResult shrinkCase(const CaseSpec& failing,
                                      const CasePredicate& stillFails);

// ---- Extreme quantities ----------------------------------------------------
// Adversarial magnitudes for the formatting/reporting layers: non-finite,
// negative, sub-unit, and far-beyond-petabyte values that real evaluations
// (unrecoverable scenarios, inf data loss) do emit.

[[nodiscard]] Bytes extremeBytes(sim::Rng& rng);
[[nodiscard]] Duration extremeDuration(sim::Rng& rng);
[[nodiscard]] Money extremeMoney(sim::Rng& rng);

}  // namespace stordep::verify
