#include "verify/harness.hpp"

#include <utility>

namespace stordep::verify {

namespace {

/// Uniform view over relation and oracle checks so shrinking can re-run
/// exactly the check that failed.
struct CheckOutcome {
  bool applicable = true;
  bool holds = true;
  std::string detail;
};

CheckOutcome runNamedCheck(const std::string& name, const CaseSpec& spec,
                           const FuzzOptions& options) {
  if (name == "sim-bound") {
    const OracleResult r = simBoundOracle(spec, options.oracle);
    return {r.applicable, r.holds, r.detail};
  }
  if (name == "stochastic-bound") {
    const OracleResult r = stochasticBoundOracle(spec, options.oracle);
    return {r.applicable, r.holds, r.detail};
  }
  if (name == "stochastic-plan") {
    const OracleResult r = stochasticPlanOracle(spec, options.oracle);
    return {r.applicable, r.holds, r.detail};
  }
  if (name == "search-parity") {
    const OracleResult r = searchParityOracle(spec, options.oracle);
    return {r.applicable, r.holds, r.detail};
  }
  if (name == "plan-vs-legacy") {
    const OracleResult r = planVsLegacyOracle(spec);
    return {r.applicable, r.holds, r.detail};
  }
  if (name == "round-trip") {
    const OracleResult r = roundTripOracle(spec);
    return {r.applicable, r.holds, r.detail};
  }
  if (name == "mutation") {
    const OracleResult r = mutationOracle(spec, options.oracle);
    return {r.applicable, r.holds, r.detail};
  }
  const RelationResult r = checkRelation(name, spec, options.ctx);
  return {r.applicable, r.holds, r.detail};
}

void recordFailure(FuzzReport& report, const FuzzOptions& options,
                   std::uint64_t index, const std::string& check,
                   const std::string& detail, const CaseSpec& spec) {
  FuzzFailure failure;
  failure.seed = options.seed;
  failure.index = index;
  failure.check = check;
  failure.detail = detail;
  failure.original = spec;
  failure.shrunk = spec;
  if (options.minimize) {
    const ShrinkResult shrunk =
        shrinkCase(spec, [&](const CaseSpec& candidate) {
          const CheckOutcome outcome =
              runNamedCheck(check, candidate, options);
          return outcome.applicable && !outcome.holds;
        });
    failure.shrunk = shrunk.spec;
    failure.shrinkStepsTried = shrunk.stepsTried;
    // Report the *minimized* case's violation message.
    const CheckOutcome outcome =
        runNamedCheck(check, failure.shrunk, options);
    if (!outcome.holds && !outcome.detail.empty()) {
      failure.detail = outcome.detail;
    }
  }
  failure.shrunkParams = paramsFromDefault(failure.shrunk);
  report.failures.push_back(std::move(failure));
}

/// Returns false when the failure budget is exhausted.
bool checkCase(FuzzReport& report, const FuzzOptions& options,
               std::uint64_t index, const CaseSpec& spec, bool runSim,
               bool runStochastic, bool runStochasticPlan, bool runSearch,
               bool runPlan, bool runIo) {
  for (const RelationResult& r : checkRelations(spec, options.ctx)) {
    if (!r.applicable) {
      ++report.relationSkips;
      continue;
    }
    ++report.relationChecks;
    if (!r.holds) {
      recordFailure(report, options, index, r.relation, r.detail, spec);
      if (options.maxFailures > 0 &&
          static_cast<int>(report.failures.size()) >= options.maxFailures) {
        return false;
      }
    }
  }

  std::vector<OracleResult> oracles;
  if (runIo) {
    oracles.push_back(roundTripOracle(spec));
    oracles.push_back(mutationOracle(spec, options.oracle));
  }
  if (runSim) oracles.push_back(simBoundOracle(spec, options.oracle));
  if (runStochastic) {
    oracles.push_back(stochasticBoundOracle(spec, options.oracle));
  }
  if (runStochasticPlan) {
    oracles.push_back(stochasticPlanOracle(spec, options.oracle));
  }
  if (runSearch) oracles.push_back(searchParityOracle(spec, options.oracle));
  if (runPlan) oracles.push_back(planVsLegacyOracle(spec));
  for (const OracleResult& r : oracles) {
    if (!r.applicable) {
      ++report.oracleSkips;
      continue;
    }
    ++report.oracleChecks;
    if (!r.holds) {
      recordFailure(report, options, index, r.oracle, r.detail, spec);
      if (options.maxFailures > 0 &&
          static_cast<int>(report.failures.size()) >= options.maxFailures) {
        return false;
      }
    }
  }
  return true;
}

bool everyNth(int cadence, int index) {
  return cadence > 0 && index % cadence == 0;
}

}  // namespace

FuzzReport runFuzz(const FuzzOptions& options) {
  FuzzReport report;
  report.seed = options.seed;
  for (int i = 0; i < options.cases; ++i) {
    const CaseSpec spec =
        caseForSeed(options.seed, static_cast<std::uint64_t>(i));
    ++report.cases;
    if (!checkCase(report, options, static_cast<std::uint64_t>(i), spec,
                   everyNth(options.simEvery, i),
                   everyNth(options.stochasticEvery, i),
                   everyNth(options.stochasticPlanEvery, i),
                   everyNth(options.searchEvery, i),
                   everyNth(options.planEvery, i),
                   everyNth(options.ioEvery, i))) {
      report.stoppedEarly = true;
      break;
    }
  }
  return report;
}

FuzzReport replayCase(std::uint64_t seed, std::uint64_t index,
                      const FuzzOptions& options) {
  FuzzOptions replay = options;
  replay.seed = seed;
  FuzzReport report;
  report.seed = seed;
  report.cases = 1;
  const CaseSpec spec = caseForSeed(seed, index);
  (void)checkCase(report, replay, index, spec, /*runSim=*/true,
                  /*runStochastic=*/true, /*runStochasticPlan=*/true,
                  /*runSearch=*/true, /*runPlan=*/true, /*runIo=*/true);
  return report;
}

config::Json reportToJson(const FuzzReport& report) {
  using config::Json;
  using config::JsonArray;
  using config::JsonObject;
  JsonObject o;
  o.emplace_back("seed", Json(static_cast<double>(report.seed)));
  o.emplace_back("cases", Json(report.cases));
  o.emplace_back("relationChecks", Json(report.relationChecks));
  o.emplace_back("relationSkips", Json(report.relationSkips));
  o.emplace_back("oracleChecks", Json(report.oracleChecks));
  o.emplace_back("oracleSkips", Json(report.oracleSkips));
  o.emplace_back("stoppedEarly", Json(report.stoppedEarly));
  o.emplace_back("allPassed", Json(report.allPassed()));
  JsonArray failures;
  for (const FuzzFailure& f : report.failures) {
    JsonObject fo;
    fo.emplace_back("seed", Json(static_cast<double>(f.seed)));
    fo.emplace_back("index", Json(static_cast<double>(f.index)));
    fo.emplace_back("check", Json(f.check));
    fo.emplace_back("detail", Json(f.detail));
    fo.emplace_back("original", caseToJson(f.original));
    fo.emplace_back("shrunk", caseToJson(f.shrunk));
    fo.emplace_back("shrunkParams", Json(f.shrunkParams));
    fo.emplace_back("shrinkStepsTried", Json(f.shrinkStepsTried));
    failures.push_back(Json(std::move(fo)));
  }
  o.emplace_back("failures", Json(std::move(failures)));
  return Json(std::move(o));
}

}  // namespace stordep::verify
