// harness.hpp — the fuzzing loop tying generator, relations and oracles
// together.
//
// One run is identified by a 64-bit seed: case i is generated from
// mixSeed(seed, i), every metamorphic relation is checked against it, and
// the differential oracles run on a configurable cadence (the simulator and
// the search comparison are orders of magnitude more expensive than an
// analytic evaluation). Failures carry the (seed, index) pair for exact
// replay plus — when minimization is on — the greedily shrunk CaseSpec and
// its distance from the all-defaults case. The verify_fuzz CLI (examples/)
// is a thin wrapper over runFuzz().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "config/json.hpp"
#include "verify/differential.hpp"
#include "verify/gen.hpp"
#include "verify/metamorphic.hpp"

namespace stordep::verify {

struct FuzzOptions {
  std::uint64_t seed = 42;
  int cases = 1000;
  /// Shrink failing cases to minimal counterexamples.
  bool minimize = true;
  /// Stop after this many failures (0 = collect all).
  int maxFailures = 5;
  /// Run the simulation oracle on every Nth case (0 = never).
  int simEvery = 20;
  /// Run the stochastic-bound oracle on every Nth case (0 = never).
  int stochasticEvery = 25;
  /// Run the stochastic-plan oracle (compiled TrialPlan vs legacy trial
  /// loop, exact per-trial equality) on every Nth case (0 = never).
  int stochasticPlanEvery = 25;
  /// Run the search-parity oracle on every Nth case (0 = never).
  int searchEvery = 200;
  /// Run the plan-vs-legacy oracle on every Nth case (0 = never). Defaults
  /// to every case: one plan compile + two evaluations is barely more than
  /// the analytic evaluations the relations already do, and the compiled
  /// fast path must hold on *every* generated design, not a sample.
  int planEvery = 1;
  /// Run the round-trip and mutation oracles on every Nth case (0 = never).
  int ioEvery = 1;
  OracleOptions oracle;
  /// Evaluation hook for the metamorphic relations (tests inject bugs here;
  /// the differential oracles always use the real implementations).
  MetamorphicContext ctx;
};

struct FuzzFailure {
  std::uint64_t seed = 0;
  std::uint64_t index = 0;   ///< replay with caseForSeed(seed, index)
  std::string check;         ///< relation or oracle name
  std::string detail;
  CaseSpec original;
  CaseSpec shrunk;           ///< == original when minimization found nothing
  int shrunkParams = 0;      ///< paramsFromDefault(shrunk)
  int shrinkStepsTried = 0;
};

struct FuzzReport {
  std::uint64_t seed = 0;
  int cases = 0;
  int relationChecks = 0;
  int relationSkips = 0;  ///< relation inapplicable to the drawn case
  int oracleChecks = 0;
  int oracleSkips = 0;
  std::vector<FuzzFailure> failures;
  /// True when the case budget was cut short by maxFailures.
  bool stoppedEarly = false;

  [[nodiscard]] bool allPassed() const noexcept { return failures.empty(); }
};

/// Runs the full fuzzing loop.
[[nodiscard]] FuzzReport runFuzz(const FuzzOptions& options = {});

/// Re-runs every check against one specific case (seed replay). All oracles
/// run regardless of cadence settings.
[[nodiscard]] FuzzReport replayCase(std::uint64_t seed, std::uint64_t index,
                                    const FuzzOptions& options = {});

/// Machine-readable report (the CLI's --out format; CI uploads this).
[[nodiscard]] config::Json reportToJson(const FuzzReport& report);

}  // namespace stordep::verify
