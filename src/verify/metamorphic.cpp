#include "verify/metamorphic.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/propagation.hpp"

namespace stordep::verify {

namespace opt = stordep::optimizer;

namespace {

// ---- Comparison helpers ----------------------------------------------------
// Worst-case metrics are routinely infinite (unrecoverable scenario) and
// penalties can be NaN by design (zero rate x infinite time). approxEqual
// alone mis-handles both (inf - inf and NaN comparisons), so every relation
// compares through these.

bool bothNaN(double a, double b) { return std::isnan(a) && std::isnan(b); }

template <typename Q>
bool sameQ(Q a, Q b, double tol = 1e-9) {
  if (bothNaN(a.raw(), b.raw())) return true;
  if (std::isinf(a.raw()) || std::isinf(b.raw())) return a.raw() == b.raw();
  return approxEqual(a, b, tol);
}

/// a <= b, within relative tolerance, NaN-hostile, inf-aware.
template <typename Q>
bool leqQ(Q a, Q b, double tol = 1e-9) {
  if (std::isnan(a.raw()) || std::isnan(b.raw())) return false;
  if (a.raw() <= b.raw()) return true;
  return approxEqual(a, b, tol);
}

std::string num(double v) {
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

RelationResult pass(const std::string& name) {
  return RelationResult{name, true, true, ""};
}
RelationResult notApplicable(const std::string& name) {
  return RelationResult{name, false, true, ""};
}
RelationResult fail(const std::string& name, std::string detail) {
  return RelationResult{name, true, false, std::move(detail)};
}

EvaluationResult runEval(const EvalFn& fn, const CaseSpec& spec) {
  return fn(makeDesign(spec), makeScenario(spec));
}

// ---- The relations ---------------------------------------------------------

RelationResult relDeterminism(const CaseSpec& spec, const EvalFn& fn) {
  const char* kName = "determinism";
  const EvaluationResult a = runEval(fn, spec);
  const EvaluationResult b = runEval(fn, spec);
  const auto bit = [](double x, double y) {
    return x == y || bothNaN(x, y);
  };
  if (!bit(a.recovery.recoveryTime.raw(), b.recovery.recoveryTime.raw()) ||
      !bit(a.recovery.dataLoss.raw(), b.recovery.dataLoss.raw()) ||
      !bit(a.cost.totalCost.raw(), b.cost.totalCost.raw()) ||
      a.meetsObjectives != b.meetsObjectives) {
    return fail(kName, "two evaluations of the same case disagree: RT " +
                           num(a.recovery.recoveryTime.raw()) + " vs " +
                           num(b.recovery.recoveryTime.raw()) + ", cost " +
                           num(a.cost.totalCost.raw()) + " vs " +
                           num(b.cost.totalCost.raw()));
  }
  return pass(kName);
}

RelationResult relCostAdditivity(const CaseSpec& spec, const EvalFn& fn) {
  const char* kName = "cost-additivity";
  const EvaluationResult r = runEval(fn, spec);
  Money outlaySum;
  for (const TechniqueOutlay& o : r.cost.outlays) outlaySum += o.total();
  if (!sameQ(outlaySum, r.cost.totalOutlays)) {
    return fail(kName, "sum of per-technique outlays " + num(outlaySum.raw()) +
                           " != totalOutlays " +
                           num(r.cost.totalOutlays.raw()));
  }
  if (!sameQ(r.cost.outagePenalty + r.cost.lossPenalty,
             r.cost.totalPenalties)) {
    return fail(kName, "outage + loss penalties != totalPenalties " +
                           num(r.cost.totalPenalties.raw()));
  }
  if (!sameQ(r.cost.totalOutlays + r.cost.totalPenalties, r.cost.totalCost)) {
    return fail(kName, "outlays " + num(r.cost.totalOutlays.raw()) +
                           " + penalties " + num(r.cost.totalPenalties.raw()) +
                           " != totalCost " + num(r.cost.totalCost.raw()));
  }
  return pass(kName);
}

RelationResult relPenaltyConsistency(const CaseSpec& spec, const EvalFn& fn) {
  const char* kName = "penalty-consistency";
  const EvaluationResult r = runEval(fn, spec);
  const BusinessRequirements business = makeBusiness(spec);
  const Money expectedOutage = business.outagePenalty(r.recovery.recoveryTime);
  const Money expectedLoss = business.lossPenalty(r.recovery.dataLoss);
  if (!sameQ(r.cost.outagePenalty, expectedOutage)) {
    return fail(kName, "outagePenalty " + num(r.cost.outagePenalty.raw()) +
                           " != rate x RT = " + num(expectedOutage.raw()));
  }
  if (!sameQ(r.cost.lossPenalty, expectedLoss)) {
    return fail(kName, "lossPenalty " + num(r.cost.lossPenalty.raw()) +
                           " != rate x DL = " + num(expectedLoss.raw()));
  }
  return pass(kName);
}

RelationResult relPenaltyLinearity(const CaseSpec& spec, const EvalFn& fn) {
  const char* kName = "penalty-linearity";
  constexpr double kScale = 3.0;
  CaseSpec scaled = spec;
  scaled.outagePenaltyPerHour *= kScale;
  scaled.lossPenaltyPerHour *= kScale;
  if (!caseIsValid(scaled)) return notApplicable(kName);
  const EvaluationResult base = runEval(fn, spec);
  const EvaluationResult more = runEval(fn, scaled);
  if (!sameQ(more.recovery.recoveryTime, base.recovery.recoveryTime) ||
      !sameQ(more.recovery.dataLoss, base.recovery.dataLoss)) {
    return fail(kName, "penalty rates changed RT/DL (they must not)");
  }
  if (!sameQ(more.cost.totalOutlays, base.cost.totalOutlays)) {
    return fail(kName, "penalty rates changed outlays: " +
                           num(base.cost.totalOutlays.raw()) + " -> " +
                           num(more.cost.totalOutlays.raw()));
  }
  if (!sameQ(more.cost.outagePenalty, base.cost.outagePenalty * kScale) ||
      !sameQ(more.cost.lossPenalty, base.cost.lossPenalty * kScale)) {
    return fail(kName,
                "3x penalty rates did not scale penalties 3x: outage " +
                    num(base.cost.outagePenalty.raw()) + " -> " +
                    num(more.cost.outagePenalty.raw()) + ", loss " +
                    num(base.cost.lossPenalty.raw()) + " -> " +
                    num(more.cost.lossPenalty.raw()));
  }
  return pass(kName);
}

RelationResult relZeroPenaltyRates(const CaseSpec& spec, const EvalFn& fn) {
  const char* kName = "zero-penalty-rates";
  CaseSpec zeroed = spec;
  zeroed.outagePenaltyPerHour = 0.0;
  zeroed.lossPenaltyPerHour = 0.0;
  const EvaluationResult r = runEval(fn, zeroed);
  if (!r.recovery.recoveryTime.isFinite() ||
      !r.recovery.dataLoss.isFinite()) {
    return notApplicable(kName);  // 0 x inf is NaN by design
  }
  if (!sameQ(r.cost.outagePenalty, Money{0}) ||
      !sameQ(r.cost.lossPenalty, Money{0})) {
    return fail(kName, "zero penalty rates but penalties outage=" +
                           num(r.cost.outagePenalty.raw()) + " loss=" +
                           num(r.cost.lossPenalty.raw()));
  }
  if (!sameQ(r.cost.totalCost, r.cost.totalOutlays)) {
    return fail(kName, "zero penalty rates but totalCost != totalOutlays");
  }
  return pass(kName);
}

RelationResult relTechniqueAddition(const CaseSpec& spec, const EvalFn& fn) {
  const char* kName = "technique-addition-dominance";
  // Appending a level at the tail of the hierarchy leaves every existing
  // level's windows and transit untouched, so worst-case data loss — the
  // best over levels — cannot get worse. (Inserting *before* other levels
  // changes their upstream lag; that transformation is deliberately not
  // used here.)
  CaseSpec extended = spec;
  if (spec.candidate.backup != opt::BackupChoice::kNone &&
      !spec.candidate.vault) {
    extended.candidate.vault = true;
    extended.candidate.vaultAccW = spec.candidate.backupAccW;
  } else if (spec.candidate.pit != opt::PitChoice::kNone &&
             spec.candidate.backup == opt::BackupChoice::kNone) {
    extended.candidate.backup = opt::BackupChoice::kFullOnly;
    extended.candidate.backupAccW = weeks(1);
  } else {
    return notApplicable(kName);
  }
  if (!caseIsValid(extended)) return notApplicable(kName);
  const EvaluationResult base = runEval(fn, spec);
  const EvaluationResult more = runEval(fn, extended);
  // Deliberately no claim about recovery time or the recoverable flag: the
  // added technique's normal-mode demands share devices with the restore
  // path (a vault's on-site copy stream can saturate the tape library), so
  // RT can worsen or even become infinite. The dominance theorem is about
  // information retention — worst-case data loss.
  if (!leqQ(more.recovery.dataLoss, base.recovery.dataLoss)) {
    return fail(kName, "adding a technique worsened worst-case data loss: " +
                           num(base.recovery.dataLoss.raw()) + " -> " +
                           num(more.recovery.dataLoss.raw()));
  }
  return pass(kName);
}

RelationResult relBandwidthMonotoneRt(const CaseSpec& spec, const EvalFn& fn) {
  const char* kName = "bandwidth-monotone-rt";
  if (spec.candidate.mirror == opt::MirrorChoice::kNone) {
    return notApplicable(kName);
  }
  CaseSpec wider = spec;
  wider.candidate.mirrorLinkCount = spec.candidate.mirrorLinkCount * 2;
  if (!caseIsValid(wider)) return notApplicable(kName);
  const EvaluationResult base = runEval(fn, spec);
  const EvaluationResult more = runEval(fn, wider);
  if (!leqQ(more.recovery.recoveryTime, base.recovery.recoveryTime)) {
    return fail(kName, "doubling mirror links increased recovery time: " +
                           num(base.recovery.recoveryTime.raw()) + " -> " +
                           num(more.recovery.recoveryTime.raw()));
  }
  if (!leqQ(more.recovery.dataLoss, base.recovery.dataLoss)) {
    return fail(kName, "doubling mirror links increased data loss: " +
                           num(base.recovery.dataLoss.raw()) + " -> " +
                           num(more.recovery.dataLoss.raw()));
  }
  return pass(kName);
}

RelationResult relCycleMonotoneLoss(const CaseSpec& spec, const EvalFn& fn) {
  const char* kName = "cycle-monotone-loss";
  // Restricted to full-only backups: the F+I loss formula has weekend-gap
  // terms that make halving the cycle non-monotone in corner cases.
  if (spec.candidate.backup != opt::BackupChoice::kFullOnly) {
    return notApplicable(kName);
  }
  // Restricted to recent-loss scenarios: against a rollback target age the
  // loss is the distance from the target to the covering RP on the
  // retention grid, and refining the grid can land the covering RP
  // *farther* past the target (grid alignment, not a model bug).
  if (spec.scope == FailureScope::kDataObject && spec.targetAgeHours != 0.0) {
    return notApplicable(kName);
  }
  CaseSpec faster = spec;
  faster.candidate.backupAccW = spec.candidate.backupAccW / 2;
  if (!caseIsValid(faster)) return notApplicable(kName);
  const EvaluationResult base = runEval(fn, spec);
  const EvaluationResult more = runEval(fn, faster);
  if (!leqQ(more.recovery.dataLoss, base.recovery.dataLoss)) {
    return fail(kName, "halving the backup cycle worsened data loss: " +
                           num(base.recovery.dataLoss.raw()) + " -> " +
                           num(more.recovery.dataLoss.raw()));
  }
  return pass(kName);
}

RelationResult relScopeWideningLoss(const CaseSpec& spec, const EvalFn& fn) {
  const char* kName = "scope-widening-loss";
  if (spec.scope != FailureScope::kArray) return notApplicable(kName);
  CaseSpec wide = spec;
  wide.scope = FailureScope::kSite;
  const EvaluationResult narrow = runEval(fn, spec);
  const EvaluationResult disaster = runEval(fn, wide);
  if (disaster.recovery.recoverable && !narrow.recovery.recoverable) {
    return fail(kName,
                "site disaster recoverable but array failure is not");
  }
  if (!leqQ(narrow.recovery.dataLoss, disaster.recovery.dataLoss)) {
    return fail(kName, "widening array -> site shrank worst-case loss: " +
                           num(narrow.recovery.dataLoss.raw()) + " -> " +
                           num(disaster.recovery.dataLoss.raw()));
  }
  return pass(kName);
}

RelationResult relOutlayScenarioIndependence(const CaseSpec& spec,
                                             const EvalFn& fn) {
  const char* kName = "outlay-scenario-independence";
  CaseSpec other = spec;
  other.scope = spec.scope == FailureScope::kSite ? FailureScope::kArray
                                                  : FailureScope::kSite;
  other.targetAgeHours = 0.0;
  other.recoverySizeMB = 1.0;
  if (!caseIsValid(other)) return notApplicable(kName);
  const EvaluationResult a = runEval(fn, spec);
  const EvaluationResult b = runEval(fn, other);
  if (a.cost.totalOutlays.raw() != b.cost.totalOutlays.raw() ||
      a.cost.outlays.size() != b.cost.outlays.size()) {
    return fail(kName, "outlays depend on the failure scenario: " +
                           num(a.cost.totalOutlays.raw()) + " vs " +
                           num(b.cost.totalOutlays.raw()));
  }
  for (std::size_t i = 0; i < a.cost.outlays.size(); ++i) {
    if (a.cost.outlays[i].total().raw() != b.cost.outlays[i].total().raw()) {
      return fail(kName, "per-technique outlay '" +
                             a.cost.outlays[i].technique +
                             "' depends on the failure scenario");
    }
  }
  return pass(kName);
}

RelationResult relRetentionMonotone(const CaseSpec& spec, const EvalFn& fn) {
  const char* kName = "retention-monotone";
  if (spec.candidate.pit == opt::PitChoice::kNone) return notApplicable(kName);
  CaseSpec longer = spec;
  longer.candidate.pitRetentionCount = spec.candidate.pitRetentionCount * 2;
  if (!caseIsValid(longer)) return notApplicable(kName);
  // Level 1 is the PiT level (level 0 is the primary copy).
  const StorageDesign baseDesign = makeDesign(spec);
  const StorageDesign longerDesign = makeDesign(longer);
  const RpRange baseRange = guaranteedRange(baseDesign, 1);
  const RpRange longerRange = guaranteedRange(longerDesign, 1);
  if (!leqQ(baseRange.oldestAge, longerRange.oldestAge)) {
    return fail(kName, "doubling PiT retention shrank the retained range: " +
                           num(baseRange.oldestAge.raw()) + " -> " +
                           num(longerRange.oldestAge.raw()));
  }
  const EvaluationResult base = runEval(fn, spec);
  const EvaluationResult more = runEval(fn, longer);
  if (!leqQ(base.cost.totalOutlays, more.cost.totalOutlays)) {
    return fail(kName, "doubling PiT retention reduced outlays: " +
                           num(base.cost.totalOutlays.raw()) + " -> " +
                           num(more.cost.totalOutlays.raw()));
  }
  return pass(kName);
}

RelationResult relWorkloadScaling(const CaseSpec& spec, const EvalFn& fn) {
  const char* kName = "workload-scaling";
  // Full restores only: a partial-object restore replays incremental data
  // in proportion to baseSize/dataCap (see Backup::restorePayload), so
  // growing the data set legitimately *shrinks* a fixed-size object's
  // restore payload and time.
  if (spec.scope == FailureScope::kDataObject) return notApplicable(kName);
  CaseSpec bigger = spec;
  bigger.dataCapGB = spec.dataCapGB * 2;
  if (!caseIsValid(bigger)) return notApplicable(kName);
  const EvaluationResult base = runEval(fn, spec);
  const EvaluationResult more = runEval(fn, bigger);
  if (!leqQ(base.recovery.payload, more.recovery.payload)) {
    return fail(kName, "doubling data capacity shrank the restore payload: " +
                           num(base.recovery.payload.raw()) + " -> " +
                           num(more.recovery.payload.raw()));
  }
  // RT is compared only when both restores achieve the same per-step
  // transfer rates: tape bandwidth steps up a whole drive when the payload
  // crosses a cartridge boundary (slotBW * ceil(payload/slotCap)), so a
  // larger restore can legitimately finish sooner.
  bool ratesMatch =
      base.recovery.sourceLevel == more.recovery.sourceLevel &&
      base.recovery.timeline.size() == more.recovery.timeline.size();
  for (std::size_t i = 0; ratesMatch && i < base.recovery.timeline.size();
       ++i) {
    ratesMatch = base.recovery.timeline[i].rate.raw() ==
                 more.recovery.timeline[i].rate.raw();
  }
  if (ratesMatch &&
      !leqQ(base.recovery.recoveryTime, more.recovery.recoveryTime)) {
    return fail(kName, "doubling data capacity sped up recovery: " +
                           num(base.recovery.recoveryTime.raw()) + " -> " +
                           num(more.recovery.recoveryTime.raw()));
  }
  if (!leqQ(base.cost.totalOutlays, more.cost.totalOutlays)) {
    return fail(kName, "doubling data capacity reduced outlays: " +
                           num(base.cost.totalOutlays.raw()) + " -> " +
                           num(more.cost.totalOutlays.raw()));
  }
  return pass(kName);
}

RelationResult relUniqueBytesMonotone(const CaseSpec& spec, const EvalFn&) {
  const char* kName = "unique-bytes-monotone";
  const WorkloadSpec workload = makeWorkload(spec);
  // Windows to probe: a log grid over the batch curve's full range, plus
  // each knot and its immediate neighborhood — log-space interpolation of
  // the *rate* makes the rate x window product easiest to break right after
  // a knot where the rate falls steeply.
  std::vector<Duration> probes;
  for (double w = 30.0; w <= Duration::kWeek * 2; w *= 1.5) {
    probes.push_back(seconds(w));
  }
  for (const BatchUpdatePoint& p : workload.batchCurve()) {
    probes.push_back(p.window * 0.99);
    probes.push_back(p.window);
    probes.push_back(p.window * 1.01);
    probes.push_back(p.window * 1.5);
  }
  std::sort(probes.begin(), probes.end());
  Bytes prev = Bytes{0};
  Duration prevWin = Duration::zero();
  for (const Duration& win : probes) {
    const Bytes unique = workload.uniqueBytes(win);
    if (!leqQ(unique, workload.dataCap())) {
      return fail(kName, "uniqueBytes(" + num(win.raw()) +
                             " s) exceeds dataCap");
    }
    if (!leqQ(prev, unique, 1e-9)) {
      return fail(kName, "uniqueBytes not monotone: window " +
                             num(prevWin.raw()) + " s -> " + num(prev.raw()) +
                             " B but window " + num(win.raw()) + " s -> " +
                             num(unique.raw()) + " B");
    }
    prev = unique;
    prevWin = win;
  }
  return pass(kName);
}

RelationResult relMeetsObjectivesConsistency(const CaseSpec& spec,
                                             const EvalFn& fn) {
  const char* kName = "meets-objectives-consistency";
  const EvaluationResult r = runEval(fn, spec);
  const BusinessRequirements business = makeBusiness(spec);
  const bool expected = business.meetsObjectives(r.recovery.recoveryTime,
                                                 r.recovery.dataLoss);
  if (r.meetsObjectives != expected) {
    return fail(kName,
                std::string("meetsObjectives flag disagrees with "
                            "business.meetsObjectives(RT, DL): got ") +
                    (r.meetsObjectives ? "true" : "false"));
  }
  return pass(kName);
}

struct RelationEntry {
  RelationInfo info;
  RelationResult (*check)(const CaseSpec&, const EvalFn&);
};

const std::vector<RelationEntry>& relationTable() {
  static const std::vector<RelationEntry> kTable = {
      {{"determinism",
        "evaluate() is a pure function: re-evaluating a case is bit-identical",
        "Sec 3.3 (analytic models)"},
       relDeterminism},
      {{"cost-additivity",
        "totalOutlays = sum of per-technique outlays; totalCost = outlays + "
        "penalties",
        "Sec 3.3.5, Fig 5"},
       relCostAdditivity},
      {{"penalty-consistency",
        "outage/loss penalties equal the penalty rate times worst-case "
        "RT/DL",
        "Sec 3.3.5"},
       relPenaltyConsistency},
      {{"penalty-linearity",
        "scaling both penalty rates by k scales both penalties by k and "
        "leaves RT, DL and outlays unchanged",
        "Sec 3.3.5"},
       relPenaltyLinearity},
      {{"zero-penalty-rates",
        "zero penalty rates mean zero penalties and totalCost = outlays",
        "Sec 3.3.5"},
       relZeroPenaltyRates},
      {{"technique-addition-dominance",
        "appending a protection technique never worsens worst-case data "
        "loss",
        "Sec 3.2, Sec 4.2"},
       relTechniqueAddition},
      {{"bandwidth-monotone-rt",
        "doubling mirror interconnect links never increases recovery time "
        "or data loss",
        "Sec 3.3.4"},
       relBandwidthMonotoneRt},
      {{"cycle-monotone-loss",
        "halving a full-only backup cycle never worsens worst-case recent "
        "data loss",
        "Sec 3.3.3, Fig 3"},
       relCycleMonotoneLoss},
      {{"scope-widening-loss",
        "widening the failure scope (array -> site) never shrinks "
        "worst-case data loss",
        "Sec 3.1.3, Sec 4.2"},
       relScopeWideningLoss},
      {{"outlay-scenario-independence",
        "outlays depend only on the design, never on the failure scenario",
        "Sec 3.3.5"},
       relOutlayScenarioIndependence},
      {{"retention-monotone",
        "doubling PiT retention never shrinks the guaranteed RP range nor "
        "reduces outlays",
        "Sec 3.2.1, Sec 3.3.2"},
       relRetentionMonotone},
      {{"workload-scaling",
        "doubling data capacity never shrinks the restore payload, reduces "
        "outlays, nor (at equal transfer rates) speeds up recovery",
        "Sec 3.3.4"},
       relWorkloadScaling},
      {{"unique-bytes-monotone",
        "uniqueBytes(w) is monotone non-decreasing in w and capped at "
        "dataCap, across batch-curve knots",
        "Sec 3.1.1, Table 1"},
       relUniqueBytesMonotone},
      {{"meets-objectives-consistency",
        "the meetsObjectives flag equals "
        "business.meetsObjectives(worst RT, worst DL)",
        "Sec 3.1.2"},
       relMeetsObjectivesConsistency},
  };
  return kTable;
}

EvalFn resolveEval(const MetamorphicContext& ctx) {
  if (ctx.eval) return ctx.eval;
  return [](const StorageDesign& design, const FailureScenario& scenario) {
    return evaluate(design, scenario);
  };
}

RelationResult guarded(const RelationEntry& entry, const CaseSpec& spec,
                       const EvalFn& fn) {
  try {
    return entry.check(spec, fn);
  } catch (const std::exception& e) {
    return fail(entry.info.name,
                std::string("relation check threw: ") + e.what());
  }
}

}  // namespace

std::vector<RelationInfo> listRelations() {
  std::vector<RelationInfo> out;
  for (const RelationEntry& entry : relationTable()) out.push_back(entry.info);
  return out;
}

std::vector<RelationResult> checkRelations(const CaseSpec& spec,
                                           const MetamorphicContext& ctx) {
  const EvalFn fn = resolveEval(ctx);
  std::vector<RelationResult> out;
  for (const RelationEntry& entry : relationTable()) {
    out.push_back(guarded(entry, spec, fn));
  }
  return out;
}

RelationResult checkRelation(const std::string& name, const CaseSpec& spec,
                             const MetamorphicContext& ctx) {
  const EvalFn fn = resolveEval(ctx);
  for (const RelationEntry& entry : relationTable()) {
    if (entry.info.name == name) return guarded(entry, spec, fn);
  }
  throw std::invalid_argument("unknown metamorphic relation: " + name);
}

}  // namespace stordep::verify
