// differential.hpp — cross-implementation oracles for generated cases.
//
// The repo computes the same dependability answers three independent ways:
// the analytic evaluator (src/core), the discrete-event RP-lifecycle
// simulator (src/sim), and the parallel batch engine (src/engine) behind
// optimizer::searchDesignSpace. Each oracle here runs one generated case
// through two of them and checks agreement:
//
//   sim-bound       analytic worst-case DL bound every simulated failure
//                   instant (paper's "validate the models via simulation"
//                   future work; requires a convention-conforming design,
//                   where the aligned-schedule bound is a theorem)
//   stochastic-bound the Monte-Carlo layer (stochastic::StochasticEvaluator)
//                   never samples beyond the analytic worst case: sampled
//                   P100 of RT/DL stays under the bound, and the reported
//                   quantiles are monotone (P50 <= P95 <= P99 <= max)
//   search-parity   searchDesignSpaceSerial vs the engine-backed parallel
//                   search, bit-identical rankings
//   plan-vs-legacy  engine::EvalPlan::compile + EvalPlan::evaluate vs the
//                   reference evaluate() pipeline, bit-identical metrics on
//                   every generated scenario (the compile-once fast path's
//                   correctness contract)
//   round-trip      saveDesign -> loadDesign -> saveDesign reaches a fixpoint
//                   and the reloaded design evaluates bit-identically
//   mutation        random structural mutations of the design JSON either
//                   load successfully or fail with DesignIoError — never any
//                   other exception, never a crash
#pragma once

#include <string>
#include <vector>

#include "verify/gen.hpp"

namespace stordep::verify {

/// Outcome of one differential oracle on one case (same shape as
/// RelationResult; kept separate so reports can distinguish the families).
struct OracleResult {
  std::string oracle;
  bool applicable = true;
  bool holds = true;
  std::string detail;
};

struct OracleOptions {
  /// Monte-Carlo samples per simulator validation.
  int simSamples = 64;
  /// Candidates per search-parity check (drawn deterministically from the
  /// case's auxSeed).
  int searchCandidates = 6;
  /// Random JSON mutations per mutation-robustness check.
  int mutations = 4;
  /// Threads for the parallel side of search parity.
  int searchThreads = 4;
  /// Monte-Carlo trials per stochastic-bound check.
  int stochasticTrials = 48;
};

/// Analytic evaluator vs discrete-event simulation: the analytic worst-case
/// data loss bounds every simulated failure instant. Applicable only to
/// convention-conforming designs (validate() empty) with a
/// simulation-affordable slowest cycle, and to array/site scenarios (the
/// simulator's failure model).
[[nodiscard]] OracleResult simBoundOracle(const CaseSpec& spec,
                                          const OracleOptions& options = {});

/// Analytic worst case vs the Monte-Carlo distribution layer: the sampled
/// maximum recovery time must stay under the analytic worst-case RT, the
/// sampled maximum data loss under the analytic worst-case DL plus capture
/// slack, and the reported RT/DL quantiles must be monotone
/// (P50 <= P95 <= P99 <= max). Same applicability guards as simBoundOracle.
[[nodiscard]] OracleResult stochasticBoundOracle(
    const CaseSpec& spec, const OracleOptions& options = {});

/// Compiled stochastic TrialPlan vs the legacy trial loop: the same design
/// evaluated through two StochasticEvaluators sharing one seed — one routed
/// through TrialPlan (usePlan), one forced onto the legacy per-trial
/// sampler — with per-trial traces attached. Every conditional trial
/// (recoverable, RT, DL, payload, penalty), every mission trial (event
/// count, unrecoverable count, penalty, loss bytes, downtime, per-event
/// RT/DL) and the deterministic envelope summaries must match bit-for-bit.
/// Same applicability guards as stochasticBoundOracle, plus the plan
/// compiler accepting the design (rejection means the evaluator already
/// runs the legacy loop on both sides).
[[nodiscard]] OracleResult stochasticPlanOracle(
    const CaseSpec& spec, const OracleOptions& options = {});

/// Serial reference search vs the engine-backed parallel search over a small
/// candidate set including this case's candidate: rankings, labels, costs
/// and rejection reasons must match bit-identically.
[[nodiscard]] OracleResult searchParityOracle(const CaseSpec& spec,
                                              const OracleOptions& options = {});

/// Compiled evaluation plan vs the reference evaluator: EvalPlan::compile on
/// the case's design, then every scenario (the generated one plus a
/// site-disaster variant) evaluated through both EvalPlan::evaluate and the
/// legacy evaluate() pipeline. Every metric — feasibility, recoverability,
/// source level, RT, DL, payload, outlays, penalties, total cost, the
/// RTO/RPO verdict, and the utilization error string — must match
/// bit-for-bit. Not applicable when the plan compiler rejects the design
/// (the engine then falls back to the legacy path by construction).
[[nodiscard]] OracleResult planVsLegacyOracle(const CaseSpec& spec);

/// saveDesign -> loadDesign -> saveDesign fixpoint, plus bit-identical
/// evaluation of the reloaded design.
[[nodiscard]] OracleResult roundTripOracle(const CaseSpec& spec);

/// Structured-JSON fuzzing of config/design_io: deterministic random
/// mutations (drop a key, retype a value, corrupt a quantity string, nest
/// garbage) of the serialized design must produce either a successful load
/// or a DesignIoError — nothing else escapes.
[[nodiscard]] OracleResult mutationOracle(const CaseSpec& spec,
                                          const OracleOptions& options = {});

}  // namespace stordep::verify
