#include "verify/gen.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "casestudy/casestudy.hpp"

namespace stordep::verify {

namespace opt = stordep::optimizer;
namespace cs = stordep::casestudy;

std::uint64_t mixSeed(std::uint64_t seed, std::uint64_t index) {
  // splitmix64 finalizer over the run seed advanced by the case index.
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {

double logUniform(sim::Rng& rng, double lo, double hi) {
  return std::exp(rng.uniform(std::log(lo), std::log(hi)));
}

/// Rounds to 3 significant digits so generated and shrunk values stay
/// readable and shrinking midpoints terminate.
double round3(double v) {
  if (v == 0.0 || !std::isfinite(v)) return v;
  const double mag = std::pow(10.0, std::floor(std::log10(std::fabs(v))) - 2);
  return std::round(v / mag) * mag;
}

const CaseSpec& defaults() {
  static const CaseSpec spec{};
  return spec;
}

}  // namespace

CaseSpec generateCase(sim::Rng& rng) {
  CaseSpec spec;
  spec.dataCapGB = round3(logUniform(rng, 10.0, 10'000.0));
  spec.accessKBps = round3(logUniform(rng, 50.0, 100'000.0));
  spec.updateKBps = round3(spec.accessKBps * rng.uniform(0.05, 1.0));
  spec.burstM = round3(rng.uniform(1.0, 20.0));
  spec.curvePoints = static_cast<int>(rng.uniformInt(6));  // 0..5
  spec.curveDecay =
      spec.curvePoints == 0 ? 1.0 : round3(rng.uniform(0.05, 1.0));

  spec.outagePenaltyPerHour =
      rng.uniform() < 0.1 ? 0.0 : round3(logUniform(rng, 1.0, 1e6));
  spec.lossPenaltyPerHour =
      rng.uniform() < 0.1 ? 0.0 : round3(logUniform(rng, 1.0, 1e6));
  spec.rtoHours =
      rng.uniform() < 0.3 ? round3(logUniform(rng, 0.1, 1000.0)) : 0.0;
  spec.rpoHours =
      rng.uniform() < 0.3 ? round3(logUniform(rng, 0.1, 1000.0)) : 0.0;

  // Composed protection hierarchy. Structural constraints (backup needs a
  // PiT source image, vault needs backup, F+I needs a >= 48 h cycle, vault
  // cadence >= backup cadence) are enforced by construction so every
  // generated candidate is valid().
  opt::CandidateSpec& cand = spec.candidate;
  switch (rng.uniformInt(3)) {
    case 0:
      cand.pit = opt::PitChoice::kNone;
      break;
    case 1:
      cand.pit = opt::PitChoice::kSnapshot;
      break;
    default:
      cand.pit = opt::PitChoice::kSplitMirror;
      break;
  }
  if (cand.pit != opt::PitChoice::kNone) {
    cand.pitAccW = hours(round3(logUniform(rng, 1.0, 48.0)));
    cand.pitRetentionCount = 1 + static_cast<int>(rng.uniformInt(12));
  }
  if (cand.pit != opt::PitChoice::kNone && rng.uniform() < 0.5) {
    cand.backup = rng.uniform() < 0.5
                      ? opt::BackupChoice::kFullOnly
                      : opt::BackupChoice::kFullPlusIncremental;
    const double minH =
        cand.backup == opt::BackupChoice::kFullPlusIncremental ? 48.0 : 24.0;
    cand.backupAccW = hours(round3(logUniform(rng, minH, 24.0 * 14)));
    if (rng.uniform() < 0.5) {
      cand.vault = true;
      cand.vaultAccW =
          cand.backupAccW * static_cast<double>(1 + rng.uniformInt(8));
    }
  }
  if (rng.uniform() < 0.25) {
    switch (rng.uniformInt(3)) {
      case 0:
        cand.mirror = opt::MirrorChoice::kSync;
        break;
      case 1:
        cand.mirror = opt::MirrorChoice::kAsync;
        break;
      default:
        cand.mirror = opt::MirrorChoice::kAsyncBatch;
        break;
    }
    cand.mirrorLinkCount = 1 + static_cast<int>(rng.uniformInt(10));
  }
  if (cand.pit == opt::PitChoice::kNone &&
      cand.mirror == opt::MirrorChoice::kNone) {
    cand.pit = opt::PitChoice::kSplitMirror;  // at least one secondary copy
  }

  switch (rng.uniformInt(5)) {
    case 0:
      spec.scope = FailureScope::kDataObject;
      spec.targetAgeHours = round3(rng.uniform(0.0, 72.0));
      spec.recoverySizeMB = round3(
          logUniform(rng, 0.1, std::min(10'240.0, spec.dataCapGB * 1024.0)));
      break;
    case 1:
      spec.scope = FailureScope::kArray;
      break;
    case 2:
      spec.scope = FailureScope::kBuilding;
      break;
    case 3:
      spec.scope = FailureScope::kSite;
      break;
    default:
      spec.scope = FailureScope::kRegion;
      break;
  }

  spec.auxSeed = rng.next();
  return spec;
}

CaseSpec caseForSeed(std::uint64_t seed, std::uint64_t index) {
  sim::Rng rng(mixSeed(seed, index));
  return generateCase(rng);
}

bool caseIsValid(const CaseSpec& spec) {
  if (!(spec.dataCapGB > 0) || !(spec.accessKBps >= 0)) return false;
  if (spec.updateKBps < 0 || spec.updateKBps > spec.accessKBps) return false;
  if (spec.burstM < 1.0) return false;
  if (spec.curvePoints < 0 || spec.curvePoints > 5) return false;
  if (!(spec.curveDecay > 0.0) || spec.curveDecay > 1.0) return false;
  if (spec.outagePenaltyPerHour < 0 || spec.lossPenaltyPerHour < 0) {
    return false;
  }
  if (spec.targetAgeHours < 0 || !(spec.recoverySizeMB > 0)) return false;
  if (spec.scope != FailureScope::kDataObject &&
      spec.targetAgeHours != 0.0) {
    return false;  // rollback targets are an object-failure concept
  }
  return spec.candidate.valid();
}

WorkloadSpec makeWorkload(const CaseSpec& spec) {
  const Bandwidth update = kbPerSec(spec.updateKBps);
  std::vector<BatchUpdatePoint> curve;
  const int n = spec.curvePoints;
  // Measured unique-update-rate points, log-spaced from 1 minute to 1 week,
  // decaying geometrically to curveDecay x avgUpdateR at the last point.
  for (int i = 0; i < n; ++i) {
    const double t = n == 1 ? 1.0 : static_cast<double>(i + 1) / n;
    const double w =
        n == 1 ? Duration::kHour * 12
               : std::exp(std::log(60.0) +
                          static_cast<double>(i) / (n - 1) *
                              (std::log(Duration::kWeek) - std::log(60.0)));
    curve.push_back(BatchUpdatePoint{seconds(w),
                                     update * std::pow(spec.curveDecay, t)});
  }
  return WorkloadSpec("generated", gigabytes(spec.dataCapGB),
                      kbPerSec(spec.accessKBps), update, spec.burstM,
                      std::move(curve));
}

BusinessRequirements makeBusiness(const CaseSpec& spec) {
  BusinessRequirements business;
  business.unavailabilityPenaltyRate =
      dollarsPerHour(spec.outagePenaltyPerHour);
  business.lossPenaltyRate = dollarsPerHour(spec.lossPenaltyPerHour);
  if (spec.rtoHours > 0) business.rto = hours(spec.rtoHours);
  if (spec.rpoHours > 0) business.rpo = hours(spec.rpoHours);
  return business;
}

FailureScenario makeScenario(const CaseSpec& spec) {
  switch (spec.scope) {
    case FailureScope::kDataObject:
      return FailureScenario::objectFailure(hours(spec.targetAgeHours),
                                            megabytes(spec.recoverySizeMB));
    case FailureScope::kArray:
      return FailureScenario::arrayFailure(cs::kPrimaryArrayName);
    case FailureScope::kBuilding:
      return FailureScenario::buildingFailure(cs::kPrimarySite);
    case FailureScope::kSite:
      return FailureScenario::siteDisaster(cs::kPrimarySite);
    case FailureScope::kRegion:
      return FailureScenario::regionDisaster(cs::kPrimarySite);
  }
  return FailureScenario::arrayFailure(cs::kPrimaryArrayName);
}

StorageDesign makeDesign(const CaseSpec& spec) {
  return spec.candidate.build(makeWorkload(spec), makeBusiness(spec));
}

config::Json caseToJson(const CaseSpec& spec) {
  using config::Json;
  using config::JsonObject;
  JsonObject o;
  o.emplace_back("dataCapGB", Json(spec.dataCapGB));
  o.emplace_back("accessKBps", Json(spec.accessKBps));
  o.emplace_back("updateKBps", Json(spec.updateKBps));
  o.emplace_back("burstM", Json(spec.burstM));
  o.emplace_back("curvePoints", Json(spec.curvePoints));
  o.emplace_back("curveDecay", Json(spec.curveDecay));
  o.emplace_back("outagePenaltyPerHour", Json(spec.outagePenaltyPerHour));
  o.emplace_back("lossPenaltyPerHour", Json(spec.lossPenaltyPerHour));
  o.emplace_back("rtoHours", Json(spec.rtoHours));
  o.emplace_back("rpoHours", Json(spec.rpoHours));
  o.emplace_back("candidate", Json(spec.candidate.label()));
  o.emplace_back("pitAccWHours", Json(spec.candidate.pitAccW.hrs()));
  o.emplace_back("pitRetentionCount", Json(spec.candidate.pitRetentionCount));
  o.emplace_back("backupAccWHours", Json(spec.candidate.backupAccW.hrs()));
  o.emplace_back("vaultAccWHours", Json(spec.candidate.vaultAccW.hrs()));
  o.emplace_back("mirrorLinkCount", Json(spec.candidate.mirrorLinkCount));
  o.emplace_back("scope", Json(toString(spec.scope)));
  o.emplace_back("targetAgeHours", Json(spec.targetAgeHours));
  o.emplace_back("recoverySizeMB", Json(spec.recoverySizeMB));
  return Json(std::move(o));
}

std::string describeCase(const CaseSpec& spec) {
  return caseToJson(spec).dump();
}

// ---- Shrinking -------------------------------------------------------------

int paramsFromDefault(const CaseSpec& spec) {
  const CaseSpec& d = defaults();
  int n = 0;
  const auto count = [&n](bool differs) { n += differs ? 1 : 0; };
  count(spec.dataCapGB != d.dataCapGB);
  count(spec.accessKBps != d.accessKBps);
  count(spec.updateKBps != d.updateKBps);
  count(spec.burstM != d.burstM);
  count(spec.curvePoints != d.curvePoints);
  count(spec.curveDecay != d.curveDecay);
  count(spec.outagePenaltyPerHour != d.outagePenaltyPerHour);
  count(spec.lossPenaltyPerHour != d.lossPenaltyPerHour);
  count(spec.rtoHours != d.rtoHours);
  count(spec.rpoHours != d.rpoHours);
  count(spec.candidate.pit != d.candidate.pit);
  count(spec.candidate.pitAccW != d.candidate.pitAccW);
  count(spec.candidate.pitRetentionCount != d.candidate.pitRetentionCount);
  count(spec.candidate.backup != d.candidate.backup);
  count(spec.candidate.backupAccW != d.candidate.backupAccW);
  count(spec.candidate.vault != d.candidate.vault);
  count(spec.candidate.vaultAccW != d.candidate.vaultAccW);
  count(spec.candidate.mirror != d.candidate.mirror);
  count(spec.candidate.mirrorLinkCount != d.candidate.mirrorLinkCount);
  count(spec.scope != d.scope);
  count(spec.targetAgeHours != d.targetAgeHours);
  count(spec.recoverySizeMB != d.recoverySizeMB);
  return n;
}

namespace {

/// Candidate simplifications for one double field: the default outright,
/// then a rounded midpoint toward it (offered only while meaningfully far).
void numericMoves(double current, double def, std::vector<double>& out) {
  if (current == def) return;
  out.push_back(def);
  const double mid = round3(current + (def - current) / 2);
  const double scale = std::max({std::fabs(current), std::fabs(def), 1.0});
  if (mid != current && mid != def &&
      std::fabs(current - def) > 1e-3 * scale) {
    out.push_back(mid);
  }
}

void intMoves(int current, int def, std::vector<int>& out) {
  if (current == def) return;
  out.push_back(def);
  const int mid = current + (def - current) / 2;
  if (mid != current && mid != def) out.push_back(mid);
}

/// One shrinkable dimension: emits progressively simpler whole-spec
/// variants (most aggressive first).
using Move = std::function<std::vector<CaseSpec>(const CaseSpec&)>;

std::vector<Move> shrinkMoves() {
  const CaseSpec& d = defaults();
  std::vector<Move> moves;

  // Structural removals first: dropping a whole technique or scenario
  // dimension eliminates several parameters at once.
  moves.push_back([d](const CaseSpec& s) {
    std::vector<CaseSpec> out;
    if (s.candidate.mirror != opt::MirrorChoice::kNone) {
      CaseSpec v = s;
      v.candidate.mirror = d.candidate.mirror;
      v.candidate.mirrorLinkCount = d.candidate.mirrorLinkCount;
      out.push_back(v);
    }
    return out;
  });
  moves.push_back([d](const CaseSpec& s) {
    std::vector<CaseSpec> out;
    if (s.candidate.vault) {
      CaseSpec v = s;
      v.candidate.vault = false;
      v.candidate.vaultAccW = d.candidate.vaultAccW;
      out.push_back(v);
    }
    return out;
  });
  moves.push_back([d](const CaseSpec& s) {
    std::vector<CaseSpec> out;
    if (s.candidate.backup != opt::BackupChoice::kNone) {
      CaseSpec v = s;
      v.candidate.backup = d.candidate.backup;
      v.candidate.backupAccW = d.candidate.backupAccW;
      v.candidate.vault = false;
      v.candidate.vaultAccW = d.candidate.vaultAccW;
      out.push_back(v);
      if (s.candidate.backup == opt::BackupChoice::kFullPlusIncremental) {
        CaseSpec w = s;
        w.candidate.backup = opt::BackupChoice::kFullOnly;
        out.push_back(w);
      }
    }
    return out;
  });
  moves.push_back([d](const CaseSpec& s) {
    std::vector<CaseSpec> out;
    if (s.candidate.pit != d.candidate.pit) {
      CaseSpec v = s;
      v.candidate.pit = d.candidate.pit;
      out.push_back(v);
    }
    return out;
  });
  moves.push_back([d](const CaseSpec& s) {
    std::vector<CaseSpec> out;
    if (s.scope != d.scope) {
      CaseSpec v = s;
      v.scope = d.scope;
      v.targetAgeHours = d.targetAgeHours;
      v.recoverySizeMB = d.recoverySizeMB;
      out.push_back(v);
    }
    return out;
  });
  moves.push_back([d](const CaseSpec& s) {
    std::vector<CaseSpec> out;
    if (s.curvePoints != d.curvePoints || s.curveDecay != d.curveDecay) {
      CaseSpec v = s;
      v.curvePoints = d.curvePoints;
      v.curveDecay = d.curveDecay;
      out.push_back(v);
    }
    if (s.curvePoints > 1) {
      CaseSpec v = s;
      v.curvePoints = s.curvePoints - 1;
      out.push_back(v);
    }
    return out;
  });

  // Field-by-field numeric simplification toward the defaults.
  const auto doubleField = [&moves](double CaseSpec::* field, double def) {
    moves.push_back([field, def](const CaseSpec& s) {
      std::vector<double> values;
      numericMoves(s.*field, def, values);
      std::vector<CaseSpec> out;
      for (double value : values) {
        CaseSpec v = s;
        v.*field = value;
        out.push_back(v);
      }
      return out;
    });
  };
  doubleField(&CaseSpec::dataCapGB, d.dataCapGB);
  doubleField(&CaseSpec::accessKBps, d.accessKBps);
  doubleField(&CaseSpec::updateKBps, d.updateKBps);
  doubleField(&CaseSpec::burstM, d.burstM);
  doubleField(&CaseSpec::curveDecay, d.curveDecay);
  doubleField(&CaseSpec::outagePenaltyPerHour, d.outagePenaltyPerHour);
  doubleField(&CaseSpec::lossPenaltyPerHour, d.lossPenaltyPerHour);
  doubleField(&CaseSpec::rtoHours, d.rtoHours);
  doubleField(&CaseSpec::rpoHours, d.rpoHours);
  doubleField(&CaseSpec::targetAgeHours, d.targetAgeHours);
  doubleField(&CaseSpec::recoverySizeMB, d.recoverySizeMB);

  moves.push_back([d](const CaseSpec& s) {
    std::vector<double> values;
    numericMoves(s.candidate.pitAccW.hrs(), d.candidate.pitAccW.hrs(),
                 values);
    std::vector<CaseSpec> out;
    for (double value : values) {
      CaseSpec v = s;
      v.candidate.pitAccW = hours(value);
      out.push_back(v);
    }
    return out;
  });
  moves.push_back([d](const CaseSpec& s) {
    std::vector<int> values;
    intMoves(s.candidate.pitRetentionCount, d.candidate.pitRetentionCount,
             values);
    std::vector<CaseSpec> out;
    for (int value : values) {
      CaseSpec v = s;
      v.candidate.pitRetentionCount = value;
      out.push_back(v);
    }
    return out;
  });
  moves.push_back([d](const CaseSpec& s) {
    std::vector<double> values;
    numericMoves(s.candidate.backupAccW.hrs(), d.candidate.backupAccW.hrs(),
                 values);
    std::vector<CaseSpec> out;
    for (double value : values) {
      CaseSpec v = s;
      v.candidate.backupAccW = hours(value);
      out.push_back(v);
    }
    return out;
  });
  moves.push_back([d](const CaseSpec& s) {
    std::vector<double> values;
    numericMoves(s.candidate.vaultAccW.wks(), d.candidate.vaultAccW.wks(),
                 values);
    std::vector<CaseSpec> out;
    for (double value : values) {
      CaseSpec v = s;
      v.candidate.vaultAccW = weeks(value);
      out.push_back(v);
    }
    return out;
  });
  moves.push_back([d](const CaseSpec& s) {
    std::vector<int> values;
    intMoves(s.candidate.mirrorLinkCount, d.candidate.mirrorLinkCount,
             values);
    std::vector<CaseSpec> out;
    for (int value : values) {
      CaseSpec v = s;
      v.candidate.mirrorLinkCount = value;
      out.push_back(v);
    }
    return out;
  });
  return moves;
}

}  // namespace

ShrinkResult shrinkCase(const CaseSpec& failing,
                        const CasePredicate& stillFails) {
  ShrinkResult result;
  result.spec = failing;
  const std::vector<Move> moves = shrinkMoves();
  // Greedy passes until no move is accepted. Every accepted move replaces
  // at least one field with a strictly simpler value, so the loop
  // terminates; the pass cap is a safety valve only.
  for (int pass = 0; pass < 64; ++pass) {
    bool accepted = false;
    for (const Move& move : moves) {
      for (const CaseSpec& variant : move(result.spec)) {
        if (variant == result.spec || !caseIsValid(variant)) continue;
        ++result.stepsTried;
        if (stillFails(variant)) {
          result.spec = variant;
          ++result.stepsAccepted;
          accepted = true;
          break;  // re-query this move against the simplified spec
        }
      }
    }
    if (!accepted) break;
  }
  return result;
}

// ---- Extreme quantities ----------------------------------------------------

namespace {
double extremeMagnitude(sim::Rng& rng) {
  switch (rng.uniformInt(6)) {
    case 0:
      return 0.0;
    case 1:
      return rng.uniform(1e-9, 1e-3);  // far sub-unit
    case 2:
      return rng.uniform(0.5, 1000.0);  // ordinary
    case 3:
      return std::exp(rng.uniform(std::log(1e16), std::log(1e24)));  // >PB
    case 4:
      return std::numeric_limits<double>::infinity();
    default:
      return -std::exp(rng.uniform(0.0, std::log(1e12)));  // negative
  }
}
}  // namespace

Bytes extremeBytes(sim::Rng& rng) { return Bytes{extremeMagnitude(rng)}; }
Duration extremeDuration(sim::Rng& rng) {
  return Duration{extremeMagnitude(rng)};
}
Money extremeMoney(sim::Rng& rng) { return Money{extremeMagnitude(rng)}; }

}  // namespace stordep::verify
