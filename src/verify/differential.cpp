#include "verify/differential.hpp"

#include <cmath>
#include <exception>
#include <sstream>
#include <vector>

#include "config/design_io.hpp"
#include "core/data_loss.hpp"
#include "core/evaluator.hpp"
#include "core/propagation.hpp"
#include "engine/batch.hpp"
#include "optimizer/search.hpp"
#include "sim/failure_injector.hpp"
#include "sim/rp_simulator.hpp"
#include "stochastic/evaluator.hpp"

namespace stordep::verify {

namespace opt = stordep::optimizer;

namespace {

OracleResult pass(const std::string& name) {
  return OracleResult{name, true, true, ""};
}
OracleResult notApplicable(const std::string& name) {
  return OracleResult{name, false, true, ""};
}
OracleResult fail(const std::string& name, std::string detail) {
  return OracleResult{name, true, false, std::move(detail)};
}

std::string num(double v) {
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

bool bitSame(double a, double b) {
  return a == b || (std::isnan(a) && std::isnan(b));
}

/// The slowest accumulation window in the case's hierarchy; the simulator's
/// default horizon must cover several of its cycles to reach steady state.
Duration slowestCycle(const CaseSpec& spec) {
  Duration slowest = Duration::zero();
  if (spec.candidate.pit != opt::PitChoice::kNone) {
    slowest = std::max(slowest, spec.candidate.pitAccW);
  }
  if (spec.candidate.backup != opt::BackupChoice::kNone) {
    slowest = std::max(slowest, spec.candidate.backupAccW);
  }
  if (spec.candidate.vault) {
    slowest = std::max(slowest, spec.candidate.vaultAccW);
  }
  return slowest;
}

}  // namespace

OracleResult simBoundOracle(const CaseSpec& spec,
                            const OracleOptions& options) {
  const char* kName = "sim-bound";
  if (spec.scope != FailureScope::kArray && spec.scope != FailureScope::kSite) {
    return notApplicable(kName);
  }
  StorageDesign design = makeDesign(spec);
  // The aligned-schedule bound is a theorem only for convention-conforming
  // designs (accW_i >= cyclePer_{i-1} etc.); non-conforming ones can
  // legitimately exceed the analytic worst case.
  if (!design.validate().empty()) return notApplicable(kName);
  // Steady-state retention of the slowest level must fit the horizon with
  // several cycles to spare.
  if (slowestCycle(spec) > days(7)) return notApplicable(kName);

  const FailureScenario scenario = makeScenario(spec);
  try {
    sim::RpLifecycleSimulator simulator(std::move(design), sim::RpSimOptions{});
    simulator.run();

    sim::FailureInjector injector(simulator,
                                  sim::Rng(mixSeed(spec.auxSeed, 1)));
    const sim::ValidationStats stats =
        injector.validateDataLoss(scenario, options.simSamples);
    if (stats.samples > stats.unrecoverable) {
      if (!stats.analyticWorstCase.isFinite()) {
        return fail(kName,
                    "simulator recovered data where the analytic model calls "
                    "the scenario unrecoverable");
      }
      // The paper's bound assumes grid-conforming windows; when a level's
      // accW is incommensurable with the upstream cycle, charge the capture
      // staleness (rpCaptureSlack) the aligned simulator legitimately sees.
      Duration slack = Duration::zero();
      const auto source = chooseRecoverySource(simulator.design(), scenario);
      if (source) slack = rpCaptureSlack(simulator.design(), source->level);
      const double bound = (stats.analyticWorstCase + slack).secs();
      const double eps = 1e-6 * std::max(1.0, bound);
      if (stats.maxObserved.secs() > bound + eps) {
        return fail(kName,
                    "simulated data loss exceeds the analytic worst case: "
                    "observed max " +
                        num(stats.maxObserved.raw()) + " s > bound " +
                        num(stats.analyticWorstCase.raw()) +
                        " s + capture slack " + num(slack.raw()) + " s");
      }
    }
  } catch (const std::exception& e) {
    return fail(kName, std::string("simulation threw: ") + e.what());
  }
  return pass(kName);
}

OracleResult stochasticBoundOracle(const CaseSpec& spec,
                                   const OracleOptions& options) {
  const char* kName = "stochastic-bound";
  if (spec.scope != FailureScope::kArray && spec.scope != FailureScope::kSite) {
    return notApplicable(kName);
  }
  StorageDesign design = makeDesign(spec);
  // Same applicability as simBoundOracle: the sampled-P100-under-bound
  // property is a theorem only for convention-conforming designs whose
  // slowest cycle fits the default simulation horizon.
  if (!design.validate().empty()) return notApplicable(kName);
  if (slowestCycle(spec) > days(7)) return notApplicable(kName);

  const FailureScenario scenario = makeScenario(spec);
  try {
    stochastic::StochasticOptions sopt;
    sopt.trials = options.stochasticTrials;
    sopt.seed = mixSeed(spec.auxSeed, 5);
    sopt.threads = 1;
    const stochastic::StochasticEvaluator eval(std::move(design), sopt);
    const auto result = eval.distributionFor(scenario);
    if (!result.ok()) {
      return fail(kName, "stochastic evaluation failed: " +
                             result.error().describe());
    }
    const stochastic::ScenarioDistribution& dist = result.value();
    if (!dist.rtBoundHolds) {
      return fail(kName,
                  "sampled recovery time exceeds the analytic worst case: "
                  "observed max " +
                      num(dist.rt.max) + " s > bound " +
                      num(dist.analyticWorstRt.raw()) + " s");
    }
    if (!dist.dlBoundHolds) {
      return fail(kName,
                  "sampled data loss exceeds the analytic worst case: "
                  "observed max " +
                      num(dist.dl.max) + " s > bound " +
                      num(dist.analyticWorstDl.raw()) + " s + capture slack " +
                      num(dist.dlSlack.raw()) + " s");
    }
    const auto monotone = [](const stochastic::Distribution& d) {
      if (d.count == 0) return true;
      return !std::isnan(d.p50) && !std::isnan(d.p95) && !std::isnan(d.p99) &&
             d.p50 <= d.p95 && d.p95 <= d.p99 && d.p99 <= d.max;
    };
    if (!monotone(dist.rt) || !monotone(dist.dl)) {
      return fail(kName,
                  "quantiles are not monotone: RT p50/p95/p99/max " +
                      num(dist.rt.p50) + "/" + num(dist.rt.p95) + "/" +
                      num(dist.rt.p99) + "/" + num(dist.rt.max) +
                      ", DL p50/p95/p99/max " + num(dist.dl.p50) + "/" +
                      num(dist.dl.p95) + "/" + num(dist.dl.p99) + "/" +
                      num(dist.dl.max));
    }
  } catch (const std::exception& e) {
    return fail(kName, std::string("stochastic evaluation threw: ") + e.what());
  }
  return pass(kName);
}

OracleResult stochasticPlanOracle(const CaseSpec& spec,
                                  const OracleOptions& options) {
  const char* kName = "stochastic-plan";
  if (spec.scope != FailureScope::kArray && spec.scope != FailureScope::kSite) {
    return notApplicable(kName);
  }
  StorageDesign design = makeDesign(spec);
  // Same guards as stochasticBoundOracle: the simulator must accept the
  // design and the default horizon must cover the slowest cycle.
  if (!design.validate().empty()) return notApplicable(kName);
  if (slowestCycle(spec) > days(7)) return notApplicable(kName);

  const FailureScenario scenario = makeScenario(spec);
  try {
    stochastic::StochasticOptions base;
    base.trials = options.stochasticTrials;
    base.seed = mixSeed(spec.auxSeed, 6);
    base.threads = 1;
    // Device-class failure/repair defaults apply on both sides; a nonzero
    // shock rate additionally exercises the correlated whole-site path.
    base.reliability.siteShockAnnualRate = 1.0;

    stochastic::TrialTrace planTrace;
    stochastic::TrialTrace legacyTrace;
    stochastic::StochasticOptions planOpt = base;
    planOpt.usePlan = true;
    planOpt.trace = &planTrace;
    stochastic::StochasticOptions legacyOpt = base;
    legacyOpt.usePlan = false;
    legacyOpt.trace = &legacyTrace;

    const stochastic::StochasticEvaluator viaPlan(makeDesign(spec), planOpt);
    const stochastic::StochasticEvaluator legacy(std::move(design), legacyOpt);
    // Plan compiler rejected the design: the evaluator already fell back to
    // the legacy loop, so both sides are the same code path.
    if (!viaPlan.usingPlan()) return notApplicable(kName);

    const auto planCond = viaPlan.distributionFor(scenario);
    const auto legacyCond = legacy.distributionFor(scenario);
    if (!planCond.ok() || !legacyCond.ok()) {
      return fail(kName,
                  "conditional evaluation failed: " +
                      (planCond.ok() ? legacyCond.error().describe()
                                     : planCond.error().describe()));
    }
    if (planTrace.conditional.size() != legacyTrace.conditional.size()) {
      return fail(kName, "conditional trial counts differ: " +
                             std::to_string(planTrace.conditional.size()) +
                             " vs " +
                             std::to_string(legacyTrace.conditional.size()));
    }
    for (std::size_t i = 0; i < planTrace.conditional.size(); ++i) {
      const stochastic::ConditionalSample& p = planTrace.conditional[i];
      const stochastic::ConditionalSample& l = legacyTrace.conditional[i];
      if (p.recoverable != l.recoverable || !bitSame(p.rt, l.rt) ||
          !bitSame(p.dl, l.dl) || !bitSame(p.payload, l.payload) ||
          !bitSame(p.penalty, l.penalty)) {
        return fail(kName, "conditional trial " + std::to_string(i) +
                               " differs: plan rt/dl/payload/penalty " +
                               num(p.rt) + "/" + num(p.dl) + "/" +
                               num(p.payload) + "/" + num(p.penalty) +
                               " vs legacy " + num(l.rt) + "/" + num(l.dl) +
                               "/" + num(l.payload) + "/" + num(l.penalty));
      }
    }
    const auto sameDist = [](const stochastic::Distribution& a,
                             const stochastic::Distribution& b) {
      return a.count == b.count && bitSame(a.min, b.min) &&
             bitSame(a.max, b.max) && bitSame(a.mean, b.mean) &&
             bitSame(a.ci95, b.ci95) && bitSame(a.p50, b.p50) &&
             bitSame(a.p95, b.p95) && bitSame(a.p99, b.p99);
    };
    {
      const stochastic::ScenarioDistribution& p = planCond.value();
      const stochastic::ScenarioDistribution& l = legacyCond.value();
      if (p.trials != l.trials || p.unrecoverable != l.unrecoverable ||
          !sameDist(p.rt, l.rt) || !sameDist(p.dl, l.dl) ||
          !sameDist(p.penalty, l.penalty) ||
          !bitSame(p.meanPayload.raw(), l.meanPayload.raw()) ||
          !bitSame(p.expectedPenalty.raw(), l.expectedPenalty.raw())) {
        return fail(kName,
                    "conditional envelopes differ: plan penalty mean " +
                        num(p.penalty.mean) + " vs legacy " +
                        num(l.penalty.mean));
      }
    }

    const auto planMission = viaPlan.annualizedRisk();
    const auto legacyMission = legacy.annualizedRisk();
    if (!planMission.ok() || !legacyMission.ok()) {
      return fail(kName,
                  "mission evaluation failed: " +
                      (planMission.ok() ? legacyMission.error().describe()
                                        : planMission.error().describe()));
    }
    if (planTrace.mission.size() != legacyTrace.mission.size()) {
      return fail(kName, "mission trial counts differ: " +
                             std::to_string(planTrace.mission.size()) +
                             " vs " +
                             std::to_string(legacyTrace.mission.size()));
    }
    for (std::size_t i = 0; i < planTrace.mission.size(); ++i) {
      const stochastic::MissionSample& p = planTrace.mission[i];
      const stochastic::MissionSample& l = legacyTrace.mission[i];
      if (p.events != l.events || p.unrecoverable != l.unrecoverable ||
          !bitSame(p.penalty, l.penalty) ||
          !bitSame(p.lossBytes, l.lossBytes) ||
          !bitSame(p.downtimeSecs, l.downtimeSecs) ||
          p.eventRtDl != l.eventRtDl) {
        return fail(kName, "mission trial " + std::to_string(i) +
                               " differs: plan events/penalty/loss " +
                               std::to_string(p.events) + "/" +
                               num(p.penalty) + "/" + num(p.lossBytes) +
                               " vs legacy " + std::to_string(l.events) +
                               "/" + num(l.penalty) + "/" + num(l.lossBytes));
      }
    }
    {
      const stochastic::AnnualizedRisk& p = planMission.value();
      const stochastic::AnnualizedRisk& l = legacyMission.value();
      if (p.trials != l.trials || !bitSame(p.eventsPerYear, l.eventsPerYear) ||
          !bitSame(p.unrecoverableTrialFraction,
                   l.unrecoverableTrialFraction) ||
          !bitSame(p.expectedAnnualLossBytes.raw(),
                   l.expectedAnnualLossBytes.raw()) ||
          !bitSame(p.expectedAnnualPenalty.raw(),
                   l.expectedAnnualPenalty.raw()) ||
          !bitSame(p.expectedAnnualDowntimeHours,
                   l.expectedAnnualDowntimeHours) ||
          !sameDist(p.eventRt, l.eventRt) || !sameDist(p.eventDl, l.eventDl) ||
          !sameDist(p.annualPenalty, l.annualPenalty)) {
        return fail(kName,
                    "mission envelopes differ: plan annual penalty " +
                        num(p.expectedAnnualPenalty.raw()) + " vs legacy " +
                        num(l.expectedAnnualPenalty.raw()));
      }
    }
  } catch (const std::exception& e) {
    return fail(kName, std::string("stochastic-plan threw: ") + e.what());
  }
  return pass(kName);
}

OracleResult searchParityOracle(const CaseSpec& spec,
                                const OracleOptions& options) {
  const char* kName = "search-parity";
  // A small candidate set around this case: its own candidate plus random
  // neighbors drawn deterministically from the aux stream.
  std::vector<opt::CandidateSpec> candidates{spec.candidate};
  sim::Rng rng(mixSeed(spec.auxSeed, 3));
  while (static_cast<int>(candidates.size()) < options.searchCandidates) {
    const CaseSpec neighbor = generateCase(rng);
    candidates.push_back(neighbor.candidate);
  }

  const WorkloadSpec workload = makeWorkload(spec);
  const BusinessRequirements business = makeBusiness(spec);
  std::vector<opt::ScenarioCase> scenarios;
  scenarios.push_back({"generated", makeScenario(spec), 1.0});
  if (spec.scope != FailureScope::kSite) {
    CaseSpec site = spec;
    site.scope = FailureScope::kSite;
    site.targetAgeHours = 0.0;
    site.recoverySizeMB = 1.0;
    scenarios.push_back({"site", makeScenario(site), 1.0});
  }

  try {
    const opt::SearchResult serial =
        opt::searchDesignSpaceSerial(candidates, workload, business, scenarios);
    engine::Engine eng(engine::EngineOptions{.threads = options.searchThreads});
    const opt::SearchResult parallel =
        opt::searchDesignSpace(candidates, workload, business, scenarios, &eng);

    const auto compare = [&](const std::vector<opt::EvaluatedCandidate>& a,
                             const std::vector<opt::EvaluatedCandidate>& b,
                             const char* bucket) -> std::string {
      if (a.size() != b.size()) {
        return std::string(bucket) + " sizes differ: " +
               std::to_string(a.size()) + " vs " + std::to_string(b.size());
      }
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].label != b[i].label) {
          return std::string(bucket) + "[" + std::to_string(i) +
                 "] labels differ: '" + a[i].label + "' vs '" + b[i].label +
                 "'";
        }
        if (!bitSame(a[i].totalCost.raw(), b[i].totalCost.raw()) ||
            !bitSame(a[i].worstRecoveryTime.raw(),
                     b[i].worstRecoveryTime.raw()) ||
            !bitSame(a[i].worstDataLoss.raw(), b[i].worstDataLoss.raw()) ||
            a[i].feasible != b[i].feasible ||
            a[i].rejectionReason != b[i].rejectionReason) {
          return std::string(bucket) + "[" + std::to_string(i) + "] ('" +
                 a[i].label + "') metrics differ: cost " +
                 num(a[i].totalCost.raw()) + " vs " +
                 num(b[i].totalCost.raw());
        }
      }
      return "";
    };
    std::string diff = compare(serial.ranked, parallel.ranked, "ranked");
    if (diff.empty()) {
      diff = compare(serial.rejected, parallel.rejected, "rejected");
    }
    if (!diff.empty()) {
      return fail(kName, "serial vs parallel search disagree: " + diff);
    }
  } catch (const std::exception& e) {
    return fail(kName, std::string("search threw: ") + e.what());
  }
  return pass(kName);
}

OracleResult planVsLegacyOracle(const CaseSpec& spec) {
  const char* kName = "plan-vs-legacy";
  try {
    const StorageDesign design = makeDesign(spec);
    const std::shared_ptr<const engine::EvalPlan> plan =
        engine::EvalPlan::compile(design);
    if (plan == nullptr) return notApplicable(kName);

    // The generated scenario plus a site-disaster variant, so every case
    // exercises both a partial and a total failure against the same plan.
    std::vector<std::pair<std::string, FailureScenario>> scenarios;
    scenarios.emplace_back("generated", makeScenario(spec));
    {
      CaseSpec site = spec;
      site.scope = FailureScope::kSite;
      site.targetAgeHours = 0.0;
      site.recoverySizeMB = 1.0;
      scenarios.emplace_back("site", makeScenario(site));
    }

    for (const auto& [label, scenario] : scenarios) {
      const EvaluationResult reference = evaluate(design, scenario);
      const EvaluationMetrics legacy = summarizeEvaluation(reference);
      const EvaluationMetrics viaPlan =
          plan->evaluate(scenario, engine::Engine::threadArena());

      const auto mismatch = [&](const char* field, double a,
                                double b) -> std::string {
        return "scenario '" + label + "' " + field + " differs: plan " +
               num(a) + " vs legacy " + num(b);
      };
      if (viaPlan.utilizationFeasible != legacy.utilizationFeasible) {
        return fail(kName, "scenario '" + label +
                               "' utilization feasibility differs");
      }
      if (viaPlan.recoverable != legacy.recoverable) {
        return fail(kName, "scenario '" + label + "' recoverability differs");
      }
      if (viaPlan.meetsObjectives != legacy.meetsObjectives) {
        return fail(kName, "scenario '" + label + "' RTO/RPO verdict differs");
      }
      if (viaPlan.sourceLevel != legacy.sourceLevel) {
        return fail(kName, "scenario '" + label + "' source level differs: " +
                               std::to_string(viaPlan.sourceLevel) + " vs " +
                               std::to_string(legacy.sourceLevel));
      }
      if (!bitSame(viaPlan.recoveryTime.raw(), legacy.recoveryTime.raw())) {
        return fail(kName, mismatch("recovery time", viaPlan.recoveryTime.raw(),
                                    legacy.recoveryTime.raw()));
      }
      if (!bitSame(viaPlan.dataLoss.raw(), legacy.dataLoss.raw())) {
        return fail(kName, mismatch("data loss", viaPlan.dataLoss.raw(),
                                    legacy.dataLoss.raw()));
      }
      if (!bitSame(viaPlan.payload.raw(), legacy.payload.raw())) {
        return fail(kName, mismatch("payload", viaPlan.payload.raw(),
                                    legacy.payload.raw()));
      }
      if (!bitSame(viaPlan.totalOutlays.raw(), legacy.totalOutlays.raw())) {
        return fail(kName, mismatch("outlays", viaPlan.totalOutlays.raw(),
                                    legacy.totalOutlays.raw()));
      }
      if (!bitSame(viaPlan.outagePenalty.raw(), legacy.outagePenalty.raw())) {
        return fail(kName,
                    mismatch("outage penalty", viaPlan.outagePenalty.raw(),
                             legacy.outagePenalty.raw()));
      }
      if (!bitSame(viaPlan.lossPenalty.raw(), legacy.lossPenalty.raw())) {
        return fail(kName, mismatch("loss penalty", viaPlan.lossPenalty.raw(),
                                    legacy.lossPenalty.raw()));
      }
      if (!bitSame(viaPlan.totalPenalties.raw(),
                   legacy.totalPenalties.raw()) ||
          !bitSame(viaPlan.totalCost.raw(), legacy.totalCost.raw())) {
        return fail(kName, mismatch("total cost", viaPlan.totalCost.raw(),
                                    legacy.totalCost.raw()));
      }
      // The rejection string the optimizer builds from an over-utilized
      // design must also agree with the reference's first error.
      if (!viaPlan.utilizationFeasible) {
        const std::string& referenceError =
            reference.utilization.errors.empty()
                ? std::string()
                : reference.utilization.errors[0];
        if (plan->utilizationError() != referenceError) {
          return fail(kName, "utilization error strings differ: plan '" +
                                 plan->utilizationError() + "' vs legacy '" +
                                 referenceError + "'");
        }
      }
    }
  } catch (const std::exception& e) {
    return fail(kName, std::string("plan-vs-legacy threw: ") + e.what());
  }
  return pass(kName);
}

OracleResult roundTripOracle(const CaseSpec& spec) {
  const char* kName = "round-trip";
  try {
    const StorageDesign design = makeDesign(spec);
    const std::string once = config::saveDesign(design);
    const StorageDesign reloaded = config::loadDesign(once);
    const std::string twice = config::saveDesign(reloaded);
    if (once != twice) {
      return fail(kName,
                  "saveDesign(loadDesign(s)) is not a fixpoint; first "
                  "divergence at byte " +
                      std::to_string(std::mismatch(once.begin(), once.end(),
                                                   twice.begin(), twice.end())
                                         .first -
                                     once.begin()));
    }
    const FailureScenario scenario = makeScenario(spec);
    const EvaluationResult a = evaluate(design, scenario);
    const EvaluationResult b = evaluate(reloaded, scenario);
    if (!bitSame(a.recovery.recoveryTime.raw(), b.recovery.recoveryTime.raw()) ||
        !bitSame(a.recovery.dataLoss.raw(), b.recovery.dataLoss.raw()) ||
        !bitSame(a.cost.totalCost.raw(), b.cost.totalCost.raw())) {
      return fail(kName,
                  "reloaded design evaluates differently: RT " +
                      num(a.recovery.recoveryTime.raw()) + " vs " +
                      num(b.recovery.recoveryTime.raw()) + ", cost " +
                      num(a.cost.totalCost.raw()) + " vs " +
                      num(b.cost.totalCost.raw()));
    }
  } catch (const std::exception& e) {
    return fail(kName, std::string("round-trip threw: ") + e.what());
  }
  return pass(kName);
}

namespace {

/// Collects pointers to every node in the document (pre-order).
void collectNodes(config::Json& node, std::vector<config::Json*>& out) {
  out.push_back(&node);
  if (node.isArray()) {
    for (config::Json& child : node.asArray()) collectNodes(child, out);
  } else if (node.isObject()) {
    for (auto& [key, child] : node.asObject()) collectNodes(child, out);
  }
}

/// Applies one random structural mutation in place.
void mutateOnce(config::Json& doc, sim::Rng& rng) {
  std::vector<config::Json*> nodes;
  collectNodes(doc, nodes);
  config::Json& victim = *nodes[rng.uniformInt(nodes.size())];
  switch (rng.uniformInt(6)) {
    case 0:  // retype to null
      victim = config::Json(nullptr);
      break;
    case 1:  // retype to a garbage string (also corrupts quantity strings)
      victim = config::Json("12 parsecs");
      break;
    case 2:  // negative / absurd number
      victim = config::Json(rng.uniform() < 0.5 ? -1.0 : 1e308);
      break;
    case 3:  // drop a member, if an object with members
      if (victim.isObject() && !victim.asObject().empty()) {
        config::JsonObject& members = victim.asObject();
        members.erase(members.begin() +
                      static_cast<std::ptrdiff_t>(
                          rng.uniformInt(members.size())));
      } else {
        victim = config::Json(true);
      }
      break;
    case 4:  // duplicate-ish junk member
      if (victim.isObject()) {
        victim.set("fuzz", config::Json(-3.5));
      } else {
        victim = config::Json(config::JsonObject{});
      }
      break;
    default:  // swallow into an array
      victim = config::Json(config::JsonArray{config::Json(1.0)});
      break;
  }
}

}  // namespace

OracleResult mutationOracle(const CaseSpec& spec,
                            const OracleOptions& options) {
  const char* kName = "mutation";
  config::Json base;
  try {
    base = config::designToJson(makeDesign(spec));
  } catch (const std::exception& e) {
    return fail(kName, std::string("serializing the design threw: ") + e.what());
  }
  sim::Rng rng(mixSeed(spec.auxSeed, 4));
  for (int i = 0; i < options.mutations; ++i) {
    config::Json mutated = base;
    const int edits = 1 + static_cast<int>(rng.uniformInt(3));
    for (int e = 0; e < edits; ++e) mutateOnce(mutated, rng);
    const std::string text = mutated.dump();
    try {
      (void)config::loadDesign(text);
    } catch (const config::DesignIoError&) {
      // expected failure mode
    } catch (const std::exception& e) {
      return fail(kName,
                  std::string("mutated design leaked a non-DesignIoError (") +
                      e.what() + "); document: " + text.substr(0, 400));
    }
  }
  return pass(kName);
}

}  // namespace stordep::verify
