#include "sim/timeline_table.hpp"

#include <algorithm>

#include "core/techniques/backup.hpp"

namespace stordep::sim {

TimelineTable::TimelineTable(const RpLifecycleSimulator& simulator) {
  const StorageDesign& design = simulator.design();
  const int levelCount = design.levelCount();
  levels_.resize(static_cast<std::size_t>(levelCount));

  for (int level = 0; level < levelCount; ++level) {
    Level& lvl = levels_[static_cast<std::size_t>(level)];
    const Technique& tech = design.level(level);
    const ProtectionPolicy* pol = tech.policy();

    lvl.continuous = pol != nullptr && pol->effectiveAccW() == Duration::zero();
    if (lvl.continuous) {
      lvl.continuousDelay = pol->holdW().secs() + pol->worstPropW().secs();
    }
    lvl.isBackup = tech.kind() == TechniqueKind::kBackup;
    if (lvl.isBackup) {
      const auto& backup = static_cast<const Backup&>(tech);
      lvl.fullOnly = backup.style() == BackupStyle::kFullOnly;
      lvl.cumulative = backup.style() == BackupStyle::kCumulativeIncremental;
      lvl.chained = !lvl.fullOnly;
    }
    if (pol != nullptr) {
      lvl.cyclePeriodSecs = pol->cyclePeriod().secs();
      if (pol->secondaryWindows()) {
        lvl.stepSecs = pol->secondaryWindows()->accW.secs();
      }
    }

    if (level == 0) continue;  // the live primary has no timeline
    const std::vector<SimRp>& timeline = simulator.timeline(level);
    const std::size_t n = timeline.size();
    lvl.dataTime.reserve(n);
    lvl.arrivalTime.reserve(n);
    lvl.evictTime.reserve(n);
    lvl.isFull.reserve(n);
    lvl.lastFullPos.resize(n, -1);
    for (const SimRp& rp : timeline) {
      lvl.dataTime.push_back(rp.dataTime);
      lvl.arrivalTime.push_back(rp.arrivalTime);
      lvl.evictTime.push_back(rp.evictTime);
      lvl.isFull.push_back(rp.isFull ? 1 : 0);
      if (rp.isFull) {
        lvl.fulls.push_back(static_cast<std::int32_t>(lvl.isFull.size() - 1));
      }
    }
    // lastFullPos by merge: dataTime is non-decreasing, so advance a single
    // cursor over the fulls. A *later* full with an equal dataTime still
    // counts (the legacy scan breaks only on strictly newer data).
    std::int32_t cursor = -1;
    for (std::size_t i = 0; i < n; ++i) {
      while (cursor + 1 < static_cast<std::int32_t>(lvl.fulls.size()) &&
             lvl.dataTime[static_cast<std::size_t>(
                 lvl.fulls[static_cast<std::size_t>(cursor + 1)])] <=
                 lvl.dataTime[i]) {
        ++cursor;
      }
      lvl.lastFullPos[i] = cursor;
    }
  }
}

std::optional<TimelineTable::Hit> TimelineTable::bestVisible(
    int level, double failTime, double targetTime) const {
  if (level <= 0 || level >= levelCount()) return std::nullopt;
  const Level& lvl = levels_[static_cast<std::size_t>(level)];

  if (lvl.continuous) {
    // Sync/async mirrors: constant visibility delay, current state only.
    const double dataTime = failTime - lvl.continuousDelay;
    if (dataTime < 0 || dataTime > targetTime) return std::nullopt;
    return Hit{dataTime, true, -1};
  }

  auto it = std::upper_bound(lvl.dataTime.begin(), lvl.dataTime.end(),
                             targetTime);
  auto i = static_cast<std::ptrdiff_t>(it - lvl.dataTime.begin());
  while (i > 0) {
    --i;
    const auto idx = static_cast<std::size_t>(i);
    if (lvl.evictTime[idx] <= failTime) {
      return std::nullopt;  // this and everything older is already retired
    }
    if (lvl.arrivalTime[idx] <= failTime) {
      return Hit{lvl.dataTime[idx], lvl.isFull[idx] != 0,
                 static_cast<std::int32_t>(i)};
    }
  }
  return std::nullopt;
}

std::optional<TimelineTable::Hit> TimelineTable::bestUsable(
    int level, double failTime, double targetTime) const {
  if (level <= 0 || level >= levelCount()) return std::nullopt;
  const Level& lvl = levels_[static_cast<std::size_t>(level)];
  if (!lvl.chained) return bestVisible(level, failTime, targetTime);

  auto it = std::upper_bound(lvl.dataTime.begin(), lvl.dataTime.end(),
                             targetTime);
  auto i = static_cast<std::ptrdiff_t>(it - lvl.dataTime.begin());
  while (i > 0) {
    --i;
    const auto idx = static_cast<std::size_t>(i);
    if (lvl.evictTime[idx] <= failTime || lvl.arrivalTime[idx] > failTime) {
      continue;
    }
    const Hit hit{lvl.dataTime[idx], lvl.isFull[idx] != 0,
                  static_cast<std::int32_t>(i)};
    if (hit.isFull || baseFullDataTime(level, hit, failTime)) return hit;
    // An incremental whose base full hasn't landed: not restorable yet.
  }
  return std::nullopt;
}

std::optional<double> TimelineTable::baseFullDataTime(int level,
                                                      const Hit& hit,
                                                      double failTime) const {
  if (hit.entry < 0) return std::nullopt;
  const Level& lvl = levels_[static_cast<std::size_t>(level)];
  // The legacy scan keeps the *last* visible full at or before the entry's
  // data time; walking the full index backwards finds the same one first.
  for (std::int32_t p = lvl.lastFullPos[static_cast<std::size_t>(hit.entry)];
       p >= 0; --p) {
    const auto f =
        static_cast<std::size_t>(lvl.fulls[static_cast<std::size_t>(p)]);
    if (lvl.arrivalTime[f] > failTime || lvl.evictTime[f] <= failTime) {
      continue;
    }
    // An incremental chains only to its own cycle's full.
    if (hit.dataTime - lvl.dataTime[f] >= lvl.cyclePeriodSecs) {
      return std::nullopt;
    }
    return lvl.dataTime[f];
  }
  return std::nullopt;
}

}  // namespace stordep::sim
