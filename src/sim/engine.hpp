// engine.hpp — a minimal deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock through a stable event queue. Handlers
// may schedule further events (at or after the current time). Used by the
// RP-lifecycle simulator to validate the analytic dependability models, and
// reusable for any other timed process.
#pragma once

#include <stdexcept>

#include "sim/event_queue.hpp"

namespace stordep::sim {

class SimulationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Engine {
 public:
  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t processedEvents() const noexcept {
    return processed_;
  }
  [[nodiscard]] bool hasPending() const noexcept { return !queue_.empty(); }

  /// Schedules `action` `delay` seconds from now (delay >= 0).
  void scheduleIn(SimTime delay, std::function<void()> action);

  /// Schedules `action` at absolute `time` (>= now()).
  void scheduleAt(SimTime time, std::function<void()> action);

  /// Runs until the queue drains or the clock passes `until` (events after
  /// `until` stay pending). Returns the number of events processed.
  std::uint64_t run(SimTime until);

  /// Runs the queue to exhaustion.
  std::uint64_t runAll();

  /// Discards all pending events and resets the clock.
  void reset();

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace stordep::sim
