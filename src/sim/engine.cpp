#include "sim/engine.hpp"

namespace stordep::sim {

void Engine::scheduleIn(SimTime delay, std::function<void()> action) {
  if (delay < 0) throw SimulationError("cannot schedule in the past");
  queue_.schedule(now_ + delay, std::move(action));
}

void Engine::scheduleAt(SimTime time, std::function<void()> action) {
  if (time < now_) throw SimulationError("cannot schedule in the past");
  queue_.schedule(time, std::move(action));
}

std::uint64_t Engine::run(SimTime until) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.nextTime() <= until) {
    Event ev = queue_.pop();
    now_ = ev.time;
    ev.action();
    ++count;
    ++processed_;
  }
  if (now_ < until) now_ = until;
  return count;
}

std::uint64_t Engine::runAll() {
  std::uint64_t count = 0;
  while (!queue_.empty()) {
    Event ev = queue_.pop();
    now_ = ev.time;
    ev.action();
    ++count;
    ++processed_;
  }
  return count;
}

void Engine::reset() {
  queue_.clear();
  now_ = 0;
  processed_ = 0;
}

}  // namespace stordep::sim
