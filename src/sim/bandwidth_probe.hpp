// bandwidth_probe.hpp — simulated device bandwidth profiles.
//
// The analytic utilization model (Table 5) charges each technique its peak
// within-window transfer rate. This probe reconstructs the actual transfer
// activity from the simulated RP schedules — every RP propagation occupies
// [create + holdW, arrival] at size/propW on its source and destination
// devices — and bins it into a per-device bandwidth time series. Validation:
// the binned peak must equal the analytic demand (the backup really does
// drive the tape library at 8.06 MB/s during its window and at zero
// otherwise), and the mean shows how bursty the provisioning question is.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/rp_simulator.hpp"

namespace stordep::sim {

struct DeviceBandwidthProfile {
  std::string device;
  Duration binWidth;
  /// Average transfer rate within each bin (bytes/sec), from t=0.
  std::vector<double> binRates;

  [[nodiscard]] Bandwidth peak() const;
  [[nodiscard]] Bandwidth mean() const;
  /// Fraction of bins with any transfer activity.
  [[nodiscard]] double dutyCycle() const;
};

/// Profiles the RP-propagation transfer load on every storage device
/// involved in levels with a real propagation window. PiT levels (propW=0)
/// and physical shipments contribute no streaming bandwidth. `simulator`
/// must have been run().
[[nodiscard]] std::vector<DeviceBandwidthProfile> profileTransferBandwidth(
    const RpLifecycleSimulator& simulator, Duration binWidth);

}  // namespace stordep::sim
