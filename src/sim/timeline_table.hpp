// timeline_table.hpp — flattened, query-optimized view of simulated RP
// timelines.
//
// RecoverySimulator and RpLifecycleSimulator answer "which RP serves a
// failure at instant t" by walking vectors of SimRp structs; the per-entry
// base-full search (visibleBaseFull) is a linear scan from the beginning of
// the timeline. That is fine for one-off queries but dominates Monte-Carlo
// trial loops, which ask the same questions at thousands of sampled
// instants. A TimelineTable flattens a *run* simulator once into
// struct-of-arrays columns (dataTime / arrivalTime / evictTime / isFull)
// plus a per-entry index of the last full at-or-before each entry's data
// time, so every query is a binary search plus a short back-walk over
// contiguous doubles.
//
// Bit-identity contract: bestVisible / bestUsable / baseFullDataTime mirror
// RpLifecycleSimulator::bestVisibleRp, RecoverySimulator::bestUsableRp and
// RecoverySimulator::visibleBaseFull branch for branch over the same
// double-precision values, so stochastic::TrialPlan's trial kernel returns
// exactly what the legacy loop returns. The asymmetry between the two
// walks is load-bearing: bestVisible STOPS at the first evicted entry
// (everything older is retired too), while the chained-backup walk in
// bestUsable CONTINUES past evicted or not-yet-arrived entries looking for
// a restorable one.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/rp_simulator.hpp"

namespace stordep::sim {

class TimelineTable {
 public:
  /// Flattens `simulator`'s timelines. The simulator must have been run();
  /// the table copies everything it needs and does not keep a reference.
  explicit TimelineTable(const RpLifecycleSimulator& simulator);

  /// One query answer: the serving RP's data time and representation.
  /// `entry` indexes the level's timeline (-1 for the synthetic RP a
  /// continuous mirror level serves analytically).
  struct Hit {
    double dataTime = 0;
    bool isFull = true;
    std::int32_t entry = -1;
  };

  /// Mirror of RpLifecycleSimulator::bestVisibleRp.
  [[nodiscard]] std::optional<Hit> bestVisible(int level, double failTime,
                                               double targetTime) const;

  /// Mirror of RecoverySimulator::bestUsableRp (skips incrementals whose
  /// base full is not restorable at `failTime`).
  [[nodiscard]] std::optional<Hit> bestUsable(int level, double failTime,
                                              double targetTime) const;

  /// Mirror of RecoverySimulator::visibleBaseFull for the entry `hit` of
  /// `level`: the data time of the base full it chains from, or nullopt
  /// when no visible full in the same cycle exists.
  [[nodiscard]] std::optional<double> baseFullDataTime(int level,
                                                       const Hit& hit,
                                                       double failTime) const;

  [[nodiscard]] int levelCount() const noexcept {
    return static_cast<int>(levels_.size());
  }
  /// Technique kind/style flags the restore-payload arithmetic branches on.
  [[nodiscard]] bool isBackup(int level) const noexcept {
    return levels_[static_cast<std::size_t>(level)].isBackup;
  }
  [[nodiscard]] bool fullOnly(int level) const noexcept {
    return levels_[static_cast<std::size_t>(level)].fullOnly;
  }
  [[nodiscard]] bool cumulative(int level) const noexcept {
    return levels_[static_cast<std::size_t>(level)].cumulative;
  }
  /// Differential chains: the secondary accumulation window (seconds); 0
  /// when the level has none.
  [[nodiscard]] double stepSecs(int level) const noexcept {
    return levels_[static_cast<std::size_t>(level)].stepSecs;
  }

 private:
  struct Level {
    // Parallel columns in creation order (dataTime non-decreasing).
    std::vector<double> dataTime;
    std::vector<double> arrivalTime;
    std::vector<double> evictTime;
    std::vector<std::uint8_t> isFull;
    /// Timeline indices of the fulls, ascending.
    std::vector<std::int32_t> fulls;
    /// Per entry: index into `fulls` of the last full whose dataTime is
    /// at or before this entry's dataTime; -1 when none.
    std::vector<std::int32_t> lastFullPos;

    bool continuous = false;
    double continuousDelay = 0;  ///< holdW + worstPropW, seconds
    bool isBackup = false;
    bool fullOnly = false;
    bool cumulative = false;
    bool chained = false;  ///< backup with incrementals: base-full checks
    double stepSecs = 0;
    double cyclePeriodSecs = 0;
  };

  std::vector<Level> levels_;
};

}  // namespace stordep::sim
