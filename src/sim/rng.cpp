#include "sim/rng.hpp"

#include <cmath>

namespace stordep::sim {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  // xoshiro256**
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniformInt(std::uint64_t n) {
  // Lemire's debiased multiply-shift.
  if (n == 0) return 0;
  for (;;) {
    const std::uint64_t x = next();
    const unsigned __int128 m =
        static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(n);
    const std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= n) {
      return static_cast<std::uint64_t>(m >> 64);
    }
    // Reject the biased low range.
    if (low >= (0 - n) % n) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

double Rng::exponential(double mean) {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  if (n <= 1) return 0;
  if (s <= 0.0) return uniformInt(n);
  // Rejection-inversion (Hörmann & Derflinger 1996) over ranks 1..n,
  // returned as 0-based.
  const double N = static_cast<double>(n);
  auto H = [s](double x) {
    if (s == 1.0) return std::log(x);
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto Hinv = [s](double y) {
    if (s == 1.0) return std::exp(y);
    return std::pow(1.0 + y * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double hX1 = H(1.5) - 1.0;
  const double hN = H(N + 0.5);
  for (;;) {
    const double u = hX1 + uniform() * (hN - hX1);
    const double x = Hinv(u);
    auto k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    const double kd = static_cast<double>(k);
    if (u >= H(kd + 0.5) - std::pow(kd, -s)) {
      return k - 1;
    }
  }
}

double Rng::weibull(double mean, double shape) {
  // Inverse-CDF: scale * (-ln U)^(1/k), with the scale chosen so the draw
  // has the requested mean (E[X] = scale * Gamma(1 + 1/k)).
  const double scale = mean / std::tgamma(1.0 + 1.0 / shape);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

Rng Rng::split() { return Rng(next()); }

std::uint64_t Rng::substreamSeed(std::uint64_t seed, std::uint64_t streamId) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (streamId + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng Rng::split(std::uint64_t streamId) const {
  return Rng(substreamSeed(seed_, streamId));
}

}  // namespace stordep::sim
