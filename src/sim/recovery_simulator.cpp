#include "sim/recovery_simulator.hpp"

#include <algorithm>

#include "core/recovery.hpp"
#include "core/techniques/backup.hpp"

namespace stordep::sim {

RecoverySimulator::RecoverySimulator(const RpLifecycleSimulator& simulator)
    : sim_(simulator) {}

const SimRp* RecoverySimulator::visibleBaseFull(int level, const SimRp& rp,
                                                SimTime failTime) const {
  const SimRp* full = nullptr;
  for (const SimRp& candidate : sim_.timeline(level)) {
    if (candidate.dataTime > rp.dataTime) break;
    if (!candidate.isFull) continue;
    if (candidate.arrivalTime > failTime || candidate.evictTime <= failTime) {
      continue;
    }
    full = &candidate;
  }
  if (full == nullptr) return nullptr;
  // An incremental chains only to *its own cycle's* full: one capturing
  // changes "since the last full" is meaningless on top of an older one.
  const ProtectionPolicy& pol = *sim_.design().level(level).policy();
  if (rp.dataTime - full->dataTime >= pol.cyclePeriod().secs()) {
    return nullptr;
  }
  return full;
}

std::optional<SimRp> RecoverySimulator::bestUsableRp(
    int level, SimTime failTime, SimTime targetTime) const {
  const StorageDesign& design = sim_.design();
  const Technique& tech = design.level(level);
  const bool chained =
      tech.kind() == TechniqueKind::kBackup &&
      static_cast<const Backup&>(tech).style() != BackupStyle::kFullOnly;
  if (!chained) return sim_.bestVisibleRp(level, failTime, targetTime);

  const auto& timeline = sim_.timeline(level);
  auto it = std::upper_bound(
      timeline.begin(), timeline.end(), targetTime,
      [](SimTime t, const SimRp& rp) { return t < rp.dataTime; });
  while (it != timeline.begin()) {
    --it;
    if (it->evictTime <= failTime || it->arrivalTime > failTime) continue;
    if (it->isFull || visibleBaseFull(level, *it, failTime) != nullptr) {
      return *it;
    }
    // An incremental whose base full hasn't landed: not restorable yet.
  }
  return std::nullopt;
}

Bytes RecoverySimulator::restorePayloadFor(
    int level, const SimRp& rp, SimTime failTime,
    const FailureScenario& scenario) const {
  const StorageDesign& design = sim_.design();
  const WorkloadSpec& workload = design.workload();
  const Bytes baseSize = scenario.recoverySize.value_or(workload.dataCap());
  const Technique& tech = design.level(level);
  if (tech.kind() != TechniqueKind::kBackup) return baseSize;
  const auto& backup = static_cast<const Backup&>(tech);
  if (backup.style() == BackupStyle::kFullOnly || rp.isFull) return baseSize;

  const SimRp* full = visibleBaseFull(level, rp, failTime);
  if (full == nullptr) return baseSize;  // degenerate: treat as a full

  const Duration span{rp.dataTime - full->dataTime};
  const double scale = std::min(1.0, baseSize / workload.dataCap());
  Bytes incrBytes{0};
  if (backup.style() == BackupStyle::kCumulativeIncremental) {
    // Only the chosen cumulative incremental replays on top of the full.
    incrBytes = workload.uniqueBytes(span);
  } else {
    // Differentials: every one between the full and the chosen RP replays.
    const Duration step = backup.policy()->secondaryWindows()->accW;
    const double count = step.secs() > 0 ? span / step : 0.0;
    incrBytes = workload.uniqueBytes(step) * count;
  }
  return baseSize + incrBytes * scale;
}

std::optional<ObservedRecovery> RecoverySimulator::observedRecovery(
    const FailureScenario& scenario, SimTime failTime) const {
  const StorageDesign& design = sim_.design();
  const SimTime targetTime = failTime - scenario.recoveryTargetAge.secs();

  // Best surviving RP across levels (same policy as the analytic model:
  // minimal loss, ties to the lower level).
  int bestLevel = -1;
  std::optional<SimRp> bestRp;
  Duration bestLoss = Duration::infinite();
  for (int level = 1; level < design.levelCount(); ++level) {
    if (levelDestroyed(design, level, scenario)) continue;
    const auto rp = bestUsableRp(level, failTime, targetTime);
    if (!rp) continue;
    const Duration loss{targetTime - rp->dataTime};
    if (loss < bestLoss) {
      bestLoss = loss;
      bestLevel = level;
      bestRp = rp;
    }
  }
  if (bestLevel < 0) return std::nullopt;

  const Bytes payload =
      restorePayloadFor(bestLevel, *bestRp, failTime, scenario);
  LevelLossAssessment source;
  source.level = bestLevel;
  source.lossCase = LossCase::kWithinRange;
  source.dataLoss = bestLoss;
  const RecoveryResult result =
      recoverFrom(design, scenario, source, payload);
  if (!result.recoverable) return std::nullopt;

  return ObservedRecovery{.sourceLevel = bestLevel,
                          .dataLoss = bestLoss,
                          .payload = payload,
                          .recoveryTime = result.recoveryTime};
}

}  // namespace stordep::sim
