#include "sim/bandwidth_probe.hpp"

#include <algorithm>
#include <cmath>

#include "core/techniques/backup.hpp"
#include "core/techniques/remote_mirror.hpp"

namespace stordep::sim {

Bandwidth DeviceBandwidthProfile::peak() const {
  double best = 0;
  for (double rate : binRates) best = std::max(best, rate);
  return Bandwidth{best};
}

Bandwidth DeviceBandwidthProfile::mean() const {
  if (binRates.empty()) return Bandwidth::zero();
  double sum = 0;
  for (double rate : binRates) sum += rate;
  return Bandwidth{sum / static_cast<double>(binRates.size())};
}

double DeviceBandwidthProfile::dutyCycle() const {
  if (binRates.empty()) return 0.0;
  size_t active = 0;
  for (double rate : binRates) {
    if (rate > 0) ++active;
  }
  return static_cast<double>(active) / static_cast<double>(binRates.size());
}

namespace {

/// The devices an RP transfer into `level` streams through (read side,
/// write side); empty when the level does not stream (PiT copies,
/// vaulting's physical shipment).
std::vector<DevicePtr> streamingDevices(const Technique& tech) {
  switch (tech.kind()) {
    case TechniqueKind::kBackup: {
      const auto& backup = static_cast<const Backup&>(tech);
      return {backup.sourceArray(), backup.backupDevice()};
    }
    case TechniqueKind::kSyncMirror:
    case TechniqueKind::kAsyncMirror:
    case TechniqueKind::kAsyncBatchMirror: {
      const auto& mirror = static_cast<const RemoteMirror&>(tech);
      return {mirror.links(), mirror.destArray()};
    }
    default:
      return {};
  }
}

}  // namespace

std::vector<DeviceBandwidthProfile> profileTransferBandwidth(
    const RpLifecycleSimulator& simulator, Duration binWidth) {
  if (!(binWidth.secs() > 0)) {
    throw SimulationError("bin width must be positive");
  }
  const StorageDesign& design = simulator.design();
  const WorkloadSpec& workload = design.workload();
  const double horizon = simulator.horizon();
  const auto binCount =
      static_cast<size_t>(std::ceil(horizon / binWidth.secs()));

  std::vector<DevicePtr> order;
  std::map<const DeviceModel*, std::vector<double>> rates;
  auto binsFor = [&](const DevicePtr& device) -> std::vector<double>& {
    auto [it, inserted] = rates.try_emplace(device.get());
    if (inserted) {
      it->second.assign(binCount, 0.0);
      order.push_back(device);
    }
    return it->second;
  };

  for (int level = 1; level < design.levelCount(); ++level) {
    const Technique& tech = design.level(level);
    const auto devices = streamingDevices(tech);
    if (devices.empty()) continue;

    // Reconstruct each RP's transfer interval and size. Full
    // representations ship the whole image; partial ones ship deltas —
    // cumulative incrementals chain to the last full, batch mirrors and
    // differentials to the previous RP.
    const bool cumulative =
        tech.kind() == TechniqueKind::kBackup &&
        static_cast<const Backup&>(tech).style() ==
            BackupStyle::kCumulativeIncremental;
    double lastFullDataTime = -1;
    double prevDataTime = -1;
    for (const SimRp& rp : simulator.timeline(level)) {
      if (rp.isFull) lastFullDataTime = rp.dataTime;
      const WindowSpec& window =
          rp.isFull || !tech.policy()->isCyclic()
              ? tech.policy()->primaryWindows()
              : *tech.policy()->secondaryWindows();
      const double start = rp.createTime;
      const double end = rp.arrivalTime;
      const double chainBase = cumulative ? lastFullDataTime : prevDataTime;
      prevDataTime = rp.dataTime;
      if (end <= start) continue;  // instantaneous (no propW): no stream
      Bytes size;
      if (window.propRep == Representation::kFull) {
        size = workload.dataCap();
      } else if (chainBase >= 0) {
        size = workload.uniqueBytes(Duration{rp.dataTime - chainBase});
      } else {
        // First partial RP: charge a steady-state batch, not the initial
        // full synchronization (which is a provisioning event, not part of
        // the steady-state profile the analytic model describes).
        size = workload.uniqueBytes(tech.policy()->effectiveAccW());
      }
      // holdW precedes the transfer within [create, arrival].
      const double holdW = tech.policy()->holdW().secs();
      const double xferStart = std::min(start + holdW, end);
      const double xferSecs = end - xferStart;
      if (xferSecs <= 0) continue;
      const double rate = size.bytes() / xferSecs;

      for (const DevicePtr& device : devices) {
        auto& bins = binsFor(device);
        const auto firstBin =
            static_cast<size_t>(xferStart / binWidth.secs());
        const auto lastBin =
            std::min(binCount - 1,
                     static_cast<size_t>(end / binWidth.secs()));
        for (size_t b = firstBin; b <= lastBin && b < binCount; ++b) {
          const double binStart = static_cast<double>(b) * binWidth.secs();
          const double binEnd = binStart + binWidth.secs();
          const double overlap =
              std::min(end, binEnd) - std::max(xferStart, binStart);
          if (overlap > 0) {
            bins[b] += rate * overlap / binWidth.secs();
          }
        }
      }
    }
  }

  std::vector<DeviceBandwidthProfile> out;
  for (const DevicePtr& device : order) {
    DeviceBandwidthProfile profile;
    profile.device = device->name();
    profile.binWidth = binWidth;
    profile.binRates = std::move(rates[device.get()]);
    out.push_back(std::move(profile));
  }
  return out;
}

}  // namespace stordep::sim
