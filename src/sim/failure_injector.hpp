// failure_injector.hpp — Monte-Carlo failure injection against the
// RP-lifecycle simulation, validating the analytic worst-case data loss.
//
// Samples failure instants in steady state, measures the achieved data loss
// through the simulator, and compares the distribution against the analytic
// worst case from the core models: the bound must hold for every sample
// (when schedules are aligned), and with enough samples the maximum should
// approach it — i.e., the bound is tight, not just safe.
#pragma once

#include <vector>

#include "sim/rng.hpp"
#include "sim/rp_simulator.hpp"

namespace stordep::sim {

struct ValidationStats {
  int samples = 0;
  int unrecoverable = 0;      ///< samples where no level could serve
  Duration analyticWorstCase; ///< from the core data-loss model
  Duration minObserved;
  Duration meanObserved;
  Duration maxObserved;
  /// max observed <= analytic (+epsilon) over all recoverable samples.
  bool boundHolds = false;
  /// maxObserved / analytic: ~1.0 means the bound is tight.
  double tightness = 0.0;
  /// The raw observations (recoverable samples only), for histograms.
  std::vector<Duration> observations;
};

class FailureInjector {
 public:
  /// The simulator must have been run() already.
  FailureInjector(const RpLifecycleSimulator& simulator, Rng rng);

  /// Injects `samples` failures uniformly over the simulation's steady-state
  /// window and validates the data-loss bound for `scenario`.
  [[nodiscard]] ValidationStats validateDataLoss(
      const FailureScenario& scenario, int samples);

  /// Deterministic sweep: failures at `samples` evenly spaced instants
  /// (catches worst cases that random sampling can miss).
  [[nodiscard]] ValidationStats sweepDataLoss(const FailureScenario& scenario,
                                              int samples);

 private:
  [[nodiscard]] ValidationStats assemble(const FailureScenario& scenario,
                                         std::vector<Duration> observations,
                                         int unrecoverable) const;

  const RpLifecycleSimulator& sim_;
  Rng rng_;
};

}  // namespace stordep::sim
