// recovery_simulator.hpp — recovery-time distributions from the simulated
// RP schedules.
//
// The analytic recovery model is worst-case: it always restores the largest
// possible payload (a full image plus the biggest incremental chain). In
// reality the payload depends on *when* the failure strikes within the
// backup cycle: right after a full backup lands, there is nothing to
// replay; just before the next full, the whole chain must be. This module
// couples the RP-lifecycle simulation (which knows exactly which RP would
// be restored at any instant, and which full it chains from) with the
// analytic restore-leg machinery to produce the distribution of achieved
// recovery times — worst, mean and best — and to check that the analytic
// worst case bounds them all.
#pragma once

#include <optional>

#include "sim/failure_injector.hpp"
#include "sim/rp_simulator.hpp"

namespace stordep::sim {

/// The restore that would actually run for a failure at one instant.
struct ObservedRecovery {
  int sourceLevel = -1;
  Duration dataLoss = Duration::infinite();
  /// Bytes actually read from the source level (full + the incremental
  /// chain between that full and the chosen RP).
  Bytes payload;
  Duration recoveryTime = Duration::infinite();
};

class RecoverySimulator {
 public:
  /// `simulator` must have been run() already and must outlive this object.
  explicit RecoverySimulator(const RpLifecycleSimulator& simulator);

  /// The restore that a failure at `failTime` would trigger: the best
  /// surviving RP across levels, its exact payload, and the recovery time
  /// via the analytic restore legs. Empty when nothing can serve.
  /// Monte-Carlo distributions over the steady-state window are built by
  /// stochastic::StochasticEvaluator, the single sampling implementation.
  [[nodiscard]] std::optional<ObservedRecovery> observedRecovery(
      const FailureScenario& scenario, SimTime failTime) const;

 private:
  /// Payload to read from `level` when restoring the RP `rp` (chains
  /// incremental-backup RPs back to their full).
  [[nodiscard]] Bytes restorePayloadFor(int level, const SimRp& rp,
                                        SimTime failTime,
                                        const FailureScenario& scenario) const;

  /// The base full an incremental RP chains from, if it is visible (and not
  /// evicted) at `failTime`; null otherwise.
  [[nodiscard]] const SimRp* visibleBaseFull(int level, const SimRp& rp,
                                             SimTime failTime) const;

  /// Like RpLifecycleSimulator::bestVisibleRp, but skips *unusable*
  /// incrementals — ones whose base full has not arrived yet. (A new
  /// cycle's first incremental routinely lands before its full finishes
  /// propagating; it cannot be restored until the full exists.)
  [[nodiscard]] std::optional<SimRp> bestUsableRp(int level, SimTime failTime,
                                                  SimTime targetTime) const;

  const RpLifecycleSimulator& sim_;
};

}  // namespace stordep::sim
