#include "sim/failure_injector.hpp"

#include <algorithm>

namespace stordep::sim {

FailureInjector::FailureInjector(const RpLifecycleSimulator& simulator,
                                 Rng rng)
    : sim_(simulator), rng_(rng) {}

ValidationStats FailureInjector::assemble(const FailureScenario& scenario,
                                          std::vector<Duration> observations,
                                          int unrecoverable) const {
  ValidationStats stats;
  stats.samples = static_cast<int>(observations.size()) + unrecoverable;
  stats.unrecoverable = unrecoverable;

  const auto source = chooseRecoverySource(sim_.design(), scenario);
  stats.analyticWorstCase =
      source ? source->dataLoss : Duration::infinite();

  if (observations.empty()) {
    stats.minObserved = Duration::infinite();
    stats.meanObserved = Duration::infinite();
    stats.maxObserved = Duration::infinite();
    stats.boundHolds = !source.has_value();  // both sides agree: hopeless
    stats.observations = std::move(observations);
    return stats;
  }

  Duration sum = Duration::zero();
  stats.minObserved = Duration::infinite();
  stats.maxObserved = Duration::zero();
  for (const Duration& d : observations) {
    sum += d;
    stats.minObserved = std::min(stats.minObserved, d);
    stats.maxObserved = std::max(stats.maxObserved, d);
  }
  stats.meanObserved = sum / static_cast<double>(observations.size());

  const double analytic = stats.analyticWorstCase.secs();
  const double eps = 1e-6 * std::max(1.0, analytic);
  stats.boundHolds = stats.analyticWorstCase.isFinite() &&
                     stats.maxObserved.secs() <= analytic + eps;
  stats.tightness =
      analytic > 0 ? stats.maxObserved.secs() / analytic : 1.0;
  stats.observations = std::move(observations);
  return stats;
}

ValidationStats FailureInjector::validateDataLoss(
    const FailureScenario& scenario, int samples) {
  const SimTime lo = sim_.warmupTime();
  const SimTime hi = sim_.horizon();
  if (lo >= hi) {
    throw SimulationError(
        "horizon too short: no steady-state window to sample");
  }
  std::vector<Duration> observations;
  observations.reserve(static_cast<size_t>(samples));
  int unrecoverable = 0;
  for (int i = 0; i < samples; ++i) {
    const SimTime failTime = rng_.uniform(lo, hi);
    const Duration loss = sim_.observedDataLoss(scenario, failTime);
    if (loss.isFinite()) {
      observations.push_back(loss);
    } else {
      ++unrecoverable;
    }
  }
  return assemble(scenario, std::move(observations), unrecoverable);
}

ValidationStats FailureInjector::sweepDataLoss(const FailureScenario& scenario,
                                               int samples) {
  const SimTime lo = sim_.warmupTime();
  const SimTime hi = sim_.horizon();
  if (lo >= hi) {
    throw SimulationError(
        "horizon too short: no steady-state window to sample");
  }
  std::vector<Duration> observations;
  observations.reserve(static_cast<size_t>(samples));
  int unrecoverable = 0;
  for (int i = 0; i < samples; ++i) {
    // Sample just inside each subinterval's end: the loss is maximal just
    // before an RP arrival, so an end-biased grid finds the supremum.
    const SimTime failTime =
        lo + (hi - lo) * (static_cast<double>(i + 1) / (samples + 1));
    const Duration loss = sim_.observedDataLoss(scenario, failTime);
    if (loss.isFinite()) {
      observations.push_back(loss);
    } else {
      ++unrecoverable;
    }
  }
  return assemble(scenario, std::move(observations), unrecoverable);
}

}  // namespace stordep::sim
