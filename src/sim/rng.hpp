// rng.hpp — deterministic random numbers for simulations and generators.
//
// A small splitmix64-seeded xoshiro256** generator with the distributions
// the simulators need. Self-contained so simulation results are reproducible
// across standard-library implementations (std::uniform_real_distribution &
// friends are not portable bit-for-bit).
#pragma once

#include <cstdint>

namespace stordep::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Raw 64 random bits.
  std::uint64_t next();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) (n > 0), bias-corrected.
  std::uint64_t uniformInt(std::uint64_t n);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Standard-ish normal via Box-Muller (mean, stddev).
  double normal(double mean, double stddev);

  /// Zipf-like rank in [0, n): P(k) proportional to 1/(k+1)^s. Uses the
  /// rejection-inversion method (Hörmann/Derflinger), O(1) per draw.
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Fork a statistically independent stream (for parallel entities).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace stordep::sim
