// rng.hpp — deterministic random numbers for simulations and generators.
//
// A small splitmix64-seeded xoshiro256** generator with the distributions
// the simulators need. Self-contained so simulation results are reproducible
// across standard-library implementations (std::uniform_real_distribution &
// friends are not portable bit-for-bit).
#pragma once

#include <cstdint>

namespace stordep::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Raw 64 random bits.
  std::uint64_t next();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) (n > 0), bias-corrected.
  std::uint64_t uniformInt(std::uint64_t n);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Standard-ish normal via Box-Muller (mean, stddev).
  double normal(double mean, double stddev);

  /// Zipf-like rank in [0, n): P(k) proportional to 1/(k+1)^s. Uses the
  /// rejection-inversion method (Hörmann/Derflinger), O(1) per draw.
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Weibull with the given mean and shape k (> 0); k == 1 is exponential.
  /// The scale is derived from the mean via Gamma(1 + 1/k).
  double weibull(double mean, double shape);

  /// Fork a statistically independent stream (for parallel entities).
  /// Stateful: advances this generator; the forked stream depends on how
  /// many draws preceded the fork. Prefer split(streamId) when the forks
  /// must be reproducible independent of draw order.
  Rng split();

  /// The substream seed for `streamId` under `seed`: a splitmix64 finalizer
  /// over the seed advanced by the stream id (the same construction as the
  /// verify layer's mixSeed). Distinct streamIds give decorrelated,
  /// non-overlapping streams; chaining substreamSeed calls derives nested
  /// substreams.
  [[nodiscard]] static std::uint64_t substreamSeed(std::uint64_t seed,
                                                   std::uint64_t streamId);

  /// The substream `streamId` of this generator's *construction seed*: a
  /// pure function of (seed, streamId), unaffected by any draws made from
  /// this generator. This is the deterministic-parallelism primitive — trial
  /// i of a Monte-Carlo run uses split(i), so results are bit-identical
  /// regardless of how trials are scheduled across threads.
  [[nodiscard]] Rng split(std::uint64_t streamId) const;

  /// The seed this generator was constructed with.
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
};

}  // namespace stordep::sim
