#include "sim/event_queue.hpp"

#include <utility>

namespace stordep::sim {

std::uint64_t EventQueue::schedule(SimTime time, std::function<void()> action) {
  const std::uint64_t seq = nextSeq_++;
  heap_.push(Event{time, seq, std::move(action)});
  return seq;
}

Event EventQueue::pop() {
  // std::priority_queue::top() returns const&; move via const_cast is the
  // standard idiom avoided here — copy the handle, then pop. The function
  // object is small (captures by value), so the copy is cheap relative to
  // event dispatch.
  Event ev = heap_.top();
  heap_.pop();
  return ev;
}

void EventQueue::clear() {
  heap_ = {};
  nextSeq_ = 0;
}

}  // namespace stordep::sim
