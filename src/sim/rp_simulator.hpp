// rp_simulator.hpp — discrete-event simulation of the RP lifecycle.
//
// The analytic models of src/core compute *worst-case* data loss from window
// arithmetic. This simulator executes the actual creation / propagation /
// retention / eviction schedule of every level on the DES engine, so that
// failure injection (failure_injector.hpp) can measure the *achieved* data
// loss at arbitrary failure instants and check it against the analytic
// bound — the validation the paper lists as future work.
//
// Scheduling semantics: level i creates an RP every accumulation window by
// capturing the newest RP *visible* at level i-1 (level 1 captures the live
// primary). The RP becomes visible at level i after holdW + propW and is
// evicted retCnt cycles after arrival. With creation grids phase-aligned to
// the upstream arrival instants (the paper's implicit assumption, satisfied
// by its convention accW_i >= cyclePer_{i-1}), the worst observed loss
// converges exactly to the analytic bound; with adversarial phases it can
// exceed it — an effect the ablation bench demonstrates.
#pragma once

#include <optional>
#include <vector>

#include "core/data_loss.hpp"
#include "core/hierarchy.hpp"
#include "sim/engine.hpp"

namespace stordep::sim {

/// One simulated retrieval point at one level.
struct SimRp {
  SimTime dataTime = 0;     ///< timestamp of the data state it captures
  SimTime createTime = 0;   ///< when the level started creating it
  SimTime arrivalTime = 0;  ///< when it became visible (restorable)
  SimTime evictTime = 0;    ///< when it was retired
  bool isFull = true;       ///< full vs incremental representation
};

struct RpSimOptions {
  /// Simulated horizon. Must cover several cycles of the slowest level to
  /// reach steady state.
  Duration horizon = days(120);
  /// Align each level's creation grid with the upstream arrival instants
  /// (the paper's assumption). When false, `phases` supplies explicit
  /// per-level offsets (missing entries default to zero).
  bool alignSchedules = true;
  std::vector<Duration> phases;
  /// Safety valve against runaway event counts (tiny accW, long horizon).
  std::uint64_t maxEvents = 20'000'000;
};

class RpLifecycleSimulator {
 public:
  RpLifecycleSimulator(StorageDesign design, RpSimOptions options);

  /// Runs the schedule over [0, horizon]. Idempotent (reruns reset state).
  void run();

  /// Newest RP visible at `level` at `failTime` capturing data no newer
  /// than `targetTime`. Continuous levels (accW == 0, sync/async mirrors)
  /// are evaluated analytically.
  [[nodiscard]] std::optional<SimRp> bestVisibleRp(int level, SimTime failTime,
                                                   SimTime targetTime) const;

  /// Achieved recent data loss for `scenario` if the failure strikes at
  /// `failTime`: the gap between the requested restoration point and the
  /// best surviving RP. Infinite when nothing can serve the target.
  [[nodiscard]] Duration observedDataLoss(const FailureScenario& scenario,
                                          SimTime failTime) const;

  /// Time by which every level has reached steady-state retention; failure
  /// injection should sample at or after this point.
  [[nodiscard]] SimTime warmupTime() const;

  [[nodiscard]] const std::vector<SimRp>& timeline(int level) const;
  [[nodiscard]] const StorageDesign& design() const noexcept {
    return design_;
  }
  [[nodiscard]] SimTime horizon() const noexcept {
    return options_.horizon.secs();
  }
  [[nodiscard]] std::uint64_t eventsProcessed() const noexcept {
    return totalEvents_;
  }

 private:
  void scheduleCycle(int level, SimTime cycleStart);
  void createRp(int level, SimTime now, bool isFull, Duration holdW,
                Duration propW);
  [[nodiscard]] Duration levelPhase(int level) const;
  [[nodiscard]] bool isContinuous(int level) const;

  // Stored by value: callers routinely pass freshly built temporaries, and
  // the simulator outlives the call site's expression.
  StorageDesign design_;
  RpSimOptions options_;
  Engine engine_;
  /// Per level (index 0 unused), in arrival order per creation order.
  std::vector<std::vector<SimRp>> timelines_;
  std::uint64_t totalEvents_ = 0;
  bool ran_ = false;
};

}  // namespace stordep::sim
