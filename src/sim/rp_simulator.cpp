#include "sim/rp_simulator.hpp"

#include <algorithm>

namespace stordep::sim {

RpLifecycleSimulator::RpLifecycleSimulator(StorageDesign design,
                                           RpSimOptions options)
    : design_(std::move(design)), options_(std::move(options)) {
  if (!(options_.horizon.secs() > 0)) {
    throw SimulationError("simulation horizon must be positive");
  }
  timelines_.resize(static_cast<size_t>(design_.levelCount()));
}

bool RpLifecycleSimulator::isContinuous(int level) const {
  const ProtectionPolicy* pol = design_.level(level).policy();
  return pol != nullptr && pol->effectiveAccW() == Duration::zero();
}

Duration RpLifecycleSimulator::levelPhase(int level) const {
  if (!options_.alignSchedules) {
    const auto idx = static_cast<size_t>(level);
    return idx < options_.phases.size() ? options_.phases[idx]
                                        : Duration::zero();
  }
  // Aligned: each level's creation instants coincide with the arrival
  // instants of the level below (level 1 draws from the live primary).
  Duration phase = Duration::zero();
  for (int i = 1; i < level; ++i) {
    const WindowSpec& feed = design_.level(i).policy()->feedWindows();
    phase += feed.holdW + feed.propW;
  }
  return phase;
}

void RpLifecycleSimulator::createRp(int level, SimTime now, bool isFull,
                                    Duration holdW, Duration propW) {
  if (totalEvents_ + engine_.processedEvents() > options_.maxEvents) {
    throw SimulationError("simulation exceeded its event budget");
  }
  SimTime dataTime = now;
  if (level > 1) {
    // Capture the newest RP visible one level down (any data age).
    const auto upstream = bestVisibleRp(level - 1, now, now);
    if (!upstream) return;  // nothing to propagate yet (warm-up)
    dataTime = upstream->dataTime;
  }
  const ProtectionPolicy& pol = *design_.level(level).policy();
  const SimTime arrival = now + holdW.secs() + propW.secs();
  const SimTime evict =
      arrival + pol.cyclePeriod().secs() * pol.retentionCount();
  timelines_[static_cast<size_t>(level)].push_back(SimRp{
      .dataTime = dataTime,
      .createTime = now,
      .arrivalTime = arrival,
      .evictTime = evict,
      .isFull = isFull,
  });
}

void RpLifecycleSimulator::scheduleCycle(int level, SimTime cycleStart) {
  if (cycleStart > options_.horizon.secs()) return;
  const ProtectionPolicy& pol = *design_.level(level).policy();
  const WindowSpec& full = pol.primaryWindows();

  engine_.scheduleAt(cycleStart, [this, level, cycleStart, full] {
    createRp(level, cycleStart, /*isFull=*/true, full.holdW, full.propW);
  });

  if (pol.isCyclic()) {
    const WindowSpec& incr = *pol.secondaryWindows();
    for (int m = 1; m <= pol.cycleCount(); ++m) {
      const SimTime t = cycleStart + incr.accW.secs() * m;
      if (t >= cycleStart + pol.cyclePeriod().secs() ||
          t > options_.horizon.secs()) {
        break;
      }
      engine_.scheduleAt(t, [this, level, t, incr] {
        createRp(level, t, /*isFull=*/false, incr.holdW, incr.propW);
      });
    }
  }

  // Chain the following cycle lazily so the pending-event count stays
  // proportional to the level count, not the horizon.
  const SimTime next = cycleStart + pol.cyclePeriod().secs();
  engine_.scheduleAt(next, [this, level, next] { scheduleCycle(level, next); });
}

void RpLifecycleSimulator::run() {
  totalEvents_ = 0;
  for (auto& t : timelines_) t.clear();
  // One engine pass per level, in hierarchy order: level i's creations
  // query level i-1's *completed* timeline, so an RP arriving at exactly a
  // creation instant is visible regardless of event tie-breaking.
  for (int level = 1; level < design_.levelCount(); ++level) {
    if (isContinuous(level)) continue;  // handled analytically in queries
    engine_.reset();
    scheduleCycle(level, levelPhase(level).secs());
    engine_.run(options_.horizon.secs());
    totalEvents_ += engine_.processedEvents();
  }
  ran_ = true;
}

std::optional<SimRp> RpLifecycleSimulator::bestVisibleRp(
    int level, SimTime failTime, SimTime targetTime) const {
  if (level <= 0 || level >= design_.levelCount()) return std::nullopt;

  if (isContinuous(level)) {
    // Sync/async mirrors track the primary with a constant visibility delay
    // and retain exactly the current state.
    const ProtectionPolicy& pol = *design_.level(level).policy();
    const SimTime delay = pol.holdW().secs() + pol.worstPropW().secs();
    const SimTime dataTime = failTime - delay;
    if (dataTime < 0 || dataTime > targetTime) return std::nullopt;
    return SimRp{.dataTime = dataTime,
                 .createTime = dataTime,
                 .arrivalTime = failTime,
                 .evictTime = failTime,
                 .isFull = true};
  }

  const auto& timeline = timelines_[static_cast<size_t>(level)];
  // dataTime is non-decreasing in creation order: binary-search the newest
  // candidate at or before the target, then walk back to a visible one.
  auto it = std::upper_bound(
      timeline.begin(), timeline.end(), targetTime,
      [](SimTime t, const SimRp& rp) { return t < rp.dataTime; });
  while (it != timeline.begin()) {
    --it;
    if (it->evictTime <= failTime) {
      return std::nullopt;  // this and everything older is already retired
    }
    if (it->arrivalTime <= failTime) return *it;
  }
  return std::nullopt;
}

Duration RpLifecycleSimulator::observedDataLoss(
    const FailureScenario& scenario, SimTime failTime) const {
  if (!ran_) throw SimulationError("run() the simulation before querying it");
  const SimTime targetTime = failTime - scenario.recoveryTargetAge.secs();
  Duration best = Duration::infinite();

  for (int level = 0; level < design_.levelCount(); ++level) {
    if (levelDestroyed(design_, level, scenario)) continue;
    if (level == 0) {
      // The live primary serves only "restore to now" — and not when the
      // failure is a corruption of the object itself.
      if (scenario.scope != FailureScope::kDataObject &&
          scenario.recoveryTargetAge == Duration::zero()) {
        best = std::min(best, Duration::zero());
      }
      continue;
    }
    const auto rp = bestVisibleRp(level, failTime, targetTime);
    if (!rp) continue;
    best = std::min(best, Duration{targetTime - rp->dataTime});
  }
  return best;
}

SimTime RpLifecycleSimulator::warmupTime() const {
  SimTime warmup = 0;
  for (int level = 1; level < design_.levelCount(); ++level) {
    if (isContinuous(level)) continue;
    const ProtectionPolicy& pol = *design_.level(level).policy();
    const SimTime ready = levelPhase(level).secs() +
                          2 * pol.cyclePeriod().secs() + pol.holdW().secs() +
                          pol.worstPropW().secs();
    warmup = std::max(warmup, ready);
  }
  return warmup;
}

const std::vector<SimRp>& RpLifecycleSimulator::timeline(int level) const {
  if (level < 0 || level >= design_.levelCount()) {
    throw SimulationError("no such level");
  }
  return timelines_[static_cast<size_t>(level)];
}

}  // namespace stordep::sim
