// event_queue.hpp — the discrete-event simulator's pending-event set.
//
// A binary min-heap of (time, sequence) keyed events. The sequence number
// makes ordering *stable*: events scheduled earlier run first among equals,
// which keeps simulations deterministic regardless of heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace stordep::sim {

using SimTime = double;  ///< seconds since simulation start

struct Event {
  SimTime time = 0;
  std::uint64_t seq = 0;  ///< global scheduling order, breaks time ties
  std::function<void()> action;
};

class EventQueue {
 public:
  /// Schedules `action` at absolute time `time`. Returns the event's
  /// sequence number (usable for debugging/tracing).
  std::uint64_t schedule(SimTime time, std::function<void()> action);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] size_t size() const noexcept { return heap_.size(); }

  /// Time of the earliest pending event; undefined when empty.
  [[nodiscard]] SimTime nextTime() const { return heap_.top().time; }

  /// Removes and returns the earliest pending event.
  [[nodiscard]] Event pop();

  void clear();

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t nextSeq_ = 0;
};

}  // namespace stordep::sim
