#include "workloadgen/generator.hpp"

#include <cmath>
#include <limits>

namespace stordep::workloadgen {

TraceGenerator::TraceGenerator(GeneratorConfig config)
    : config_(config), rng_(config.seed) {
  if (config_.burstMultiplier < 1.0) {
    throw TraceError("burst multiplier must be >= 1");
  }
  if (!(config_.workingSetFraction > 0.0) ||
      config_.workingSetFraction > 1.0) {
    throw TraceError("working-set fraction must be in (0, 1]");
  }
  if (!(config_.meanBurstLength.secs() > 0)) {
    throw TraceError("mean burst length must be positive");
  }
  if (config_.updateLengthBlocks == 0) {
    throw TraceError("update length must be positive");
  }
}

UpdateTrace TraceGenerator::generate(Duration duration) {
  UpdateTrace trace(config_.objectSize, config_.blockSize);

  const double updateBytes =
      config_.blockSize.bytes() * config_.updateLengthBlocks;
  const double avgRecordsPerSec =
      config_.avgUpdateRate.bytesPerSec() / updateBytes;

  // On/off modulation: bursts at `m x avg`, gaps at `avg / m` (residual
  // trickle), with duty cycle chosen so the long-run average is `avg`.
  //   duty * m + (1 - duty) / m = 1  =>  duty = (1 - 1/m) / (m - 1/m)
  const double m = config_.burstMultiplier;
  const double duty = m > 1.0 ? (1.0 - 1.0 / m) / (m - 1.0 / m) : 1.0;
  const double burstRate = avgRecordsPerSec * m;
  const double gapRate = avgRecordsPerSec / m;
  const double meanBurst = config_.meanBurstLength.secs();
  const double meanGap =
      duty < 1.0 ? meanBurst * (1.0 - duty) / duty : 0.0;

  const auto workingBlocks = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(trace.blockCount()) *
             config_.workingSetFraction));
  const std::uint64_t maxStart =
      workingBlocks > config_.updateLengthBlocks
          ? workingBlocks - config_.updateLengthBlocks
          : 0;

  double now = 0;
  bool inBurst = true;
  double phaseEnd = rng_.exponential(meanBurst);
  const double end = duration.secs();

  while (now < end) {
    const double rate = inBurst ? burstRate : gapRate;
    const double step = rate > 0
                            ? rng_.exponential(1.0 / rate)
                            : std::numeric_limits<double>::infinity();
    if (now + step >= phaseEnd) {
      // The next arrival would land in a different phase: jump to the
      // boundary and resample at the new phase's rate (memorylessness of
      // the exponential makes this exact, not an approximation).
      now = phaseEnd;
      inBurst = !inBurst;
      const double mean = inBurst ? meanBurst : meanGap;
      phaseEnd += mean > 0 ? rng_.exponential(mean) : 1e-9;
      continue;
    }
    now += step;
    if (now >= end) break;

    std::uint64_t block = rng_.zipf(maxStart + 1, config_.zipfSkew);
    trace.append(UpdateRecord{
        .time = now,
        .block = block,
        .length = config_.updateLengthBlocks,
    });
  }
  return trace;
}

}  // namespace stordep::workloadgen
