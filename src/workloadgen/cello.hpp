// cello.hpp — a synthetic stand-in for the cello workgroup-server traces.
//
// The paper drives its case study with statistics measured from HP's
// internal `cello` traces (Table 2). Those traces are not available, but
// the models only consume the published statistics — which the case-study
// module encodes directly. This header complements that with a *generator
// configuration* tuned so that a synthetic trace, pushed through the
// analyzer, reproduces the published statistics' shape: ~800 KB/s average
// updates, ~10x burstiness, and a unique-update curve that decays from
// ~90% of the update rate at 1-minute windows toward a saturated working
// set at day-plus windows.
#pragma once

#include "core/workload.hpp"
#include "workloadgen/generator.hpp"

namespace stordep::workloadgen::cello {

/// Generator settings approximating cello's published statistics at a
/// laptop-friendly scale (the object is scaled down; rates are preserved,
/// so window statistics saturate proportionally faster).
[[nodiscard]] GeneratorConfig generatorConfig(Bytes objectSize = gigabytes(2),
                                              std::uint64_t seed = 42);

/// The windows Table 2 publishes batchUpdR for.
[[nodiscard]] std::vector<Duration> publishedWindows();

/// The published Table 2 statistics as a WorkloadSpec (same values as
/// casestudy::celloWorkload(); repeated here so the workload-generation
/// substrate is self-contained).
[[nodiscard]] WorkloadSpec publishedWorkload();

}  // namespace stordep::workloadgen::cello
