// generator.hpp — synthetic bursty update-trace generation.
//
// Emits block-level update traces with the two properties the dependability
// models care about:
//
//  * burstiness — an on/off modulated arrival process: updates arrive at
//    `peak = burstMultiplier x average` rate during bursts and at a low
//    residual rate between them, with exponentially distributed burst and
//    gap lengths (mean burst duration configurable);
//  * overwrite locality — each update targets a Zipf-distributed block of a
//    working set that is a configurable fraction of the object, so unique
//    bytes per window saturate and the measured batchUpdR(win) curve
//    declines with the window, just like the published cello curve.
#pragma once

#include "sim/rng.hpp"
#include "workloadgen/trace.hpp"

namespace stordep::workloadgen {

struct GeneratorConfig {
  Bytes objectSize = megabytes(256);
  Bytes blockSize = kilobytes(4);
  Bandwidth avgUpdateRate = kbPerSec(800);
  /// Peak-to-average update ratio (>= 1).
  double burstMultiplier = 10.0;
  /// Mean duration of a burst (exponentially distributed).
  Duration meanBurstLength = seconds(10);
  /// Fraction of the object that is actively updated (0 < f <= 1).
  double workingSetFraction = 0.25;
  /// Zipf skew over the working set (0 = uniform; ~1 = heavily skewed).
  double zipfSkew = 0.9;
  /// Blocks written per update record.
  std::uint32_t updateLengthBlocks = 4;
  std::uint64_t seed = 42;
};

class TraceGenerator {
 public:
  explicit TraceGenerator(GeneratorConfig config);

  /// Generates a trace covering `duration` of activity.
  [[nodiscard]] UpdateTrace generate(Duration duration);

  [[nodiscard]] const GeneratorConfig& config() const noexcept {
    return config_;
  }

 private:
  GeneratorConfig config_;
  sim::Rng rng_;
};

}  // namespace stordep::workloadgen
