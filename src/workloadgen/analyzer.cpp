#include "workloadgen/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace stordep::workloadgen {

TraceAnalyzer::TraceAnalyzer(const UpdateTrace& trace) : trace_(trace) {
  if (trace_.empty()) throw TraceError("cannot analyze an empty trace");
}

Bandwidth TraceAnalyzer::averageUpdateRate() const {
  const double duration = trace_.duration();
  if (!(duration > 0)) return Bandwidth::zero();
  return Bandwidth{trace_.totalBytes().bytes() / duration};
}

double TraceAnalyzer::burstMultiplier(Duration binSize) const {
  const double bin = binSize.secs();
  if (!(bin > 0)) throw TraceError("burst bin must be positive");
  const double duration = trace_.duration();
  const auto binCount = static_cast<size_t>(std::ceil(duration / bin));
  if (binCount == 0) return 1.0;

  std::vector<double> volume(binCount, 0.0);
  const double blockBytes = trace_.blockSize().bytes();
  for (const auto& rec : trace_.records()) {
    auto idx = static_cast<size_t>(rec.time / bin);
    if (idx >= binCount) idx = binCount - 1;
    volume[idx] += blockBytes * rec.length;
  }
  const double peak = *std::max_element(volume.begin(), volume.end());
  const double avg = trace_.totalBytes().bytes() / static_cast<double>(binCount);
  return avg > 0 ? peak / avg : 1.0;
}

Bytes TraceAnalyzer::uniqueBytesPerWindow(Duration win) const {
  const double w = win.secs();
  if (!(w > 0)) throw TraceError("window must be positive");
  const double duration = trace_.duration();
  const auto fullWindows = static_cast<size_t>(std::floor(duration / w));
  if (fullWindows == 0) {
    throw TraceError("trace shorter than the requested window");
  }

  const double blockBytes = trace_.blockSize().bytes();
  double uniqueTotal = 0;
  size_t windowIdx = 0;
  std::unordered_set<std::uint64_t> dirty;
  for (const auto& rec : trace_.records()) {
    const auto idx = static_cast<size_t>(rec.time / w);
    if (idx >= fullWindows) break;
    if (idx != windowIdx) {
      uniqueTotal += static_cast<double>(dirty.size()) * blockBytes;
      dirty.clear();
      windowIdx = idx;
    }
    for (std::uint32_t k = 0; k < rec.length; ++k) {
      dirty.insert(rec.block + k);
    }
  }
  uniqueTotal += static_cast<double>(dirty.size()) * blockBytes;
  return Bytes{uniqueTotal / static_cast<double>(fullWindows)};
}

Bandwidth TraceAnalyzer::batchUpdateRate(Duration win) const {
  return uniqueBytesPerWindow(win) / win;
}

TraceStats TraceAnalyzer::stats(const std::vector<Duration>& windows,
                                Duration burstBin) const {
  TraceStats out;
  out.avgUpdateRate = averageUpdateRate();
  out.burstMultiplier = burstMultiplier(burstBin);
  for (const Duration& w : windows) {
    out.batchCurve.push_back(BatchUpdatePoint{w, batchUpdateRate(w)});
  }
  std::sort(out.batchCurve.begin(), out.batchCurve.end(),
            [](const BatchUpdatePoint& a, const BatchUpdatePoint& b) {
              return a.window < b.window;
            });
  // Enforce the monotone-rate invariant WorkloadSpec requires: measurement
  // noise can produce tiny upticks; clamp each point to its predecessor.
  for (size_t i = 1; i < out.batchCurve.size(); ++i) {
    out.batchCurve[i].rate =
        std::min(out.batchCurve[i].rate, out.batchCurve[i - 1].rate);
  }
  return out;
}

WorkloadSpec TraceAnalyzer::fitWorkload(const std::string& name,
                                        const std::vector<Duration>& windows,
                                        Duration burstBin,
                                        double accessToUpdateRatio) const {
  if (accessToUpdateRatio < 1.0) {
    throw TraceError("access rate cannot be below the update rate");
  }
  TraceStats s = stats(windows, burstBin);
  // Unique rates can never exceed the average update rate; clamp residual
  // measurement artifacts before WorkloadSpec validation.
  for (auto& p : s.batchCurve) {
    p.rate = std::min(p.rate, s.avgUpdateRate);
  }
  return WorkloadSpec(name, trace_.objectSize(),
                      s.avgUpdateRate * accessToUpdateRatio, s.avgUpdateRate,
                      std::max(1.0, s.burstMultiplier), std::move(s.batchCurve));
}

}  // namespace stordep::workloadgen
