// trace.hpp — block-level update traces.
//
// The paper's models are driven by statistics measured from the `cello`
// workgroup-server traces (Table 2), which are not publicly distributable.
// This substrate substitutes a synthetic trace pipeline: a generator
// (generator.hpp) emits block-level update records; an analyzer
// (analyzer.hpp) measures exactly the statistics the models consume
// (average rates, burstiness, the batchUpdR(win) curve), closing the loop
// from raw I/O records to a WorkloadSpec.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/units.hpp"

namespace stordep::workloadgen {

/// One update (write) to the data object.
struct UpdateRecord {
  double time = 0;           ///< seconds since trace start
  std::uint64_t block = 0;   ///< block index within the object
  std::uint32_t length = 1;  ///< blocks written, starting at `block`
};

class TraceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A time-ordered sequence of update records over a fixed-size object.
class UpdateTrace {
 public:
  UpdateTrace(Bytes objectSize, Bytes blockSize);

  /// Appends a record; times must be non-decreasing and blocks in range.
  void append(UpdateRecord record);

  [[nodiscard]] Bytes objectSize() const noexcept { return objectSize_; }
  [[nodiscard]] Bytes blockSize() const noexcept { return blockSize_; }
  [[nodiscard]] std::uint64_t blockCount() const noexcept {
    return blockCount_;
  }
  [[nodiscard]] const std::vector<UpdateRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  [[nodiscard]] double duration() const noexcept {
    return records_.empty() ? 0.0 : records_.back().time;
  }

  /// Total bytes written (non-unique).
  [[nodiscard]] Bytes totalBytes() const noexcept { return totalBytes_; }

  /// Serializes to the trace text format:
  ///   # stordep-trace v1 object=<bytes> block=<bytes>
  ///   <time> <block> <length>        (one record per line)
  /// and back. The format is line-oriented so real traces can be converted
  /// with a one-line awk script.
  void save(std::ostream& out) const;
  [[nodiscard]] static UpdateTrace load(std::istream& in);
  void saveFile(const std::string& path) const;
  [[nodiscard]] static UpdateTrace loadFile(const std::string& path);

 private:
  Bytes objectSize_;
  Bytes blockSize_;
  std::uint64_t blockCount_;
  Bytes totalBytes_;
  std::vector<UpdateRecord> records_;
};

}  // namespace stordep::workloadgen
