#include "workloadgen/cello.hpp"

namespace stordep::workloadgen::cello {

GeneratorConfig generatorConfig(Bytes objectSize, std::uint64_t seed) {
  GeneratorConfig config;
  config.objectSize = objectSize;
  config.blockSize = kilobytes(4);
  config.avgUpdateRate = kbPerSec(799);
  config.burstMultiplier = 10.0;
  config.meanBurstLength = seconds(20);
  // cello's 12-hour unique rate (350 KB/s) against a 799 KB/s update rate
  // implies roughly half the day's writes are overwrites; a generous working
  // set with mild skew keeps short windows mostly unique (727/799 at one
  // minute) while long windows saturate.
  config.workingSetFraction = 0.5;
  config.zipfSkew = 0.55;
  config.updateLengthBlocks = 4;
  config.seed = seed;
  return config;
}

std::vector<Duration> publishedWindows() {
  return {minutes(1), hours(12), hours(24), hours(48), weeks(1)};
}

WorkloadSpec publishedWorkload() {
  return WorkloadSpec(
      "cello workgroup file server", gigabytes(1360), kbPerSec(1028),
      kbPerSec(799), 10.0,
      {
          BatchUpdatePoint{minutes(1), kbPerSec(727)},
          BatchUpdatePoint{hours(12), kbPerSec(350)},
          BatchUpdatePoint{hours(24), kbPerSec(317)},
          BatchUpdatePoint{hours(48), kbPerSec(317)},
          BatchUpdatePoint{weeks(1), kbPerSec(317)},
      });
}

}  // namespace stordep::workloadgen::cello
