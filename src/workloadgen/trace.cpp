#include "workloadgen/trace.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

namespace stordep::workloadgen {

UpdateTrace::UpdateTrace(Bytes objectSize, Bytes blockSize)
    : objectSize_(objectSize), blockSize_(blockSize) {
  if (!(objectSize.bytes() > 0) || !(blockSize.bytes() > 0)) {
    throw TraceError("object and block sizes must be positive");
  }
  if (blockSize > objectSize) {
    throw TraceError("block size exceeds object size");
  }
  blockCount_ =
      static_cast<std::uint64_t>(std::floor(objectSize / blockSize));
}

void UpdateTrace::append(UpdateRecord record) {
  if (!records_.empty() && record.time < records_.back().time) {
    throw TraceError("trace records must be time-ordered");
  }
  if (record.length == 0) {
    throw TraceError("update length must be positive");
  }
  if (record.block + record.length > blockCount_) {
    throw TraceError("update beyond the end of the object");
  }
  totalBytes_ += blockSize_ * static_cast<double>(record.length);
  records_.push_back(record);
}

void UpdateTrace::save(std::ostream& out) const {
  // Sizes are whole bytes; timestamps need full double precision to
  // round-trip ordering exactly.
  out << "# stordep-trace v1 object="
      << static_cast<unsigned long long>(objectSize_.bytes())
      << " block=" << static_cast<unsigned long long>(blockSize_.bytes())
      << "\n";
  out.precision(17);
  for (const UpdateRecord& rec : records_) {
    out << rec.time << ' ' << rec.block << ' ' << rec.length << '\n';
  }
  if (!out) throw TraceError("failed writing trace stream");
}

UpdateTrace UpdateTrace::load(std::istream& in) {
  std::string header;
  if (!std::getline(in, header)) throw TraceError("empty trace stream");

  // Header layout: "# stordep-trace v1 object=N block=M".
  std::istringstream hs(header);
  std::string hash, magic, version, objectField, blockField;
  hs >> hash >> magic >> version >> objectField >> blockField;
  if (hash != "#" || magic != "stordep-trace" || version != "v1") {
    throw TraceError("unrecognized trace header: " + header);
  }
  const auto parseField = [](const std::string& field,
                             const std::string& key) {
    const std::string prefix = key + "=";
    if (field.rfind(prefix, 0) != 0) {
      throw TraceError("bad trace header field '" + field + "'");
    }
    return std::stod(field.substr(prefix.size()));
  };
  const double objectBytes = parseField(objectField, "object");
  const double blockBytes = parseField(blockField, "block");

  UpdateTrace trace(Bytes{objectBytes}, Bytes{blockBytes});
  double time = 0;
  std::uint64_t block = 0;
  std::uint32_t length = 0;
  while (in >> time >> block >> length) {
    trace.append(UpdateRecord{time, block, length});
  }
  if (!in.eof() && in.fail()) {
    throw TraceError("malformed trace record");
  }
  return trace;
}

void UpdateTrace::saveFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw TraceError("cannot open " + path + " for writing");
  save(out);
}

UpdateTrace UpdateTrace::loadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw TraceError("cannot open " + path);
  return load(in);
}

}  // namespace stordep::workloadgen
