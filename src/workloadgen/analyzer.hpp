// analyzer.hpp — measures model-input statistics from an update trace.
//
// Computes exactly the Table 2 quantities the dependability models consume:
// average update rate, burstiness (peak/average over fine bins), and the
// unique-update-rate curve batchUpdR(win) for a set of windows; and fits a
// complete WorkloadSpec from them.
#pragma once

#include <vector>

#include "core/workload.hpp"
#include "workloadgen/trace.hpp"

namespace stordep::workloadgen {

struct TraceStats {
  Bandwidth avgUpdateRate;
  /// Peak-to-average ratio of update volume over `burstBin`-sized bins.
  double burstMultiplier = 1.0;
  std::vector<BatchUpdatePoint> batchCurve;
};

class TraceAnalyzer {
 public:
  explicit TraceAnalyzer(const UpdateTrace& trace);

  /// Average (non-unique) update bandwidth over the whole trace.
  [[nodiscard]] Bandwidth averageUpdateRate() const;

  /// Peak/average update-volume ratio measured over bins of `binSize`.
  [[nodiscard]] double burstMultiplier(Duration binSize) const;

  /// Unique bytes written within one window of length `win`, averaged over
  /// all full windows in the trace (tumbling windows).
  [[nodiscard]] Bytes uniqueBytesPerWindow(Duration win) const;

  /// batchUpdR(win) = uniqueBytesPerWindow(win) / win.
  [[nodiscard]] Bandwidth batchUpdateRate(Duration win) const;

  /// Measures the full statistics set for the given curve windows.
  [[nodiscard]] TraceStats stats(const std::vector<Duration>& windows,
                                 Duration burstBin) const;

  /// Fits a WorkloadSpec usable by the dependability models: measured
  /// rates/curve, the trace's object size, and a read/write ratio to derive
  /// the access rate (accessRate = updateRate * (1 + readFraction /
  /// (1 - readFraction)) is left to the caller via `accessToUpdateRatio`).
  [[nodiscard]] WorkloadSpec fitWorkload(const std::string& name,
                                         const std::vector<Duration>& windows,
                                         Duration burstBin,
                                         double accessToUpdateRatio) const;

 private:
  const UpdateTrace& trace_;
};

}  // namespace stordep::workloadgen
