// portfolio.hpp — multi-object storage designs (the extension the paper
// sketches in Sec 3.1.1: "explicitly tracking each object's workload
// demands, the set of techniques and underlying storage devices used to
// protect the object, and inter-object dependencies during recovery").
//
// A Portfolio composes several per-object StorageDesigns that may *share*
// hardware (the same array instance holding two databases, one tape library
// backing up everything). It provides:
//
//  * aggregate utilization — demands from every object summed per shared
//    device, with overload detection the single-object models can't see;
//  * aggregate outlays — shared fixed costs charged once, not per object;
//  * dependency-aware recovery — objects declare recovery dependencies
//    ("the app restores only after its database"); restores sharing a
//    source device serialize on it, independent restores proceed in
//    parallel, and the portfolio recovery time is the last completion.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/cost.hpp"
#include "core/evaluator.hpp"
#include "engine/batch.hpp"

namespace stordep::multiobject {

class PortfolioError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One protected data object: its design plus recovery dependencies.
struct ObjectSpec {
  std::string name;
  StorageDesign design;
  /// Names of objects that must complete recovery before this one starts
  /// (e.g., restore the database before the application server state).
  std::vector<std::string> dependsOn;
};

/// One object's recovery outcome within the portfolio schedule.
struct ObjectRecovery {
  std::string object;
  bool recoverable = false;
  Duration dataLoss = Duration::infinite();
  /// When this object's restore began (after dependencies and device
  /// queueing) and when it completed, on the portfolio clock.
  Duration startTime = Duration::infinite();
  Duration completionTime = Duration::infinite();
  /// The standalone recovery duration (no queueing).
  Duration ownDuration = Duration::infinite();
  std::string sourceDevice;  ///< device the restore reads from
};

struct PortfolioRecoveryResult {
  std::vector<ObjectRecovery> objects;
  bool allRecoverable = false;
  /// Completion of the last object: the business is down until then.
  Duration totalRecoveryTime = Duration::infinite();
  /// The worst per-object data loss.
  Duration worstDataLoss = Duration::infinite();
};

class Portfolio {
 public:
  /// Validates names (unique), dependencies (known, acyclic).
  explicit Portfolio(std::vector<ObjectSpec> objects);

  [[nodiscard]] const std::vector<ObjectSpec>& objects() const noexcept {
    return objects_;
  }
  [[nodiscard]] const ObjectSpec& object(const std::string& name) const;

  /// Demands from every object, per shared device (devices are shared when
  /// the same DeviceModel instance appears in several designs).
  [[nodiscard]] UtilizationResult aggregateUtilization() const;

  /// Aggregate annual outlays: each device's fixed cost charged once (to
  /// the first primary technique using it), incremental costs per demand,
  /// spares on the device's total usage.
  [[nodiscard]] Money aggregateOutlays() const;

  /// Dependency-aware recovery under `scenario`:
  ///  1. objects restore in topological order of their dependencies;
  ///  2. an object's restore starts once its dependencies completed AND its
  ///     recovery-source device is free (restores sharing a source device
  ///     serialize; distinct devices run in parallel);
  ///  3. the portfolio is recovered when the last object is.
  [[nodiscard]] PortfolioRecoveryResult recover(
      const FailureScenario& scenario) const;

  /// recover() for a whole scenario set at once: scenarios fan out across
  /// the engine's thread pool (each scenario's schedule is independent) and
  /// per-object recovery results come from the engine's memoizing cache
  /// (null = Engine::shared()), so repeated what-if sweeps over the same
  /// portfolio are mostly cache hits. results[i] answers scenarios[i] and
  /// is identical to recover(scenarios[i]).
  [[nodiscard]] std::vector<PortfolioRecoveryResult> recoverBatch(
      const std::vector<FailureScenario>& scenarios,
      engine::Engine* eng = nullptr) const;

  /// recoverBatch with the engine's structured-error contract: one
  /// scenario whose recovery model fails (or is fault-injected) yields an
  /// engine::EvalError in its own slot instead of aborting the sweep, and
  /// `token` cancels the remaining scenarios (their slots come back
  /// kCancelled / kDeadlineExceeded). Successful slots are bit-identical
  /// to recoverBatch's.
  [[nodiscard]] std::vector<engine::Expected<PortfolioRecoveryResult>>
  recoverBatchOutcomes(const std::vector<FailureScenario>& scenarios,
                       const engine::CancellationToken& token = {},
                       engine::Engine* eng = nullptr) const;

  /// Objects in a valid dependency order (computed at construction).
  [[nodiscard]] const std::vector<size_t>& topologicalOrder() const noexcept {
    return topoOrder_;
  }

 private:
  /// The dependency/device-queueing schedule, parameterized over how one
  /// object's own recovery is obtained (directly, or through the engine).
  [[nodiscard]] PortfolioRecoveryResult recoverImpl(
      const FailureScenario& scenario,
      const std::function<RecoveryResult(const StorageDesign&,
                                         const FailureScenario&)>& recoveryOf)
      const;

  std::vector<ObjectSpec> objects_;
  std::vector<size_t> topoOrder_;
};

/// Convenience: per-device merged demand view used by the aggregate models
/// (exposed for tests).
[[nodiscard]] std::vector<PlacedDemand> mergedDemands(
    const std::vector<ObjectSpec>& objects);

}  // namespace stordep::multiobject
