#include "multiobject/portfolio.hpp"

#include <algorithm>
#include <map>
#include <queue>

namespace stordep::multiobject {

namespace {

/// Kahn's algorithm over the dependency edges; throws on cycles.
std::vector<size_t> topoSort(const std::vector<ObjectSpec>& objects) {
  std::map<std::string, size_t> index;
  for (size_t i = 0; i < objects.size(); ++i) {
    if (!index.emplace(objects[i].name, i).second) {
      throw PortfolioError("duplicate object name '" + objects[i].name + "'");
    }
  }

  std::vector<std::vector<size_t>> dependents(objects.size());
  std::vector<int> inDegree(objects.size(), 0);
  for (size_t i = 0; i < objects.size(); ++i) {
    for (const std::string& dep : objects[i].dependsOn) {
      const auto it = index.find(dep);
      if (it == index.end()) {
        throw PortfolioError("object '" + objects[i].name +
                             "' depends on unknown object '" + dep + "'");
      }
      if (it->second == i) {
        throw PortfolioError("object '" + objects[i].name +
                             "' depends on itself");
      }
      dependents[it->second].push_back(i);
      ++inDegree[i];
    }
  }

  // Min-index queue keeps the order deterministic and listing-stable.
  std::priority_queue<size_t, std::vector<size_t>, std::greater<>> ready;
  for (size_t i = 0; i < objects.size(); ++i) {
    if (inDegree[i] == 0) ready.push(i);
  }
  std::vector<size_t> order;
  while (!ready.empty()) {
    const size_t i = ready.top();
    ready.pop();
    order.push_back(i);
    for (size_t next : dependents[i]) {
      if (--inDegree[next] == 0) ready.push(next);
    }
  }
  if (order.size() != objects.size()) {
    throw PortfolioError("recovery dependencies contain a cycle");
  }
  return order;
}

}  // namespace

std::vector<PlacedDemand> mergedDemands(
    const std::vector<ObjectSpec>& objects) {
  std::vector<PlacedDemand> all;
  for (const ObjectSpec& object : objects) {
    for (PlacedDemand pd : object.design.allDemands()) {
      // Qualify the technique with the object so cost attribution stays
      // legible ("db/foreground workload" vs "app/foreground workload").
      pd.demand.techniqueName =
          object.name + "/" + pd.demand.techniqueName;
      all.push_back(std::move(pd));
    }
  }
  return all;
}

Portfolio::Portfolio(std::vector<ObjectSpec> objects)
    : objects_(std::move(objects)) {
  if (objects_.empty()) {
    throw PortfolioError("a portfolio needs at least one object");
  }
  topoOrder_ = topoSort(objects_);
}

const ObjectSpec& Portfolio::object(const std::string& name) const {
  const auto it =
      std::find_if(objects_.begin(), objects_.end(),
                   [&](const ObjectSpec& o) { return o.name == name; });
  if (it == objects_.end()) {
    throw PortfolioError("no object named '" + name + "'");
  }
  return *it;
}

UtilizationResult Portfolio::aggregateUtilization() const {
  return computeUtilization(mergedDemands(objects_));
}

Money Portfolio::aggregateOutlays() const {
  Money total = Money::zero();
  for (const auto& outlay : computeOutlays(mergedDemands(objects_))) {
    total += outlay.total();
  }
  return total;
}

PortfolioRecoveryResult Portfolio::recover(
    const FailureScenario& scenario) const {
  return recoverImpl(scenario,
                     [](const StorageDesign& design,
                        const FailureScenario& sc) {
                       return computeRecovery(design, sc);
                     });
}

std::vector<PortfolioRecoveryResult> Portfolio::recoverBatch(
    const std::vector<FailureScenario>& scenarios,
    engine::Engine* eng) const {
  engine::Engine& resolved = eng != nullptr ? *eng : engine::Engine::shared();

  // Canonical design fingerprints, hoisted: each object's design is paired
  // with every scenario.
  std::map<const StorageDesign*, engine::Fingerprint> designFps;
  for (const ObjectSpec& object : objects_) {
    designFps.emplace(&object.design,
                      engine::fingerprintDesign(object.design));
  }

  std::vector<PortfolioRecoveryResult> results(scenarios.size());
  resolved.parallelFor(scenarios.size(), [&](size_t i) {
    const engine::Fingerprint scenarioFp =
        engine::fingerprintScenario(scenarios[i]);
    results[i] = recoverImpl(
        scenarios[i], [&](const StorageDesign& design,
                          const FailureScenario& sc) {
          std::optional<DesignPrecomputation> precomputed;
          return resolved
              .evaluateKeyed(design, sc,
                             engine::combine(designFps.at(&design),
                                             scenarioFp),
                             precomputed)
              .recovery;
        });
  });
  return results;
}

std::vector<engine::Expected<PortfolioRecoveryResult>>
Portfolio::recoverBatchOutcomes(const std::vector<FailureScenario>& scenarios,
                                const engine::CancellationToken& token,
                                engine::Engine* eng) const {
  engine::Engine& resolved = eng != nullptr ? *eng : engine::Engine::shared();

  std::map<const StorageDesign*, engine::Fingerprint> designFps;
  for (const ObjectSpec& object : objects_) {
    designFps.emplace(&object.design,
                      engine::fingerprintDesign(object.design));
  }

  std::vector<engine::Expected<PortfolioRecoveryResult>> results(
      scenarios.size());
  std::vector<char> completed(scenarios.size(), 0);
  resolved.parallelForCancellable(
      scenarios.size(),
      [&](size_t i) {
        try {
          const engine::Fingerprint scenarioFp =
              engine::fingerprintScenario(scenarios[i]);
          results[i] = recoverImpl(
              scenarios[i], [&](const StorageDesign& design,
                                const FailureScenario& sc) {
                std::optional<DesignPrecomputation> precomputed;
                return resolved
                    .evaluateKeyed(design, sc,
                                   engine::combine(designFps.at(&design),
                                                   scenarioFp),
                                   precomputed)
                    .recovery;
              });
        } catch (...) {
          results[i] = engine::errorFromCurrentException();
        }
        completed[i] = 1;
      },
      token);
  // Scenarios the cancelled fan-out never started get the token's error.
  for (size_t i = 0; i < scenarios.size(); ++i) {
    if (completed[i] == 0) results[i] = token.toError();
  }
  return results;
}

PortfolioRecoveryResult Portfolio::recoverImpl(
    const FailureScenario& scenario,
    const std::function<RecoveryResult(const StorageDesign&,
                                       const FailureScenario&)>& recoveryOf)
    const {
  PortfolioRecoveryResult result;
  result.objects.resize(objects_.size());
  result.allRecoverable = true;
  result.totalRecoveryTime = Duration::zero();
  result.worstDataLoss = Duration::zero();

  // When each source device becomes free for the next queued restore.
  std::map<std::string, Duration> deviceFreeAt;
  // Completion time per object index.
  std::vector<Duration> completion(objects_.size(), Duration::infinite());

  for (const size_t i : topoOrder_) {
    const ObjectSpec& object = objects_[i];
    ObjectRecovery& out = result.objects[i];
    out.object = object.name;

    const RecoveryResult own = recoveryOf(object.design, scenario);
    out.recoverable = own.recoverable;
    out.dataLoss = own.dataLoss;
    out.ownDuration = own.recoveryTime;
    if (!own.recoverable) {
      result.allRecoverable = false;
      result.worstDataLoss = Duration::infinite();
      result.totalRecoveryTime = Duration::infinite();
      continue;
    }
    result.worstDataLoss = std::max(result.worstDataLoss, own.dataLoss);

    // Dependencies gate the start.
    Duration earliest = Duration::zero();
    bool depsRecoverable = true;
    for (const std::string& dep : object.dependsOn) {
      const auto it = std::find_if(
          objects_.begin(), objects_.end(),
          [&](const ObjectSpec& o) { return o.name == dep; });
      const auto depIdx = static_cast<size_t>(it - objects_.begin());
      if (!completion[depIdx].isFinite()) depsRecoverable = false;
      earliest = std::max(earliest, completion[depIdx]);
    }
    if (!depsRecoverable) {
      out.recoverable = false;
      result.allRecoverable = false;
      result.totalRecoveryTime = Duration::infinite();
      continue;
    }

    // Restores sharing a source device serialize on it.
    out.sourceDevice = own.timeline.empty()
                           ? std::string{}
                           : own.timeline.front().fromDevice;
    if (!out.sourceDevice.empty()) {
      const auto it = deviceFreeAt.find(out.sourceDevice);
      if (it != deviceFreeAt.end()) {
        earliest = std::max(earliest, it->second);
      }
    }

    out.startTime = earliest;
    out.completionTime = earliest + own.recoveryTime;
    completion[i] = out.completionTime;
    if (!out.sourceDevice.empty()) {
      deviceFreeAt[out.sourceDevice] = out.completionTime;
    }
    result.totalRecoveryTime =
        std::max(result.totalRecoveryTime, out.completionTime);
  }
  return result;
}

}  // namespace stordep::multiobject
