#include "stochastic/evaluator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "core/data_loss.hpp"
#include "core/propagation.hpp"
#include "core/recovery.hpp"
#include "engine/batch.hpp"
#include "engine/thread_pool.hpp"
#include "sim/rng.hpp"

namespace stordep::stochastic {
namespace {

/// Matches the analytic-vs-simulated comparison tolerance used by the
/// differential oracles: bound * (1 + 1e-9) + 1e-6 absorbs the restore-leg
/// floating-point noise without hiding real violations.
[[nodiscard]] bool withinRtBound(double observedMax, Duration bound) {
  if (!bound.isFinite()) return true;
  return observedMax <= bound.secs() * (1.0 + 1e-9) + 1e-6;
}

[[nodiscard]] bool withinDlBound(double observedMax, Duration bound) {
  if (!bound.isFinite()) return true;
  const double b = bound.secs();
  return observedMax <= b + 1e-6 * std::max(1.0, b);
}

/// One draw from a duration process, in seconds. Infinite means "never".
[[nodiscard]] double sampleSecs(const ProcessSpec& process, sim::Rng& rng) {
  if (!process.mean.isFinite()) {
    return std::numeric_limits<double>::infinity();
  }
  switch (process.kind) {
    case ProcessKind::kExponential:
      return rng.exponential(process.mean.secs());
    case ProcessKind::kWeibull:
      return rng.weibull(process.mean.secs(), process.shape);
    case ProcessKind::kFixed:
      return process.mean.secs();
  }
  return std::numeric_limits<double>::infinity();
}

/// Runaway guard for degenerate processes (zero/near-zero means): no sane
/// reliability config produces this many arrivals in one mission window.
constexpr int kMaxArrivalsPerProcess = 100'000;

struct MissionEvent {
  double time = 0;
  int kind = 0;  ///< 0 = device failure, 1 = site shock
  int index = 0;
};

/// Seconds elapsed since `start` (trial-loop wall time).
[[nodiscard]] double secsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

/// Slot layout: the plan kernel and the legacy body fill the same sample
/// fields, so the sequential reduction below is shared between both paths.
struct StochasticEvaluator::ConditionalTrial : ConditionalSample {
  bool filled = false;
};

struct StochasticEvaluator::MissionTrial : MissionSample {
  bool filled = false;
};

StochasticEvaluator::StochasticEvaluator(StorageDesign design,
                                         StochasticOptions options)
    : options_(std::move(options)),
      sim_(std::make_unique<sim::RpLifecycleSimulator>(std::move(design),
                                                       options_.sim)) {
  sim_->run();
  recovery_ = std::make_unique<sim::RecoverySimulator>(*sim_);
  if (options_.usePlan) {
    plan_ = TrialPlan::compile(*sim_, options_.reliability);
  }
}

StochasticEvaluator::~StochasticEvaluator() = default;

const StorageDesign& StochasticEvaluator::design() const noexcept {
  return sim_->design();
}

bool StochasticEvaluator::runTrials(
    int count, const std::function<void(std::size_t)>& body) const {
  const engine::CancellationToken& token = options_.token;
  const auto n = static_cast<std::size_t>(count);
  if (options_.threads == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      if (token.cancelled()) return false;
      body(i);
    }
    return true;
  }
  // The pool only drains promptly on cancellation; polling inside the
  // wrapped body keeps the completed-trial accounting tight.
  const auto wrapped = [&](std::size_t i) {
    if (token.cancelled()) return;
    body(i);
  };
  if (options_.threads <= 0) {
    return engine::ThreadPool::shared().parallelForCancellable(n, wrapped,
                                                               token);
  }
  engine::ThreadPool pool(options_.threads);
  return pool.parallelForCancellable(n, wrapped, token);
}

engine::Expected<ScenarioDistribution> StochasticEvaluator::distributionFor(
    const FailureScenario& scenario) const {
  if (options_.trials <= 0) {
    return engine::EvalError{engine::EvalErrorCode::kInvalidDesign,
                             "stochastic trials must be positive"};
  }
  const double lo = sim_->warmupTime();
  const double hi = sim_->horizon();
  if (!(lo < hi)) {
    return engine::EvalError{
        engine::EvalErrorCode::kInvalidDesign,
        "simulation horizon too short to reach steady state; raise "
        "StochasticOptions::sim.horizon"};
  }

  const StorageDesign& design = sim_->design();
  const BusinessRequirements& business = design.business();
  const int trials = options_.trials;
  std::vector<ConditionalTrial> slots(static_cast<std::size_t>(trials));
  const sim::Rng root(options_.seed);

  // Per-trial sampling. DL comes from the simulator's bestVisibleRp view
  // (the quantity the FailureInjector oracle bounds by analytic +
  // rpCaptureSlack); RT and payload come from the restorable-RP replay (the
  // quantity bounded by the analytic worst-case recovery time). The plan
  // kernel replays the same draws through the compiled tables,
  // bit-identically.
  std::function<void(std::size_t)> body;
  TrialPlan::ScenarioRow row;
  if (plan_ != nullptr) {
    row = plan_->compileScenario(scenario);
    body = [&](std::size_t i) {
      sim::Rng rng = root.split(i);
      ConditionalTrial& t = slots[i];
      plan_->conditionalTrial(row, rng, t);
      t.filled = true;
    };
  } else {
    body = [&](std::size_t i) {
      sim::Rng rng = root.split(i);
      ConditionalTrial& t = slots[i];
      const double failTime = rng.uniform(lo, hi);
      const auto obs = recovery_->observedRecovery(scenario, failTime);
      const Duration dl = sim_->observedDataLoss(scenario, failTime);
      if (obs && obs->recoveryTime.isFinite() && dl.isFinite()) {
        t.recoverable = true;
        t.rt = obs->recoveryTime.secs();
        t.dl = dl.secs();
        t.payload = obs->payload.bytes();
        t.penalty = (business.outagePenalty(obs->recoveryTime) +
                     business.lossPenalty(dl))
                        .usd();
      }
      t.filled = true;
    };
  }

  const auto start = std::chrono::steady_clock::now();
  const bool ranAll = runTrials(trials, body);
  const double wallSeconds = secsSince(start);
  int completed = 0;
  for (const ConditionalTrial& t : slots) completed += t.filled ? 1 : 0;
  if (!ranAll || completed < trials) {
    return engine::EvalError{
        options_.token.reason(),
        "stochastic run cancelled after " + std::to_string(completed) +
            " of " + std::to_string(trials) + " trials"};
  }
  if (options_.trace != nullptr) {
    options_.trace->conditional.assign(slots.begin(), slots.end());
  }

  // Sequential reduction in trial order: bit-identical at any thread count.
  ScenarioDistribution out;
  out.trials = trials;
  out.wallSeconds = wallSeconds;
  out.trialsPerSec =
      wallSeconds > 0 ? static_cast<double>(trials) / wallSeconds : 0.0;
  out.usedPlan = plan_ != nullptr;
  const auto expected = static_cast<std::uint64_t>(trials);
  DistributionAccumulator rtAcc(expected, options_.ciBatches);
  DistributionAccumulator dlAcc(expected, options_.ciBatches);
  DistributionAccumulator penAcc(expected, options_.ciBatches);
  double paySum = 0;
  double payMin = 0;
  double payMax = 0;
  for (const ConditionalTrial& t : slots) {
    if (!t.recoverable) {
      ++out.unrecoverable;
      continue;
    }
    rtAcc.add(t.rt);
    dlAcc.add(t.dl);
    penAcc.add(t.penalty);
    if (rtAcc.count() == 1) {
      payMin = t.payload;
      payMax = t.payload;
    } else {
      payMin = std::min(payMin, t.payload);
      payMax = std::max(payMax, t.payload);
    }
    paySum += t.payload;
  }
  out.rt = rtAcc.finalize();
  out.dl = dlAcc.finalize();
  out.penalty = penAcc.finalize();
  const std::uint64_t recovered = rtAcc.count();
  if (recovered > 0) {
    out.minPayload = Bytes{payMin};
    out.meanPayload = Bytes{paySum / static_cast<double>(recovered)};
    out.maxPayload = Bytes{payMax};
  }

  // Analytic worst case and bound checks.
  const RecoveryResult analytic = computeRecovery(design, scenario);
  out.analyticWorstRt = analytic.recoveryTime;
  out.analyticWorstDl = analytic.dataLoss;
  if (analytic.recoverable) {
    out.worstCasePenalty = business.outagePenalty(analytic.recoveryTime) +
                           business.lossPenalty(analytic.dataLoss);
  } else {
    out.worstCasePenalty =
        dollars(std::numeric_limits<double>::infinity());
  }
  if (const auto source = chooseRecoverySource(design, scenario)) {
    out.dlSlack = rpCaptureSlack(design, source->level);
  }
  if (out.rt.count > 0) {
    out.rtBoundHolds = withinRtBound(out.rt.max, analytic.recoveryTime);
    if (analytic.recoveryTime.isFinite() && analytic.recoveryTime.secs() > 0) {
      out.rtTightness = out.rt.max / analytic.recoveryTime.secs();
    } else {
      out.rtTightness = 1.0;
    }
  }
  if (out.dl.count > 0) {
    out.dlBoundHolds = withinDlBound(out.dl.max, analytic.dataLoss + out.dlSlack);
  }

  // Unrecoverable trials carry no finite penalty; they are excluded from the
  // mean and surfaced through `unrecoverable` instead. A scenario with no
  // recoverable instant at all is infinitely expensive.
  out.expectedPenalty =
      recovered > 0 ? dollars(out.penalty.mean)
                    : dollars(std::numeric_limits<double>::infinity());
  return out;
}

engine::Expected<AnnualizedRisk> StochasticEvaluator::annualizedRisk() const {
  if (options_.trials <= 0) {
    return engine::EvalError{engine::EvalErrorCode::kInvalidDesign,
                             "stochastic trials must be positive"};
  }
  const double lo = sim_->warmupTime();
  const double hi = sim_->horizon();
  if (!(lo < hi)) {
    return engine::EvalError{
        engine::EvalErrorCode::kInvalidDesign,
        "simulation horizon too short to reach steady state; raise "
        "StochasticOptions::sim.horizon"};
  }
  const double window = options_.reliability.missionWindow.secs();
  if (!(window > 0) || !options_.reliability.missionWindow.isFinite()) {
    return engine::EvalError{engine::EvalErrorCode::kInvalidDesign,
                             "mission window must be positive and finite"};
  }
  if (options_.reliability.siteShockAnnualRate < 0) {
    return engine::EvalError{engine::EvalErrorCode::kInvalidDesign,
                             "site shock rate must be non-negative"};
  }

  const StorageDesign& design = sim_->design();
  const BusinessRequirements& business = design.business();
  const auto resolved = resolveReliability(design, options_.reliability);
  if (resolved.empty()) {
    return engine::EvalError{engine::EvalErrorCode::kInvalidDesign,
                             "design has no storage devices to fail"};
  }

  // Scenario per failure source, built once: device failures plus (when the
  // common-shock rate is set) one whole-site disaster per distinct site.
  std::vector<FailureScenario> deviceScenarios;
  deviceScenarios.reserve(resolved.size());
  for (const auto& [device, rel] : resolved) {
    deviceScenarios.push_back(FailureScenario::arrayFailure(device->name()));
  }
  std::vector<std::string> sites;
  for (const auto& [device, rel] : resolved) {
    const std::string& site = device->location().site;
    if (std::find(sites.begin(), sites.end(), site) == sites.end()) {
      sites.push_back(site);
    }
  }
  std::vector<FailureScenario> siteScenarios;
  siteScenarios.reserve(sites.size());
  for (const std::string& site : sites) {
    siteScenarios.push_back(FailureScenario::siteDisaster(site));
  }
  const double shockRate = options_.reliability.siteShockAnnualRate;
  const double shockMeanSecs =
      shockRate > 0 ? Duration::kYear / shockRate
                    : std::numeric_limits<double>::infinity();

  const int trials = options_.trials;
  std::vector<MissionTrial> slots(static_cast<std::size_t>(trials));
  const sim::Rng root(options_.seed);

  const auto sampleMissionWindow = [&](std::size_t i) {
    sim::Rng rng = root.split(i);
    MissionTrial& t = slots[i];

    // Event staging reused across this thread's trials: reserved once,
    // cleared per trial (the per-trial churn was the allocator hot spot).
    static thread_local std::vector<MissionEvent> events;
    events.clear();

    // Renewal process per device: fail, stay down for a repair draw, run
    // until the next failure draw; repeat across the mission window. The
    // repair draw precedes the next failure draw (the plan kernel relies
    // on this order being pinned down).
    for (std::size_t d = 0; d < resolved.size(); ++d) {
      const DeviceReliability& rel = resolved[d].second;
      double time = sampleSecs(rel.failure, rng);
      int arrivals = 0;
      while (time < window && arrivals < kMaxArrivalsPerProcess) {
        events.push_back({time, 0, static_cast<int>(d)});
        ++arrivals;
        const double repairDraw = sampleSecs(rel.repair, rng);
        const double failureDraw = sampleSecs(rel.failure, rng);
        const double gap = repairDraw + failureDraw;
        if (!(gap > 0)) break;
        time += gap;
      }
    }
    // Marshall–Olkin-style common shocks: a Poisson stream per site that
    // takes out every device there at once (correlated failures).
    if (shockRate > 0) {
      for (std::size_t s = 0; s < sites.size(); ++s) {
        double time = rng.exponential(shockMeanSecs);
        int arrivals = 0;
        while (time < window && arrivals < kMaxArrivalsPerProcess) {
          events.push_back({time, 1, static_cast<int>(s)});
          ++arrivals;
          time += rng.exponential(shockMeanSecs);
        }
      }
    }
    std::sort(events.begin(), events.end(),
              [](const MissionEvent& a, const MissionEvent& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.kind != b.kind) return a.kind < b.kind;
                return a.index < b.index;
              });

    // Replay each outage at an independent uniformly drawn phase of the
    // steady-state backup cycle (the mission clock and the RP-schedule
    // clock are incommensurable, so the phase at failure is ~uniform).
    t.eventRtDl.reserve(events.size());
    for (const MissionEvent& e : events) {
      const FailureScenario& scenario =
          e.kind == 0 ? deviceScenarios[static_cast<std::size_t>(e.index)]
                      : siteScenarios[static_cast<std::size_t>(e.index)];
      const double failTime = rng.uniform(lo, hi);
      const auto obs = recovery_->observedRecovery(scenario, failTime);
      const Duration dl = sim_->observedDataLoss(scenario, failTime);
      ++t.events;
      if (!obs || !obs->recoveryTime.isFinite() || !dl.isFinite()) {
        ++t.unrecoverable;
        t.lossBytes += design.workload().dataCap().bytes();
        continue;
      }
      const double rt = obs->recoveryTime.secs();
      t.eventRtDl.emplace_back(rt, dl.secs());
      t.penalty +=
          (business.outagePenalty(obs->recoveryTime) + business.lossPenalty(dl))
              .usd();
      t.lossBytes += design.workload().uniqueBytes(dl).bytes();
      t.downtimeSecs += rt;
    }
    t.filled = true;
  };

  std::function<void(std::size_t)> body;
  if (plan_ != nullptr && plan_->missionReady()) {
    body = [&](std::size_t i) {
      sim::Rng rng = root.split(i);
      MissionTrial& t = slots[i];
      plan_->missionTrial(rng, engine::Engine::threadArena(), t);
      t.filled = true;
    };
  } else {
    body = sampleMissionWindow;
  }

  const auto start = std::chrono::steady_clock::now();
  const bool ranAll = runTrials(trials, body);
  const double wallSeconds = secsSince(start);
  int completed = 0;
  for (const MissionTrial& t : slots) completed += t.filled ? 1 : 0;
  if (!ranAll || completed < trials) {
    return engine::EvalError{
        options_.token.reason(),
        "stochastic run cancelled after " + std::to_string(completed) +
            " of " + std::to_string(trials) + " trials"};
  }
  if (options_.trace != nullptr) {
    options_.trace->mission.assign(slots.begin(), slots.end());
  }

  // Sequential reduction in trial order; annualize by window scale.
  AnnualizedRisk out;
  out.trials = trials;
  out.missionWindow = options_.reliability.missionWindow;
  out.wallSeconds = wallSeconds;
  out.trialsPerSec =
      wallSeconds > 0 ? static_cast<double>(trials) / wallSeconds : 0.0;
  out.usedPlan = plan_ != nullptr && plan_->missionReady();
  const double scale = Duration::kYear / window;
  const auto expected = static_cast<std::uint64_t>(trials);
  DistributionAccumulator penAcc(expected, options_.ciBatches);
  DistributionAccumulator lossAcc(expected, options_.ciBatches);
  DistributionAccumulator eventRtAcc;
  DistributionAccumulator eventDlAcc;
  std::uint64_t eventSum = 0;
  int unrecoverableTrials = 0;
  double downtimeSum = 0;
  for (const MissionTrial& t : slots) {
    eventSum += static_cast<std::uint64_t>(t.events);
    if (t.unrecoverable > 0) ++unrecoverableTrials;
    penAcc.add(t.penalty * scale);
    lossAcc.add(t.lossBytes * scale);
    downtimeSum += t.downtimeSecs;
    for (const auto& [rt, dl] : t.eventRtDl) {
      eventRtAcc.add(rt);
      eventDlAcc.add(dl);
    }
  }
  const auto n = static_cast<double>(trials);
  out.eventsPerYear = static_cast<double>(eventSum) / n * scale;
  out.unrecoverableTrialFraction = static_cast<double>(unrecoverableTrials) / n;
  out.annualPenalty = penAcc.finalize();
  out.expectedAnnualPenalty = dollars(out.annualPenalty.mean);
  out.penaltyCi95 = dollars(out.annualPenalty.ci95);
  const Distribution loss = lossAcc.finalize();
  out.expectedAnnualLossBytes = Bytes{loss.mean};
  out.lossBytesCi95 = Bytes{loss.ci95};
  out.expectedAnnualDowntimeHours = downtimeSum / n * scale / Duration::kHour;
  out.eventRt = eventRtAcc.finalize();
  out.eventDl = eventDlAcc.finalize();
  return out;
}

}  // namespace stordep::stochastic
