// trial_plan.hpp — compile-once / sample-many fast path for Monte-Carlo
// trials.
//
// StochasticEvaluator's legacy trial loop re-drives the full simulator
// machinery per draw: RecoverySimulator::observedRecovery rebuilds resolved
// restore paths (strings included) through recoverFrom(), observedDataLoss
// re-walks SimRp vectors, and mission sampling churns std::vector event
// buffers per trial. A TrialPlan front-loads everything that does not
// depend on the sampled failure instant:
//
//   compile          flattens the run RP-lifecycle simulation into a
//                    sim::TimelineTable, compiles the design through the
//                    engine::EvalPlan (for destroyed-level masks and
//                    resolved restore legs), and pre-enumerates the mission
//                    failure sources — per-device failure/repair process
//                    rows in resolveReliability() order plus one site-
//                    disaster row per distinct site — each with its
//                    recovery legs already resolved per source level.
//   conditionalTrial one uniform failure-instant draw replayed through
//                    branch-light table lookups; no heap allocation.
//   missionTrial     one mission window: renewal-process event generation
//                    staged in a BumpArena frame (rewound on return), then
//                    the same per-instant replay per event.
//
// Bit-identity contract: trial i draws random numbers in exactly the legacy
// order from the same (seed, i) substream, and every floating-point
// expression mirrors the legacy path (recovery_simulator.cpp,
// rp_simulator.cpp, recovery.cpp) operation for operation — so samples are
// bit-identical to the legacy loop at any thread count. The stochastic-plan
// differential oracle (src/verify/differential.cpp) enforces per-trial
// equality over the generated corpus.
//
// Unplannable designs (EvalPlan::compile returns nullptr) have no trial
// plan either; StochasticEvaluator falls back to the legacy loop.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/failure.hpp"
#include "core/reliability.hpp"
#include "engine/arena.hpp"
#include "engine/plan.hpp"
#include "sim/rng.hpp"
#include "sim/rp_simulator.hpp"
#include "sim/timeline_table.hpp"

namespace stordep::stochastic {

/// One conditional trial's outcome (the fields the reduction consumes).
/// An unrecoverable trial leaves the numeric fields zero.
struct ConditionalSample {
  bool recoverable = false;
  double rt = 0;       ///< seconds
  double dl = 0;       ///< seconds
  double payload = 0;  ///< bytes
  double penalty = 0;  ///< dollars
};

/// One mission-window trial's aggregates.
struct MissionSample {
  int events = 0;
  int unrecoverable = 0;
  double penalty = 0;       ///< dollars over the window (recoverable events)
  double lossBytes = 0;     ///< bytes lost over the window
  double downtimeSecs = 0;  ///< seconds of outage over the window
  std::vector<std::pair<double, double>> eventRtDl;  ///< (rt, dl) seconds
};

/// Exact per-trial record of a stochastic run, in trial order. Attached via
/// StochasticOptions::trace by the plan-vs-legacy differential oracle and
/// the determinism tests; production callers leave it null.
struct TrialTrace {
  std::vector<ConditionalSample> conditional;
  std::vector<MissionSample> mission;
};

class TrialPlan {
 public:
  /// Compiles `simulator` (which must have been run()) plus the resolved
  /// `reliability` block. Returns nullptr when the design is not plannable
  /// (caller must use the legacy trial loop). The plan copies or owns
  /// everything it needs; the simulator may be destroyed afterwards.
  [[nodiscard]] static std::shared_ptr<const TrialPlan> compile(
      const sim::RpLifecycleSimulator& simulator,
      const ReliabilitySpec& reliability);

  /// One failure scenario flattened for the per-instant replay: destroyed-
  /// level mask, payload scalars, and the restore path resolved per source
  /// level. Compile once per distributionFor() call, share across trials.
  struct ScenarioRow {
    FailureScope scope = FailureScope::kArray;
    double targetAgeSecs = 0;
    bool targetAgeZero = true;
    Bytes baseSize{0};
    /// min(1.0, baseSize / dataCap): the incremental-replay scale factor.
    double payloadScale = 1.0;
    std::vector<char> destroyed;  ///< [level] levelDestroyed()
    std::vector<engine::EvalPlan::ResolvedRecovery> recovery;  ///< [level]
  };

  [[nodiscard]] ScenarioRow compileScenario(
      const FailureScenario& scenario) const;

  /// One conditional trial: draws the failure instant from `rng` (exactly
  /// one uniform draw, matching the legacy loop) and replays it.
  void conditionalTrial(const ScenarioRow& row, sim::Rng& rng,
                        ConditionalSample& out) const;

  /// False when the reliability block resolved to no storage devices;
  /// missionTrial must not be called (the evaluator reports the same
  /// structured error as the legacy path).
  [[nodiscard]] bool missionReady() const noexcept { return missionReady_; }

  /// One mission-window trial. Event staging lives in an `arena` frame and
  /// is rewound before returning; `out`'s eventRtDl vector is the only
  /// allocation (reserved to the event count).
  void missionTrial(sim::Rng& rng, engine::BumpArena& arena,
                    MissionSample& out) const;

 private:
  explicit TrialPlan(const sim::RpLifecycleSimulator& simulator);

  /// observedRecovery + observedDataLoss + penalty at one failure instant.
  void replayInstant(const ScenarioRow& row, double failTime,
                     ConditionalSample& out) const;

  sim::TimelineTable table_;
  std::shared_ptr<const engine::EvalPlan> evalPlan_;
  WorkloadSpec workload_;
  BusinessRequirements business_;
  int levelCount_ = 0;
  double lo_ = 0;  ///< warmupTime: sampled instants are uniform in [lo, hi)
  double hi_ = 0;  ///< horizon
  double dataCapBytes_ = 0;
  /// Per level: uniqueBytes(differential step) — the per-differential
  /// replay size, constant across trials. Zero for non-differential levels.
  std::vector<Bytes> stepUnique_;

  // ---- Mission-window rows (pre-enumerated failure sources) ----------
  struct DeviceProcess {
    ProcessSpec failure;
    ProcessSpec repair;
  };
  std::vector<DeviceProcess> deviceRel_;  ///< resolveReliability() order
  std::vector<ScenarioRow> deviceRows_;   ///< arrayFailure per device
  std::vector<ScenarioRow> siteRows_;     ///< siteDisaster per distinct site
  double windowSecs_ = 0;
  double shockRate_ = 0;
  double shockMeanSecs_ = 0;
  bool missionReady_ = false;
};

}  // namespace stordep::stochastic
