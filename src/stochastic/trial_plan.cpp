#include "stochastic/trial_plan.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <string>

namespace stordep::stochastic {
namespace {

/// One draw from a duration process, in seconds — the same expressions, in
/// the same order, as the legacy loop's sampleSecs (evaluator.cpp).
[[nodiscard]] double sampleSecs(const ProcessSpec& process, sim::Rng& rng) {
  if (!process.mean.isFinite()) {
    return std::numeric_limits<double>::infinity();
  }
  switch (process.kind) {
    case ProcessKind::kExponential:
      return rng.exponential(process.mean.secs());
    case ProcessKind::kWeibull:
      return rng.weibull(process.mean.secs(), process.shape);
    case ProcessKind::kFixed:
      return process.mean.secs();
  }
  return std::numeric_limits<double>::infinity();
}

/// Runaway guard for degenerate processes; must match the legacy loop.
constexpr int kMaxArrivalsPerProcess = 100'000;

}  // namespace

TrialPlan::TrialPlan(const sim::RpLifecycleSimulator& simulator)
    : table_(simulator),
      workload_(simulator.design().workload()),
      business_(simulator.design().business()) {}

std::shared_ptr<const TrialPlan> TrialPlan::compile(
    const sim::RpLifecycleSimulator& simulator,
    const ReliabilitySpec& reliability) {
  const StorageDesign& design = simulator.design();
  auto evalPlan = engine::EvalPlan::compile(design);
  if (evalPlan == nullptr) return nullptr;

  std::shared_ptr<TrialPlan> plan(new TrialPlan(simulator));
  plan->evalPlan_ = std::move(evalPlan);
  plan->levelCount_ = design.levelCount();
  plan->lo_ = simulator.warmupTime();
  plan->hi_ = simulator.horizon();
  plan->dataCapBytes_ = design.workload().dataCap().bytes();

  plan->stepUnique_.resize(static_cast<std::size_t>(plan->levelCount_),
                           Bytes{0});
  for (int level = 1; level < plan->levelCount_; ++level) {
    const auto& t = plan->table_;
    if (t.isBackup(level) && !t.fullOnly(level) && !t.cumulative(level)) {
      plan->stepUnique_[static_cast<std::size_t>(level)] =
          design.workload().uniqueBytes(Duration{t.stepSecs(level)});
    }
  }

  // Mission failure sources, pre-enumerated exactly as the legacy loop
  // builds them: a scenario row per storage device in resolveReliability()
  // order, plus a site-disaster row per distinct site (first-seen order).
  const auto resolved = resolveReliability(design, reliability);
  plan->missionReady_ = !resolved.empty();
  plan->windowSecs_ = reliability.missionWindow.secs();
  plan->shockRate_ = reliability.siteShockAnnualRate;
  plan->shockMeanSecs_ = plan->shockRate_ > 0
                             ? Duration::kYear / plan->shockRate_
                             : std::numeric_limits<double>::infinity();
  plan->deviceRel_.reserve(resolved.size());
  plan->deviceRows_.reserve(resolved.size());
  std::vector<std::string> sites;
  for (const auto& [device, rel] : resolved) {
    plan->deviceRel_.push_back({rel.failure, rel.repair});
    plan->deviceRows_.push_back(
        plan->compileScenario(FailureScenario::arrayFailure(device->name())));
    const std::string& site = device->location().site;
    if (std::find(sites.begin(), sites.end(), site) == sites.end()) {
      sites.push_back(site);
    }
  }
  plan->siteRows_.reserve(sites.size());
  for (const std::string& site : sites) {
    plan->siteRows_.push_back(
        plan->compileScenario(FailureScenario::siteDisaster(site)));
  }
  return plan;
}

TrialPlan::ScenarioRow TrialPlan::compileScenario(
    const FailureScenario& scenario) const {
  ScenarioRow row;
  row.scope = scenario.scope;
  row.targetAgeSecs = scenario.recoveryTargetAge.secs();
  row.targetAgeZero = scenario.recoveryTargetAge == Duration::zero();
  row.baseSize = scenario.recoverySize.value_or(workload_.dataCap());
  row.payloadScale = std::min(1.0, row.baseSize / workload_.dataCap());
  row.destroyed = evalPlan_->destroyedLevels(scenario);
  row.recovery.resize(static_cast<std::size_t>(levelCount_));
  for (int level = 1; level < levelCount_; ++level) {
    row.recovery[static_cast<std::size_t>(level)] =
        evalPlan_->resolveRecovery(scenario, level);
  }
  return row;
}

void TrialPlan::replayInstant(const ScenarioRow& row, double failTime,
                              ConditionalSample& out) const {
  out.recoverable = false;
  out.rt = 0;
  out.dl = 0;
  out.payload = 0;
  out.penalty = 0;

  const double targetTime = failTime - row.targetAgeSecs;

  // observedRecovery's source choice: best usable RP across levels —
  // minimal loss, ties to the lower level.
  int bestLevel = -1;
  sim::TimelineTable::Hit bestHit;
  Duration bestLoss = Duration::infinite();
  for (int level = 1; level < levelCount_; ++level) {
    if (row.destroyed[static_cast<std::size_t>(level)]) continue;
    const auto hit = table_.bestUsable(level, failTime, targetTime);
    if (!hit) continue;
    const Duration loss{targetTime - hit->dataTime};
    if (loss < bestLoss) {
      bestLoss = loss;
      bestLevel = level;
      bestHit = *hit;
    }
  }

  // observedDataLoss, independently of the recovery choice (the live
  // primary serves "restore to now" even though it is never a source).
  Duration dl = Duration::infinite();
  for (int level = 0; level < levelCount_; ++level) {
    if (row.destroyed[static_cast<std::size_t>(level)]) continue;
    if (level == 0) {
      if (row.scope != FailureScope::kDataObject && row.targetAgeZero) {
        dl = std::min(dl, Duration::zero());
      }
      continue;
    }
    const auto hit = table_.bestVisible(level, failTime, targetTime);
    if (!hit) continue;
    dl = std::min(dl, Duration{targetTime - hit->dataTime});
  }

  if (bestLevel < 0) return;

  // restorePayloadFor: a full (or non-backup, or degenerate chain) restores
  // the base size; an incremental adds its replayed changes.
  Bytes payload = row.baseSize;
  if (table_.isBackup(bestLevel) && !table_.fullOnly(bestLevel) &&
      !bestHit.isFull) {
    if (const auto fullData =
            table_.baseFullDataTime(bestLevel, bestHit, failTime)) {
      const Duration span{bestHit.dataTime - *fullData};
      Bytes incrBytes{0};
      if (table_.cumulative(bestLevel)) {
        incrBytes = workload_.uniqueBytes(span);
      } else {
        const double stepSecs = table_.stepSecs(bestLevel);
        const double count = stepSecs > 0 ? span.secs() / stepSecs : 0.0;
        incrBytes = stepUnique_[static_cast<std::size_t>(bestLevel)] * count;
      }
      payload = row.baseSize + incrBytes * row.payloadScale;
    }
  }

  const Duration rt = engine::EvalPlan::runResolvedLegs(
      row.recovery[static_cast<std::size_t>(bestLevel)], payload);
  if (!rt.isFinite() || !dl.isFinite()) return;
  out.recoverable = true;
  out.rt = rt.secs();
  out.dl = dl.secs();
  out.payload = payload.bytes();
  out.penalty =
      (business_.outagePenalty(rt) + business_.lossPenalty(dl)).usd();
}

void TrialPlan::conditionalTrial(const ScenarioRow& row, sim::Rng& rng,
                                 ConditionalSample& out) const {
  const double failTime = rng.uniform(lo_, hi_);
  replayInstant(row, failTime, out);
}

void TrialPlan::missionTrial(sim::Rng& rng, engine::BumpArena& arena,
                             MissionSample& out) const {
  out.events = 0;
  out.unrecoverable = 0;
  out.penalty = 0;
  out.lossBytes = 0;
  out.downtimeSecs = 0;
  out.eventRtDl.clear();

  engine::BumpArena::Frame frame(arena);
  struct Event {
    double time;
    std::int32_t kind;  ///< 0 = device failure, 1 = site shock
    std::int32_t index;
  };
  std::size_t cap = 64;
  Event* events = arena.array<Event>(cap);
  std::size_t count = 0;
  const auto push = [&](double time, std::int32_t kind, std::int32_t index) {
    if (count == cap) {
      Event* grown = arena.array<Event>(cap * 2);
      std::memcpy(grown, events, count * sizeof(Event));
      events = grown;
      cap *= 2;
    }
    events[count++] = Event{time, kind, index};
  };

  // Renewal process per device, in the legacy draw order: the repair draw
  // precedes the next failure draw within each gap.
  for (std::size_t d = 0; d < deviceRel_.size(); ++d) {
    const DeviceProcess& rel = deviceRel_[d];
    double time = sampleSecs(rel.failure, rng);
    int arrivals = 0;
    while (time < windowSecs_ && arrivals < kMaxArrivalsPerProcess) {
      push(time, 0, static_cast<std::int32_t>(d));
      ++arrivals;
      const double repairDraw = sampleSecs(rel.repair, rng);
      const double failureDraw = sampleSecs(rel.failure, rng);
      const double gap = repairDraw + failureDraw;
      if (!(gap > 0)) break;
      time += gap;
    }
  }
  // Marshall–Olkin-style common shocks: a Poisson stream per site.
  if (shockRate_ > 0) {
    for (std::size_t s = 0; s < siteRows_.size(); ++s) {
      double time = rng.exponential(shockMeanSecs_);
      int arrivals = 0;
      while (time < windowSecs_ && arrivals < kMaxArrivalsPerProcess) {
        push(time, 1, static_cast<std::int32_t>(s));
        ++arrivals;
        time += rng.exponential(shockMeanSecs_);
      }
    }
  }
  // Same comparator as the legacy sort; it is a strict total order on any
  // generated set (same-source events are strictly increasing in time), so
  // the sorted sequence is unique — container differences cannot matter.
  std::sort(events, events + count, [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.index < b.index;
  });

  out.eventRtDl.reserve(count);
  ConditionalSample sample;
  for (std::size_t e = 0; e < count; ++e) {
    const ScenarioRow& row =
        events[e].kind == 0
            ? deviceRows_[static_cast<std::size_t>(events[e].index)]
            : siteRows_[static_cast<std::size_t>(events[e].index)];
    const double failTime = rng.uniform(lo_, hi_);
    replayInstant(row, failTime, sample);
    ++out.events;
    if (!sample.recoverable) {
      ++out.unrecoverable;
      out.lossBytes += dataCapBytes_;
      continue;
    }
    out.eventRtDl.emplace_back(sample.rt, sample.dl);
    out.penalty += sample.penalty;
    out.lossBytes += workload_.uniqueBytes(Duration{sample.dl}).bytes();
    out.downtimeSecs += sample.rt;
  }
}

}  // namespace stordep::stochastic
