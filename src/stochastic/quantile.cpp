#include "stochastic/quantile.hpp"

#include <algorithm>
#include <cmath>

namespace stordep::stochastic {

P2Quantile::P2Quantile(double p) : p_(p) {
  for (int i = 0; i < 5; ++i) {
    q_[i] = 0;
    n_[i] = i + 1;
  }
  want_[0] = 1;
  want_[1] = 1 + 2 * p;
  want_[2] = 1 + 4 * p;
  want_[3] = 3 + 2 * p;
  want_[4] = 5;
  dwant_[0] = 0;
  dwant_[1] = p / 2;
  dwant_[2] = p;
  dwant_[3] = (1 + p) / 2;
  dwant_[4] = 1;
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    q_[count_++] = x;
    if (count_ == 5) std::sort(q_, q_ + 5);
    return;
  }

  // Locate the cell and update the extreme markers.
  int k;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x >= q_[4]) {
    q_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= q_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) n_[i] += 1;
  for (int i = 0; i < 5; ++i) want_[i] += dwant_[i];
  ++count_;

  // Adjust the three interior markers toward their desired positions,
  // parabolic when the result stays ordered, linear otherwise.
  for (int i = 1; i <= 3; ++i) {
    const double d = want_[i] - n_[i];
    if ((d >= 1 && n_[i + 1] - n_[i] > 1) ||
        (d <= -1 && n_[i - 1] - n_[i] < -1)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      const double parabolic =
          q_[i] + sign / (n_[i + 1] - n_[i - 1]) *
                      ((n_[i] - n_[i - 1] + sign) * (q_[i + 1] - q_[i]) /
                           (n_[i + 1] - n_[i]) +
                       (n_[i + 1] - n_[i] - sign) * (q_[i] - q_[i - 1]) /
                           (n_[i] - n_[i - 1]));
      if (q_[i - 1] < parabolic && parabolic < q_[i + 1]) {
        q_[i] = parabolic;
      } else {
        const int j = i + (sign > 0 ? 1 : -1);
        q_[i] += sign * (q_[j] - q_[i]) / (n_[j] - n_[i]);
      }
      n_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0;
  if (count_ < 5) {
    // Exact small-sample quantile: the ceil(p*n)-th order statistic.
    double sorted[5];
    std::copy(q_, q_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    const auto n = static_cast<double>(count_);
    auto rank = static_cast<std::uint64_t>(std::ceil(p_ * n));
    if (rank < 1) rank = 1;
    if (rank > count_) rank = count_;
    return sorted[rank - 1];
  }
  return q_[2];
}

DistributionAccumulator::DistributionAccumulator(std::uint64_t expectedCount,
                                                 int batches)
    : p50_(0.50), p95_(0.95), p99_(0.99) {
  batches_ = std::clamp(batches, 2, 64);
  if (expectedCount >= static_cast<std::uint64_t>(2 * batches_)) {
    batchSize_ = expectedCount / static_cast<std::uint64_t>(batches_);
  }
  for (int i = 0; i < 64; ++i) {
    batchSum_[i] = 0;
    batchCount_[i] = 0;
  }
}

void DistributionAccumulator::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  mean_ += (x - mean_) / static_cast<double>(count_ + 1);
  p50_.add(x);
  p95_.add(x);
  p99_.add(x);
  if (batchSize_ > 0) {
    const auto b = static_cast<int>(
        std::min<std::uint64_t>(count_ / batchSize_,
                                static_cast<std::uint64_t>(batches_ - 1)));
    batchSum_[b] += x;
    batchCount_[b] += 1;
  }
  ++count_;
}

Distribution DistributionAccumulator::finalize() const {
  Distribution out;
  out.count = count_;
  if (count_ == 0) return out;
  out.min = min_;
  out.max = max_;
  out.mean = mean_;
  out.p50 = p50_.value();
  out.p95 = std::clamp(p95_.value(), out.p50, max_);
  out.p99 = std::clamp(p99_.value(), out.p95, max_);

  if (batchSize_ > 0) {
    int filled = 0;
    double meanOfMeans = 0;
    double means[64];
    for (int b = 0; b < batches_; ++b) {
      if (batchCount_[b] == 0) continue;
      means[filled] = batchSum_[b] / static_cast<double>(batchCount_[b]);
      meanOfMeans += means[filled];
      ++filled;
    }
    if (filled >= 2) {
      meanOfMeans /= filled;
      double ss = 0;
      for (int b = 0; b < filled; ++b) {
        const double d = means[b] - meanOfMeans;
        ss += d * d;
      }
      const double stddev = std::sqrt(ss / (filled - 1));
      out.ci95 = 1.96 * stddev / std::sqrt(static_cast<double>(filled));
    }
  }
  return out;
}

}  // namespace stordep::stochastic
