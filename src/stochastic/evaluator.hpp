// evaluator.hpp — seeded Monte-Carlo reliability evaluation.
//
// The analytic engine answers worst-case questions: *if* this scenario
// strikes, what is the recovery time and data loss in the least favorable
// failure instant. This front-end turns those single points into
// distributions, two ways:
//
//   distributionFor(scenario)  conditions on the scenario occurring: each
//       trial samples a failure instant uniformly over the RP-lifecycle
//       simulation's steady-state window and replays the outage through
//       RecoverySimulator::observedRecovery (recovery time, restore
//       payload) and RpLifecycleSimulator::observedDataLoss (recent data
//       loss) — exactly the two per-instant quantities the differential
//       oracles validate against the analytic bounds. Per-trial penalty
//       combines both through the design's business rates.
//
//   annualizedRisk()  samples whole mission windows: every storage device
//       draws failure arrivals from its (exponential/Weibull) failure
//       process, stays down for a repair-process draw before it can fail
//       again, and optional per-site common shocks (ReliabilitySpec::
//       siteShockAnnualRate) add correlated whole-site disasters. Each
//       sampled outage replays through the same per-instant machinery; the
//       per-trial aggregates annualize into expected data-loss bytes,
//       penalty cost and downtime with confidence intervals.
//
// Determinism contract: trial i draws every random number from the
// substream Rng(substreamSeed(seed, i)), so a trial's outcome is a pure
// function of (seed, i). Trials fan out across a thread pool into indexed
// slots and the streaming summaries (stochastic/quantile.hpp) are fed
// sequentially in trial order afterwards — results are bit-identical
// regardless of thread count. Cancellation is cooperative: a fired token
// stops the fan-out and surfaces as a structured kCancelled /
// kDeadlineExceeded EvalError reporting how many trials completed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/hierarchy.hpp"
#include "core/reliability.hpp"
#include "engine/cancellation.hpp"
#include "engine/errors.hpp"
#include "sim/recovery_simulator.hpp"
#include "sim/rp_simulator.hpp"
#include "stochastic/quantile.hpp"
#include "stochastic/trial_plan.hpp"

namespace stordep::stochastic {

struct StochasticOptions {
  int trials = 10'000;
  std::uint64_t seed = 1;
  /// 1 = run trials inline on the calling thread; 0 = the process-wide
  /// engine::ThreadPool::shared(); N > 1 = a dedicated pool of N threads.
  /// The choice never affects results, only wall time.
  int threads = 0;
  engine::CancellationToken token;
  /// RP-lifecycle simulation knobs (horizon must cover several cycles of
  /// the slowest level).
  sim::RpSimOptions sim;
  /// Failure/repair processes, mission window and site-shock rate. Devices
  /// without an entry use their class defaults.
  ReliabilitySpec reliability;
  /// Batches for the batch-means confidence intervals.
  int ciBatches = 32;
  /// Run trials through the compiled TrialPlan when the design is
  /// plannable (bit-identical to the legacy loop, much faster). False
  /// forces the legacy loop — the differential oracle's reference side.
  bool usePlan = true;
  /// When set, each evaluation records its per-trial samples here, in
  /// trial order (oracle/test hook; not thread-safe across concurrent
  /// evaluations on the same evaluator).
  TrialTrace* trace = nullptr;
};

/// The distribution envelope for one (design, scenario), conditioned on the
/// scenario occurring. rt/dl are in seconds, penalty in dollars.
struct ScenarioDistribution {
  int trials = 0;
  int unrecoverable = 0;  ///< trials where no RP could serve the target

  Distribution rt;
  Distribution dl;
  Distribution penalty;

  /// Restore payload actually read (constant for full-only backups, varies
  /// across the cycle for incremental chains).
  Bytes minPayload;
  Bytes meanPayload;
  Bytes maxPayload;

  /// The paper-style worst case from the analytic model, and whether every
  /// sampled trial respected it (vacuously true with zero recoverable
  /// trials). The DL bound is charged the capture-staleness slack
  /// (rpCaptureSlack) the aligned simulator legitimately sees on
  /// incommensurable window grids.
  Duration analyticWorstRt = Duration::infinite();
  Duration analyticWorstDl = Duration::infinite();
  Duration dlSlack = Duration::zero();
  bool rtBoundHolds = true;
  bool dlBoundHolds = true;
  /// max sampled RT / analytic worst-case RT (how tight the bound is).
  double rtTightness = 0.0;

  /// penalty.mean as Money — what the ExpectedPenalty search objective
  /// uses — and the analytic worst-case penalty it replaces.
  Money expectedPenalty;
  Money worstCasePenalty;

  /// Trial-loop wall time and throughput for this evaluation, and whether
  /// the compiled TrialPlan ran it (false = legacy fallback). Timing
  /// fields vary run to run; everything above is deterministic.
  double wallSeconds = 0.0;
  double trialsPerSec = 0.0;
  bool usedPlan = false;
};

/// Mission-window summary: how much the design is expected to lose and pay
/// per year, with distribution tails. Annual figures are scaled from the
/// mission window (expected value per year = mean per window / window
/// years).
struct AnnualizedRisk {
  int trials = 0;
  Duration missionWindow;

  /// Outage events per year (device failures + site shocks).
  double eventsPerYear = 0.0;
  /// Fraction of trials that contained at least one unrecoverable outage.
  double unrecoverableTrialFraction = 0.0;

  Bytes expectedAnnualLossBytes;
  Bytes lossBytesCi95;
  Money expectedAnnualPenalty;
  Money penaltyCi95;
  double expectedAnnualDowntimeHours = 0.0;

  /// Per-event recovery time / data loss (seconds), across all trials.
  Distribution eventRt;
  Distribution eventDl;
  /// Per-trial penalty, annualized (dollars).
  Distribution annualPenalty;

  /// Trial-loop wall time and throughput for this evaluation, and whether
  /// the compiled TrialPlan ran it (false = legacy fallback). Timing
  /// fields vary run to run; everything above is deterministic.
  double wallSeconds = 0.0;
  double trialsPerSec = 0.0;
  bool usedPlan = false;
};

/// Monte-Carlo front-end over one design. Construction builds and runs the
/// RP-lifecycle simulation once (throws sim::SimulationError /
/// std::invalid_argument on designs the simulator rejects); the evaluation
/// methods are const, deterministic, and safe to call concurrently.
class StochasticEvaluator {
 public:
  explicit StochasticEvaluator(StorageDesign design,
                               StochasticOptions options = {});
  ~StochasticEvaluator();

  StochasticEvaluator(const StochasticEvaluator&) = delete;
  StochasticEvaluator& operator=(const StochasticEvaluator&) = delete;

  /// The RT/DL/penalty distribution conditioned on `scenario` occurring.
  [[nodiscard]] engine::Expected<ScenarioDistribution> distributionFor(
      const FailureScenario& scenario) const;

  /// Mission-window sampling over every storage device's failure/repair
  /// processes (plus site shocks), annualized.
  [[nodiscard]] engine::Expected<AnnualizedRisk> annualizedRisk() const;

  [[nodiscard]] const StorageDesign& design() const noexcept;
  [[nodiscard]] const StochasticOptions& options() const noexcept {
    return options_;
  }

  /// True when trials run through the compiled TrialPlan (usePlan was set
  /// and the design is plannable); false = legacy loop.
  [[nodiscard]] bool usingPlan() const noexcept { return plan_ != nullptr; }

 private:
  struct ConditionalTrial;
  struct MissionTrial;

  /// Deterministic fan-out: runs body(i) for i in [0, count) per
  /// options_.threads, polling the token. Returns false when cancellation
  /// skipped any index (the caller counts filled slots for the error).
  [[nodiscard]] bool runTrials(
      int count, const std::function<void(std::size_t)>& body) const;

  StochasticOptions options_;
  std::unique_ptr<sim::RpLifecycleSimulator> sim_;
  std::unique_ptr<sim::RecoverySimulator> recovery_;
  std::shared_ptr<const TrialPlan> plan_;  ///< null = legacy trial loop
};

}  // namespace stordep::stochastic
