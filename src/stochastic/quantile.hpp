// quantile.hpp — streaming distribution summaries for Monte-Carlo trials.
//
// The trial sampler produces up to millions of RT/DL/penalty observations;
// storing them all to sort at the end would defeat the point of streaming
// evaluation. Instead each tracked metric feeds:
//
//   * a P² estimator (Jain & Chlamtac, CACM 1985) per tracked quantile —
//     five markers maintained by parabolic interpolation, O(1) per
//     observation, exact below five observations;
//   * exact min/max/count and a numerically stable (Welford) mean;
//   * a batch-means 95% confidence half-width for the mean: observations
//     are split in feed order into B equal batches, and the spread of the
//     batch means estimates the spread of the grand mean (1.96 * s_B / √B).
//
// Everything here is deterministic in the feed order; the evaluator feeds
// observations in trial order regardless of how trials were scheduled
// across threads, which is what makes results bit-identical at any thread
// count.
#pragma once

#include <cstdint>

namespace stordep::stochastic {

/// One-quantile P² estimator.
class P2Quantile {
 public:
  explicit P2Quantile(double p);

  void add(double x);

  /// The current estimate: exact while fewer than five observations have
  /// been seen, the middle marker height afterwards. 0 when empty.
  [[nodiscard]] double value() const;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  double p_;
  std::uint64_t count_ = 0;
  double q_[5];     ///< marker heights (ordered)
  double n_[5];     ///< marker positions (1-based)
  double want_[5];  ///< desired positions
  double dwant_[5]; ///< desired-position increments per observation
};

/// The assembled summary of one sampled metric. Quantiles are clamped into
/// monotone order on assembly (p50 <= p95 <= p99 <= max structurally); the
/// clamp is a no-op for exact estimates and guards the independent P²
/// estimators' small-sample noise.
struct Distribution {
  std::uint64_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  /// Batch-means 95% confidence half-width of the mean; 0 when it cannot be
  /// estimated (fewer than two batches).
  double ci95 = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Streaming accumulator behind Distribution: min/max, Welford mean, P²
/// p50/p95/p99, batch means. `expectedCount` sizes the batches (pass the
/// trial count); 0 disables the batch-means CI (event-level metrics whose
/// count is not known upfront report ci95 = 0).
class DistributionAccumulator {
 public:
  explicit DistributionAccumulator(std::uint64_t expectedCount = 0,
                                   int batches = 32);

  void add(double x);

  [[nodiscard]] Distribution finalize() const;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  std::uint64_t count_ = 0;
  double min_ = 0;
  double max_ = 0;
  double mean_ = 0;  ///< Welford running mean
  P2Quantile p50_;
  P2Quantile p95_;
  P2Quantile p99_;
  // Batch means: observation i lands in batch min(i / batchSize, B-1).
  std::uint64_t batchSize_ = 0;  ///< 0 = CI disabled
  int batches_ = 0;
  double batchSum_[64];
  std::uint64_t batchCount_[64];
};

}  // namespace stordep::stochastic
