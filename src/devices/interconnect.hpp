// interconnect.hpp — interconnect device models (paper Sec 3.2.2).
//
// Two kinds of interconnect move RPs between storage devices:
//  - NetworkLink: SAN or WAN links (e.g., OC-3). Bandwidth = links x per-link
//    rate; cost is per-bandwidth; delay is signal propagation (negligible for
//    the models here but carried for completeness).
//  - PhysicalShipment: couriers moving removable media. A shipment delivers
//    any amount of media after a fixed transit delay (a station wagon full of
//    tapes...), so it contributes latency, not a bandwidth ceiling; its cost
//    is per-shipment.
#pragma once

#include "devices/device.hpp"

namespace stordep {

class NetworkLink final : public DeviceModel {
 public:
  /// `linkCount` parallel links of `perLinkBW` each. The DeviceSpec's
  /// maxBWSlots/slotBW are set from these so the base class arithmetic holds.
  NetworkLink(std::string name, Location location, int linkCount,
              Bandwidth perLinkBW, Duration propagationDelay,
              DeviceCostModel cost, SpareSpec spare = SpareSpec::none());

  [[nodiscard]] int linkCount() const noexcept { return spec().maxBWSlots; }
  [[nodiscard]] Bandwidth perLinkBandwidth() const noexcept {
    return spec().slotBW;
  }

  [[nodiscard]] Bytes usableCapacity() const override {
    return Bytes::infinite();  // links store nothing
  }
  [[nodiscard]] bool isTransport() const override { return true; }

  /// Links are leased at their provisioned capacity, not their utilization:
  /// the per-bandwidth cost applies to linkCount x perLinkBW regardless of
  /// the demanded rate (this is what reproduces Table 7's link outlays).
  [[nodiscard]] Money annualOutlay(Bytes usedCapacity, Bandwidth usedBandwidth,
                                   double shipmentsPerYear = 0.0) const override;

  [[nodiscard]] std::string describe() const override;
};

class PhysicalShipment final : public DeviceModel {
 public:
  /// `transitDelay` is door-to-door shipment latency (the paper's overnight
  /// air shipment is 24 hours); `costPerShipment` is charged per dispatch.
  PhysicalShipment(std::string name, Location location, Duration transitDelay,
                   double costPerShipment);

  [[nodiscard]] Bytes usableCapacity() const override {
    return Bytes::infinite();
  }
  /// Shipments deliver the whole payload after the transit delay; they do
  /// not rate-limit transfers.
  [[nodiscard]] Bandwidth maxBandwidth() const override {
    return Bandwidth::infinite();
  }
  [[nodiscard]] bool isTransport() const override { return true; }
  [[nodiscard]] bool deliversPhysically() const override { return true; }

  [[nodiscard]] std::string describe() const override;
};

}  // namespace stordep
