#include "devices/vault.hpp"

#include <sstream>

namespace stordep {

MediaVault::MediaVault(DeviceSpec spec) : DeviceModel(std::move(spec)) {
  if (this->spec().maxCapSlots <= 0) {
    throw DeviceError("vault '" + name() + "' needs capacity slots");
  }
}

std::string MediaVault::describe() const {
  std::ostringstream os;
  os << name() << " @ " << location().site << " [vault, cap "
     << toString(usableCapacity()) << "]";
  return os.str();
}

}  // namespace stordep
