// spares.hpp — spare-resource model (paper Sec 3.2.2).
//
// Each device may have a spare that replaces it after a failure. A dedicated
// hot spare provisions in seconds and costs as much as the original; a shared
// resource (e.g., capacity at a commercial recovery facility) takes hours to
// drain/scrub but costs only a fraction of a dedicated one.
#pragma once

#include <string>

#include "core/units.hpp"

namespace stordep {

enum class SpareType {
  kNone,       ///< no spare: recovery onto this device cannot be provisioned
  kDedicated,  ///< dedicated hot spare
  kShared,     ///< shared resource (recovery facility)
};

[[nodiscard]] std::string toString(SpareType type);

struct SpareSpec {
  SpareType type = SpareType::kNone;
  /// Time to make the spare usable (drain, scrub, reconfigure).
  Duration provisioningTime = Duration::zero();
  /// Fraction of the original resource's cost charged for the spare
  /// (1.0 for dedicated, e.g. 0.2 for a shared facility).
  double discountFactor = 1.0;

  [[nodiscard]] static SpareSpec none() { return SpareSpec{}; }
  [[nodiscard]] static SpareSpec dedicated(Duration provisioningTime,
                                           double discountFactor = 1.0) {
    return SpareSpec{SpareType::kDedicated, provisioningTime, discountFactor};
  }
  [[nodiscard]] static SpareSpec shared(Duration provisioningTime,
                                        double discountFactor) {
    return SpareSpec{SpareType::kShared, provisioningTime, discountFactor};
  }
};

}  // namespace stordep
