#include "devices/interconnect.hpp"

#include <sstream>

namespace stordep {

namespace {
DeviceSpec makeLinkSpec(std::string name, Location location, int linkCount,
                        Bandwidth perLinkBW, Duration propagationDelay,
                        DeviceCostModel cost, SpareSpec spare) {
  if (linkCount <= 0) {
    throw DeviceError("link '" + name + "': need at least one link");
  }
  if (perLinkBW.bytesPerSec() <= 0) {
    throw DeviceError("link '" + name + "': per-link bandwidth must be > 0");
  }
  DeviceSpec spec;
  spec.name = std::move(name);
  spec.location = std::move(location);
  spec.maxCapSlots = 0;
  spec.slotCap = Bytes{0};
  spec.maxBWSlots = linkCount;
  spec.slotBW = perLinkBW;
  spec.enclosureBW = Bandwidth::zero();  // unconstrained by an enclosure
  spec.accessDelay = propagationDelay;
  spec.cost = cost;
  spec.spare = spare;
  return spec;
}

DeviceSpec makeShipmentSpec(std::string name, Location location,
                            Duration transitDelay, double costPerShipment) {
  DeviceSpec spec;
  spec.name = std::move(name);
  spec.location = std::move(location);
  spec.accessDelay = transitDelay;
  spec.cost.costPerShipment = costPerShipment;
  return spec;
}
}  // namespace

NetworkLink::NetworkLink(std::string name, Location location, int linkCount,
                         Bandwidth perLinkBW, Duration propagationDelay,
                         DeviceCostModel cost, SpareSpec spare)
    : DeviceModel(makeLinkSpec(std::move(name), std::move(location), linkCount,
                               perLinkBW, propagationDelay, std::move(cost),
                               spare)) {}

Money NetworkLink::annualOutlay(Bytes usedCapacity, Bandwidth usedBandwidth,
                                double shipmentsPerYear) const {
  (void)usedBandwidth;
  return spec().cost.annualOutlay(usedCapacity, maxBandwidth(),
                                  shipmentsPerYear);
}

std::string NetworkLink::describe() const {
  std::ostringstream os;
  os << name() << " [" << linkCount() << " x " << toString(perLinkBandwidth())
     << " links]";
  return os.str();
}

PhysicalShipment::PhysicalShipment(std::string name, Location location,
                                   Duration transitDelay,
                                   double costPerShipment)
    : DeviceModel(makeShipmentSpec(std::move(name), std::move(location),
                                   transitDelay, costPerShipment)) {}

std::string PhysicalShipment::describe() const {
  std::ostringstream os;
  os << name() << " [shipment, " << toString(accessDelay()) << " transit, $"
     << spec().cost.costPerShipment << "/shipment]";
  return os.str();
}

}  // namespace stordep
