// catalog.hpp — factory functions for the paper's Table 4 devices.
//
// Encodes the case study's device parameters (annualized costs, 3-year
// depreciation, list prices / expert estimates as published):
//
//   Disk array   256 x 73 GB disks, 256 x 25 MB/s, 512 MB/s enclosure,
//                $123297 + $17.2/GB/yr, dedicated hot spare (0.02 hr, 1x),
//                RAID-1 (usable capacity is half of raw; see DESIGN.md)
//   Tape library 500 x 400 GB LTO cartridges, 16 x 60 MB/s drives, 240 MB/s,
//                0.01 hr load/seek, $98895 + $0.4/GB + $108.6/(MB/s) per yr,
//                dedicated hot spare (0.02 hr, 1x)
//   Vault        5000 x 400 GB shelf slots, $25000 + $0.4/GB/yr, no spare
//   Air shipment 24 hr transit, $50/shipment
//   OC-3 links   155 Mbps per link, $23535/(MB/s)/yr (Table 7's AsyncB rows)
//   SAN fabric   Fibre-channel SAN; bandwidth generous enough never to be
//                the bottleneck between co-located devices, cost folded into
//                the enclosures' fixed costs (the paper carries no separate
//                SAN cost term)
#pragma once

#include <memory>

#include "devices/disk_array.hpp"
#include "devices/interconnect.hpp"
#include "devices/tape_library.hpp"
#include "devices/vault.hpp"

namespace stordep::catalog {

/// Mid-range disk array modeled on HP's EVA (Table 4 row 1). The default
/// spare is the case study's dedicated hot spare; pass SpareSpec::none() for
/// un-spared instances (e.g., a remote mirror target).
[[nodiscard]] std::shared_ptr<DiskArray> midrangeDiskArray(
    std::string name, Location location, RaidLevel raid = RaidLevel::kRaid1,
    SpareSpec spare = SpareSpec::dedicated(hours(0.02), 1.0));

/// Enterprise tape library modeled on HP's ESL9595 (Table 4 row 2).
[[nodiscard]] std::shared_ptr<TapeLibrary> enterpriseTapeLibrary(
    std::string name, Location location);

/// Nearline SATA disk array for disk-to-disk backup (not in the paper's
/// Table 4; parameters follow the same era's nearline offerings: dense,
/// slower disks, RAID-5, cheaper per GB than the primary array but far more
/// expensive than tape media, with no access delay). Lets designs trade
/// backup cost for restore speed.
[[nodiscard]] std::shared_ptr<DiskArray> nearlineDiskArray(
    std::string name, Location location);

/// Off-site tape vault (Table 4 row 3).
[[nodiscard]] std::shared_ptr<MediaVault> offsiteTapeVault(std::string name,
                                                           Location location);

/// Overnight air shipment courier (Table 4 row 4).
[[nodiscard]] std::shared_ptr<PhysicalShipment> overnightAirShipment(
    std::string name, Location location);

/// `count` OC-3 wide-area links (155 Mbps each), costed per Table 7's
/// asynchronous-batch mirroring scenarios ($23535 per MB/s per year).
[[nodiscard]] std::shared_ptr<NetworkLink> oc3WanLinks(std::string name,
                                                       Location location,
                                                       int count);

/// Co-located Fibre-channel SAN fabric (no separate cost).
[[nodiscard]] std::shared_ptr<NetworkLink> sanFabric(std::string name,
                                                     Location location);

}  // namespace stordep::catalog
