#include "devices/spares.hpp"

namespace stordep {

std::string toString(SpareType type) {
  switch (type) {
    case SpareType::kNone:
      return "none";
    case SpareType::kDedicated:
      return "dedicated";
    case SpareType::kShared:
      return "shared";
  }
  return "unknown";
}

}  // namespace stordep
