#include "devices/tape_library.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace stordep {

TapeLibrary::TapeLibrary(DeviceSpec spec) : DeviceModel(std::move(spec)) {
  if (this->spec().maxCapSlots <= 0 || this->spec().slotCap.bytes() <= 0) {
    throw DeviceError("tape library '" + name() +
                      "' needs cartridge slots with positive capacity");
  }
}

int TapeLibrary::cartridgesFor(Bytes data) const {
  if (data.bytes() <= 0) return 0;
  return static_cast<int>(std::ceil(data / spec().slotCap));
}

Bandwidth TapeLibrary::transferBandwidth(Bytes data) const {
  const int cartridges = cartridgesFor(data);
  const int drives = std::min(cartridges, spec().maxBWSlots);
  if (drives <= 0) return Bandwidth::zero();
  return std::min(spec().slotBW * static_cast<double>(drives), maxBandwidth());
}

std::string TapeLibrary::describe() const {
  std::ostringstream os;
  os << DeviceModel::describe() << " (" << spec().maxBWSlots << " drives x "
     << toString(spec().slotBW) << ")";
  return os.str();
}

}  // namespace stordep
