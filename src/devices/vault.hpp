// vault.hpp — off-site media vault device model.
//
// A vault is pure retention capacity: shelves of tape cartridges with no
// drives. It never constrains bandwidth (reading vaulted data means shipping
// the media back to a library). Its cost is fixed + per-capacity.
#pragma once

#include "devices/device.hpp"

namespace stordep {

class MediaVault final : public DeviceModel {
 public:
  explicit MediaVault(DeviceSpec spec);

  /// Vaults have no bandwidth components; transfers never bottleneck here.
  [[nodiscard]] Bandwidth maxBandwidth() const override {
    return Bandwidth::infinite();
  }

  [[nodiscard]] std::string describe() const override;
};

}  // namespace stordep
