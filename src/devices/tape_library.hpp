// tape_library.hpp — tape library device model.
//
// A tape library is an enclosure with removable cartridges (capacity slots)
// and drives (bandwidth slots). Its access delay models cartridge load and
// seek time. Cartridges are the unit of vaulting: the library can eject media
// for off-site shipment, which is how the vaulting technique moves RPs.
#pragma once

#include "devices/device.hpp"

namespace stordep {

class TapeLibrary final : public DeviceModel {
 public:
  explicit TapeLibrary(DeviceSpec spec);

  /// Number of cartridges needed to hold `data` (whole cartridges).
  [[nodiscard]] int cartridgesFor(Bytes data) const;

  /// Aggregate streaming bandwidth usable for a transfer of `data`: reading
  /// or writing N cartridges can engage at most N drives in parallel (and
  /// never more than the enclosure allows).
  [[nodiscard]] Bandwidth transferBandwidth(Bytes data) const override;

  [[nodiscard]] std::string describe() const override;
};

}  // namespace stordep
