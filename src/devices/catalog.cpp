#include "devices/catalog.hpp"

namespace stordep::catalog {

std::shared_ptr<DiskArray> midrangeDiskArray(std::string name,
                                             Location location, RaidLevel raid,
                                             SpareSpec spare) {
  DeviceSpec spec;
  spec.name = std::move(name);
  spec.location = std::move(location);
  spec.maxCapSlots = 256;
  spec.slotCap = gigabytes(73);
  spec.maxBWSlots = 256;
  spec.slotBW = mbPerSec(25);
  spec.enclosureBW = mbPerSec(512);
  spec.accessDelay = Duration::zero();
  spec.cost = DeviceCostModel{.fixedCost = dollars(123'297),
                              .costPerGB = 17.2,
                              .costPerMBps = 0.0,
                              .costPerShipment = 0.0};
  spec.spare = spare;
  return std::make_shared<DiskArray>(std::move(spec), raid);
}

std::shared_ptr<TapeLibrary> enterpriseTapeLibrary(std::string name,
                                                   Location location) {
  DeviceSpec spec;
  spec.name = std::move(name);
  spec.location = std::move(location);
  spec.maxCapSlots = 500;
  spec.slotCap = gigabytes(400);
  spec.maxBWSlots = 16;
  spec.slotBW = mbPerSec(60);
  spec.enclosureBW = mbPerSec(240);
  spec.accessDelay = hours(0.01);
  spec.cost = DeviceCostModel{.fixedCost = dollars(98'895),
                              .costPerGB = 0.4,
                              .costPerMBps = 108.6,
                              .costPerShipment = 0.0};
  spec.spare = SpareSpec::dedicated(hours(0.02), 1.0);
  return std::make_shared<TapeLibrary>(std::move(spec));
}

std::shared_ptr<DiskArray> nearlineDiskArray(std::string name,
                                             Location location) {
  DeviceSpec spec;
  spec.name = std::move(name);
  spec.location = std::move(location);
  spec.maxCapSlots = 192;
  spec.slotCap = gigabytes(250);
  spec.maxBWSlots = 192;
  spec.slotBW = mbPerSec(15);
  spec.enclosureBW = mbPerSec(400);
  spec.accessDelay = Duration::zero();  // no media load/seek
  spec.cost = DeviceCostModel{.fixedCost = dollars(64'000),
                              .costPerGB = 4.8,
                              .costPerMBps = 0.0,
                              .costPerShipment = 0.0};
  spec.spare = SpareSpec::dedicated(hours(0.02), 1.0);
  return std::make_shared<DiskArray>(std::move(spec), RaidLevel::kRaid5, 12);
}

std::shared_ptr<MediaVault> offsiteTapeVault(std::string name,
                                             Location location) {
  DeviceSpec spec;
  spec.name = std::move(name);
  spec.location = std::move(location);
  spec.maxCapSlots = 5000;
  spec.slotCap = gigabytes(400);
  spec.cost = DeviceCostModel{.fixedCost = dollars(25'000),
                              .costPerGB = 0.4,
                              .costPerMBps = 0.0,
                              .costPerShipment = 0.0};
  spec.spare = SpareSpec::none();
  return std::make_shared<MediaVault>(std::move(spec));
}

std::shared_ptr<PhysicalShipment> overnightAirShipment(std::string name,
                                                       Location location) {
  return std::make_shared<PhysicalShipment>(std::move(name),
                                            std::move(location), hours(24),
                                            /*costPerShipment=*/50.0);
}

std::shared_ptr<NetworkLink> oc3WanLinks(std::string name, Location location,
                                         int count) {
  // Table 7 quotes the link cost as $23535 per (decimal) MB/s: an OC-3's
  // 19.375 decimal MB/s is 18.477 binary MB/s, so the per-binary-MB/s rate
  // is 23535 x (2^20 / 1e6) ~ 24678, making one link ~$456k/yr as published.
  constexpr double kCostPerBinaryMBps = 23'535.0 * ((1024.0 * 1024.0) / 1e6);
  return std::make_shared<NetworkLink>(
      std::move(name), std::move(location), count, megabitsPerSec(155),
      /*propagationDelay=*/seconds(0.05),
      DeviceCostModel{.fixedCost = Money::zero(),
                      .costPerGB = 0.0,
                      .costPerMBps = kCostPerBinaryMBps,
                      .costPerShipment = 0.0},
      SpareSpec::none());
}

std::shared_ptr<NetworkLink> sanFabric(std::string name, Location location) {
  return std::make_shared<NetworkLink>(
      std::move(name), std::move(location), /*linkCount=*/8, mbPerSec(200),
      /*propagationDelay=*/Duration::zero(), DeviceCostModel{},
      SpareSpec::none());
}

}  // namespace stordep::catalog
