// disk_array.hpp — disk array device model.
//
// Disk arrays hold the primary copy and disk-resident secondary copies (split
// mirrors, snapshots, remote mirror targets). They protect against internal
// component failure with RAID; the RAID level determines how much raw disk
// capacity is usable and how many physical writes each logical write costs.
// The paper's case-study array (HP EVA-like) runs RAID-1: its 256 x 73 GB of
// raw disk yields ~9.1 TB usable, which is what reproduces Table 5's
// utilization percentages.
#pragma once

#include "devices/device.hpp"

namespace stordep {

enum class RaidLevel {
  kNone,    ///< JBOD: full capacity, no redundancy
  kRaid1,   ///< mirrored: half capacity, 2x write amplification
  kRaid5,   ///< rotated parity: (g-1)/g capacity, 4x small-write cost
  kRaid10,  ///< striped mirrors: same capacity/write math as RAID-1
};

[[nodiscard]] std::string toString(RaidLevel level);

class DiskArray final : public DeviceModel {
 public:
  /// `raidGroupSize` is the RAID-5 group width (disks per parity group);
  /// ignored for the other levels.
  DiskArray(DeviceSpec spec, RaidLevel raid, int raidGroupSize = 8);

  [[nodiscard]] RaidLevel raidLevel() const noexcept { return raid_; }
  [[nodiscard]] int raidGroupSize() const noexcept { return groupSize_; }

  /// Raw slot capacity derated by the RAID level's space overhead.
  [[nodiscard]] Bytes usableCapacity() const override;

  /// Physical writes per logical write for large sequential transfers
  /// (recovery restores). RAID-1/10: 2. RAID-5 full-stripe: g/(g-1).
  [[nodiscard]] double writeAmplification() const override;

  /// Physical I/Os per logical small (in-place) write: RAID-5's
  /// read-modify-write costs 4, RAID-1 costs 2. Exposed for workload
  /// what-if analyses.
  [[nodiscard]] double smallWriteCost() const;

  [[nodiscard]] std::string describe() const override;

 private:
  RaidLevel raid_;
  int groupSize_;
};

}  // namespace stordep
