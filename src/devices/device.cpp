#include "devices/device.hpp"

#include <algorithm>
#include <sstream>

namespace stordep {

DeviceModel::DeviceModel(DeviceSpec spec) : spec_(std::move(spec)) {
  if (spec_.name.empty()) {
    throw DeviceError("device must have a name");
  }
  if (spec_.maxCapSlots < 0 || spec_.maxBWSlots < 0) {
    throw DeviceError("device '" + spec_.name + "': slot counts must be >= 0");
  }
  if (spec_.slotCap.bytes() < 0 || spec_.slotBW.bytesPerSec() < 0) {
    throw DeviceError("device '" + spec_.name +
                      "': slot capacity/bandwidth must be >= 0");
  }
  if (spec_.accessDelay.secs() < 0) {
    throw DeviceError("device '" + spec_.name + "': delay must be >= 0");
  }
  if (spec_.spare.discountFactor < 0) {
    throw DeviceError("device '" + spec_.name +
                      "': spare discount must be >= 0");
  }
}

Bytes DeviceModel::usableCapacity() const {
  if (spec_.maxCapSlots == 0) return Bytes::infinite();
  return spec_.slotCap * static_cast<double>(spec_.maxCapSlots);
}

Bandwidth DeviceModel::maxBandwidth() const {
  const Bandwidth fromSlots =
      spec_.maxBWSlots == 0
          ? Bandwidth::infinite()
          : spec_.slotBW * static_cast<double>(spec_.maxBWSlots);
  const Bandwidth fromEnclosure = spec_.enclosureBW.bytesPerSec() > 0
                                      ? spec_.enclosureBW
                                      : Bandwidth::infinite();
  return std::min(fromSlots, fromEnclosure);
}

Money DeviceModel::annualOutlay(Bytes usedCapacity, Bandwidth usedBandwidth,
                                double shipmentsPerYear) const {
  return spec_.cost.annualOutlay(usedCapacity, usedBandwidth,
                                 shipmentsPerYear);
}

Money DeviceModel::annualSpareOutlay(Bytes usedCapacity,
                                     Bandwidth usedBandwidth) const {
  if (spec_.spare.type == SpareType::kNone) return Money::zero();
  return annualOutlay(usedCapacity, usedBandwidth) *
         spec_.spare.discountFactor;
}

Duration DeviceModel::spareProvisioningTime() const {
  if (spec_.spare.type == SpareType::kNone) return Duration::infinite();
  return spec_.spare.provisioningTime;
}

std::string DeviceModel::describe() const {
  std::ostringstream os;
  os << name() << " @ " << location().site << " [cap "
     << toString(usableCapacity()) << ", bw " << toString(maxBandwidth())
     << ", spare " << stordep::toString(spec_.spare.type) << "]";
  return os.str();
}

}  // namespace stordep
