#include "devices/disk_array.hpp"

#include <sstream>

namespace stordep {

std::string toString(RaidLevel level) {
  switch (level) {
    case RaidLevel::kNone:
      return "none";
    case RaidLevel::kRaid1:
      return "RAID-1";
    case RaidLevel::kRaid5:
      return "RAID-5";
    case RaidLevel::kRaid10:
      return "RAID-10";
  }
  return "unknown";
}

DiskArray::DiskArray(DeviceSpec spec, RaidLevel raid, int raidGroupSize)
    : DeviceModel(std::move(spec)), raid_(raid), groupSize_(raidGroupSize) {
  if (raid_ == RaidLevel::kRaid5 && groupSize_ < 3) {
    throw DeviceError("device '" + name() +
                      "': RAID-5 group size must be at least 3");
  }
}

Bytes DiskArray::usableCapacity() const {
  const Bytes raw = DeviceModel::usableCapacity();
  switch (raid_) {
    case RaidLevel::kNone:
      return raw;
    case RaidLevel::kRaid1:
    case RaidLevel::kRaid10:
      return raw * 0.5;
    case RaidLevel::kRaid5:
      return raw * (static_cast<double>(groupSize_ - 1) / groupSize_);
  }
  return raw;
}

double DiskArray::writeAmplification() const {
  switch (raid_) {
    case RaidLevel::kNone:
      return 1.0;
    case RaidLevel::kRaid1:
    case RaidLevel::kRaid10:
      return 2.0;
    case RaidLevel::kRaid5:
      return static_cast<double>(groupSize_) / (groupSize_ - 1);
  }
  return 1.0;
}

double DiskArray::smallWriteCost() const {
  switch (raid_) {
    case RaidLevel::kNone:
      return 1.0;
    case RaidLevel::kRaid1:
    case RaidLevel::kRaid10:
      return 2.0;
    case RaidLevel::kRaid5:
      return 4.0;  // read data + read parity + write data + write parity
  }
  return 1.0;
}

std::string DiskArray::describe() const {
  std::ostringstream os;
  os << DeviceModel::describe() << " " << toString(raid_);
  return os.str();
}

}  // namespace stordep
