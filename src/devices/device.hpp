// device.hpp — hardware device abstraction (paper Sec 3.2.2).
//
// Every storage or interconnect device is described by the same parameter
// set: enclosures with capacity slots (disks, tape cartridges), bandwidth
// slots (disks, tape drives), an aggregate enclosure bandwidth, an access
// delay, a cost model and an optional spare. Device-specific behaviour
// (RAID capacity/write-amplification for arrays, load/seek delays for tape,
// per-shipment transport) lives in subclasses, so that the composition
// models in src/core never need to know device internals — exactly the
// decomposition the paper argues for.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/failure.hpp"
#include "core/units.hpp"
#include "devices/spares.hpp"

namespace stordep {

/// Outlay model: cost = fixed + perGB * usedGB + perMBps * provisionedMBps
/// (+ perShipment * shipments for transport devices). All values are
/// annualized (3-year depreciation folded in by the catalog), matching the
/// paper's Table 4 cost rows.
struct DeviceCostModel {
  Money fixedCost;
  double costPerGB = 0.0;        ///< US$ per gigabyte of used capacity
  double costPerMBps = 0.0;      ///< US$ per MB/s of demanded bandwidth
  double costPerShipment = 0.0;  ///< US$ per shipment (transport only)

  [[nodiscard]] Money annualOutlay(Bytes usedCapacity, Bandwidth usedBandwidth,
                                   double shipmentsPerYear = 0.0) const {
    return fixedCost + dollars(costPerGB * usedCapacity.gigabytes()) +
           dollars(costPerMBps * usedBandwidth.mbPerSec()) +
           dollars(costPerShipment * shipmentsPerYear);
  }
};

/// The raw, technique-independent description of a device (Table 1, bottom).
struct DeviceSpec {
  std::string name;
  Location location;
  int maxCapSlots = 0;           ///< max capacity components (disks/cartridges)
  Bytes slotCap;                 ///< per-component capacity
  int maxBWSlots = 0;            ///< max bandwidth components (disks/drives)
  Bandwidth slotBW;              ///< per-component bandwidth
  Bandwidth enclosureBW;         ///< aggregate enclosure bandwidth cap
  Duration accessDelay;          ///< devDelay: load/seek or propagation delay
  DeviceCostModel cost;
  SpareSpec spare;
};

class DeviceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One technique's demand on one device, in the units the utilization model
/// needs (paper Sec 3.2.3 / 3.3.1).
struct DeviceDemand {
  std::string techniqueName;
  Bandwidth bandwidth;
  Bytes capacity;
  double shipmentsPerYear = 0.0;
  /// True for the technique that "owns" the device — it is charged the fixed
  /// costs; secondary techniques are charged only their incremental
  /// capacity/bandwidth costs (paper Sec 3.3.5).
  bool isPrimaryTechnique = false;
};

/// Abstract operational + cost model for a device.
class DeviceModel {
 public:
  explicit DeviceModel(DeviceSpec spec);
  virtual ~DeviceModel() = default;

  DeviceModel(const DeviceModel&) = delete;
  DeviceModel& operator=(const DeviceModel&) = delete;

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::string& name() const noexcept { return spec_.name; }
  [[nodiscard]] const Location& location() const noexcept {
    return spec_.location;
  }

  /// Usable data capacity after device-internal redundancy (RAID) overheads.
  /// Infinite for pure transports.
  [[nodiscard]] virtual Bytes usableCapacity() const;

  /// Deliverable bandwidth: min(enclosureBW, maxBWSlots*slotBW).
  /// NOTE: the paper's text prints "max" here, but its own Table 5 numbers
  /// (512 MB/s for a 256 x 25 MB/s array) require "min"; see DESIGN.md.
  [[nodiscard]] virtual Bandwidth maxBandwidth() const;

  /// Multiplier on logical write bytes for device-internal redundancy
  /// (RAID-1 writes twice). Used by recovery to derate restore bandwidth.
  [[nodiscard]] virtual double writeAmplification() const { return 1.0; }

  /// Fixed per-RP access latency during recovery (tape load/seek,
  /// link propagation, courier transit).
  [[nodiscard]] virtual Duration accessDelay() const {
    return spec_.accessDelay;
  }

  /// True for devices that move data between sites without storing it
  /// (network links, couriers).
  [[nodiscard]] virtual bool isTransport() const { return false; }

  /// True for transports that deliver media physically: the whole payload
  /// arrives after accessDelay() regardless of size (couriers), instead of
  /// streaming at a bandwidth.
  [[nodiscard]] virtual bool deliversPhysically() const { return false; }

  /// Bandwidth deliverable for a single transfer of `payload` bytes.
  /// Defaults to maxBandwidth(); tape libraries cap it by the number of
  /// cartridges (hence drives) the payload spans.
  [[nodiscard]] virtual Bandwidth transferBandwidth(Bytes payload) const {
    (void)payload;
    return maxBandwidth();
  }

  /// Annual outlay for the given usage. Device subclasses may override to
  /// model internal redundancy (e.g., RAID-1 buys twice the disks).
  [[nodiscard]] virtual Money annualOutlay(Bytes usedCapacity,
                                           Bandwidth usedBandwidth,
                                           double shipmentsPerYear = 0.0) const;

  /// Annual cost of this device's spare (zero when spare.type == kNone).
  /// The spare is charged the same outlay as the device itself, scaled by
  /// the spare discount factor (paper Sec 3.2.2).
  [[nodiscard]] Money annualSpareOutlay(Bytes usedCapacity,
                                        Bandwidth usedBandwidth) const;

  /// Time to provision a replacement after this device fails: the spare's
  /// provisioning time, or infinite when the device has no spare.
  [[nodiscard]] Duration spareProvisioningTime() const;

  /// Human-readable one-line summary for reports.
  [[nodiscard]] virtual std::string describe() const;

 private:
  DeviceSpec spec_;
};

using DevicePtr = std::shared_ptr<const DeviceModel>;

}  // namespace stordep
