// design_io.hpp — JSON (de)serialization of complete storage designs.
//
// A design document carries the workload, the business requirements, the
// device inventory, the technique hierarchy (levels referencing devices by
// name) and the optional recovery facility. Quantities may be written as
// numbers in base units (bytes, seconds, dollars) or as strings in the
// paper's notation ("1360 GB", "4 wk + 12 hr", "$50000"); the loader
// accepts both, the writer emits readable strings.
//
// Example (abridged):
//   {
//     "name": "baseline",
//     "workload": {"dataCap": "1360 GB", "avgAccessR": "1028 KB/s", ...},
//     "business": {"unavailPenRate": "$50000", "lossPenRate": "$50000"},
//     "devices": [
//       {"type": "disk_array", "name": "primary-array", "site": "primary",
//        "raid": "RAID-1", ...},
//       ...
//     ],
//     "levels": [
//       {"technique": "primary_copy", "array": "primary-array"},
//       {"technique": "split_mirror", "array": "primary-array",
//        "policy": {"accW": "12 hr", "retCnt": 4, "retW": "2 days"}},
//       ...
//     ],
//     "recoveryFacility": {"site": "recovery-site",
//                          "provisioningTime": "9 hr", "costDiscount": 0.2}
//   }
#pragma once

#include <string>

#include <optional>

#include "config/json.hpp"
#include "core/failure.hpp"
#include "core/hierarchy.hpp"
#include "core/reliability.hpp"

namespace stordep::config {

/// The single error type this module throws. loadDesign / loadDesignFile /
/// designFromJson never leak raw std::invalid_argument / std::out_of_range
/// from the parsing layers underneath: every failure is wrapped with a
/// JSON-pointer-ish location ("/devices/2: unknown RAID level 'RAID-7'")
/// and, for file loads, the file path.
class DesignIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// ---- Quantity helpers (number in base units, or paper-notation string) ----
[[nodiscard]] Duration jsonToDuration(const Json& value);
[[nodiscard]] Bytes jsonToBytes(const Json& value);
[[nodiscard]] Bandwidth jsonToBandwidth(const Json& value);
[[nodiscard]] Money jsonToMoney(const Json& value);

// ---- Component (de)serializers -------------------------------------------
[[nodiscard]] Json workloadToJson(const WorkloadSpec& workload);
[[nodiscard]] WorkloadSpec workloadFromJson(const Json& value);

[[nodiscard]] Json policyToJson(const ProtectionPolicy& policy);
[[nodiscard]] ProtectionPolicy policyFromJson(const Json& value);

[[nodiscard]] Json deviceToJson(const DeviceModel& device);
[[nodiscard]] DevicePtr deviceFromJson(const Json& value);

[[nodiscard]] Json scenarioToJson(const FailureScenario& scenario);
[[nodiscard]] FailureScenario scenarioFromJson(const Json& value);

// ---- Reliability (the optional "reliability" block) -----------------------
// Per-device failure/repair processes for the stochastic layer:
//   {"missionWindow": "1 yr", "siteShockAnnualRate": 0.02,
//    "devices": {"primary-array": {
//        "failure": {"dist": "weibull", "mean": "10 yr", "shape": 1.5},
//        "repair":  {"dist": "exponential", "mean": "12 hr"}}}}
// "dist" defaults to exponential; an infinite mean is written/read as
// "never". Devices not listed fall back to their class defaults
// (core/reliability.hpp). The block is optional and ignored by
// designFromJson, so documents carrying it load everywhere.
[[nodiscard]] Json reliabilityToJson(const ReliabilitySpec& spec);
[[nodiscard]] ReliabilitySpec reliabilityFromJson(const Json& value);

/// The "reliability" block of a whole design document, if present.
[[nodiscard]] std::optional<ReliabilitySpec> reliabilityFromDesignJson(
    const Json& designDocument);

// ---- Whole designs ---------------------------------------------------------
[[nodiscard]] Json designToJson(const StorageDesign& design);
[[nodiscard]] StorageDesign designFromJson(const Json& value);

/// Round-trip convenience: parse/serialize whole documents.
[[nodiscard]] StorageDesign loadDesign(const std::string& jsonText);
[[nodiscard]] std::string saveDesign(const StorageDesign& design);

/// File I/O; throws DesignIoError on filesystem failures.
[[nodiscard]] StorageDesign loadDesignFile(const std::string& path);
void saveDesignFile(const StorageDesign& design, const std::string& path);

}  // namespace stordep::config
