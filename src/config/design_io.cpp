#include "config/design_io.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "core/techniques/backup.hpp"
#include "core/techniques/foreground.hpp"
#include "core/techniques/remote_mirror.hpp"
#include "core/techniques/snapshot.hpp"
#include "core/techniques/split_mirror.hpp"
#include "core/techniques/vaulting.hpp"
#include "devices/disk_array.hpp"
#include "devices/interconnect.hpp"
#include "devices/tape_library.hpp"
#include "devices/vault.hpp"

namespace stordep::config {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw DesignIoError(message);
}

/// Runs `fn` with a JSON-pointer-ish location prefix ("/devices/2") folded
/// into any failure, and guarantees the failure surfaces as DesignIoError:
/// the loaders below lean on std accessors (std::stod, Json::at, ...) whose
/// raw out_of_range / invalid_argument say nothing about *which* part of
/// the document was bad, and must not leak to callers.
template <typename Fn>
auto withContext(const std::string& where, Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const DesignIoError& e) {
    throw DesignIoError(where + ": " + e.what());
  } catch (const std::exception& e) {
    throw DesignIoError(where + ": " + e.what());
  }
}

Json durationJson(Duration d) { return Json(d.secs()); }
Json bytesJson(Bytes b) { return Json(b.bytes()); }
Json bandwidthJson(Bandwidth bw) { return Json(bw.bytesPerSec()); }

Location locationFromJson(const Json& value) {
  const std::string site = value.at("site").asString();
  const Json* building = value.find("building");
  const Json* region = value.find("region");
  return Location::at(site, building ? building->asString() : std::string{},
                      region ? region->asString() : std::string{});
}

Json locationToJson(const Location& loc) {
  Json out{JsonObject{}};
  out.set("site", Json(loc.site));
  if (loc.building != loc.site) out.set("building", Json(loc.building));
  if (loc.region != loc.site) out.set("region", Json(loc.region));
  return out;
}

SpareSpec spareFromJson(const Json* value) {
  if (value == nullptr) return SpareSpec::none();
  const std::string type = value->at("type").asString();
  if (type == "none") return SpareSpec::none();
  const Duration time = jsonToDuration(value->at("provisioningTime"));
  const Json* disc = value->find("discountFactor");
  const double discount = disc ? disc->asNumber() : 1.0;
  if (type == "dedicated") return SpareSpec::dedicated(time, discount);
  if (type == "shared") return SpareSpec::shared(time, discount);
  fail("unknown spare type '" + type + "'");
}

Json spareToJson(const SpareSpec& spare) {
  Json out{JsonObject{}};
  out.set("type", Json(toString(spare.type)));
  if (spare.type != SpareType::kNone) {
    out.set("provisioningTime", durationJson(spare.provisioningTime));
    out.set("discountFactor", Json(spare.discountFactor));
  }
  return out;
}

Json costToJson(const DeviceCostModel& cost) {
  Json out{JsonObject{}};
  out.set("fixed", Json(cost.fixedCost.usd()));
  out.set("perGB", Json(cost.costPerGB));
  out.set("perMBps", Json(cost.costPerMBps));
  out.set("perShipment", Json(cost.costPerShipment));
  return out;
}

DeviceCostModel costFromJson(const Json* value) {
  DeviceCostModel cost;
  if (value == nullptr) return cost;
  if (const Json* fixed = value->find("fixed")) {
    cost.fixedCost = jsonToMoney(*fixed);
  }
  if (const Json* perGB = value->find("perGB")) {
    cost.costPerGB = perGB->asNumber();
  }
  if (const Json* perMBps = value->find("perMBps")) {
    cost.costPerMBps = perMBps->asNumber();
  }
  if (const Json* perShipment = value->find("perShipment")) {
    cost.costPerShipment = perShipment->asNumber();
  }
  return cost;
}

RaidLevel raidFromString(const std::string& name) {
  if (name == "none") return RaidLevel::kNone;
  if (name == "RAID-1") return RaidLevel::kRaid1;
  if (name == "RAID-5") return RaidLevel::kRaid5;
  if (name == "RAID-10") return RaidLevel::kRaid10;
  fail("unknown RAID level '" + name + "'");
}

WindowSpec windowsFromJson(const Json& value) {
  WindowSpec w;
  w.accW = jsonToDuration(value.at("accW"));
  if (const Json* propW = value.find("propW")) {
    w.propW = jsonToDuration(*propW);
  }
  if (const Json* holdW = value.find("holdW")) {
    w.holdW = jsonToDuration(*holdW);
  }
  if (const Json* rep = value.find("propRep")) {
    w.propRep = rep->asString() == "partial" ? Representation::kPartial
                                             : Representation::kFull;
  }
  return w;
}

Json windowsToJson(const WindowSpec& w) {
  Json out{JsonObject{}};
  out.set("accW", durationJson(w.accW));
  out.set("propW", durationJson(w.propW));
  out.set("holdW", durationJson(w.holdW));
  out.set("propRep", Json(toString(w.propRep)));
  return out;
}

}  // namespace

Duration jsonToDuration(const Json& value) {
  if (value.isNumber()) return seconds(value.asNumber());
  if (value.isString()) return parseDuration(value.asString());
  fail("expected a duration (seconds or string like '12 hr')");
}

Bytes jsonToBytes(const Json& value) {
  if (value.isNumber()) return bytes(value.asNumber());
  if (value.isString()) return parseBytes(value.asString());
  fail("expected a size (bytes or string like '1360 GB')");
}

Bandwidth jsonToBandwidth(const Json& value) {
  if (value.isNumber()) return bytesPerSec(value.asNumber());
  if (value.isString()) return parseBandwidth(value.asString());
  fail("expected a bandwidth (bytes/sec or string like '25 MB/s')");
}

Money jsonToMoney(const Json& value) {
  if (value.isNumber()) return dollars(value.asNumber());
  if (value.isString()) return parseMoney(value.asString());
  fail("expected a money value (dollars or string like '$50K')");
}

Json workloadToJson(const WorkloadSpec& workload) {
  Json out{JsonObject{}};
  out.set("name", Json(workload.name()));
  out.set("dataCap", bytesJson(workload.dataCap()));
  out.set("avgAccessR", bandwidthJson(workload.avgAccessRate()));
  out.set("avgUpdateR", bandwidthJson(workload.avgUpdateRate()));
  out.set("burstM", Json(workload.burstMultiplier()));
  JsonArray curve;
  for (const auto& point : workload.batchCurve()) {
    Json p{JsonObject{}};
    p.set("window", durationJson(point.window));
    p.set("rate", bandwidthJson(point.rate));
    curve.push_back(std::move(p));
  }
  out.set("batchUpdR", Json(std::move(curve)));
  return out;
}

WorkloadSpec workloadFromJson(const Json& value) {
  std::vector<BatchUpdatePoint> curve;
  if (const Json* points = value.find("batchUpdR")) {
    for (const Json& p : points->asArray()) {
      curve.push_back(BatchUpdatePoint{jsonToDuration(p.at("window")),
                                       jsonToBandwidth(p.at("rate"))});
    }
  }
  return WorkloadSpec(value.at("name").asString(),
                      jsonToBytes(value.at("dataCap")),
                      jsonToBandwidth(value.at("avgAccessR")),
                      jsonToBandwidth(value.at("avgUpdateR")),
                      value.at("burstM").asNumber(), std::move(curve));
}

Json policyToJson(const ProtectionPolicy& policy) {
  Json out{JsonObject{}};
  out.set("windows", windowsToJson(policy.primaryWindows()));
  if (policy.isCyclic()) {
    out.set("secondaryWindows", windowsToJson(*policy.secondaryWindows()));
    out.set("cycleCnt", Json(policy.cycleCount()));
    out.set("cyclePer", durationJson(policy.cyclePeriod()));
  }
  out.set("retCnt", Json(policy.retentionCount()));
  out.set("retW", durationJson(policy.retentionWindow()));
  out.set("copyRep", Json(toString(policy.copyRep())));
  return out;
}

ProtectionPolicy policyFromJson(const Json& value) {
  const WindowSpec primary = windowsFromJson(value.at("windows"));
  const int retCnt = static_cast<int>(value.at("retCnt").asNumber());
  const Duration retW = jsonToDuration(value.at("retW"));
  Representation copyRep = Representation::kFull;
  if (const Json* rep = value.find("copyRep")) {
    copyRep = rep->asString() == "partial" ? Representation::kPartial
                                           : Representation::kFull;
  }
  if (const Json* secondary = value.find("secondaryWindows")) {
    return ProtectionPolicy(
        primary, windowsFromJson(*secondary),
        static_cast<int>(value.at("cycleCnt").asNumber()),
        jsonToDuration(value.at("cyclePer")), retCnt, retW, copyRep);
  }
  return ProtectionPolicy(primary, retCnt, retW, copyRep);
}

Json deviceToJson(const DeviceModel& device) {
  Json out{JsonObject{}};
  const DeviceSpec& spec = device.spec();
  if (const auto* array = dynamic_cast<const DiskArray*>(&device)) {
    out.set("type", Json("disk_array"));
    out.set("raid", Json(toString(array->raidLevel())));
    out.set("raidGroupSize", Json(array->raidGroupSize()));
  } else if (dynamic_cast<const TapeLibrary*>(&device) != nullptr) {
    out.set("type", Json("tape_library"));
  } else if (dynamic_cast<const MediaVault*>(&device) != nullptr) {
    out.set("type", Json("vault"));
  } else if (const auto* link = dynamic_cast<const NetworkLink*>(&device)) {
    out.set("type", Json("network_link"));
    out.set("linkCount", Json(link->linkCount()));
    out.set("perLinkBW", bandwidthJson(link->perLinkBandwidth()));
  } else if (dynamic_cast<const PhysicalShipment*>(&device) != nullptr) {
    out.set("type", Json("shipment"));
  } else {
    fail("cannot serialize unknown device type for '" + device.name() + "'");
  }
  out.set("name", Json(spec.name));
  out.set("location", locationToJson(spec.location));
  out.set("maxCapSlots", Json(spec.maxCapSlots));
  out.set("slotCap", bytesJson(spec.slotCap));
  out.set("maxBWSlots", Json(spec.maxBWSlots));
  out.set("slotBW", bandwidthJson(spec.slotBW));
  out.set("enclBW", bandwidthJson(spec.enclosureBW));
  out.set("devDelay", durationJson(spec.accessDelay));
  out.set("costs", costToJson(spec.cost));
  out.set("spare", spareToJson(spec.spare));
  return out;
}

DevicePtr deviceFromJson(const Json& value) {
  const std::string type = value.at("type").asString();
  const std::string name = value.at("name").asString();
  const Location location = locationFromJson(value.at("location"));
  const DeviceCostModel cost = costFromJson(value.find("costs"));
  const SpareSpec spare = spareFromJson(value.find("spare"));

  if (type == "network_link") {
    return std::make_shared<NetworkLink>(
        name, location, static_cast<int>(value.at("linkCount").asNumber()),
        jsonToBandwidth(value.at("perLinkBW")),
        value.find("devDelay") ? jsonToDuration(value.at("devDelay"))
                               : Duration::zero(),
        cost, spare);
  }
  if (type == "shipment") {
    return std::make_shared<PhysicalShipment>(
        name, location, jsonToDuration(value.at("devDelay")),
        cost.costPerShipment);
  }

  DeviceSpec spec;
  spec.name = name;
  spec.location = location;
  spec.cost = cost;
  spec.spare = spare;
  if (const Json* v = value.find("maxCapSlots")) {
    spec.maxCapSlots = static_cast<int>(v->asNumber());
  }
  if (const Json* v = value.find("slotCap")) spec.slotCap = jsonToBytes(*v);
  if (const Json* v = value.find("maxBWSlots")) {
    spec.maxBWSlots = static_cast<int>(v->asNumber());
  }
  if (const Json* v = value.find("slotBW")) spec.slotBW = jsonToBandwidth(*v);
  if (const Json* v = value.find("enclBW")) {
    spec.enclosureBW = jsonToBandwidth(*v);
  }
  if (const Json* v = value.find("devDelay")) {
    spec.accessDelay = jsonToDuration(*v);
  }

  if (type == "disk_array") {
    RaidLevel raid = RaidLevel::kRaid1;
    if (const Json* r = value.find("raid")) {
      raid = raidFromString(r->asString());
    }
    int groupSize = 8;
    if (const Json* g = value.find("raidGroupSize")) {
      groupSize = static_cast<int>(g->asNumber());
    }
    return std::make_shared<DiskArray>(std::move(spec), raid, groupSize);
  }
  if (type == "tape_library") {
    return std::make_shared<TapeLibrary>(std::move(spec));
  }
  if (type == "vault") {
    return std::make_shared<MediaVault>(std::move(spec));
  }
  fail("unknown device type '" + type + "'");
}

Json scenarioToJson(const FailureScenario& scenario) {
  Json out{JsonObject{}};
  switch (scenario.scope) {
    case FailureScope::kDataObject:
      out.set("scope", Json("object"));
      break;
    case FailureScope::kArray:
      out.set("scope", Json("array"));
      break;
    case FailureScope::kBuilding:
      out.set("scope", Json("building"));
      break;
    case FailureScope::kSite:
      out.set("scope", Json("site"));
      break;
    case FailureScope::kRegion:
      out.set("scope", Json("region"));
      break;
  }
  if (!scenario.target.empty()) out.set("target", Json(scenario.target));
  if (scenario.recoveryTargetAge > Duration::zero()) {
    out.set("recoveryTargetAge", durationJson(scenario.recoveryTargetAge));
  }
  if (scenario.recoverySize) {
    out.set("recoverySize", bytesJson(*scenario.recoverySize));
  }
  return out;
}

FailureScenario scenarioFromJson(const Json& value) {
  FailureScenario scenario;
  const std::string scope = value.at("scope").asString();
  if (scope == "object") {
    scenario.scope = FailureScope::kDataObject;
  } else if (scope == "array") {
    scenario.scope = FailureScope::kArray;
  } else if (scope == "building") {
    scenario.scope = FailureScope::kBuilding;
  } else if (scope == "site") {
    scenario.scope = FailureScope::kSite;
  } else if (scope == "region") {
    scenario.scope = FailureScope::kRegion;
  } else {
    fail("unknown failure scope '" + scope + "'");
  }
  if (const Json* target = value.find("target")) {
    scenario.target = target->asString();
  }
  if (const Json* age = value.find("recoveryTargetAge")) {
    scenario.recoveryTargetAge = jsonToDuration(*age);
  }
  if (const Json* size = value.find("recoverySize")) {
    scenario.recoverySize = jsonToBytes(*size);
  }
  return scenario;
}

namespace {

/// Serializes one level: technique type + device references + policy.
Json levelToJson(const Technique& level) {
  Json out{JsonObject{}};
  switch (level.kind()) {
    case TechniqueKind::kPrimaryCopy: {
      const auto& primary = static_cast<const PrimaryCopy&>(level);
      out.set("technique", Json("primary_copy"));
      out.set("array", Json(primary.array()->name()));
      return out;
    }
    case TechniqueKind::kVirtualSnapshot: {
      const auto& snap = static_cast<const VirtualSnapshot&>(level);
      out.set("technique", Json("virtual_snapshot"));
      out.set("name", Json(level.name()));
      out.set("array", Json(snap.array()->name()));
      break;
    }
    case TechniqueKind::kSplitMirror: {
      const auto& sm = static_cast<const SplitMirror&>(level);
      out.set("technique", Json("split_mirror"));
      out.set("name", Json(level.name()));
      out.set("array", Json(sm.array()->name()));
      break;
    }
    case TechniqueKind::kSyncMirror:
    case TechniqueKind::kAsyncMirror:
    case TechniqueKind::kAsyncBatchMirror: {
      const auto& mirror = static_cast<const RemoteMirror&>(level);
      out.set("technique", Json("remote_mirror"));
      out.set("name", Json(level.name()));
      out.set("mode", Json(toString(mirror.mode())));
      out.set("source", Json(mirror.sourceArray()->name()));
      out.set("destination", Json(mirror.destArray()->name()));
      out.set("links", Json(mirror.links()->name()));
      break;
    }
    case TechniqueKind::kBackup: {
      const auto& backup = static_cast<const Backup&>(level);
      out.set("technique", Json("backup"));
      out.set("name", Json(level.name()));
      out.set("style", Json(backup.style() == BackupStyle::kFullOnly
                                ? "full"
                                : backup.style() ==
                                          BackupStyle::kCumulativeIncremental
                                      ? "cumulative"
                                      : "differential"));
      out.set("source", Json(backup.sourceArray()->name()));
      out.set("device", Json(backup.backupDevice()->name()));
      if (backup.transport()) {
        out.set("transport", Json(backup.transport()->name()));
      }
      break;
    }
    case TechniqueKind::kVaulting: {
      const auto& vaulting = static_cast<const Vaulting&>(level);
      out.set("technique", Json("vaulting"));
      out.set("name", Json(level.name()));
      out.set("backupDevice", Json(vaulting.backupDevice()->name()));
      out.set("vault", Json(vaulting.vault()->name()));
      out.set("shipment", Json(vaulting.shipment()->name()));
      break;
    }
  }
  if (level.policy() != nullptr) {
    out.set("policy", policyToJson(*level.policy()));
  }
  return out;
}

DevicePtr findDevice(const std::map<std::string, DevicePtr>& devices,
                     const Json& value, const std::string& key) {
  const std::string name = value.at(key).asString();
  const auto it = devices.find(name);
  if (it == devices.end()) fail("level references unknown device '" + name +
                                "'");
  return it->second;
}

TechniquePtr levelFromJson(const Json& value,
                           const std::map<std::string, DevicePtr>& devices,
                           Duration previousRetW) {
  const std::string technique = value.at("technique").asString();
  if (technique == "primary_copy") {
    return std::make_shared<PrimaryCopy>(findDevice(devices, value, "array"));
  }
  const Json* nameJson = value.find("name");
  const std::string name =
      nameJson != nullptr ? nameJson->asString() : technique;
  ProtectionPolicy policy = policyFromJson(value.at("policy"));
  if (technique == "virtual_snapshot") {
    return std::make_shared<VirtualSnapshot>(
        name, findDevice(devices, value, "array"), std::move(policy));
  }
  if (technique == "split_mirror") {
    return std::make_shared<SplitMirror>(
        name, findDevice(devices, value, "array"), std::move(policy));
  }
  if (technique == "remote_mirror") {
    const std::string mode = value.at("mode").asString();
    MirrorMode mirrorMode = MirrorMode::kSync;
    if (mode == "async") {
      mirrorMode = MirrorMode::kAsync;
    } else if (mode == "async-batch") {
      mirrorMode = MirrorMode::kAsyncBatch;
    } else if (mode != "sync") {
      fail("unknown mirror mode '" + mode + "'");
    }
    return std::make_shared<RemoteMirror>(
        name, mirrorMode, findDevice(devices, value, "source"),
        findDevice(devices, value, "destination"),
        findDevice(devices, value, "links"), std::move(policy));
  }
  if (technique == "backup") {
    const std::string style = value.at("style").asString();
    BackupStyle backupStyle = BackupStyle::kFullOnly;
    if (style == "cumulative") {
      backupStyle = BackupStyle::kCumulativeIncremental;
    } else if (style == "differential") {
      backupStyle = BackupStyle::kDifferentialIncremental;
    } else if (style != "full") {
      fail("unknown backup style '" + style + "'");
    }
    DevicePtr transport;
    if (value.find("transport") != nullptr) {
      transport = findDevice(devices, value, "transport");
    }
    return std::make_shared<Backup>(name, backupStyle,
                                    findDevice(devices, value, "source"),
                                    findDevice(devices, value, "device"),
                                    std::move(policy), std::move(transport));
  }
  if (technique == "vaulting") {
    return std::make_shared<Vaulting>(
        name, findDevice(devices, value, "backupDevice"),
        findDevice(devices, value, "vault"),
        findDevice(devices, value, "shipment"), std::move(policy),
        previousRetW);
  }
  fail("unknown technique '" + technique + "'");
}

}  // namespace

Json designToJson(const StorageDesign& design) {
  Json out{JsonObject{}};
  out.set("name", Json(design.name()));
  out.set("workload", workloadToJson(design.workload()));

  Json business{JsonObject{}};
  business.set("unavailPenRatePerHour",
               Json(design.business().unavailabilityPenaltyRate.usdPerHour()));
  business.set("lossPenRatePerHour",
               Json(design.business().lossPenaltyRate.usdPerHour()));
  if (design.business().rto) {
    business.set("rto", durationJson(*design.business().rto));
  }
  if (design.business().rpo) {
    business.set("rpo", durationJson(*design.business().rpo));
  }
  out.set("business", std::move(business));

  JsonArray devices;
  for (const DevicePtr& device : design.devices()) {
    devices.push_back(deviceToJson(*device));
  }
  out.set("devices", Json(std::move(devices)));

  JsonArray levels;
  for (int i = 0; i < design.levelCount(); ++i) {
    levels.push_back(levelToJson(design.level(i)));
  }
  out.set("levels", Json(std::move(levels)));

  if (design.facility()) {
    Json facility{JsonObject{}};
    facility.set("location", locationToJson(design.facility()->location));
    facility.set("provisioningTime",
                 durationJson(design.facility()->provisioningTime));
    facility.set("costDiscount", Json(design.facility()->costDiscount));
    out.set("recoveryFacility", std::move(facility));
  }
  return out;
}

StorageDesign designFromJson(const Json& value) {
  const std::string name =
      withContext("/name", [&] { return value.at("name").asString(); });
  WorkloadSpec workload = withContext(
      "/workload", [&] { return workloadFromJson(value.at("workload")); });

  BusinessRequirements business = withContext("/business", [&] {
    BusinessRequirements out;
    const Json& businessJson = value.at("business");
    out.unavailabilityPenaltyRate =
        dollarsPerHour(businessJson.at("unavailPenRatePerHour").asNumber());
    out.lossPenaltyRate =
        dollarsPerHour(businessJson.at("lossPenRatePerHour").asNumber());
    if (const Json* rto = businessJson.find("rto")) {
      out.rto = jsonToDuration(*rto);
    }
    if (const Json* rpo = businessJson.find("rpo")) {
      out.rpo = jsonToDuration(*rpo);
    }
    return out;
  });

  std::map<std::string, DevicePtr> devices;
  const JsonArray& deviceArray = withContext(
      "/devices", [&]() -> const JsonArray& {
        return value.at("devices").asArray();
      });
  for (std::size_t i = 0; i < deviceArray.size(); ++i) {
    withContext("/devices/" + std::to_string(i), [&] {
      DevicePtr device = deviceFromJson(deviceArray[i]);
      if (!devices.emplace(device->name(), device).second) {
        fail("duplicate device name '" + device->name() + "'");
      }
    });
  }

  std::vector<TechniquePtr> levels;
  Duration previousRetW = Duration::zero();
  const JsonArray& levelArray = withContext(
      "/levels", [&]() -> const JsonArray& {
        return value.at("levels").asArray();
      });
  for (std::size_t i = 0; i < levelArray.size(); ++i) {
    withContext("/levels/" + std::to_string(i), [&] {
      TechniquePtr level = levelFromJson(levelArray[i], devices, previousRetW);
      if (level->policy() != nullptr) {
        previousRetW = level->policy()->retentionWindow();
      }
      levels.push_back(std::move(level));
    });
  }

  std::optional<RecoveryFacilitySpec> facility;
  if (const Json* facilityJson = value.find("recoveryFacility")) {
    facility = withContext("/recoveryFacility", [&] {
      return RecoveryFacilitySpec{
          .location = locationFromJson(facilityJson->at("location")),
          .provisioningTime =
              jsonToDuration(facilityJson->at("provisioningTime")),
          .costDiscount = facilityJson->at("costDiscount").asNumber(),
      };
    });
  }
  // StorageDesign's constructor validates the composition (levels reference
  // their predecessors etc.); its failures need the same wrapping.
  return withContext("design", [&] {
    return StorageDesign(name, std::move(workload), business,
                         std::move(levels), std::move(facility));
  });
}

namespace {

Json processToJson(const ProcessSpec& process) {
  Json out{JsonObject{}};
  out.set("dist", Json(toString(process.kind)));
  out.set("mean", process.mean.isFinite() ? durationJson(process.mean)
                                          : Json("never"));
  if (process.kind == ProcessKind::kWeibull) {
    out.set("shape", Json(process.shape));
  }
  return out;
}

ProcessSpec processFromJson(const Json& value) {
  if (!value.isObject()) fail("process specs must be objects");
  ProcessSpec process;
  if (const Json* dist = value.find("dist")) {
    const std::string name = dist->asString();
    if (name == "exponential") {
      process.kind = ProcessKind::kExponential;
    } else if (name == "weibull") {
      process.kind = ProcessKind::kWeibull;
    } else if (name == "fixed") {
      process.kind = ProcessKind::kFixed;
    } else {
      fail("unknown process dist '" + name + "'");
    }
  }
  const Json& mean = value.at("mean");
  if (mean.isString() && mean.asString() == "never") {
    process.mean = Duration::infinite();
  } else {
    process.mean = jsonToDuration(mean);
    if (!(process.mean.secs() >= 0)) fail("process mean must be >= 0");
  }
  if (const Json* shape = value.find("shape")) {
    process.shape = shape->asNumber();
    if (!(process.shape > 0)) fail("process shape must be > 0");
  }
  return process;
}

}  // namespace

Json reliabilityToJson(const ReliabilitySpec& spec) {
  Json out{JsonObject{}};
  out.set("missionWindow", durationJson(spec.missionWindow));
  out.set("siteShockAnnualRate", Json(spec.siteShockAnnualRate));
  Json devices{JsonObject{}};
  for (const auto& [name, reliability] : spec.devices) {
    Json entry{JsonObject{}};
    entry.set("failure", processToJson(reliability.failure));
    entry.set("repair", processToJson(reliability.repair));
    devices.set(name, std::move(entry));
  }
  out.set("devices", std::move(devices));
  return out;
}

ReliabilitySpec reliabilityFromJson(const Json& value) {
  if (!value.isObject()) fail("\"reliability\" must be an object");
  ReliabilitySpec spec;
  if (const Json* window = value.find("missionWindow")) {
    spec.missionWindow = jsonToDuration(*window);
    if (!(spec.missionWindow.secs() > 0) || !spec.missionWindow.isFinite()) {
      fail("missionWindow must be a positive finite duration");
    }
  }
  if (const Json* rate = value.find("siteShockAnnualRate")) {
    spec.siteShockAnnualRate = rate->asNumber();
    if (!(spec.siteShockAnnualRate >= 0)) {
      fail("siteShockAnnualRate must be >= 0");
    }
  }
  if (const Json* devices = value.find("devices")) {
    if (!devices->isObject()) fail("reliability devices must be an object");
    for (const auto& [name, entry] : devices->asObject()) {
      withContext("devices/" + name, [&] {
        DeviceReliability reliability;
        if (const Json* failure = entry.find("failure")) {
          reliability.failure = processFromJson(*failure);
        }
        if (const Json* repair = entry.find("repair")) {
          reliability.repair = processFromJson(*repair);
        }
        if (entry.find("failure") == nullptr &&
            entry.find("repair") == nullptr) {
          fail("expected a \"failure\" and/or \"repair\" process");
        }
        spec.devices.emplace(name, reliability);
      });
    }
  }
  return spec;
}

std::optional<ReliabilitySpec> reliabilityFromDesignJson(
    const Json& designDocument) {
  const Json* block = designDocument.find("reliability");
  if (block == nullptr) return std::nullopt;
  return withContext("/reliability", [&] { return reliabilityFromJson(*block); });
}

StorageDesign loadDesign(const std::string& jsonText) {
  // Never leaks raw std::exceptions: JSON syntax errors and any stray
  // accessor failure surface as DesignIoError.
  try {
    return designFromJson(Json::parse(jsonText));
  } catch (const DesignIoError&) {
    throw;
  } catch (const std::exception& e) {
    throw DesignIoError(std::string("invalid design document: ") + e.what());
  }
}

std::string saveDesign(const StorageDesign& design) {
  return designToJson(design).pretty();
}

StorageDesign loadDesignFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw DesignIoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return loadDesign(buffer.str());
  } catch (const DesignIoError& e) {
    throw DesignIoError(path + ": " + e.what());
  }
}

void saveDesignFile(const StorageDesign& design, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw DesignIoError("cannot open " + path + " for writing");
  out << saveDesign(design) << '\n';
  if (!out) throw DesignIoError("failed writing " + path);
}

}  // namespace stordep::config
