#include "config/json.hpp"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace stordep::config {

JsonError::JsonError(const std::string& message, size_t line, size_t column)
    : std::runtime_error("JSON error at " + std::to_string(line) + ":" +
                         std::to_string(column) + ": " + message),
      line_(line),
      column_(column) {}

bool Json::isNull() const noexcept {
  return std::holds_alternative<std::nullptr_t>(value_);
}
bool Json::isBool() const noexcept {
  return std::holds_alternative<bool>(value_);
}
bool Json::isNumber() const noexcept {
  return std::holds_alternative<double>(value_);
}
bool Json::isString() const noexcept {
  return std::holds_alternative<std::string>(value_);
}
bool Json::isArray() const noexcept {
  return std::holds_alternative<JsonArray>(value_);
}
bool Json::isObject() const noexcept {
  return std::holds_alternative<JsonObject>(value_);
}

bool Json::asBool() const {
  if (!isBool()) throw std::runtime_error("JSON value is not a bool");
  return std::get<bool>(value_);
}
double Json::asNumber() const {
  if (!isNumber()) throw std::runtime_error("JSON value is not a number");
  return std::get<double>(value_);
}
const std::string& Json::asString() const {
  if (!isString()) throw std::runtime_error("JSON value is not a string");
  return std::get<std::string>(value_);
}
const JsonArray& Json::asArray() const {
  if (!isArray()) throw std::runtime_error("JSON value is not an array");
  return std::get<JsonArray>(value_);
}
const JsonObject& Json::asObject() const {
  if (!isObject()) throw std::runtime_error("JSON value is not an object");
  return std::get<JsonObject>(value_);
}
JsonArray& Json::asArray() {
  if (!isArray()) throw std::runtime_error("JSON value is not an array");
  return std::get<JsonArray>(value_);
}
JsonObject& Json::asObject() {
  if (!isObject()) throw std::runtime_error("JSON value is not an object");
  return std::get<JsonObject>(value_);
}

const Json* Json::find(const std::string& key) const {
  if (!isObject()) return nullptr;
  for (const auto& [k, v] : std::get<JsonObject>(value_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* found = find(key);
  if (found == nullptr) {
    throw std::runtime_error("missing JSON member '" + key + "'");
  }
  return *found;
}

void Json::set(const std::string& key, Json value) {
  if (isNull()) value_ = JsonObject{};
  if (!isObject()) throw std::runtime_error("JSON value is not an object");
  for (auto& [k, v] : std::get<JsonObject>(value_)) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  std::get<JsonObject>(value_).emplace_back(key, std::move(value));
}

bool operator==(const Json& a, const Json& b) { return a.value_ == b.value_; }

namespace {

void escapeString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x", c);
          out += buf.data();
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void writeNumber(std::string& out, double n) {
  if (!std::isfinite(n)) {
    // JSON has no infinity; serialize as null (readers treat it as absent).
    out += "null";
    return;
  }
  if (n == std::floor(n) && std::fabs(n) < 1e15) {
    std::array<char, 32> buf{};
    std::snprintf(buf.data(), buf.size(), "%.0f", n);
    out += buf.data();
    return;
  }
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%.17g", n);
  out += buf.data();
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parseDocument() {
    Json value = parseValue();
    skipWhitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  /// Deepest container nesting accepted. Generous for real design documents
  /// (a handful of levels) while keeping worst-case parser stack use small
  /// enough for sanitizer builds and constrained threads.
  static constexpr int kMaxDepth = 256;

  [[noreturn]] void fail(const std::string& message) const {
    throw JsonError(message, line_, pos_ - lineStart_ + 1);
  }

  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    const char c = peek();
    ++pos_;
    if (c == '\n') {
      ++line_;
      lineStart_ = pos_;
    }
    return c;
  }

  void skipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        advance();
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (advance() != c) fail(std::string("expected '") + c + "'");
  }

  void expectLiteral(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        fail(std::string("invalid literal, expected '") + literal + "'");
      }
      ++pos_;
    }
  }

  Json parseValue() {
    skipWhitespace();
    switch (peek()) {
      case '{':
      case '[': {
        // Recursive descent: bound the nesting depth so hostile documents
        // ("[[[[...") fail with a JsonError instead of smashing the stack.
        if (depth_ >= kMaxDepth) fail("nesting too deep");
        ++depth_;
        Json value = peek() == '{' ? parseObject() : parseArray();
        --depth_;
        return value;
      }
      case '"':
        return Json(parseString());
      case 't':
        expectLiteral("true");
        return Json(true);
      case 'f':
        expectLiteral("false");
        return Json(false);
      case 'n':
        expectLiteral("null");
        return Json(nullptr);
      default:
        return parseNumber();
    }
  }

  Json parseObject() {
    expect('{');
    JsonObject object;
    skipWhitespace();
    if (peek() == '}') {
      advance();
      return Json(std::move(object));
    }
    for (;;) {
      skipWhitespace();
      if (peek() != '"') fail("object keys must be strings");
      std::string key = parseString();
      skipWhitespace();
      expect(':');
      object.emplace_back(std::move(key), parseValue());
      skipWhitespace();
      const char c = advance();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Json(std::move(object));
  }

  Json parseArray() {
    expect('[');
    JsonArray array;
    skipWhitespace();
    if (peek() == ']') {
      advance();
      return Json(std::move(array));
    }
    for (;;) {
      array.push_back(parseValue());
      skipWhitespace();
      const char c = advance();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Json(std::move(array));
  }

  std::string parseString() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string (use \\u escapes)");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape digit");
            }
          }
          // Encode as UTF-8 (basic multilingual plane; surrogate pairs in
          // design files are not expected, treated as two code points).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape sequence");
      }
    }
    return out;
  }

  Json parseNumber() {
    const size_t start = pos_;
    // JSON numbers start with '-' or a digit (no leading '+' or '.').
    if (peek() != '-' && std::isdigit(static_cast<unsigned char>(peek())) == 0) {
      fail("invalid start of value");
    }
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    try {
      size_t consumed = 0;
      const double value = std::stod(token, &consumed);
      if (consumed != token.size()) throw std::invalid_argument(token);
      return Json(value);
    } catch (const std::exception&) {
      fail("invalid number '" + token + "'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t lineStart_ = 0;
  int depth_ = 0;
};

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<size_t>(indent) * depth, ' ');
  const std::string childPad(static_cast<size_t>(indent) * (depth + 1), ' ');
  const char* nl = indent > 0 ? "\n" : "";
  const char* space = indent > 0 ? "" : " ";

  if (isNull()) {
    out += "null";
  } else if (isBool()) {
    out += asBool() ? "true" : "false";
  } else if (isNumber()) {
    writeNumber(out, asNumber());
  } else if (isString()) {
    escapeString(out, asString());
  } else if (isArray()) {
    const JsonArray& array = asArray();
    if (array.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += nl;
    for (size_t i = 0; i < array.size(); ++i) {
      if (indent > 0) out += childPad;
      array[i].write(out, indent, depth + 1);
      if (i + 1 < array.size()) {
        out += ',';
        out += space;
      }
      out += nl;
    }
    if (indent > 0) out += pad;
    out += ']';
  } else {
    const JsonObject& object = asObject();
    if (object.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += nl;
    for (size_t i = 0; i < object.size(); ++i) {
      if (indent > 0) out += childPad;
      escapeString(out, object[i].first);
      out += indent > 0 ? ": " : ":";
      object[i].second.write(out, indent, depth + 1);
      if (i + 1 < object.size()) {
        out += ',';
        out += space;
      }
      out += nl;
    }
    if (indent > 0) out += pad;
    out += '}';
  }
}

std::string Json::dump() const {
  std::string out;
  write(out, 0, 0);
  return out;
}

std::string Json::pretty() const {
  std::string out;
  write(out, 2, 0);
  return out;
}

Json Json::parse(const std::string& text) {
  return Parser(text).parseDocument();
}

}  // namespace stordep::config
