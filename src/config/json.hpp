// json.hpp — a minimal, dependency-free JSON document model.
//
// Supports the full JSON grammar (null, bool, number, string with escapes,
// array, object), parse errors with line/column diagnostics, and pretty
// printing. Object member order is preserved (designs round-trip in a
// stable, reviewable layout). This is the storage format for designs,
// workloads and scenarios (design_io.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace stordep::config {

class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& message, size_t line, size_t column);
  [[nodiscard]] size_t line() const noexcept { return line_; }
  [[nodiscard]] size_t column() const noexcept { return column_; }

 private:
  size_t line_;
  size_t column_;
};

class Json;
using JsonArray = std::vector<Json>;
/// Order-preserving object representation.
using JsonObject = std::vector<std::pair<std::string, Json>>;

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double n) : value_(n) {}
  Json(int n) : value_(static_cast<double>(n)) {}
  Json(std::int64_t n) : value_(static_cast<double>(n)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  [[nodiscard]] bool isNull() const noexcept;
  [[nodiscard]] bool isBool() const noexcept;
  [[nodiscard]] bool isNumber() const noexcept;
  [[nodiscard]] bool isString() const noexcept;
  [[nodiscard]] bool isArray() const noexcept;
  [[nodiscard]] bool isObject() const noexcept;

  /// Typed accessors; throw std::runtime_error on type mismatch.
  [[nodiscard]] bool asBool() const;
  [[nodiscard]] double asNumber() const;
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] const JsonArray& asArray() const;
  [[nodiscard]] const JsonObject& asObject() const;
  [[nodiscard]] JsonArray& asArray();
  [[nodiscard]] JsonObject& asObject();

  /// Object member lookup; returns nullptr when absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Object member lookup; throws when absent.
  [[nodiscard]] const Json& at(const std::string& key) const;
  /// Appends/overwrites an object member.
  void set(const std::string& key, Json value);

  /// Compact single-line rendering.
  [[nodiscard]] std::string dump() const;
  /// Pretty rendering with 2-space indentation.
  [[nodiscard]] std::string pretty() const;

  /// Parses a complete JSON document (trailing garbage is an error).
  [[nodiscard]] static Json parse(const std::string& text);

  friend bool operator==(const Json& a, const Json& b);

 private:
  void write(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

}  // namespace stordep::config
