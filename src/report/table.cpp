#include "report/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace stordep::report {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kLeft) {
  if (headers_.empty()) {
    throw std::invalid_argument("table needs at least one column");
  }
}

TextTable& TextTable::align(size_t column, Align alignment) {
  if (column >= aligns_.size()) {
    throw std::out_of_range("table column out of range");
  }
  aligns_[column] = alignment;
  return *this;
}

TextTable& TextTable::addRow(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("row has more cells than columns");
  }
  cells.resize(headers_.size());
  rows_.push_back(Row{std::move(cells), false});
  return *this;
}

TextTable& TextTable::addSeparator() {
  rows_.push_back(Row{{}, true});
  return *this;
}

TextTable& TextTable::title(std::string text) {
  title_ = std::move(text);
  return *this;
}

size_t TextTable::rowCount() const noexcept {
  size_t n = 0;
  for (const auto& r : rows_) {
    if (!r.separator) ++n;
  }
  return n;
}

std::string TextTable::render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      const size_t pad = widths[c] - cell.size();
      os << ' ';
      if (aligns_[c] == Align::kRight) os << std::string(pad, ' ');
      os << cell;
      if (aligns_[c] == Align::kLeft) os << std::string(pad, ' ');
      os << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  rule();
  emit(headers_);
  rule();
  for (const auto& row : rows_) {
    if (row.separator) {
      rule();
    } else {
      emit(row.cells);
    }
  }
  rule();
  return os.str();
}

std::string TextTable::renderMarkdown() const {
  std::ostringstream os;
  auto escape = [](const std::string& cell) {
    std::string out;
    for (char c : cell) {
      if (c == '|') out += '\\';
      out += c;
    }
    return out;
  };
  if (!title_.empty()) os << "**" << title_ << "**\n\n";
  os << '|';
  for (const auto& header : headers_) os << ' ' << escape(header) << " |";
  os << "\n|";
  for (const Align align : aligns_) {
    os << (align == Align::kRight ? " ---: |" : " --- |");
  }
  os << '\n';
  for (const auto& row : rows_) {
    if (row.separator) continue;
    os << '|';
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell =
          c < row.cells.size() ? row.cells[c] : std::string{};
      os << ' ' << escape(cell) << " |";
    }
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.render();
}

}  // namespace stordep::report
