// report.hpp — renders evaluation results as paper-style text reports.
//
// Produces the same views the paper's case study presents: the normal-mode
// utilization table (Table 5), the recovery summary (Table 6), the cost
// breakdown (Figure 5), the recovery timeline (Figure 4) and the guaranteed
// RP ranges per level (Figure 3).
#pragma once

#include <string>

#include "core/evaluator.hpp"
#include "report/table.hpp"

namespace stordep::report {

/// Table 5 style: per-device, per-technique bandwidth/capacity utilization.
[[nodiscard]] TextTable utilizationTable(const UtilizationResult& result);

/// Table 6 style: one row per scenario result (compose rows externally).
[[nodiscard]] std::string recoverySummaryLine(const FailureScenario& scenario,
                                              const RecoveryResult& recovery);

/// Figure 5 style: outlays by technique plus penalties for one scenario.
[[nodiscard]] TextTable costTable(const CostResult& cost);

/// Figure 4 style: the recovery timeline with its overlap structure.
[[nodiscard]] TextTable recoveryTimelineTable(const RecoveryResult& recovery);

/// Figure 3 style: guaranteed RP age ranges per level.
[[nodiscard]] TextTable rpRangeTable(const StorageDesign& design);

/// Full multi-section report for one design under one scenario.
[[nodiscard]] std::string fullReport(const StorageDesign& design,
                                     const FailureScenario& scenario,
                                     const EvaluationResult& result);

/// The same report as a GitHub-flavored-markdown document (for wikis,
/// tickets and PR descriptions).
[[nodiscard]] std::string markdownReport(const StorageDesign& design,
                                         const FailureScenario& scenario,
                                         const EvaluationResult& result);

/// Helpers shared by benches: fixed-precision number rendering.
[[nodiscard]] std::string fixed(double value, int precision);
[[nodiscard]] std::string percent(double fraction, int precision = 1);

}  // namespace stordep::report
