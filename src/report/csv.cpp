#include "report/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace stordep::report {

std::string csvEscape(const std::string& field) {
  const bool needsQuoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needsQuoting) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("CSV needs at least one column");
  }
}

CsvWriter& CsvWriter::addRow(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("CSV row has more cells than columns");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string CsvWriter::render() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) os << ',';
      os << csvEscape(cells[i]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void CsvWriter::writeFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << render();
  if (!out) throw std::runtime_error("failed writing " + path);
}

}  // namespace stordep::report
