// table.hpp — plain-text table rendering for reports and benches.
//
// A small, dependency-free table formatter used to print the paper-style
// result tables (Tables 5-7) and the evaluation reports: fixed-width
// columns, left/right alignment, optional separator rows and a title.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace stordep::report {

enum class Align { kLeft, kRight };

class TextTable {
 public:
  /// Creates a table with the given column headers (all left-aligned).
  explicit TextTable(std::vector<std::string> headers);

  /// Sets one column's alignment (default kLeft).
  TextTable& align(size_t column, Align alignment);

  /// Appends a data row; missing cells render empty, extras are an error.
  TextTable& addRow(std::vector<std::string> cells);

  /// Appends a horizontal separator at the current position.
  TextTable& addSeparator();

  /// Optional title printed above the table.
  TextTable& title(std::string text);

  [[nodiscard]] size_t columnCount() const noexcept { return headers_.size(); }
  [[nodiscard]] size_t rowCount() const noexcept;

  /// Renders with box-drawing rules: header row, separators, padded cells.
  [[nodiscard]] std::string render() const;

  /// Renders as a GitHub-flavored-markdown table (alignment markers from
  /// align(); the title becomes a bold caption line; separator rows are
  /// dropped — GFM has no mid-table rules; pipes in cells are escaped).
  [[nodiscard]] std::string renderMarkdown() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& table);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::string title_;
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

}  // namespace stordep::report
