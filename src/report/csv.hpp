// csv.hpp — RFC-4180-style CSV output for benchmark series and reports.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace stordep::report {

/// Escapes one CSV field: quotes it when it contains commas, quotes or
/// newlines, doubling embedded quotes.
[[nodiscard]] std::string csvEscape(const std::string& field);

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  CsvWriter& addRow(std::vector<std::string> cells);

  [[nodiscard]] size_t rowCount() const noexcept { return rows_.size(); }

  /// Renders the whole document (header + rows, '\n' line endings).
  [[nodiscard]] std::string render() const;

  /// Writes render() to a file; throws std::runtime_error on I/O failure.
  void writeFile(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace stordep::report
