#include "report/report.hpp"

#include <array>
#include <cstdio>
#include <sstream>

#include "core/propagation.hpp"

namespace stordep::report {

std::string fixed(double value, int precision) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", precision, value);
  return buf.data();
}

std::string percent(double fraction, int precision) {
  return fixed(fraction * 100.0, precision) + "%";
}

TextTable utilizationTable(const UtilizationResult& result) {
  TextTable table({"Device", "Technique", "Bandwidth", "Capacity"});
  table.align(2, Align::kRight).align(3, Align::kRight);
  bool first = true;
  for (const auto& dev : result.devices) {
    if (!first) table.addSeparator();
    first = false;
    for (const auto& share : dev.shares) {
      table.addRow({dev.device, share.technique, percent(share.bwUtil),
                    percent(share.capUtil)});
    }
    table.addRow({dev.device, "overall",
                  percent(dev.bwUtil) + " (" + toString(dev.bwDemand) + ")",
                  percent(dev.capUtil) + " (" + toString(dev.capDemand) + ")"});
  }
  return table;
}

std::string recoverySummaryLine(const FailureScenario& scenario,
                                const RecoveryResult& recovery) {
  std::ostringstream os;
  os << toString(scenario.scope) << ": source=";
  os << (recovery.sourceLevel >= 0 ? recovery.sourceName : "none");
  if (recovery.recoverable) {
    os << ", recovery time=" << toString(recovery.recoveryTime)
       << ", recent data loss=" << toString(recovery.dataLoss);
  } else {
    os << ", UNRECOVERABLE (entire data object lost)";
  }
  return os.str();
}

TextTable costTable(const CostResult& cost) {
  TextTable table({"Cost component", "Annual cost"});
  table.align(1, Align::kRight);
  for (const auto& outlay : cost.outlays) {
    table.addRow({"outlay: " + outlay.technique,
                  toString(outlay.total())});
  }
  table.addSeparator();
  table.addRow({"total outlays", toString(cost.totalOutlays)});
  table.addRow({"data outage penalty", toString(cost.outagePenalty)});
  table.addRow({"recent data loss penalty", toString(cost.lossPenalty)});
  table.addSeparator();
  table.addRow({"TOTAL", toString(cost.totalCost)});
  return table;
}

TextTable recoveryTimelineTable(const RecoveryResult& recovery) {
  TextTable table({"Step", "Via", "Start", "Ready", "parFix", "Transit",
                   "serFix", "Transfer", "Rate"});
  for (size_t c = 2; c < 9; ++c) table.align(c, Align::kRight);
  for (const auto& step : recovery.timeline) {
    table.addRow({step.description,
                  step.viaDevice.empty() ? "-" : step.viaDevice,
                  toString(step.startTime), toString(step.readyTime),
                  toString(step.parFix), toString(step.transit),
                  toString(step.serFix), toString(step.serXfer),
                  step.rate.bytesPerSec() > 0 ? toString(step.rate) : "-"});
  }
  return table;
}

TextTable rpRangeTable(const StorageDesign& design) {
  TextTable table({"Level", "Technique", "Transit", "Lag (youngest RP)",
                   "Oldest RP", "Guaranteed range"});
  for (int i = 0; i < design.levelCount(); ++i) {
    const RpRange range = guaranteedRange(design, i);
    table.addRow({std::to_string(i), design.level(i).name(),
                  toString(rpTransitTime(design, i)),
                  toString(range.youngestAge), toString(range.oldestAge),
                  range.empty() ? "(single floating RP)"
                                : "[" + toString(range.youngestAge) + " .. " +
                                      toString(range.oldestAge) + "] ago"});
  }
  return table;
}

std::string fullReport(const StorageDesign& design,
                       const FailureScenario& scenario,
                       const EvaluationResult& result) {
  std::ostringstream os;
  os << "=== Design: " << design.name() << " ===\n";
  os << "Workload: " << design.workload().name() << " ("
     << toString(design.workload().dataCap()) << ", "
     << toString(design.workload().avgUpdateRate()) << " updates)\n";
  os << "Scenario: " << toString(scenario.scope);
  if (!scenario.target.empty()) os << " (" << scenario.target << ")";
  if (scenario.recoveryTargetAge > Duration::zero()) {
    os << ", restore to " << toString(scenario.recoveryTargetAge) << " ago";
  }
  os << "\n\n";

  os << "-- Normal-mode utilization --\n"
     << utilizationTable(result.utilization).render();
  os << "overall: bandwidth " << percent(result.utilization.overallBwUtil)
     << " (max: " << result.utilization.maxBwDevice << "), capacity "
     << percent(result.utilization.overallCapUtil)
     << " (max: " << result.utilization.maxCapDevice << ")\n\n";

  os << "-- Retrieval point ranges --\n" << rpRangeTable(design).render()
     << "\n";

  os << "-- Recovery --\n"
     << recoverySummaryLine(scenario, result.recovery) << "\n";
  if (!result.recovery.timeline.empty()) {
    os << recoveryTimelineTable(result.recovery).render();
  }
  for (const auto& note : result.recovery.notes) {
    os << "note: " << note << "\n";
  }
  os << "\n-- Costs --\n" << costTable(result.cost).render();

  if (!result.utilization.errors.empty()) {
    os << "\nERRORS:\n";
    for (const auto& e : result.utilization.errors) os << "  " << e << "\n";
  }
  if (!result.warnings.empty()) {
    os << "\nWarnings:\n";
    for (const auto& w : result.warnings) os << "  " << w << "\n";
  }
  return os.str();
}

std::string markdownReport(const StorageDesign& design,
                           const FailureScenario& scenario,
                           const EvaluationResult& result) {
  std::ostringstream os;
  os << "# Dependability report: " << design.name() << "\n\n";
  os << "*Workload:* " << design.workload().name() << " ("
     << toString(design.workload().dataCap()) << ", "
     << toString(design.workload().avgUpdateRate()) << " updates). "
     << "*Scenario:* " << toString(scenario.scope);
  if (!scenario.target.empty()) os << " (`" << scenario.target << "`)";
  if (scenario.recoveryTargetAge > Duration::zero()) {
    os << ", restore to " << toString(scenario.recoveryTargetAge) << " ago";
  }
  os << ".\n\n";

  os << "## Summary\n\n";
  if (result.recovery.recoverable) {
    os << "| Metric | Value |\n| --- | ---: |\n";
    os << "| Recovery source | " << result.recovery.sourceName << " |\n";
    os << "| Worst-case recovery time | "
       << toString(result.recovery.recoveryTime) << " |\n";
    os << "| Worst-case recent data loss | "
       << toString(result.recovery.dataLoss) << " |\n";
    os << "| Annual outlays | " << toString(result.cost.totalOutlays)
       << " |\n";
    os << "| Scenario penalties | " << toString(result.cost.totalPenalties)
       << " |\n";
    os << "| Total cost | " << toString(result.cost.totalCost) << " |\n";
    os << "| Meets RTO/RPO | " << (result.meetsObjectives ? "yes" : "**NO**")
       << " |\n\n";
  } else {
    os << "**UNRECOVERABLE** — no surviving level retains an RP for the "
          "recovery target.\n\n";
  }

  os << "## Normal-mode utilization\n\n"
     << utilizationTable(result.utilization).renderMarkdown() << "\n";
  os << "## Retrieval point ranges\n\n"
     << rpRangeTable(design).renderMarkdown() << "\n";
  if (!result.recovery.timeline.empty()) {
    os << "## Recovery timeline\n\n"
       << recoveryTimelineTable(result.recovery).renderMarkdown() << "\n";
  }
  for (const auto& note : result.recovery.notes) {
    os << "> " << note << "\n";
  }
  os << "\n## Costs\n\n" << costTable(result.cost).renderMarkdown();
  if (!result.warnings.empty()) {
    os << "\n## Warnings\n\n";
    for (const auto& warning : result.warnings) {
      os << "* " << warning << "\n";
    }
  }
  return os.str();
}

}  // namespace stordep::report
