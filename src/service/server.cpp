#include "service/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "casestudy/casestudy.hpp"
#include "config/design_io.hpp"
#include "engine/fingerprint.hpp"
#include "optimizer/checkpoint.hpp"
#include "optimizer/search.hpp"
#include "service/json_api.hpp"

namespace stordep::service {

using config::Json;
using config::JsonArray;
using config::JsonObject;

namespace {

void setNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void setBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
}

/// Blocking full write with SIGPIPE suppressed; false when the peer is
/// gone. Used by search workers (detached, blocking sockets) only.
bool writeAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

[[nodiscard]] Json serviceErrorBody(const std::string& code,
                                    const std::string& message) {
  Json detail{JsonObject{}};
  detail.set("code", Json(code));
  detail.set("message", Json(message));
  Json out{JsonObject{}};
  out.set("error", detail);
  return out;
}

/// The final NDJSON line of a /v1/search stream. Shared by the single-node
/// and cluster-coordinator paths so their output is structurally identical
/// (wallSeconds / candidatesPerSec are the only run-varying fields).
[[nodiscard]] Json searchResultLine(const optimizer::SearchResult& result,
                                    std::size_t top) {
  JsonArray ranked;
  const std::size_t count = std::min(top, result.ranked.size());
  for (std::size_t i = 0; i < count; ++i) {
    const optimizer::EvaluatedCandidate& candidate = result.ranked[i];
    Json entry{JsonObject{}};
    entry.set("label", Json(candidate.label));
    entry.set("outlaysUsd", Json(candidate.outlays.usd()));
    entry.set("totalCostUsd", Json(candidate.totalCost.usd()));
    entry.set("worstRecoveryTimeSeconds",
              Json(candidate.worstRecoveryTime.secs()));
    entry.set("worstDataLossSeconds", Json(candidate.worstDataLoss.secs()));
    ranked.push_back(entry);
  }
  Json summary{JsonObject{}};
  summary.set("evaluated", Json(result.evaluated));
  summary.set("rankedCount", Json(static_cast<double>(result.ranked.size())));
  summary.set("rejectedCount",
              Json(static_cast<double>(result.rejected.size())));
  summary.set("failed", Json(result.failed));
  summary.set("cancelled", Json(result.cancelled));
  summary.set("wallSeconds", Json(result.wallSeconds));
  summary.set("candidatesPerSec", Json(result.candidatesPerSec));
  summary.set("top", Json(std::move(ranked)));
  Json line{JsonObject{}};
  line.set("result", summary);
  return line;
}

}  // namespace

/// Per-connection state; owned and touched by the loop thread only.
struct Server::Connection {
  int fd = -1;
  std::uint64_t id = 0;
  HttpRequestParser parser;
  std::string inBuf;
  std::size_t parsed = 0;  ///< bytes of inBuf already consumed
  std::string outBuf;
  std::size_t written = 0;
  bool waiting = false;   ///< evaluate job in flight; pause reading
  bool closing = false;   ///< close once outBuf drains
  bool epollOut = false;  ///< EPOLLOUT currently armed

  explicit Connection(HttpLimits limits) : parser(limits) {}
};

Server::Server(ServerOptions options) : options_(std::move(options)) {
  brownout_ = resilience::BrownoutController(options_.brownout);
  if (options_.eng != nullptr) {
    engine_ = options_.eng;
  } else {
    ownedEngine_ = std::make_unique<engine::Engine>(
        engine::EngineOptions{.threads = options_.engineThreads});
    engine_ = ownedEngine_.get();
  }
}

Server::~Server() { shutdown(); }

void Server::start() {
  if (running_.load(std::memory_order_acquire)) return;

  listenFd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listenFd_ < 0) {
    throw std::runtime_error("socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(listenFd_);
    listenFd_ = -1;
    throw std::runtime_error("bad listen address: " + options_.host);
  }
  if (bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(listenFd_, 128) < 0) {
    const std::string reason = std::strerror(errno);
    close(listenFd_);
    listenFd_ = -1;
    throw std::runtime_error("bind/listen on " + options_.host + ":" +
                             std::to_string(options_.port) +
                             " failed: " + reason);
  }
  sockaddr_in bound{};
  socklen_t boundLen = sizeof(bound);
  getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &boundLen);
  boundPort_ = ntohs(bound.sin_port);
  setNonBlocking(listenFd_);

  epollFd_ = epoll_create1(EPOLL_CLOEXEC);
  int wakePipe[2];
  if (epollFd_ < 0 || pipe2(wakePipe, O_NONBLOCK | O_CLOEXEC) != 0) {
    throw std::runtime_error("epoll/pipe setup failed");
  }
  wakeFd_ = wakePipe[0];
  wakeWriteFd_ = wakePipe[1];

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listenFd_;
  epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFd_, &ev);
  ev.data.fd = wakeFd_;
  epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeFd_, &ev);

  batcher_ = std::make_unique<Batcher>(
      *engine_,
      Batcher::Options{.maxQueueSlots = options_.maxQueueSlots,
                       .maxWaveSlots = options_.maxWaveSlots,
                       .linger = options_.batchLinger,
                       .maxRetries = options_.maxRetries},
      &metrics_);

  running_.store(true, std::memory_order_release);
  loopThread_ = std::thread([this] { loop(); });
}

void Server::requestShutdown() noexcept {
  shutdownRequested_.store(true, std::memory_order_release);
  wake();
}

void Server::wake() noexcept {
  if (wakeWriteFd_ >= 0) {
    const char byte = 1;
    // write() is async-signal-safe; a full pipe already guarantees a wake.
    [[maybe_unused]] const ssize_t n = write(wakeWriteFd_, &byte, 1);
  }
}

void Server::wait() {
  if (loopThread_.joinable()) loopThread_.join();
  shutdown();
}

void Server::shutdown() {
  requestShutdown();
  if (loopThread_.joinable()) loopThread_.join();
  std::call_once(shutdownOnce_, [this] {
    if (batcher_) batcher_->stop();
    {
      std::lock_guard<std::mutex> lock(searchThreadsMu_);
      for (std::thread& thread : searchThreads_) {
        if (thread.joinable()) thread.join();
      }
      searchThreads_.clear();
    }
    for (auto& [id, conn] : conns_) {
      if (conn->fd >= 0) close(conn->fd);
    }
    conns_.clear();
    fdToConn_.clear();
    if (listenFd_ >= 0) close(listenFd_);
    if (epollFd_ >= 0) close(epollFd_);
    if (wakeFd_ >= 0) close(wakeFd_);
    if (wakeWriteFd_ >= 0) close(wakeWriteFd_);
    listenFd_ = epollFd_ = wakeFd_ = wakeWriteFd_ = -1;
  });
}

// ---- Event loop ------------------------------------------------------------

void Server::loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];

  while (true) {
    if (shutdownRequested_.load(std::memory_order_acquire) && !draining_) {
      beginDrain();
    }
    if (draining_ && drainComplete()) break;
    if (draining_ &&
        std::chrono::steady_clock::now() >= drainDeadline_) {
      break;  // grace period exhausted; remaining connections are dropped
    }
    brownoutTick();

    const int n = epoll_wait(epollFd_, events, kMaxEvents, 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wakeFd_) {
        char buf[256];
        while (read(wakeFd_, buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (fd == listenFd_) {
        acceptConnections();
        continue;
      }
      const auto it = fdToConn_.find(fd);
      if (it == fdToConn_.end()) continue;
      Connection* conn = conns_.at(it->second).get();
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        closeConnection(conn->id);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) handleReadable(*conn);
      // The connection may have been closed by the read path.
      if (fdToConn_.count(fd) == 0) continue;
      if ((events[i].events & EPOLLOUT) != 0) handleWritable(*conn);
    }
    drainCompletions();
  }
  drainCompletions();
  running_.store(false, std::memory_order_release);
}

void Server::forceBrownoutTier(int tier) noexcept {
  pendingForcedTier_.store(tier < 0 ? -1 : tier, std::memory_order_release);
  wake();
}

void Server::brownoutTick() {
  if (!options_.brownoutEnabled) return;
  const int pinned =
      pendingForcedTier_.exchange(-2, std::memory_order_acq_rel);
  if (pinned != -2) brownout_.force(pinned);

  const auto now = std::chrono::steady_clock::now();
  const bool due =
      lastBrownoutTick_.time_since_epoch().count() == 0 ||
      now - lastBrownoutTick_ >= options_.brownoutTickInterval;
  if (due) {
    lastBrownoutTick_ = now;
    const double capacity = static_cast<double>(
        std::max<std::size_t>(1, options_.maxQueueSlots));
    const double queued = static_cast<double>(std::max<std::int64_t>(
        0, metrics_.queuedSlots.load(std::memory_order_relaxed)));
    const double pressure = std::min(1.0, queued / capacity);
    const std::uint64_t failedWaves =
        metrics_.waveFailures.load(std::memory_order_relaxed);
    const std::uint64_t delta = failedWaves - lastWaveFailures_;
    lastWaveFailures_ = failedWaves;
    brownout_.tick(pressure, delta);
  }
  metrics_.brownoutTier.store(brownout_.tier(), std::memory_order_relaxed);
  metrics_.brownoutTransitions.store(brownout_.transitions(),
                                     std::memory_order_relaxed);
}

bool Server::drainComplete() const {
  return conns_.empty() && batcher_->queuedSlots() == 0 &&
         metrics_.inFlightSlots.load(std::memory_order_relaxed) == 0 &&
         metrics_.activeSearches.load(std::memory_order_relaxed) == 0;
}

void Server::beginDrain() {
  draining_ = true;
  drainDeadline_ = std::chrono::steady_clock::now() + options_.drainTimeout;
  stopSource_.cancel();  // in-flight searches finish their current wave
  if (listenFd_ >= 0) {
    epoll_ctl(epollFd_, EPOLL_CTL_DEL, listenFd_, nullptr);
    close(listenFd_);
    listenFd_ = -1;
  }
  // Idle keep-alive connections have nothing in flight: close them now.
  std::vector<std::uint64_t> idle;
  for (const auto& [id, conn] : conns_) {
    if (!conn->waiting && conn->outBuf.size() == conn->written &&
        conn->parser.idle()) {
      idle.push_back(id);
    }
  }
  for (const std::uint64_t id : idle) closeConnection(id);
}

void Server::acceptConnections() {
  while (true) {
    const int fd = accept4(listenFd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;
    if (conns_.size() >= options_.maxConnections) {
      // Over the cap: best-effort 503 straight into the fresh socket.
      HttpResponse response;
      response.status = 503;
      response.headers.emplace_back("Content-Type", "application/json");
      response.headers.emplace_back(
          "Retry-After", std::to_string(options_.retryAfterSeconds));
      response.body =
          serviceErrorBody("overloaded", "connection limit reached").dump();
      const std::string bytes = serializeResponse(response, false);
      [[maybe_unused]] const ssize_t n =
          send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      close(fd);
      metrics_.connectionsRejected.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>(options_.limits);
    conn->fd = fd;
    conn->id = nextConnId_++;
    fdToConn_[fd] = conn->id;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev);
    metrics_.connectionsAccepted.fetch_add(1, std::memory_order_relaxed);
    metrics_.activeConnections.fetch_add(1, std::memory_order_relaxed);
    conns_.emplace(conn->id, std::move(conn));
  }
}

void Server::closeConnection(std::uint64_t connId) {
  const auto it = conns_.find(connId);
  if (it == conns_.end()) return;
  Connection* conn = it->second.get();
  epoll_ctl(epollFd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  close(conn->fd);
  fdToConn_.erase(conn->fd);
  conns_.erase(it);
  metrics_.activeConnections.fetch_sub(1, std::memory_order_relaxed);
}

void Server::handleReadable(Connection& conn) {
  char buf[16 * 1024];
  while (true) {
    const ssize_t n = read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.inBuf.append(buf, static_cast<std::size_t>(n));
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) {  // peer closed
      closeConnection(conn.id);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    closeConnection(conn.id);
    return;
  }
  processBuffer(conn);
}

void Server::processBuffer(Connection& conn) {
  // dispatch()/sendError() may close or detach the connection, destroying
  // `conn`; after any call that can, re-check liveness by id before
  // touching it again.
  const std::uint64_t id = conn.id;
  while (!conn.waiting && !conn.closing) {
    const std::string_view pending =
        std::string_view(conn.inBuf).substr(conn.parsed);
    if (pending.empty()) break;
    conn.parsed += conn.parser.feed(pending);
    // Drop the consumed prefix now, while the connection is certainly
    // alive, so pipelined remainders do not accumulate.
    conn.inBuf.erase(0, conn.parsed);
    conn.parsed = 0;
    const ParseStatus status = conn.parser.status();
    if (status == ParseStatus::kNeedMore) break;
    if (status == ParseStatus::kError) {
      const ParseError& error = conn.parser.error();
      metrics_.parseErrors.fetch_add(1, std::memory_order_relaxed);
      metrics_.other.record(error.status, std::chrono::nanoseconds{0});
      sendError(conn, error.status, "bad-request", error.message);
      // Framing is lost; never reuse the connection.
      if (conns_.count(id) != 0) conn.closing = true;
      return;
    }
    HttpRequest request = std::move(conn.parser.request());
    conn.parser.reset();
    dispatch(conn, std::move(request));
    if (conns_.count(id) == 0) return;  // closed or detached to a search
  }
}

// ---- Routing ---------------------------------------------------------------

void Server::dispatch(Connection& conn, HttpRequest request) {
  const auto start = std::chrono::steady_clock::now();
  const std::string_view path = request.path();
  const bool keepAlive = request.keepAlive() && !draining_;

  ClusterHooks* cluster = cluster_.load(std::memory_order_acquire);

  if (path == "/healthz") {
    HttpResponse response;
    const int tier = options_.brownoutEnabled ? brownout_.tier() : 0;
    Json body{JsonObject{}};
    // "degraded" still answers 200: the process is alive and serving what
    // it can; a cluster failure detector reads the tier, not the status
    // code, to steer load away.
    body.set("status", Json(draining_ ? "draining"
                                      : (tier > 0 ? "degraded" : "ok")));
    body.set("brownoutTier", Json(static_cast<double>(tier)));
    if (cluster != nullptr) body.set("cluster", cluster->healthJson());
    response.status = draining_ ? 503 : 200;
    response.headers.emplace_back("Content-Type", "application/json");
    response.body = body.dump();
    sendResponse(conn, response, keepAlive);
    metrics_.healthz.record(response.status,
                            std::chrono::steady_clock::now() - start);
    return;
  }
  if (path == "/metrics") {
    HttpResponse response;
    response.headers.emplace_back("Content-Type", "application/json");
    Json snapshot = metrics_.snapshot(*engine_);
    if (cluster != nullptr) snapshot.set("cluster", cluster->metricsJson());
    response.body = snapshot.pretty();
    sendResponse(conn, response, keepAlive);
    metrics_.metricsEndpoint.record(200,
                                    std::chrono::steady_clock::now() - start);
    return;
  }
  if (path == "/v1/cluster/ping" || path == "/v1/cluster/members") {
    HttpResponse response;
    response.headers.emplace_back("Content-Type", "application/json");
    if (cluster == nullptr) {
      metrics_.other.record(404, std::chrono::nanoseconds{0});
      sendError(conn, 404, "not-a-cluster-node",
                "this server has no cluster layer attached");
      return;
    }
    if (path == "/v1/cluster/ping") {
      if (request.method != "POST") {
        metrics_.other.record(405, std::chrono::nanoseconds{0});
        sendError(conn, 405, "method-not-allowed", "use POST");
        return;
      }
      try {
        response.body = cluster->handlePing(Json::parse(request.body)).dump();
      } catch (const std::exception& e) {
        metrics_.other.record(400, std::chrono::nanoseconds{0});
        sendError(conn, 400, "invalid-request", e.what());
        return;
      }
    } else {
      response.body = cluster->membersJson().dump();
    }
    sendResponse(conn, response, keepAlive);
    metrics_.other.record(200, std::chrono::steady_clock::now() - start);
    return;
  }
  if (path == "/v1/evaluate" || path == "/v1/search") {
    if (request.method != "POST") {
      metrics_.other.record(405, std::chrono::nanoseconds{0});
      sendError(conn, 405, "method-not-allowed", "use POST");
      return;
    }
    if (draining_) {
      metrics_.rejectedDraining.fetch_add(1, std::memory_order_relaxed);
      metrics_.other.record(503, std::chrono::nanoseconds{0});
      sendError(conn, 503, "draining", "server is shutting down",
                /*retryAfter=*/true);
      return;
    }
    if (path == "/v1/evaluate") {
      handleEvaluate(conn, request);
    } else {
      handleSearch(conn, request);
    }
    return;
  }
  metrics_.other.record(404, std::chrono::nanoseconds{0});
  sendError(conn, 404, "not-found",
            "unknown endpoint " + std::string(path));
}

// ---- /v1/evaluate ----------------------------------------------------------

void Server::handleEvaluate(Connection& conn, const HttpRequest& request) {
  const auto start = std::chrono::steady_clock::now();

  EvaluateRequest parsed;
  try {
    parsed = parseEvaluateRequest(Json::parse(request.body));
  } catch (const std::exception& e) {
    metrics_.evaluate.record(400, std::chrono::steady_clock::now() - start);
    sendError(conn, 400, "invalid-request", e.what());
    return;
  }

  const int tier = options_.brownoutEnabled ? brownout_.tier() : 0;
  const bool shedStochastic = tier >= 1;

  // Body "deadlineMs" uses 0 as "unset"; an explicit X-Deadline-Ms header
  // always wins, and an explicit 0 there means "already expired" — the
  // deterministic way to exercise the 504 path.
  std::chrono::milliseconds deadline = parsed.deadline;
  bool explicitDeadline = deadline.count() > 0;
  if (const std::string* header = request.header("x-deadline-ms")) {
    char* end = nullptr;
    const long long value = std::strtoll(header->c_str(), &end, 10);
    if (end == header->c_str() || *end != '\0' || value < 0) {
      metrics_.evaluate.record(400, std::chrono::steady_clock::now() - start);
      sendError(conn, 400, "invalid-request",
                "X-Deadline-Ms must be a non-negative integer");
      return;
    }
    deadline = std::chrono::milliseconds(value);
    explicitDeadline = true;
  }
  if (!explicitDeadline) deadline = options_.defaultDeadline;
  if (deadline > options_.maxDeadline) deadline = options_.maxDeadline;

  Batcher::Job job;
  job.requests.reserve(parsed.items.size());
  for (const EvaluateItem& item : parsed.items) {
    job.requests.push_back(toEngineRequest(item));
  }
  if (explicitDeadline || deadline.count() > 0) {
    job.token = engine::CancellationToken{}.withDeadline(deadline);
  }

  // Everything the completion needs, captured by value: the loop thread may
  // close the connection before the wave lands.
  const std::uint64_t connId = conn.id;
  const bool keepAlive = request.keepAlive();
  const bool arrayShape = parsed.array;
  auto items = std::make_shared<std::vector<EvaluateItem>>(
      std::move(parsed.items));
  job.done = [this, connId, keepAlive, arrayShape, items, start,
              shedStochastic](
                 std::vector<engine::EvalOutcome> outcomes,
                 const engine::EngineStats& stats) {
    HttpResponse response;
    response.headers.emplace_back("Content-Type", "application/json");
    if (!arrayShape) {
      const engine::EvalOutcome& outcome = outcomes.front();
      if (outcome.ok()) {
        response.status = 200;
        Json body = evaluationToJson(*(*items)[0].design,
                                     (*items)[0].scenario, outcome.value());
        if ((*items)[0].stochastic) {
          if (shedStochastic) {
            metrics_.shedStochastic.fetch_add(1, std::memory_order_relaxed);
            body.set("stochastic",
                     serviceErrorBody(
                         "unavailable",
                         "stochastic envelopes shed under brown-out"));
          } else {
            StochasticRunStats runStats;
            body.set("stochastic",
                     stochasticEnvelope(*(*items)[0].design,
                                        (*items)[0].scenario,
                                        *(*items)[0].stochastic, &runStats));
            if (runStats.trials > 0) {
              metrics_.recordStochastic(runStats.trials, runStats.wallSeconds,
                                        runStats.usedPlan);
            }
          }
        }
        response.body = body.dump();
      } else {
        response.status = httpStatusFor(outcome.error().code);
        response.body = evalErrorToJson(outcome.error()).dump();
        if (response.status == 503) {
          response.headers.emplace_back(
              "Retry-After", std::to_string(options_.retryAfterSeconds));
        }
      }
    } else {
      JsonArray results;
      results.reserve(outcomes.size());
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (outcomes[i].ok()) {
          Json entry = evaluationToJson(*(*items)[i].design,
                                        (*items)[i].scenario,
                                        outcomes[i].value());
          if ((*items)[i].stochastic) {
            if (shedStochastic) {
              metrics_.shedStochastic.fetch_add(1,
                                                std::memory_order_relaxed);
              entry.set("stochastic",
                        serviceErrorBody(
                            "unavailable",
                            "stochastic envelopes shed under brown-out"));
            } else {
              StochasticRunStats runStats;
              entry.set("stochastic",
                        stochasticEnvelope(*(*items)[i].design,
                                           (*items)[i].scenario,
                                           *(*items)[i].stochastic,
                                           &runStats));
              if (runStats.trials > 0) {
                metrics_.recordStochastic(runStats.trials,
                                          runStats.wallSeconds,
                                          runStats.usedPlan);
              }
            }
          }
          results.push_back(std::move(entry));
        } else {
          results.push_back(evalErrorToJson(outcomes[i].error()));
        }
      }
      Json statsJson{JsonObject{}};
      statsJson.set("requests", Json(static_cast<double>(stats.requests)));
      statsJson.set("cacheHits", Json(static_cast<double>(stats.cacheHits)));
      statsJson.set("evaluations",
                    Json(static_cast<double>(stats.evaluations)));
      statsJson.set("failed", Json(static_cast<double>(stats.failed)));
      statsJson.set("cancelled", Json(static_cast<double>(stats.cancelled)));
      Json body{JsonObject{}};
      body.set("results", Json(std::move(results)));
      body.set("stats", statsJson);
      response.status = 200;
      response.body = body.dump();
    }
    metrics_.evaluate.record(response.status,
                             std::chrono::steady_clock::now() - start);
    queueCompletion(connId, serializeResponse(response, keepAlive),
                    /*thenClose=*/!keepAlive);
  };

  // Cluster routing, checked before local brown-out shedding (the owner
  // applies its own): a single-evaluation request whose owner shard is a
  // live peer is forwarded there, making the fleet one distributed cache.
  // The X-Stordep-Forwarded guard means a forwarded request is always
  // computed where it lands, so two momentarily divergent rings cannot
  // bounce a request back and forth.
  if (ClusterHooks* cluster = cluster_.load(std::memory_order_acquire);
      cluster != nullptr && items->size() == 1 &&
      request.header("x-stordep-forwarded") == nullptr) {
    std::string ownerId;
    const engine::Fingerprint key = engine::fingerprintEvaluation(
        *(*items)[0].design, (*items)[0].scenario);
    if (!cluster->ownsEvaluation(key, &ownerId)) {
      conn.waiting = true;  // paused until the forward (or fallback) lands
      auto jobPtr = std::make_shared<Batcher::Job>(std::move(job));
      cluster->forwardEvaluate(
          ownerId, request.body,
          [this, connId, keepAlive, start, jobPtr](ForwardReply reply) {
            if (reply.ok) {
              // Re-frame the owner's envelope verbatim: byte-identical to
              // what this node would have produced for the same body.
              HttpResponse response;
              response.status = reply.status;
              response.headers.emplace_back("Content-Type",
                                            "application/json");
              response.body = std::move(reply.body);
              metrics_.evaluate.record(
                  response.status, std::chrono::steady_clock::now() - start);
              queueCompletion(connId, serializeResponse(response, keepAlive),
                              /*thenClose=*/!keepAlive);
              return;
            }
            // Owner degraded: compute locally (submit is thread-safe; the
            // job's own `done` completes the connection).
            const auto answer = [&](int status, const std::string& code,
                                    const std::string& message) {
              HttpResponse response;
              response.status = status;
              response.headers.emplace_back("Content-Type",
                                            "application/json");
              response.headers.emplace_back(
                  "Retry-After", std::to_string(options_.retryAfterSeconds));
              response.body = serviceErrorBody(code, message).dump();
              metrics_.evaluate.record(
                  status, std::chrono::steady_clock::now() - start);
              queueCompletion(connId, serializeResponse(response, keepAlive),
                              /*thenClose=*/!keepAlive);
            };
            switch (batcher_->submit(std::move(*jobPtr))) {
              case Batcher::Submit::kAccepted:
                return;
              case Batcher::Submit::kQueueFull:
                metrics_.rejectedQueueFull.fetch_add(
                    1, std::memory_order_relaxed);
                answer(429, "queue-full", "evaluation queue is full");
                return;
              case Batcher::Submit::kShuttingDown:
                metrics_.rejectedDraining.fetch_add(1,
                                                    std::memory_order_relaxed);
                answer(503, "draining", "server is shutting down");
                return;
            }
          });
      return;
    }
  }

  // Brown-out shedding. Tier 3 drops everything; tier 2 admits only
  // requests every item of which is already cached (the probe itself
  // refreshes the entries' LRU position); tier 1 is handled in the
  // completion by stripping stochastic envelopes.
  if (tier >= 3) {
    metrics_.shedCold.fetch_add(1, std::memory_order_relaxed);
    metrics_.evaluate.record(503, std::chrono::steady_clock::now() - start);
    sendError(conn, 503, "browned-out",
              "server is in full brown-out (tier 3)", /*retryAfter=*/true);
    return;
  }
  if (tier >= 2) {
    bool allWarm = true;
    try {
      for (const EvaluateItem& item : *items) {
        const engine::Fingerprint key =
            engine::fingerprintEvaluation(*item.design, item.scenario);
        if (!engine_->cache().lookup(key)) {
          allWarm = false;
          break;
        }
      }
    } catch (...) {
      allWarm = false;  // injected cache-lookup fault: treat as cold
    }
    if (!allWarm) {
      metrics_.shedCold.fetch_add(1, std::memory_order_relaxed);
      metrics_.evaluate.record(503,
                               std::chrono::steady_clock::now() - start);
      sendError(conn, 503, "browned-out",
                "cache-hits-only under brown-out (tier 2); request needs a "
                "cold evaluation",
                /*retryAfter=*/true);
      return;
    }
  }

  switch (batcher_->submit(std::move(job))) {
    case Batcher::Submit::kAccepted:
      conn.waiting = true;  // responses stay in order: pause this connection
      return;
    case Batcher::Submit::kQueueFull:
      metrics_.rejectedQueueFull.fetch_add(1, std::memory_order_relaxed);
      metrics_.evaluate.record(429, std::chrono::steady_clock::now() - start);
      sendError(conn, 429, "queue-full", "evaluation queue is full",
                /*retryAfter=*/true);
      return;
    case Batcher::Submit::kShuttingDown:
      metrics_.rejectedDraining.fetch_add(1, std::memory_order_relaxed);
      metrics_.evaluate.record(503, std::chrono::steady_clock::now() - start);
      sendError(conn, 503, "draining", "server is shutting down",
                /*retryAfter=*/true);
      return;
  }
}

// ---- /v1/search ------------------------------------------------------------

void Server::handleSearch(Connection& conn, const HttpRequest& request) {
  // Searches are always cold work; tier 2 already sheds them.
  if (options_.brownoutEnabled && brownout_.tier() >= 2) {
    metrics_.shedCold.fetch_add(1, std::memory_order_relaxed);
    metrics_.search.record(503, std::chrono::nanoseconds{0});
    sendError(conn, 503, "browned-out",
              "searches are shed under brown-out (tier >= 2)",
              /*retryAfter=*/true);
    return;
  }
  if (metrics_.activeSearches.load(std::memory_order_relaxed) >=
      options_.maxConcurrentSearches) {
    metrics_.search.record(503, std::chrono::nanoseconds{0});
    sendError(conn, 503, "search-limit",
              "too many concurrent searches", /*retryAfter=*/true);
    return;
  }
  metrics_.activeSearches.fetch_add(1, std::memory_order_relaxed);

  // Detach the connection from the loop: the search worker owns the socket
  // from here and writes its chunked response with blocking I/O.
  const int fd = conn.fd;
  const std::uint64_t connId = conn.id;
  std::string body = request.body;
  epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
  fdToConn_.erase(fd);
  conns_.erase(connId);

  std::lock_guard<std::mutex> lock(searchThreadsMu_);
  searchThreads_.emplace_back(
      [this, fd, connId, body = std::move(body)]() mutable {
        runSearch(fd, connId, std::move(body));
      });
}

void Server::runSearch(int fd, std::uint64_t connId, std::string bodyText) {
  (void)connId;
  const auto start = std::chrono::steady_clock::now();
  setBlocking(fd);

  int status = 200;
  const auto finish = [&](bool closeFd) {
    if (closeFd) close(fd);
    metrics_.search.record(status, std::chrono::steady_clock::now() - start);
    metrics_.activeSearches.fetch_sub(1, std::memory_order_relaxed);
    metrics_.activeConnections.fetch_sub(1, std::memory_order_relaxed);
    wake();  // drain accounting
  };

  // Search parameters (all optional; {} sweeps the default grid).
  BusinessRequirements business = casestudy::requirements();
  optimizer::SearchOptions searchOptions;
  std::size_t top = 10;
  std::chrono::milliseconds deadline{0};
  // Cluster-coordinator mode ("cluster": true) and range-worker mode
  // ("range": {begin, end}) — the two halves of a distributed sweep.
  bool clusterMode = false;
  ClusterSearchParams clusterParams;
  bool workerMode = false;
  std::uint64_t rangeBegin = 0;
  std::uint64_t rangeEnd = 0;
  bool emitCandidates = false;
  try {
    const Json body = bodyText.empty() ? Json{JsonObject{}}
                                       : Json::parse(bodyText);
    if (!body.isObject()) {
      throw std::runtime_error("search request must be a JSON object");
    }
    if (const Json* rto = body.find("rtoHours")) {
      business.rto = hours(rto->asNumber());
      clusterParams.rtoHoursLiteral = rto->dump();
    }
    if (const Json* rpo = body.find("rpoHours")) {
      business.rpo = hours(rpo->asNumber());
      clusterParams.rpoHoursLiteral = rpo->dump();
    }
    if (const Json* chunk = body.find("streamChunk")) {
      searchOptions.streamChunk =
          static_cast<std::size_t>(std::max(1.0, chunk->asNumber()));
    }
    if (const Json* topN = body.find("top")) {
      top = static_cast<std::size_t>(std::max(1.0, topN->asNumber()));
    }
    if (const Json* deadlineMs = body.find("deadlineMs")) {
      deadline = std::chrono::milliseconds(
          static_cast<long long>(deadlineMs->asNumber()));
    }
    if (const Json* clusterFlag = body.find("cluster")) {
      clusterMode = clusterFlag->asBool();
      if (clusterMode && cluster_.load(std::memory_order_acquire) == nullptr) {
        throw std::runtime_error(
            "\"cluster\": true on a server with no cluster layer attached");
      }
    }
    if (const Json* dir = body.find("checkpointDir")) {
      clusterParams.checkpointDir = dir->asString();
    }
    if (const Json* range = body.find("range")) {
      if (!range->isObject() || range->find("begin") == nullptr ||
          range->find("end") == nullptr) {
        throw std::runtime_error(
            "\"range\" must be an object with begin and end");
      }
      workerMode = true;
      rangeBegin = static_cast<std::uint64_t>(
          std::max(0.0, range->at("begin").asNumber()));
      rangeEnd = static_cast<std::uint64_t>(
          std::max(0.0, range->at("end").asNumber()));
    }
    if (const Json* emit = body.find("emitCandidates")) {
      emitCandidates = emit->asBool();
    }
    if (const Json* path = body.find("checkpointPath")) {
      searchOptions.checkpointPath = path->asString();
    }
    if (const Json* delayMs = body.find("waveDelayMs")) {
      // Clamped: a wave delay exists for deterministic mid-sweep kills in
      // tests, not as a general-purpose throttle.
      searchOptions.waveDelay = std::chrono::milliseconds(std::min(
          1000LL, std::max(0LL,
                           static_cast<long long>(delayMs->asNumber()))));
    }
    if (clusterMode && workerMode) {
      throw std::runtime_error("\"cluster\" and \"range\" are exclusive");
    }
  } catch (const std::exception& e) {
    status = 400;
    HttpResponse response;
    response.status = 400;
    response.headers.emplace_back("Content-Type", "application/json");
    response.body = serviceErrorBody("invalid-request", e.what()).dump();
    writeAll(fd, serializeResponse(response, false));
    finish(true);
    return;
  }
  if (deadline.count() > 0 && deadline > options_.maxDeadline) {
    deadline = options_.maxDeadline;
  }

  searchOptions.eng = engine_;
  // The search token is owned by this worker so a broken pipe can cancel
  // just this search; the server-wide drain flag is folded in by polling
  // it at every progress boundary below.
  engine::CancellationSource localStop;
  const engine::CancellationToken drainToken = stopSource_.token();
  if (drainToken.cancelled()) localStop.cancel();
  engine::CancellationToken token = localStop.token();
  if (deadline.count() > 0) token = token.withDeadline(deadline);
  searchOptions.token = token;

  optimizer::DesignSpaceCursor cursor;
  if (workerMode) cursor.restrictTo(rangeBegin, rangeEnd);
  const std::uint64_t total =
      optimizer::gridCardinality(optimizer::DesignSpaceOptions{});

  HttpHeaders headers;
  headers.emplace_back("Content-Type", "application/x-ndjson");
  bool alive = writeAll(fd, serializeChunkedHead(200, headers));
  bool peerDisconnected = false;
  // In cluster mode progress (and in worker mode candidate lines) can be
  // written from several threads; every socket write below holds streamMu.
  std::mutex streamMu;
  const auto onPeerGone = [&] {
    // Broken pipe: the client went away mid-stream. Cancel this search so
    // it stops at its next wave instead of burning the rest of the sweep,
    // and make the event observable in /metrics.
    if (!peerDisconnected) {
      peerDisconnected = true;
      localStop.cancel();
      metrics_.searchPeerDisconnects.fetch_add(1, std::memory_order_relaxed);
    }
  };
  if (!alive) onPeerGone();
  const auto reportProgress = [&](std::size_t done) {
    if (drainToken.cancelled()) localStop.cancel();
    std::lock_guard<std::mutex> lock(streamMu);
    if (!alive) return;
    Json progress{JsonObject{}};
    progress.set("done", Json(static_cast<double>(done)));
    progress.set("total", Json(static_cast<double>(total)));
    Json line{JsonObject{}};
    line.set("progress", progress);
    alive = writeAll(fd, encodeChunk(line.dump() + "\n"));
    if (!alive) onPeerGone();
  };
  searchOptions.onProgress = reportProgress;
  if (emitCandidates) {
    // Worker mode streams every finished candidate (ranked and rejected
    // alike, exactly as the checkpoint journal serializes them) so the
    // coordinator's merged counts match a single-node sweep.
    searchOptions.onCandidates =
        [&](const std::vector<optimizer::EvaluatedCandidate>& wave) {
          std::lock_guard<std::mutex> lock(streamMu);
          if (!alive || wave.empty()) return;
          std::string lines;
          for (const optimizer::EvaluatedCandidate& candidate : wave) {
            Json line{JsonObject{}};
            line.set("candidate",
                     optimizer::evaluatedCandidateToJson(candidate));
            lines += line.dump();
            lines += '\n';
          }
          alive = writeAll(fd, encodeChunk(lines));
          if (!alive) onPeerGone();
        };
  }

  optimizer::SearchResult result;
  if (clusterMode) {
    clusterParams.search = searchOptions;
    clusterParams.search.onProgress = nullptr;
    clusterParams.search.onCandidates = nullptr;
    clusterParams.business = business;
    result = cluster_.load(std::memory_order_acquire)
                 ->clusterSearch(clusterParams, reportProgress, token);
  } else {
    result = optimizer::searchDesignSpaceStreaming(
        cursor, casestudy::celloWorkload(), business,
        optimizer::caseStudyScenarios(), searchOptions);
  }

  if (alive) {
    const Json line = searchResultLine(result, top);
    alive = writeAll(fd, encodeChunk(line.dump() + "\n"));
    if (alive) writeAll(fd, std::string(kLastChunk));
  }
  finish(true);
}

// ---- Responses -------------------------------------------------------------

void Server::sendResponse(Connection& conn, const HttpResponse& response,
                          bool keepAlive) {
  conn.outBuf += serializeResponse(response, keepAlive);
  if (!keepAlive) conn.closing = true;
  handleWritable(conn);
}

void Server::sendError(Connection& conn, int status, const std::string& code,
                       const std::string& message, bool retryAfter) {
  HttpResponse response;
  response.status = status;
  response.headers.emplace_back("Content-Type", "application/json");
  if (retryAfter) {
    response.headers.emplace_back("Retry-After",
                                  std::to_string(options_.retryAfterSeconds));
  }
  response.body = serviceErrorBody(code, message).dump();
  // Admission rejections keep the connection: the client is told to retry.
  const bool keepAlive = (status == 429 || status == 503) && !draining_ &&
                         !conn.closing;
  sendResponse(conn, response, keepAlive);
}

void Server::handleWritable(Connection& conn) {
  while (conn.written < conn.outBuf.size()) {
    const ssize_t n = send(conn.fd, conn.outBuf.data() + conn.written,
                           conn.outBuf.size() - conn.written, MSG_NOSIGNAL);
    if (n >= 0) {
      conn.written += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    closeConnection(conn.id);
    return;
  }
  const bool drained = conn.written == conn.outBuf.size();
  if (drained) {
    conn.outBuf.clear();
    conn.written = 0;
    if (conn.closing) {
      closeConnection(conn.id);
      return;
    }
    // During a drain, a connection that has answered everything and has no
    // request in progress is done.
    if (draining_ && !conn.waiting && conn.parser.idle() &&
        conn.parsed == conn.inBuf.size()) {
      closeConnection(conn.id);
      return;
    }
  }
  const bool wantOut = !drained;
  if (wantOut != conn.epollOut) {
    epoll_event ev{};
    ev.events = EPOLLIN | (wantOut ? EPOLLOUT : 0u);
    ev.data.fd = conn.fd;
    epoll_ctl(epollFd_, EPOLL_CTL_MOD, conn.fd, &ev);
    conn.epollOut = wantOut;
  }
}

void Server::queueCompletion(std::uint64_t connId, std::string bytes,
                             bool thenClose) {
  {
    std::lock_guard<std::mutex> lock(completionsMu_);
    completions_.push_back(Completion{connId, std::move(bytes), thenClose});
  }
  wake();
}

void Server::drainCompletions() {
  std::vector<Completion> ready;
  {
    std::lock_guard<std::mutex> lock(completionsMu_);
    ready.swap(completions_);
  }
  for (Completion& completion : ready) {
    const auto it = conns_.find(completion.connId);
    if (it == conns_.end()) continue;  // client vanished mid-evaluation
    Connection& conn = *it->second;
    conn.waiting = false;
    conn.outBuf += completion.bytes;
    if (completion.thenClose) conn.closing = true;
    handleWritable(conn);
    // Pipelined follow-on requests may already be buffered.
    if (conns_.count(completion.connId) != 0 && !conn.closing) {
      processBuffer(conn);
    }
  }
}

}  // namespace stordep::service
