// http.hpp — incremental HTTP/1.1 message parsing and serialization.
//
// The service layer needs exactly the slice of HTTP/1.1 a loopback/LAN
// evaluation daemon uses: request line + headers + body (Content-Length or
// chunked), keep-alive and pipelining, and response writing (fixed bodies
// and chunked streaming). No external dependency — the grammar here is
// small enough that a hand-rolled push parser is both the fastest and the
// most testable option (tests feed every torn-read split of every message).
//
// HttpRequestParser is a byte-at-a-time state machine: feed() consumes
// bytes until the current message completes (or errors) and *stops there*,
// leaving pipelined follow-on bytes unconsumed for the caller's buffer.
// Torn reads at any boundary are handled by construction — the parser keeps
// its own partial-line state between feeds. Limits (request-line size,
// total header size, body size) are enforced as the bytes arrive, so an
// oversized message is rejected long before it is buffered whole; each
// parse error carries the HTTP status the server should answer with
// (400/411/413/431/501/505).
//
// HttpResponseParser is the mirror image for the blocking client
// (service/client.hpp) and the load generator.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace stordep::service {

struct HttpLimits {
  std::size_t maxRequestLineBytes = 8 * 1024;
  std::size_t maxHeaderBytes = 64 * 1024;       ///< header block, total
  std::size_t maxBodyBytes = 8 * 1024 * 1024;   ///< decoded body
};

/// Header list preserving arrival order; lookups are case-insensitive
/// (field names), first match wins.
using HttpHeaders = std::vector<std::pair<std::string, std::string>>;

[[nodiscard]] const std::string* findHeader(const HttpHeaders& headers,
                                            std::string_view name) noexcept;

struct HttpRequest {
  std::string method;
  std::string target;   ///< origin-form, e.g. "/v1/evaluate?foo=1"
  int versionMinor = 1; ///< HTTP/1.<minor>
  HttpHeaders headers;
  std::string body;
  bool chunked = false; ///< body arrived chunked (decoded into `body`)

  /// Connection semantics after this request: HTTP/1.1 defaults to
  /// keep-alive, HTTP/1.0 to close, either overridden by a Connection
  /// header.
  [[nodiscard]] bool keepAlive() const noexcept;

  /// Target path without the query string.
  [[nodiscard]] std::string_view path() const noexcept;

  [[nodiscard]] const std::string* header(std::string_view name) const {
    return findHeader(headers, name);
  }
};

enum class ParseStatus { kNeedMore, kComplete, kError };

struct ParseError {
  int status = 400;     ///< HTTP status to answer with
  std::string message;
};

class HttpRequestParser {
 public:
  explicit HttpRequestParser(HttpLimits limits = {}) : limits_(limits) {}

  /// Consumes bytes from `data` until the message completes, errors, or the
  /// input runs out; returns the number of bytes consumed. Never consumes
  /// past the end of the current message, so pipelined requests stay in the
  /// caller's buffer for the next parse.
  std::size_t feed(std::string_view data);

  [[nodiscard]] ParseStatus status() const noexcept { return status_; }
  /// The parsed message; valid only when status() == kComplete.
  [[nodiscard]] HttpRequest& request() noexcept { return request_; }
  [[nodiscard]] const HttpRequest& request() const noexcept {
    return request_;
  }
  /// The failure; valid only when status() == kError.
  [[nodiscard]] const ParseError& error() const noexcept { return error_; }

  /// True when no byte of a new message has been consumed yet (an idle
  /// keep-alive connection can be closed here without cutting anyone off).
  [[nodiscard]] bool idle() const noexcept {
    return state_ == State::kRequestLine && line_.empty();
  }

  /// Ready for the next pipelined message.
  void reset();

 private:
  enum class State {
    kRequestLine,
    kHeaders,
    kBody,        // Content-Length countdown
    kChunkSize,   // hex size line
    kChunkData,
    kChunkDataEnd,  // CRLF after chunk payload
    kTrailers,
    kComplete,
    kError,
  };

  void fail(int status, std::string message);
  void finishRequestLine();
  void finishHeaderLine();
  void finishHeaderBlock();
  void finishChunkSizeLine();

  HttpLimits limits_;
  State state_ = State::kRequestLine;
  ParseStatus status_ = ParseStatus::kNeedMore;
  HttpRequest request_;
  ParseError error_;
  std::string line_;             // partial line across feeds
  bool sawCr_ = false;           // last byte of the line so far was CR
  std::size_t headerBytes_ = 0;  // header block size so far
  std::size_t bodyRemaining_ = 0;
};

// ---- Responses -------------------------------------------------------------

struct HttpResponse {
  int status = 200;
  HttpHeaders headers;  ///< Content-Length / Connection are added on write
  std::string body;
};

[[nodiscard]] const char* reasonPhrase(int status) noexcept;

/// Serializes a complete response with Content-Length, adding
/// "Connection: close" when `keepAlive` is false.
[[nodiscard]] std::string serializeResponse(const HttpResponse& response,
                                            bool keepAlive);

/// Head of a chunked streaming response ("Transfer-Encoding: chunked",
/// always "Connection: close" — streamed responses end the connection).
[[nodiscard]] std::string serializeChunkedHead(int status,
                                               const HttpHeaders& headers);
/// One chunk (empty input yields an empty string, never the terminator).
[[nodiscard]] std::string encodeChunk(std::string_view data);
/// The terminating last-chunk.
inline constexpr std::string_view kLastChunk = "0\r\n\r\n";

// ---- Response parsing (client side) ---------------------------------------

struct HttpClientResponse {
  int status = 0;
  int versionMinor = 1;
  HttpHeaders headers;
  std::string body;
  bool chunked = false;

  [[nodiscard]] bool keepAlive() const noexcept;
  [[nodiscard]] const std::string* header(std::string_view name) const {
    return findHeader(headers, name);
  }
};

class HttpResponseParser {
 public:
  explicit HttpResponseParser(HttpLimits limits = {}) : limits_(limits) {}

  std::size_t feed(std::string_view data);
  [[nodiscard]] ParseStatus status() const noexcept { return status_; }
  [[nodiscard]] HttpClientResponse& response() noexcept { return response_; }
  [[nodiscard]] const ParseError& error() const noexcept { return error_; }
  void reset();

 private:
  enum class State {
    kStatusLine,
    kHeaders,
    kBody,
    kChunkSize,
    kChunkData,
    kChunkDataEnd,
    kTrailers,
    kComplete,
    kError,
  };

  void fail(std::string message);
  void finishStatusLine();
  void finishHeaderLine();
  void finishHeaderBlock();
  void finishChunkSizeLine();

  HttpLimits limits_;
  State state_ = State::kStatusLine;
  ParseStatus status_ = ParseStatus::kNeedMore;
  HttpClientResponse response_;
  ParseError error_;
  std::string line_;
  bool sawCr_ = false;
  std::size_t headerBytes_ = 0;
  std::size_t bodyRemaining_ = 0;
};

}  // namespace stordep::service
