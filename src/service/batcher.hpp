// batcher.hpp — coalescing concurrent HTTP requests into engine waves.
//
// Each connection's evaluate request becomes a Job: a vector of
// engine::EvalRequests plus a completion callback. One batcher thread
// drains the job queue in waves — it waits up to `linger` for more jobs to
// arrive (bounded by `maxWaveSlots`), concatenates their request slots into
// a single Engine::evaluateBatch call, then slices the per-slot outcomes
// back to each job's callback. Coalescing is what makes the shared
// EvalCache/DemandCache pay off across connections: 64 clients asking
// related questions become a handful of fan-outs over the pool instead of
// 64 serialized evaluate() calls, and a wave already running naturally
// batches everything that arrives behind it.
//
// Admission control lives at submit(): the queue is bounded in *slots* (an
// array request of 50 pairs consumes 50), so a flood of work gets
// kQueueFull (the server answers 429 + Retry-After) instead of unbounded
// memory. Per-request deadlines ride each job's CancellationToken: a job
// whose token fires while it is still queued is completed with the token's
// structured error (kDeadlineExceeded → 504) without ever reaching the
// engine — matching the engine's own cooperative contract that running
// evaluations finish and un-started ones are skipped.
//
// drain() is the graceful-shutdown half: stop admitting, then block until
// the queue and the in-flight wave are empty. Completion callbacks run on
// the batcher thread; they must not block (the server's just enqueue the
// serialized response and wake the event loop).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/batch.hpp"
#include "service/metrics.hpp"

namespace stordep::service {

class Batcher {
 public:
  struct Options {
    std::size_t maxQueueSlots = 1024;
    std::size_t maxWaveSlots = 256;
    /// How long a wave waits for company after the first job arrives.
    std::chrono::microseconds linger{200};
    /// Retry budget handed to the engine for transient failures.
    int maxRetries = 0;
  };

  /// Per-slot outcomes for this job (in request order) plus the stats of
  /// the wave that carried it.
  using Completion = std::function<void(std::vector<engine::EvalOutcome>,
                                        const engine::EngineStats&)>;

  struct Job {
    std::vector<engine::EvalRequest> requests;
    engine::CancellationToken token;
    Completion done;
  };

  enum class Submit { kAccepted, kQueueFull, kShuttingDown };

  Batcher(engine::Engine& engine, Options options,
          ServiceMetrics* metrics = nullptr);
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  [[nodiscard]] Submit submit(Job job);

  /// Stops admitting and blocks until queued + in-flight work completes
  /// (every accepted job's callback has run). Idempotent.
  void drain();

  /// drain() + join the worker. Called by the destructor.
  void stop();

  [[nodiscard]] std::size_t queuedSlots() const;

 private:
  void run();

  engine::Engine& engine_;
  Options options_;
  ServiceMetrics* metrics_;

  mutable std::mutex mu_;
  std::condition_variable cv_;       // wakes the worker
  std::condition_variable drained_;  // wakes drain()
  std::deque<Job> queue_;
  std::size_t queuedSlots_ = 0;
  bool evaluating_ = false;
  bool draining_ = false;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace stordep::service
