#include "service/metrics.hpp"

#include <bit>
#include <cmath>

#include "engine/fingerprint.hpp"

namespace stordep::service {

using config::Json;
using config::JsonObject;

namespace {

/// Bucket index for a latency: floor(log2(micros)), clamped.
[[nodiscard]] int bucketFor(std::chrono::nanoseconds latency) noexcept {
  const std::uint64_t micros =
      static_cast<std::uint64_t>(latency.count() / 1000);
  if (micros <= 1) return 0;
  const int bit = 63 - std::countl_zero(micros);
  return bit >= LatencyHistogram::kBuckets
             ? LatencyHistogram::kBuckets - 1
             : bit;
}

/// Upper edge of bucket b in milliseconds.
[[nodiscard]] double bucketUpperMs(int b) noexcept {
  return static_cast<double>(std::uint64_t{1} << (b + 1)) / 1000.0;
}

}  // namespace

void LatencyHistogram::record(std::chrono::nanoseconds latency) noexcept {
  if (latency.count() < 0) latency = std::chrono::nanoseconds{0};
  buckets_[static_cast<std::size_t>(bucketFor(latency))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sumNanos_.fetch_add(static_cast<std::uint64_t>(latency.count()),
                      std::memory_order_relaxed);
  std::uint64_t seen = maxNanos_.load(std::memory_order_relaxed);
  const std::uint64_t now = static_cast<std::uint64_t>(latency.count());
  while (now > seen &&
         !maxNanos_.compare_exchange_weak(seen, now,
                                          std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const noexcept {
  Snapshot out;
  std::array<std::uint64_t, kBuckets> counts;
  for (int b = 0; b < kBuckets; ++b) {
    counts[static_cast<std::size_t>(b)] =
        buckets_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
    out.count += counts[static_cast<std::size_t>(b)];
  }
  if (out.count == 0) return out;
  out.meanMs = static_cast<double>(sumNanos_.load(std::memory_order_relaxed)) /
               static_cast<double>(out.count) / 1e6;
  out.maxMs = static_cast<double>(maxNanos_.load(std::memory_order_relaxed)) /
              1e6;

  const auto quantile = [&](double q) {
    const double rank = q * static_cast<double>(out.count);
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      const std::uint64_t n = counts[static_cast<std::size_t>(b)];
      if (n == 0) continue;
      if (static_cast<double>(seen + n) >= rank) {
        // Interpolate inside the bucket: [upper/2, upper) ms.
        const double lower = bucketUpperMs(b) / 2.0;
        const double upper = bucketUpperMs(b);
        const double within =
            (rank - static_cast<double>(seen)) / static_cast<double>(n);
        return std::min(lower + (upper - lower) * within, out.maxMs);
      }
      seen += n;
    }
    return out.maxMs;
  };
  out.p50Ms = quantile(0.50);
  out.p90Ms = quantile(0.90);
  out.p99Ms = quantile(0.99);
  return out;
}

config::Json LatencyHistogram::toJson() const {
  const Snapshot snap = snapshot();
  Json out{JsonObject{}};
  out.set("count", Json(static_cast<double>(snap.count)));
  out.set("meanMs", Json(snap.meanMs));
  out.set("p50Ms", Json(snap.p50Ms));
  out.set("p90Ms", Json(snap.p90Ms));
  out.set("p99Ms", Json(snap.p99Ms));
  out.set("maxMs", Json(snap.maxMs));
  return out;
}

config::Json EndpointMetrics::toJson() const {
  Json out{JsonObject{}};
  out.set("requests", Json(static_cast<double>(
                          requests.load(std::memory_order_relaxed))));
  out.set("errors", Json(static_cast<double>(
                        errors.load(std::memory_order_relaxed))));
  out.set("latencyMs", latency.toJson());
  return out;
}

namespace {

[[nodiscard]] Json cacheStatsJson(const engine::EvalCache::Stats& stats) {
  Json out{JsonObject{}};
  out.set("hits", Json(static_cast<double>(stats.hits)));
  out.set("misses", Json(static_cast<double>(stats.misses)));
  out.set("probes", Json(static_cast<double>(stats.probes)));
  out.set("inserts", Json(static_cast<double>(stats.inserts)));
  out.set("evictions", Json(static_cast<double>(stats.evictions)));
  out.set("insertFailures", Json(static_cast<double>(stats.insertFailures)));
  out.set("entries", Json(static_cast<double>(stats.entries)));
  out.set("capacity", Json(static_cast<double>(stats.capacity)));
  out.set("hitRate", Json(stats.hitRate()));
  return out;
}

template <typename Atomic>
[[nodiscard]] Json gauge(const Atomic& value) {
  return Json(static_cast<double>(value.load(std::memory_order_relaxed)));
}

}  // namespace

config::Json ServiceMetrics::snapshot(engine::Engine& engine) {
  const auto now = std::chrono::steady_clock::now();
  Json out{JsonObject{}};
  out.set("uptimeSeconds",
          Json(std::chrono::duration<double>(now - start_).count()));

  Json connections{JsonObject{}};
  connections.set("active", gauge(activeConnections));
  connections.set("accepted", gauge(connectionsAccepted));
  connections.set("rejected", gauge(connectionsRejected));
  out.set("connections", connections);

  Json admission{JsonObject{}};
  admission.set("queuedSlots", gauge(queuedSlots));
  admission.set("inFlightSlots", gauge(inFlightSlots));
  admission.set("activeSearches", gauge(activeSearches));
  admission.set("rejectedQueueFull", gauge(rejectedQueueFull));
  admission.set("rejectedDraining", gauge(rejectedDraining));
  admission.set("deadlineExpired", gauge(deadlineExpired));
  out.set("admission", admission);

  Json batching{JsonObject{}};
  const std::uint64_t waveCount = waves.load(std::memory_order_relaxed);
  const std::uint64_t slotCount = batchedSlots.load(std::memory_order_relaxed);
  batching.set("waves", Json(static_cast<double>(waveCount)));
  batching.set("batchedSlots", Json(static_cast<double>(slotCount)));
  batching.set("avgWaveSlots",
               Json(waveCount == 0 ? 0.0
                                   : static_cast<double>(slotCount) /
                                         static_cast<double>(waveCount)));
  batching.set("waveFailures", gauge(waveFailures));
  out.set("batching", batching);

  Json resilience{JsonObject{}};
  resilience.set("brownoutTier", gauge(brownoutTier));
  resilience.set("brownoutTransitions", gauge(brownoutTransitions));
  resilience.set("shedStochastic", gauge(shedStochastic));
  resilience.set("shedCold", gauge(shedCold));
  resilience.set("searchPeerDisconnects", gauge(searchPeerDisconnects));
  out.set("resilience", resilience);

  Json endpoints{JsonObject{}};
  endpoints.set("evaluate", evaluate.toJson());
  endpoints.set("search", search.toJson());
  endpoints.set("metrics", metricsEndpoint.toJson());
  endpoints.set("healthz", healthz.toJson());
  endpoints.set("other", other.toJson());
  out.set("endpoints", endpoints);
  out.set("parseErrors", gauge(parseErrors));

  // Caches and fingerprint counters: lifetime totals plus the interval since
  // the previous scrape (snapshot diff / read-and-reset).
  const engine::EvalCache::Stats cacheNow = engine.cache().stats();
  const std::uint64_t stRuns = stochasticRuns.load(std::memory_order_relaxed);
  const std::uint64_t stPlanRuns =
      stochasticPlanRuns.load(std::memory_order_relaxed);
  const std::uint64_t stTrials =
      stochasticTrials.load(std::memory_order_relaxed);
  const std::uint64_t stWallNanos =
      stochasticWallNanos.load(std::memory_order_relaxed);
  double intervalSeconds = 0.0;
  engine::EvalCache::Stats cacheInterval;
  std::uint64_t stRunsDelta = 0;
  std::uint64_t stPlanRunsDelta = 0;
  std::uint64_t stTrialsDelta = 0;
  std::uint64_t stWallNanosDelta = 0;
  {
    std::lock_guard<std::mutex> lock(intervalMu_);
    cacheInterval = cacheNow.delta(scraped_ ? lastCacheStats_
                                            : engine::EvalCache::Stats{});
    intervalSeconds =
        scraped_
            ? std::chrono::duration<double>(now - lastScrape_).count()
            : std::chrono::duration<double>(now - start_).count();
    stRunsDelta = stRuns - (scraped_ ? lastStochasticRuns_ : 0);
    stPlanRunsDelta = stPlanRuns - (scraped_ ? lastStochasticPlanRuns_ : 0);
    stTrialsDelta = stTrials - (scraped_ ? lastStochasticTrials_ : 0);
    stWallNanosDelta =
        stWallNanos - (scraped_ ? lastStochasticWallNanos_ : 0);
    lastCacheStats_ = cacheNow;
    lastStochasticRuns_ = stRuns;
    lastStochasticPlanRuns_ = stPlanRuns;
    lastStochasticTrials_ = stTrials;
    lastStochasticWallNanos_ = stWallNanos;
    lastScrape_ = now;
    scraped_ = true;
  }
  out.set("intervalSeconds", Json(intervalSeconds));

  // Monte-Carlo throughput: trialsPerSec divides trials by the wall time
  // spent inside runTrials (not the scrape interval), so it reflects sampler
  // speed rather than request arrival rate.
  const auto stochasticJson = [](std::uint64_t runs, std::uint64_t planRuns,
                                 std::uint64_t trials,
                                 std::uint64_t wallNanos) {
    Json section{JsonObject{}};
    section.set("runs", Json(static_cast<double>(runs)));
    section.set("planRuns", Json(static_cast<double>(planRuns)));
    section.set("trials", Json(static_cast<double>(trials)));
    const double wallSeconds = static_cast<double>(wallNanos) / 1e9;
    section.set("wallSeconds", Json(wallSeconds));
    section.set("trialsPerSec",
                Json(wallSeconds > 0.0
                         ? static_cast<double>(trials) / wallSeconds
                         : 0.0));
    return section;
  };
  Json stochasticOut{JsonObject{}};
  stochasticOut.set("lifetime",
                    stochasticJson(stRuns, stPlanRuns, stTrials, stWallNanos));
  stochasticOut.set("interval",
                    stochasticJson(stRunsDelta, stPlanRunsDelta, stTrialsDelta,
                                   stWallNanosDelta));
  out.set("stochastic", stochasticOut);

  Json cache{JsonObject{}};
  cache.set("lifetime", cacheStatsJson(cacheNow));
  cache.set("interval", cacheStatsJson(cacheInterval));
  out.set("evalCache", cache);

  const engine::DemandCache::Stats demand = engine.demandCache().stats();
  Json demandJson{JsonObject{}};
  demandJson.set("probes", Json(static_cast<double>(demand.probes)));
  demandJson.set("hits", Json(static_cast<double>(demand.hits)));
  demandJson.set("inserts", Json(static_cast<double>(demand.inserts)));
  demandJson.set("entries", Json(static_cast<double>(demand.entries)));
  demandJson.set("hitRate", Json(demand.hitRate()));
  out.set("demandCache", demandJson);

  // Process-wide counters, zeroed by the read: this section is per-interval
  // by construction.
  const engine::FingerprintCounters fp = engine::fingerprintCountersReset();
  Json fpJson{JsonObject{}};
  fpJson.set("designFingerprints",
             Json(static_cast<double>(fp.designFingerprints)));
  fpJson.set("scenarioFingerprints",
             Json(static_cast<double>(fp.scenarioFingerprints)));
  fpJson.set("bytesHashed", Json(static_cast<double>(fp.bytesHashed)));
  out.set("fingerprintInterval", fpJson);

  Json engineJson{JsonObject{}};
  engineJson.set("threads", Json(engine.threads()));
  out.set("engine", engineJson);
  return out;
}

}  // namespace stordep::service
