// json_api.hpp — JSON request/response adapters for the evaluation service.
//
// The wire format reuses the design-document schema (config/design_io): an
// evaluate request carries a full design document plus a failure scenario,
// exactly as `stordep_eval` reads them from disk, so any design file in
// designs/ can be POSTed as-is. Responses serialize the complete
// EvaluationResult — utilization, recovery timeline, cost attribution,
// warnings — with the same non-finite encoding the checkpoint journal uses
// ("inf"/"-inf"/"nan" as strings, because JSON has no such numbers), so an
// offline `stordep_eval --json` run and a served response are comparable
// bit-for-bit (CI asserts exactly that).
//
// Errors are values end-to-end: the engine's EvalError taxonomy maps onto
// HTTP statuses here (invalid-design/-scenario → 400, resource-exhausted →
// 503, cancelled → 503, deadline-exceeded → 504, injected/internal → 500)
// and every error response body is {"error": {code, message, transient,
// attempts}} with the taxonomy's stable lowercase code names.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <vector>

#include "config/design_io.hpp"
#include "core/evaluator.hpp"
#include "core/reliability.hpp"
#include "engine/batch.hpp"
#include "engine/errors.hpp"
#include "stochastic/evaluator.hpp"

namespace stordep::service {

// ---- Result serialization --------------------------------------------------

/// Full EvaluationResult document (utilization, recovery timeline, costs,
/// warnings, meetsObjectives). Non-finite quantities are string-encoded.
[[nodiscard]] config::Json resultToJson(const EvaluationResult& result);

/// The single-evaluation response envelope:
///   {"design": "<name>", "scenario": {...}, "result": {...}}
/// `stordep_eval --json` prints exactly this document, compactly dumped.
[[nodiscard]] config::Json evaluationToJson(const StorageDesign& design,
                                            const FailureScenario& scenario,
                                            const EvaluationResult& result);

// ---- Monte-Carlo add-on ----------------------------------------------------

/// A request for the Monte-Carlo layer riding along with an evaluation:
/// {"stochastic": {"trials": N[, "seed": S]}} in the request body, plus the
/// design document's optional "reliability" block. trials == 0 means "not
/// requested".
struct StochasticRequest {
  int trials = 0;
  std::uint64_t seed = 1;
  ReliabilitySpec reliability;
  /// Route trials through the compiled TrialPlan (bit-identical results;
  /// legacy loop on false — `stordep_eval --no-stochastic-plan`).
  bool usePlan = true;
};

/// Throughput facts from one stochastic run, reported to ServiceMetrics so
/// served Monte-Carlo load shows up in /metrics interval stats.
struct StochasticRunStats {
  int trials = 0;
  double wallSeconds = 0.0;
  bool usedPlan = false;
};

/// Serialized ScenarioDistribution (distribution summaries use the same
/// non-finite string encoding as the rest of the envelope). The run-varying
/// throughput fields live under a "perf" subobject so the deterministic
/// remainder of the document stays byte-comparable across runs.
[[nodiscard]] config::Json stochasticToJson(
    const stochastic::ScenarioDistribution& dist);

/// Runs the Monte-Carlo layer for one (design, scenario) and returns the
/// value of the response's "stochastic" key: the serialized distribution on
/// success, {"error": {...}} on failure. Shared by the server and
/// `stordep_eval --json --stochastic` so offline and served documents stay
/// bit-identical (modulo the "perf" subobject). `stats`, when non-null, is
/// filled on success for the server's /metrics accounting.
[[nodiscard]] config::Json stochasticEnvelope(const StorageDesign& design,
                                              const FailureScenario& scenario,
                                              const StochasticRequest& spec,
                                              StochasticRunStats* stats =
                                                  nullptr);

// ---- Error mapping ---------------------------------------------------------

/// {"error": {"code": "<taxonomy name>", "message", "transient",
/// "attempts"}}.
[[nodiscard]] config::Json evalErrorToJson(const engine::EvalError& error);

/// EvalError taxonomy → HTTP status.
[[nodiscard]] int httpStatusFor(engine::EvalErrorCode code) noexcept;

// ---- Request parsing -------------------------------------------------------

/// One design+scenario pair from a request body. Designs are shared_ptr so
/// an array request referencing the same design many times (or the batcher
/// coalescing across connections) never copies the materialized design.
struct EvaluateItem {
  std::shared_ptr<const StorageDesign> design;
  FailureScenario scenario;
  /// Set when the entry carried {"stochastic": {"trials": N, ...}}; the
  /// reliability inside comes from the design document's optional
  /// "reliability" block.
  std::optional<StochasticRequest> stochastic;
};

struct EvaluateRequest {
  std::vector<EvaluateItem> items;
  /// True when the body was an array (the response mirrors the shape).
  bool array = false;
  /// Optional per-request deadline from the body ("deadlineMs") — the
  /// X-Deadline-Ms header, parsed by the server, takes precedence.
  std::chrono::milliseconds deadline{0};
};

/// Parses {"design": {...}, "scenario": {...}[, "deadlineMs": N]} or an
/// array of such objects. Throws config::DesignIoError / config::JsonError /
/// std::runtime_error with a caller-facing message on malformed input.
[[nodiscard]] EvaluateRequest parseEvaluateRequest(const config::Json& body);

[[nodiscard]] engine::EvalRequest toEngineRequest(const EvaluateItem& item);

}  // namespace stordep::service
