// cluster_hooks.hpp — the seam between the server and the cluster layer.
//
// Layering: stordep_cluster links stordep_service (it reuses Client /
// ResilientClient and runs beside a Server), so the server cannot link the
// cluster back. Instead the server holds a ClusterHooks* — implemented by
// cluster::ClusterNode — and consults it for everything cluster-shaped:
// key ownership, request forwarding, gossip endpoints, distributed sweeps,
// and the observability sections of /healthz and /metrics. A server with no
// hooks attached behaves exactly as before this layer existed.
//
// Threading contract: ownsEvaluation / handlePing / membersJson /
// healthJson / metricsJson are called on the server's event-loop thread and
// must not block. forwardEvaluate must return immediately and invoke `done`
// later from any thread (the server re-enters itself through its
// cross-thread completion queue). clusterSearch runs on a detached
// per-request worker thread and may block for the whole sweep.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "config/json.hpp"
#include "engine/batch.hpp"
#include "engine/fingerprint.hpp"
#include "optimizer/search.hpp"

namespace stordep::service {

/// Outcome of one forwarded exchange. When !ok the forwarding node falls
/// back to computing locally (the owner is degraded, not the request).
struct ForwardReply {
  bool ok = false;
  int status = 0;
  std::string body;
};

/// Parameters of a cluster-mode /v1/search, parsed by the server.
struct ClusterSearchParams {
  optimizer::SearchOptions search;  ///< chunk size, deadline, objective, ...
  /// The request's effective RTO/RPO overrides, already applied.
  BusinessRequirements business;
  /// Directory for per-range checkpoint journals ("" = no checkpointing).
  std::string checkpointDir;
  /// Extra knobs forwarded verbatim to worker nodes so their evaluation
  /// request is byte-identical to the coordinator's own (empty = absent).
  std::string rtoHoursLiteral;
  std::string rpoHoursLiteral;
};

class ClusterHooks {
 public:
  virtual ~ClusterHooks() = default;

  /// True when this node owns `key`. When false, `ownerId` receives the
  /// owner's member id iff the owner is currently forwardable (alive and
  /// not self); an un-forwardable owner reports true (compute locally).
  virtual bool ownsEvaluation(const engine::Fingerprint& key,
                              std::string* ownerId) = 0;

  /// Forwards a request body to `ownerId`'s /v1/evaluate and calls `done`
  /// exactly once from a router thread.
  virtual void forwardEvaluate(const std::string& ownerId,
                               const std::string& body,
                               std::function<void(ForwardReply)> done) = 0;

  /// Gossip receive path: records the pinging peer and returns this node's
  /// member list (the /v1/cluster/ping response document).
  virtual config::Json handlePing(const config::Json& body) = 0;

  /// The /v1/cluster/members document.
  virtual config::Json membersJson() = 0;

  /// Node-identity sections merged into /healthz and /metrics.
  virtual config::Json healthJson() = 0;
  virtual config::Json metricsJson() = 0;

  /// Runs one distributed sweep (partition ranges, drive remote workers,
  /// merge, reassign dead ranges). Blocks until done; `onProgress` receives
  /// cumulative finished-candidate counts from every range.
  virtual optimizer::SearchResult clusterSearch(
      const ClusterSearchParams& params,
      const std::function<void(std::size_t done)>& onProgress,
      engine::CancellationToken token) = 0;
};

}  // namespace stordep::service
