#include "service/batcher.hpp"

namespace stordep::service {

Batcher::Batcher(engine::Engine& engine, Options options,
                 ServiceMetrics* metrics)
    : engine_(engine), options_(options), metrics_(metrics) {
  worker_ = std::thread([this] { run(); });
}

Batcher::~Batcher() { stop(); }

Batcher::Submit Batcher::submit(Job job) {
  const std::size_t slots = job.requests.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_ || stop_) return Submit::kShuttingDown;
    if (queuedSlots_ + slots > options_.maxQueueSlots) {
      return Submit::kQueueFull;
    }
    queuedSlots_ += slots;
    queue_.push_back(std::move(job));
  }
  if (metrics_ != nullptr) {
    metrics_->queuedSlots.fetch_add(static_cast<std::int64_t>(slots),
                                    std::memory_order_relaxed);
  }
  cv_.notify_one();
  return Submit::kAccepted;
}

void Batcher::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  cv_.notify_all();
  drained_.wait(lock, [this] { return queue_.empty() && !evaluating_; });
}

void Batcher::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

std::size_t Batcher::queuedSlots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queuedSlots_;
}

void Batcher::run() {
  std::vector<Job> wave;
  for (;;) {
    wave.clear();
    std::size_t waveSlots = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return !queue_.empty() || stop_; });
      if (queue_.empty()) {
        // stop_ with nothing queued: every accepted job has completed.
        drained_.notify_all();
        return;
      }
      // First job seen: linger briefly so concurrent connections coalesce
      // into the same engine fan-out (skipped once shutdown has begun).
      if (!draining_ && options_.linger.count() > 0) {
        cv_.wait_for(lock, options_.linger, [this] {
          return queuedSlots_ >= options_.maxWaveSlots || stop_;
        });
      }
      while (!queue_.empty() &&
             (wave.empty() || waveSlots + queue_.front().requests.size() <=
                                  options_.maxWaveSlots)) {
        waveSlots += queue_.front().requests.size();
        wave.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queuedSlots_ -= waveSlots;
      evaluating_ = true;
    }
    if (metrics_ != nullptr) {
      metrics_->queuedSlots.fetch_sub(static_cast<std::int64_t>(waveSlots),
                                      std::memory_order_relaxed);
      metrics_->inFlightSlots.fetch_add(static_cast<std::int64_t>(waveSlots),
                                        std::memory_order_relaxed);
    }

    // Partition the wave: jobs whose token already fired complete with the
    // structured cancellation error without consuming engine work.
    std::vector<engine::EvalRequest> combined;
    combined.reserve(waveSlots);
    std::vector<std::size_t> offsets(wave.size(), 0);
    std::vector<char> expired(wave.size(), 0);
    for (std::size_t j = 0; j < wave.size(); ++j) {
      if (wave[j].token.cancellable() && wave[j].token.cancelled()) {
        expired[j] = 1;
        continue;
      }
      offsets[j] = combined.size();
      combined.insert(combined.end(), wave[j].requests.begin(),
                      wave[j].requests.end());
    }

    engine::BatchResult batch;
    if (!combined.empty()) {
      engine::BatchOptions batchOptions;
      batchOptions.maxRetries = options_.maxRetries;
      batch = engine_.evaluateBatch(combined, batchOptions);
      if (metrics_ != nullptr) {
        metrics_->waves.fetch_add(1, std::memory_order_relaxed);
        metrics_->batchedSlots.fetch_add(combined.size(),
                                         std::memory_order_relaxed);
        if (batch.stats.failed > 0) {
          // Feeds the brown-out controller: a streak of failing waves
          // escalates degradation even when the queue looks shallow.
          metrics_->waveFailures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }

    for (std::size_t j = 0; j < wave.size(); ++j) {
      std::vector<engine::EvalOutcome> outcomes;
      outcomes.reserve(wave[j].requests.size());
      if (expired[j] != 0) {
        const engine::EvalError error = wave[j].token.toError();
        for (std::size_t k = 0; k < wave[j].requests.size(); ++k) {
          outcomes.emplace_back(error);
        }
        if (metrics_ != nullptr) {
          metrics_->deadlineExpired.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        for (std::size_t k = 0; k < wave[j].requests.size(); ++k) {
          outcomes.push_back(std::move(batch.results[offsets[j] + k]));
        }
      }
      if (wave[j].done) wave[j].done(std::move(outcomes), batch.stats);
    }
    if (metrics_ != nullptr) {
      metrics_->inFlightSlots.fetch_sub(static_cast<std::int64_t>(waveSlots),
                                        std::memory_order_relaxed);
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      evaluating_ = false;
      if (queue_.empty()) drained_.notify_all();
    }
  }
}

}  // namespace stordep::service
