// server.hpp — the embedded evaluation daemon (POSIX sockets + epoll).
//
// A Server turns the in-process engine into a long-running HTTP/1.1
// service:
//
//   POST /v1/evaluate  one {design, scenario} pair or an array of them;
//                      concurrent requests coalesce into shared
//                      Engine::evaluateBatch waves (service/batcher.hpp)
//                      over one EvalCache/DemandCache.
//   POST /v1/search    a design-space sweep; progress streams back as
//                      chunked NDJSON, one line per streamChunk wave.
//   GET  /metrics      lifetime + per-interval counters (service/metrics).
//   GET  /healthz      {"status": "ok" | "draining"}.
//
// Architecture: one event-loop thread owns the listening socket, an epoll
// instance, and every connection's read/parse/write state; one batcher
// thread owns engine dispatch; search requests each get a short-lived
// worker thread that writes its chunked response directly (the connection
// is detached from the loop first). Completions cross back onto the loop
// through a mutex-guarded queue plus an eventfd wake — the loop thread is
// the only one that touches connection state.
//
// Admission control: a connection cap (excess accepts get an immediate
// 503), a bounded evaluate queue in slots (429 + Retry-After when full), a
// search concurrency cap (503 + Retry-After), and per-request deadlines
// (X-Deadline-Ms header or "deadlineMs" body field, clamped to
// maxDeadline) mapped onto engine CancellationTokens — an expired request
// answers 504 with the engine's structured deadline-exceeded error while
// the rest of its wave completes normally.
//
// Shutdown: requestShutdown() is async-signal-safe (atomic flag + eventfd
// write); the loop then stops accepting, lets in-flight requests finish,
// answers anything newly parsed with 503 + Retry-After, drains the batcher
// and the search workers, and exits. shutdown() does the same
// synchronously and joins every thread; the destructor calls it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/batch.hpp"
#include "service/batcher.hpp"
#include "service/cluster_hooks.hpp"
#include "service/http.hpp"
#include "service/metrics.hpp"
#include "service/resilience/brownout.hpp"

namespace stordep::service {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via Server::port())

  /// Evaluate through this engine (shared cache with the rest of the
  /// process); null = the server owns one sized by `engineThreads`.
  engine::Engine* eng = nullptr;
  int engineThreads = 0;  ///< 0 = hardware-sized (owned engine only)

  HttpLimits limits;
  std::size_t maxConnections = 512;
  std::size_t maxQueueSlots = 1024;
  std::size_t maxWaveSlots = 256;
  std::chrono::microseconds batchLinger{200};
  int maxRetries = 0;

  /// Deadline applied when a request names none (0 = none), and the cap on
  /// what a client may ask for.
  std::chrono::milliseconds defaultDeadline{0};
  std::chrono::milliseconds maxDeadline{60'000};

  int maxConcurrentSearches = 2;
  int retryAfterSeconds = 1;  ///< advertised on 429/503

  /// Tiered load shedding under sustained overload (resilience/brownout).
  /// The controller ticks on the event loop's cadence, watching queue
  /// pressure and failed waves; tiers shed stochastic envelopes, then cold
  /// requests, then everything (see BrownoutOptions).
  bool brownoutEnabled = true;
  resilience::BrownoutOptions brownout;
  std::chrono::milliseconds brownoutTickInterval{100};

  /// Grace period for in-flight work at shutdown; connections still busy
  /// after it are closed.
  std::chrono::milliseconds drainTimeout{10'000};
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the event-loop + batcher threads. Throws
  /// std::runtime_error on socket/bind failure.
  void start();

  /// The bound port (after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return boundPort_; }

  /// Async-signal-safe shutdown trigger (for SIGTERM handlers): flips a
  /// flag and wakes the loop. The loop then drains gracefully.
  void requestShutdown() noexcept;

  /// Graceful synchronous shutdown: drain in-flight requests (bounded by
  /// drainTimeout), stop every thread, close every socket. Idempotent.
  void shutdown();

  /// Blocks until the event loop exits (after requestShutdown() or a
  /// drain), then completes shutdown. The serve binary's main thread parks
  /// here.
  void wait();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  [[nodiscard]] engine::Engine& engine() noexcept { return *engine_; }
  [[nodiscard]] ServiceMetrics& metrics() noexcept { return metrics_; }
  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }

  /// Pins the brown-out tier (0–3; -1 releases the pin), applied by the
  /// event loop on its next tick. Thread-safe; for tests, benches and
  /// operator overrides.
  void forceBrownoutTier(int tier) noexcept;

  /// The currently applied brown-out tier (same value /metrics reports).
  [[nodiscard]] int brownoutTier() const noexcept {
    return static_cast<int>(
        metrics_.brownoutTier.load(std::memory_order_relaxed));
  }

  /// Attaches (or detaches, with nullptr) the cluster layer. The pointer is
  /// read per-request on the loop thread, so attaching while running is
  /// safe; DETACHING is only safe once the loop has exited (in practice:
  /// cluster::ClusterNode shuts the server down before it destructs, which
  /// is why a Server must be declared before its ClusterNode).
  void attachCluster(ClusterHooks* cluster) noexcept {
    cluster_.store(cluster, std::memory_order_release);
  }
  [[nodiscard]] ClusterHooks* cluster() const noexcept {
    return cluster_.load(std::memory_order_acquire);
  }

 private:
  struct Connection;

  void loop();
  void acceptConnections();
  void handleReadable(Connection& conn);
  void handleWritable(Connection& conn);
  void processBuffer(Connection& conn);
  void dispatch(Connection& conn, HttpRequest request);
  void handleEvaluate(Connection& conn, const HttpRequest& request);
  void handleSearch(Connection& conn, const HttpRequest& request);
  void runSearch(int fd, std::uint64_t connId, std::string bodyText);
  void sendResponse(Connection& conn, const HttpResponse& response,
                    bool keepAlive);
  void sendError(Connection& conn, int status, const std::string& code,
                 const std::string& message, bool retryAfter = false);
  void queueCompletion(std::uint64_t connId, std::string bytes,
                       bool thenClose);
  void drainCompletions();
  void closeConnection(std::uint64_t connId);
  void beginDrain();
  void wake() noexcept;
  [[nodiscard]] bool drainComplete() const;
  void brownoutTick();

  ServerOptions options_;
  std::unique_ptr<engine::Engine> ownedEngine_;
  engine::Engine* engine_ = nullptr;
  ServiceMetrics metrics_;
  std::unique_ptr<Batcher> batcher_;
  std::atomic<ClusterHooks*> cluster_{nullptr};

  int listenFd_ = -1;
  int epollFd_ = -1;
  int wakeFd_ = -1;       ///< read end of the wake pipe (in epoll)
  int wakeWriteFd_ = -1;  ///< write end (async-signal-safe wake target)
  std::uint16_t boundPort_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> shutdownRequested_{false};
  /// Fired when drain begins: in-flight searches stop at their next wave
  /// and report their partial ranking as cancelled.
  engine::CancellationSource stopSource_;
  bool draining_ = false;  // loop-thread state
  std::chrono::steady_clock::time_point drainDeadline_{};

  // Brown-out state. The controller is loop-thread-only; tier pins arrive
  // from other threads through pendingForcedTier_ (-2 = no change pending)
  // and are applied on the next tick.
  resilience::BrownoutController brownout_{};
  std::atomic<int> pendingForcedTier_{-2};
  std::chrono::steady_clock::time_point lastBrownoutTick_{};
  std::uint64_t lastWaveFailures_ = 0;

  std::uint64_t nextConnId_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::unordered_map<int, std::uint64_t> fdToConn_;

  // Cross-thread completion queue (batcher / search workers → loop).
  std::mutex completionsMu_;
  struct Completion {
    std::uint64_t connId;
    std::string bytes;  // empty = just close / detach bookkeeping
    bool thenClose;
  };
  std::vector<Completion> completions_;

  std::mutex searchThreadsMu_;
  std::vector<std::thread> searchThreads_;

  std::thread loopThread_;
  std::once_flag shutdownOnce_;
};

}  // namespace stordep::service
