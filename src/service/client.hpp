// client.hpp — a minimal blocking HTTP client for the evaluation service.
//
// Covers exactly what the tests, the fuzz harness and the load generator
// need: connect to a host:port, send one request at a time over a
// keep-alive connection, and parse the response (fixed or chunked bodies)
// with the same HttpResponseParser the torn-read tests exercise. Chunked
// NDJSON streams (POST /v1/search) can be consumed line-by-line through
// an onLine callback as chunks arrive.
//
// Not a general HTTP client: no TLS, no redirects, no proxies, blocking
// I/O only. One Client per thread; it is not synchronized.
#pragma once

#include <chrono>
#include <functional>
#include <string>

#include "service/http.hpp"

namespace stordep::service {

class Client {
 public:
  /// Connects immediately; throws std::runtime_error when the server is
  /// unreachable.
  Client(const std::string& host, std::uint16_t port,
         std::chrono::milliseconds timeout = std::chrono::milliseconds{30'000});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// One request/response round trip. Reconnects transparently when the
  /// server closed the previous keep-alive connection. Throws
  /// std::runtime_error on connect/write/read failure or a malformed
  /// response.
  HttpClientResponse request(const std::string& method,
                             const std::string& target,
                             const std::string& body = "",
                             const HttpHeaders& headers = {});

  [[nodiscard]] HttpClientResponse get(const std::string& target) {
    return request("GET", target);
  }
  [[nodiscard]] HttpClientResponse post(const std::string& target,
                                        const std::string& body,
                                        const HttpHeaders& headers = {}) {
    return request("POST", target, body, headers);
  }

  /// POSTs and feeds each newline-terminated line of the (chunked) response
  /// body to `onLine` as it arrives — how a caller watches /v1/search
  /// progress live. The full body is also returned.
  HttpClientResponse postStreaming(
      const std::string& target, const std::string& body,
      const std::function<void(std::string_view line)>& onLine);

  /// Closes the connection; the next request() reconnects.
  void disconnect() noexcept;

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

 private:
  void connect();
  void sendRequest(const std::string& method, const std::string& target,
                   const std::string& body, const HttpHeaders& headers);
  HttpClientResponse readResponse(
      const std::function<void(std::string_view line)>* onLine);

  std::string host_;
  std::uint16_t port_ = 0;
  std::chrono::milliseconds timeout_{30'000};
  int fd_ = -1;
};

}  // namespace stordep::service
