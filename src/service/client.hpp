// client.hpp — a minimal blocking HTTP client for the evaluation service.
//
// Covers exactly what the tests, the fuzz harness and the load generator
// need: connect to a host:port, send one request at a time over a
// keep-alive connection, and parse the response (fixed or chunked bodies)
// with the same HttpResponseParser the torn-read tests exercise. Chunked
// NDJSON streams (POST /v1/search) can be consumed line-by-line through
// an onLine callback as chunks arrive.
//
// Failure model: transport faults surface as TransportError, which records
// *where* the round trip died (connect / send / response) plus whether the
// connection was a reused keep-alive one and whether a receive timeout
// fired. That classification is what makes retries safe to reason about:
//   * kConnect / kSend   — the server cannot have seen a complete request
//                          (TCP delivers a prefix only), so a retry can
//                          never double-apply it.
//   * kResponseNone      — the request was fully sent but not a single
//                          response byte arrived. On a reused keep-alive
//                          connection this is overwhelmingly the stale-
//                          keep-alive race (server closed between requests)
//                          and is retried; on a fresh connection the server
//                          may have processed the request and died before
//                          responding, so it is only retried when the
//                          caller marked the request idempotent.
//   * kResponseTorn      — response bytes arrived and then the connection
//                          died: the server definitely executed the
//                          request. Retried only when idempotent.
//   * kMalformed         — the server spoke garbage; never retried here
//                          (a protocol bug is not transient).
// request() performs at most ONE such safe retry on a fresh connection;
// anything beyond that single hop (backoff, jitter, circuit breaking,
// hedging) lives in resilience::ResilientClient.
//
// Not a general HTTP client: no TLS, no redirects, no proxies, blocking
// I/O only. One Client per thread; it is not synchronized.
#pragma once

#include <chrono>
#include <functional>
#include <stdexcept>
#include <string>

#include "service/http.hpp"

namespace stordep::service {

/// A classified transport-layer failure (see the file comment for the
/// retry-safety semantics of each stage).
class TransportError : public std::runtime_error {
 public:
  enum class Stage {
    kConnect,       ///< could not establish the TCP connection
    kSend,          ///< the request was not fully handed to the kernel
    kResponseNone,  ///< request sent, zero response bytes received
    kResponseTorn,  ///< response started, then the connection died
    kMalformed,     ///< the response violated HTTP framing
  };

  TransportError(Stage stage, bool reusedConnection, bool timedOut,
                 const std::string& what)
      : std::runtime_error(what),
        stage_(stage),
        reusedConnection_(reusedConnection),
        timedOut_(timedOut) {}

  [[nodiscard]] Stage stage() const noexcept { return stage_; }
  /// True when the failed attempt ran over a reused keep-alive connection
  /// (the stale-keep-alive race makes kResponseNone retry-safe there).
  [[nodiscard]] bool reusedConnection() const noexcept {
    return reusedConnection_;
  }
  [[nodiscard]] bool timedOut() const noexcept { return timedOut_; }

  /// Whether retrying this failure cannot double-apply the request.
  [[nodiscard]] bool safeToRetry(bool idempotent) const noexcept {
    switch (stage_) {
      case Stage::kConnect:
      case Stage::kSend:
        return true;
      case Stage::kResponseNone:
        return reusedConnection_ || idempotent;
      case Stage::kResponseTorn:
        return idempotent;
      case Stage::kMalformed:
        return false;
    }
    return false;
  }

  [[nodiscard]] const char* stageName() const noexcept {
    switch (stage_) {
      case Stage::kConnect:
        return "connect";
      case Stage::kSend:
        return "send";
      case Stage::kResponseNone:
        return "response-none";
      case Stage::kResponseTorn:
        return "response-torn";
      case Stage::kMalformed:
        return "malformed";
    }
    return "unknown";
  }

 private:
  Stage stage_;
  bool reusedConnection_;
  bool timedOut_;
};

/// Construction knobs.
struct ClientOptions {
  /// Receive/send timeout on the established connection (0 = none).
  std::chrono::milliseconds timeout{30'000};
  /// Bound on TCP connection establishment, enforced with a non-blocking
  /// connect + poll. 0 = plain blocking connect, which on Linux means the
  /// kernel's SYN-retry schedule (~2 minutes) against a black-holed peer —
  /// the cluster router always sets this so a dead owner fails fast into
  /// the local-compute fallback instead of stalling the forwarding node.
  std::chrono::milliseconds connectTimeout{0};
};

class Client {
 public:
  /// Connects immediately; throws TransportError (stage kConnect) when the
  /// server is unreachable.
  Client(const std::string& host, std::uint16_t port,
         std::chrono::milliseconds timeout = std::chrono::milliseconds{30'000});
  Client(const std::string& host, std::uint16_t port, ClientOptions options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// One request/response round trip. Performs at most one retry on a
  /// fresh connection, and only when TransportError::safeToRetry says the
  /// first failure cannot have been applied server-side (`idempotent`
  /// widens that set: response-lost failures become retryable). Throws
  /// TransportError otherwise.
  HttpClientResponse request(const std::string& method,
                             const std::string& target,
                             const std::string& body = "",
                             const HttpHeaders& headers = {},
                             bool idempotent = true);

  [[nodiscard]] HttpClientResponse get(const std::string& target) {
    return request("GET", target);
  }
  [[nodiscard]] HttpClientResponse post(const std::string& target,
                                        const std::string& body,
                                        const HttpHeaders& headers = {},
                                        bool idempotent = true) {
    return request("POST", target, body, headers, idempotent);
  }

  /// POSTs and feeds each newline-terminated line of the (chunked) response
  /// body to `onLine` as it arrives — how a caller watches /v1/search
  /// progress live. The full body is also returned. Never retries: a
  /// mid-stream failure must be resumed from a checkpoint by the caller
  /// (resilience::ResilientClient does this), not blindly replayed.
  HttpClientResponse postStreaming(
      const std::string& target, const std::string& body,
      const std::function<void(std::string_view line)>& onLine);

  /// Closes the connection; the next request() reconnects.
  void disconnect() noexcept;

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

 private:
  void connect();
  void sendRequest(const std::string& method, const std::string& target,
                   const std::string& body, const HttpHeaders& headers,
                   bool reused);
  HttpClientResponse readResponse(
      const std::function<void(std::string_view line)>* onLine, bool reused);

  std::string host_;
  std::uint16_t port_ = 0;
  ClientOptions options_;
  int fd_ = -1;
  /// Whether a full exchange has completed on the current connection. Only
  /// then is a dead connection the stale-keep-alive race; the constructor's
  /// eager connect must not make the first request look "reused".
  bool exchanged_ = false;
};

}  // namespace stordep::service
