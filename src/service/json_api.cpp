#include "service/json_api.hpp"

#include <cmath>
#include <stdexcept>

namespace stordep::service {

using config::Json;
using config::JsonArray;
using config::JsonObject;

namespace {

/// Non-finite doubles have no JSON representation; encode them the same way
/// the checkpoint journal does so the values survive a round trip.
[[nodiscard]] Json encodeReal(double value) {
  if (std::isfinite(value)) return Json(value);
  if (std::isnan(value)) return Json("nan");
  return Json(value > 0 ? "inf" : "-inf");
}

[[nodiscard]] Json utilizationToJson(const UtilizationResult& utilization) {
  Json out{JsonObject{}};
  out.set("feasible", Json(utilization.feasible()));
  out.set("overallBwUtil", encodeReal(utilization.overallBwUtil));
  out.set("overallCapUtil", encodeReal(utilization.overallCapUtil));
  out.set("maxBwDevice", Json(utilization.maxBwDevice));
  out.set("maxCapDevice", Json(utilization.maxCapDevice));
  JsonArray devices;
  devices.reserve(utilization.devices.size());
  for (const DeviceUtilization& device : utilization.devices) {
    Json entry{JsonObject{}};
    entry.set("device", Json(device.device));
    entry.set("bwUtil", encodeReal(device.bwUtil));
    entry.set("capUtil", encodeReal(device.capUtil));
    devices.push_back(entry);
  }
  out.set("devices", Json(std::move(devices)));
  JsonArray errors;
  errors.reserve(utilization.errors.size());
  for (const std::string& message : utilization.errors) {
    errors.push_back(Json(message));
  }
  out.set("errors", Json(std::move(errors)));
  return out;
}

[[nodiscard]] Json recoveryToJson(const RecoveryResult& recovery) {
  Json out{JsonObject{}};
  out.set("recoverable", Json(recovery.recoverable));
  out.set("sourceLevel", Json(recovery.sourceLevel));
  out.set("sourceName", Json(recovery.sourceName));
  out.set("dataLossSeconds", encodeReal(recovery.dataLoss.secs()));
  out.set("recoveryTimeSeconds", encodeReal(recovery.recoveryTime.secs()));
  out.set("payloadBytes", encodeReal(recovery.payload.bytes()));
  JsonArray timeline;
  timeline.reserve(recovery.timeline.size());
  for (const RecoveryStep& step : recovery.timeline) {
    Json entry{JsonObject{}};
    entry.set("description", Json(step.description));
    entry.set("startSeconds", encodeReal(step.startTime.secs()));
    entry.set("readySeconds", encodeReal(step.readyTime.secs()));
    entry.set("parFixSeconds", encodeReal(step.parFix.secs()));
    entry.set("transitSeconds", encodeReal(step.transit.secs()));
    entry.set("serFixSeconds", encodeReal(step.serFix.secs()));
    entry.set("serXferSeconds", encodeReal(step.serXfer.secs()));
    entry.set("rateBytesPerSec", encodeReal(step.rate.bytesPerSec()));
    entry.set("payloadBytes", encodeReal(step.payload.bytes()));
    entry.set("from", Json(step.fromDevice));
    entry.set("to", Json(step.toDevice));
    entry.set("via", Json(step.viaDevice));
    timeline.push_back(entry);
  }
  out.set("timeline", Json(std::move(timeline)));
  JsonArray notes;
  notes.reserve(recovery.notes.size());
  for (const std::string& note : recovery.notes) {
    notes.push_back(Json(note));
  }
  out.set("notes", Json(std::move(notes)));
  return out;
}

[[nodiscard]] Json costToJson(const CostResult& cost) {
  Json out{JsonObject{}};
  JsonArray outlays;
  outlays.reserve(cost.outlays.size());
  for (const TechniqueOutlay& outlay : cost.outlays) {
    Json entry{JsonObject{}};
    entry.set("technique", Json(outlay.technique));
    entry.set("deviceOutlayUsd", encodeReal(outlay.deviceOutlay.usd()));
    entry.set("spareOutlayUsd", encodeReal(outlay.spareOutlay.usd()));
    outlays.push_back(entry);
  }
  out.set("outlays", Json(std::move(outlays)));
  out.set("totalOutlaysUsd", encodeReal(cost.totalOutlays.usd()));
  out.set("outagePenaltyUsd", encodeReal(cost.outagePenalty.usd()));
  out.set("lossPenaltyUsd", encodeReal(cost.lossPenalty.usd()));
  out.set("totalPenaltiesUsd", encodeReal(cost.totalPenalties.usd()));
  out.set("totalCostUsd", encodeReal(cost.totalCost.usd()));
  return out;
}

}  // namespace

Json resultToJson(const EvaluationResult& result) {
  Json out{JsonObject{}};
  out.set("utilization", utilizationToJson(result.utilization));
  out.set("recovery", recoveryToJson(result.recovery));
  out.set("cost", costToJson(result.cost));
  JsonArray warnings;
  warnings.reserve(result.warnings.size());
  for (const std::string& warning : result.warnings) {
    warnings.push_back(Json(warning));
  }
  out.set("warnings", Json(std::move(warnings)));
  out.set("meetsObjectives", Json(result.meetsObjectives));
  return out;
}

Json evaluationToJson(const StorageDesign& design,
                      const FailureScenario& scenario,
                      const EvaluationResult& result) {
  Json out{JsonObject{}};
  out.set("design", Json(design.name()));
  out.set("scenario", config::scenarioToJson(scenario));
  out.set("result", resultToJson(result));
  return out;
}

Json evalErrorToJson(const engine::EvalError& error) {
  Json detail{JsonObject{}};
  detail.set("code", Json(engine::toString(error.code)));
  detail.set("message", Json(error.message));
  detail.set("transient", Json(error.transient));
  detail.set("attempts", Json(error.attempts));
  Json out{JsonObject{}};
  out.set("error", detail);
  return out;
}

int httpStatusFor(engine::EvalErrorCode code) noexcept {
  switch (code) {
    case engine::EvalErrorCode::kInvalidDesign:
    case engine::EvalErrorCode::kInvalidScenario:
      return 400;
    case engine::EvalErrorCode::kResourceExhausted:
    case engine::EvalErrorCode::kCancelled:
      return 503;
    case engine::EvalErrorCode::kDeadlineExceeded:
      return 504;
    case engine::EvalErrorCode::kInjected:
    case engine::EvalErrorCode::kInternal:
      return 500;
  }
  return 500;
}

namespace {

[[nodiscard]] EvaluateItem parseEvaluateItem(const Json& value) {
  if (!value.isObject()) {
    throw config::DesignIoError(
        "evaluate request entries must be objects with "
        "\"design\" and \"scenario\"");
  }
  const Json* design = value.find("design");
  if (design == nullptr) {
    throw config::DesignIoError("evaluate request is missing \"design\"");
  }
  const Json* scenario = value.find("scenario");
  if (scenario == nullptr) {
    throw config::DesignIoError("evaluate request is missing \"scenario\"");
  }
  EvaluateItem item;
  item.design = std::make_shared<const StorageDesign>(
      config::designFromJson(*design));
  item.scenario = config::scenarioFromJson(*scenario);
  return item;
}

[[nodiscard]] std::chrono::milliseconds parseDeadline(const Json& value) {
  const Json* deadline = value.find("deadlineMs");
  if (deadline == nullptr) return std::chrono::milliseconds{0};
  if (!deadline->isNumber() || deadline->asNumber() < 0) {
    throw config::DesignIoError("\"deadlineMs\" must be a number >= 0");
  }
  return std::chrono::milliseconds(
      static_cast<long long>(deadline->asNumber()));
}

}  // namespace

EvaluateRequest parseEvaluateRequest(const Json& body) {
  EvaluateRequest request;
  if (body.isArray()) {
    request.array = true;
    const JsonArray& entries = body.asArray();
    if (entries.empty()) {
      throw config::DesignIoError("evaluate request array is empty");
    }
    request.items.reserve(entries.size());
    for (const Json& entry : entries) {
      request.items.push_back(parseEvaluateItem(entry));
      const std::chrono::milliseconds deadline = parseDeadline(entry);
      if (deadline.count() > 0 &&
          (request.deadline.count() == 0 || deadline < request.deadline)) {
        request.deadline = deadline;  // tightest entry wins for the batch
      }
    }
    return request;
  }
  request.items.push_back(parseEvaluateItem(body));
  request.deadline = parseDeadline(body);
  return request;
}

engine::EvalRequest toEngineRequest(const EvaluateItem& item) {
  engine::EvalRequest request;
  request.design = item.design;
  request.scenario = item.scenario;
  return request;
}

}  // namespace stordep::service
