#include "service/json_api.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace stordep::service {

using config::Json;
using config::JsonArray;
using config::JsonObject;

namespace {

/// Non-finite doubles have no JSON representation; encode them the same way
/// the checkpoint journal does so the values survive a round trip.
[[nodiscard]] Json encodeReal(double value) {
  if (std::isfinite(value)) return Json(value);
  if (std::isnan(value)) return Json("nan");
  return Json(value > 0 ? "inf" : "-inf");
}

[[nodiscard]] Json utilizationToJson(const UtilizationResult& utilization) {
  Json out{JsonObject{}};
  out.set("feasible", Json(utilization.feasible()));
  out.set("overallBwUtil", encodeReal(utilization.overallBwUtil));
  out.set("overallCapUtil", encodeReal(utilization.overallCapUtil));
  out.set("maxBwDevice", Json(utilization.maxBwDevice));
  out.set("maxCapDevice", Json(utilization.maxCapDevice));
  JsonArray devices;
  devices.reserve(utilization.devices.size());
  for (const DeviceUtilization& device : utilization.devices) {
    Json entry{JsonObject{}};
    entry.set("device", Json(device.device));
    entry.set("bwUtil", encodeReal(device.bwUtil));
    entry.set("capUtil", encodeReal(device.capUtil));
    devices.push_back(entry);
  }
  out.set("devices", Json(std::move(devices)));
  JsonArray errors;
  errors.reserve(utilization.errors.size());
  for (const std::string& message : utilization.errors) {
    errors.push_back(Json(message));
  }
  out.set("errors", Json(std::move(errors)));
  return out;
}

[[nodiscard]] Json recoveryToJson(const RecoveryResult& recovery) {
  Json out{JsonObject{}};
  out.set("recoverable", Json(recovery.recoverable));
  out.set("sourceLevel", Json(recovery.sourceLevel));
  out.set("sourceName", Json(recovery.sourceName));
  out.set("dataLossSeconds", encodeReal(recovery.dataLoss.secs()));
  out.set("recoveryTimeSeconds", encodeReal(recovery.recoveryTime.secs()));
  out.set("payloadBytes", encodeReal(recovery.payload.bytes()));
  JsonArray timeline;
  timeline.reserve(recovery.timeline.size());
  for (const RecoveryStep& step : recovery.timeline) {
    Json entry{JsonObject{}};
    entry.set("description", Json(step.description));
    entry.set("startSeconds", encodeReal(step.startTime.secs()));
    entry.set("readySeconds", encodeReal(step.readyTime.secs()));
    entry.set("parFixSeconds", encodeReal(step.parFix.secs()));
    entry.set("transitSeconds", encodeReal(step.transit.secs()));
    entry.set("serFixSeconds", encodeReal(step.serFix.secs()));
    entry.set("serXferSeconds", encodeReal(step.serXfer.secs()));
    entry.set("rateBytesPerSec", encodeReal(step.rate.bytesPerSec()));
    entry.set("payloadBytes", encodeReal(step.payload.bytes()));
    entry.set("from", Json(step.fromDevice));
    entry.set("to", Json(step.toDevice));
    entry.set("via", Json(step.viaDevice));
    timeline.push_back(entry);
  }
  out.set("timeline", Json(std::move(timeline)));
  JsonArray notes;
  notes.reserve(recovery.notes.size());
  for (const std::string& note : recovery.notes) {
    notes.push_back(Json(note));
  }
  out.set("notes", Json(std::move(notes)));
  return out;
}

[[nodiscard]] Json costToJson(const CostResult& cost) {
  Json out{JsonObject{}};
  JsonArray outlays;
  outlays.reserve(cost.outlays.size());
  for (const TechniqueOutlay& outlay : cost.outlays) {
    Json entry{JsonObject{}};
    entry.set("technique", Json(outlay.technique));
    entry.set("deviceOutlayUsd", encodeReal(outlay.deviceOutlay.usd()));
    entry.set("spareOutlayUsd", encodeReal(outlay.spareOutlay.usd()));
    outlays.push_back(entry);
  }
  out.set("outlays", Json(std::move(outlays)));
  out.set("totalOutlaysUsd", encodeReal(cost.totalOutlays.usd()));
  out.set("outagePenaltyUsd", encodeReal(cost.outagePenalty.usd()));
  out.set("lossPenaltyUsd", encodeReal(cost.lossPenalty.usd()));
  out.set("totalPenaltiesUsd", encodeReal(cost.totalPenalties.usd()));
  out.set("totalCostUsd", encodeReal(cost.totalCost.usd()));
  return out;
}

}  // namespace

Json resultToJson(const EvaluationResult& result) {
  Json out{JsonObject{}};
  out.set("utilization", utilizationToJson(result.utilization));
  out.set("recovery", recoveryToJson(result.recovery));
  out.set("cost", costToJson(result.cost));
  JsonArray warnings;
  warnings.reserve(result.warnings.size());
  for (const std::string& warning : result.warnings) {
    warnings.push_back(Json(warning));
  }
  out.set("warnings", Json(std::move(warnings)));
  out.set("meetsObjectives", Json(result.meetsObjectives));
  return out;
}

Json evaluationToJson(const StorageDesign& design,
                      const FailureScenario& scenario,
                      const EvaluationResult& result) {
  Json out{JsonObject{}};
  out.set("design", Json(design.name()));
  out.set("scenario", config::scenarioToJson(scenario));
  out.set("result", resultToJson(result));
  return out;
}

namespace {

[[nodiscard]] Json distributionToJson(const stochastic::Distribution& d) {
  Json out{JsonObject{}};
  out.set("count", Json(static_cast<double>(d.count)));
  out.set("min", encodeReal(d.min));
  out.set("max", encodeReal(d.max));
  out.set("mean", encodeReal(d.mean));
  out.set("ci95", encodeReal(d.ci95));
  out.set("p50", encodeReal(d.p50));
  out.set("p95", encodeReal(d.p95));
  out.set("p99", encodeReal(d.p99));
  return out;
}

}  // namespace

Json stochasticToJson(const stochastic::ScenarioDistribution& dist) {
  Json out{JsonObject{}};
  out.set("trials", Json(dist.trials));
  out.set("unrecoverable", Json(dist.unrecoverable));
  out.set("recoveryTimeSeconds", distributionToJson(dist.rt));
  out.set("dataLossSeconds", distributionToJson(dist.dl));
  out.set("penaltyUsd", distributionToJson(dist.penalty));
  out.set("minPayloadBytes", encodeReal(dist.minPayload.bytes()));
  out.set("meanPayloadBytes", encodeReal(dist.meanPayload.bytes()));
  out.set("maxPayloadBytes", encodeReal(dist.maxPayload.bytes()));
  out.set("analyticWorstRtSeconds", encodeReal(dist.analyticWorstRt.secs()));
  out.set("analyticWorstDlSeconds", encodeReal(dist.analyticWorstDl.secs()));
  out.set("rtBoundHolds", Json(dist.rtBoundHolds));
  out.set("dlBoundHolds", Json(dist.dlBoundHolds));
  out.set("rtTightness", encodeReal(dist.rtTightness));
  out.set("expectedPenaltyUsd", encodeReal(dist.expectedPenalty.usd()));
  out.set("worstCasePenaltyUsd", encodeReal(dist.worstCasePenalty.usd()));
  // Run-varying throughput facts, isolated so the rest of the document
  // stays byte-comparable across runs (offline-vs-served smoke strips it).
  Json perf{JsonObject{}};
  perf.set("trialsPerSec", encodeReal(dist.trialsPerSec));
  perf.set("wallSeconds", encodeReal(dist.wallSeconds));
  perf.set("plan", Json(dist.usedPlan));
  out.set("perf", perf);
  return out;
}

Json stochasticEnvelope(const StorageDesign& design,
                        const FailureScenario& scenario,
                        const StochasticRequest& spec,
                        StochasticRunStats* stats) {
  try {
    stochastic::StochasticOptions options;
    options.trials = spec.trials;
    options.seed = spec.seed;
    options.threads = 1;  // already on an engine worker; stay deterministic
    options.reliability = spec.reliability;
    options.usePlan = spec.usePlan;
    const stochastic::StochasticEvaluator evaluator(design, options);
    const engine::Expected<stochastic::ScenarioDistribution> outcome =
        evaluator.distributionFor(scenario);
    if (!outcome.ok()) return evalErrorToJson(outcome.error());
    if (stats != nullptr) {
      stats->trials = outcome.value().trials;
      stats->wallSeconds = outcome.value().wallSeconds;
      stats->usedPlan = outcome.value().usedPlan;
    }
    return stochasticToJson(outcome.value());
  } catch (...) {
    return evalErrorToJson(engine::errorFromCurrentException());
  }
}

Json evalErrorToJson(const engine::EvalError& error) {
  Json detail{JsonObject{}};
  detail.set("code", Json(engine::toString(error.code)));
  detail.set("message", Json(error.message));
  detail.set("transient", Json(error.transient));
  detail.set("attempts", Json(error.attempts));
  Json out{JsonObject{}};
  out.set("error", detail);
  return out;
}

int httpStatusFor(engine::EvalErrorCode code) noexcept {
  switch (code) {
    case engine::EvalErrorCode::kInvalidDesign:
    case engine::EvalErrorCode::kInvalidScenario:
      return 400;
    case engine::EvalErrorCode::kResourceExhausted:
    case engine::EvalErrorCode::kCancelled:
    case engine::EvalErrorCode::kUnavailable:
      return 503;
    case engine::EvalErrorCode::kDeadlineExceeded:
      return 504;
    case engine::EvalErrorCode::kInjected:
    case engine::EvalErrorCode::kInternal:
      return 500;
  }
  return 500;
}

namespace {

/// Trials are CPU on an engine worker; keep one request from monopolizing
/// the pool.
constexpr int kMaxStochasticTrials = 65'536;

[[nodiscard]] EvaluateItem parseEvaluateItem(const Json& value) {
  if (!value.isObject()) {
    throw config::DesignIoError(
        "evaluate request entries must be objects with "
        "\"design\" and \"scenario\"");
  }
  const Json* design = value.find("design");
  if (design == nullptr) {
    throw config::DesignIoError("evaluate request is missing \"design\"");
  }
  const Json* scenario = value.find("scenario");
  if (scenario == nullptr) {
    throw config::DesignIoError("evaluate request is missing \"scenario\"");
  }
  EvaluateItem item;
  item.design = std::make_shared<const StorageDesign>(
      config::designFromJson(*design));
  item.scenario = config::scenarioFromJson(*scenario);
  if (const Json* stochastic = value.find("stochastic")) {
    if (!stochastic->isObject()) {
      throw config::DesignIoError("\"stochastic\" must be an object");
    }
    const Json* trials = stochastic->find("trials");
    if (trials == nullptr || !trials->isNumber() || trials->asNumber() < 1 ||
        trials->asNumber() > kMaxStochasticTrials) {
      throw config::DesignIoError(
          "\"stochastic.trials\" must be a number in [1, " +
          std::to_string(kMaxStochasticTrials) + "]");
    }
    StochasticRequest spec;
    spec.trials = static_cast<int>(trials->asNumber());
    if (const Json* seed = stochastic->find("seed")) {
      if (!seed->isNumber() || seed->asNumber() < 0) {
        throw config::DesignIoError(
            "\"stochastic.seed\" must be a number >= 0");
      }
      spec.seed = static_cast<std::uint64_t>(seed->asNumber());
    }
    if (const Json* plan = stochastic->find("plan")) {
      if (!plan->isBool()) {
        throw config::DesignIoError("\"stochastic.plan\" must be a boolean");
      }
      spec.usePlan = plan->asBool();
    }
    if (const auto reliability = config::reliabilityFromDesignJson(*design)) {
      spec.reliability = *reliability;
    }
    item.stochastic = spec;
  }
  return item;
}

[[nodiscard]] std::chrono::milliseconds parseDeadline(const Json& value) {
  const Json* deadline = value.find("deadlineMs");
  if (deadline == nullptr) return std::chrono::milliseconds{0};
  if (!deadline->isNumber() || deadline->asNumber() < 0) {
    throw config::DesignIoError("\"deadlineMs\" must be a number >= 0");
  }
  return std::chrono::milliseconds(
      static_cast<long long>(deadline->asNumber()));
}

}  // namespace

EvaluateRequest parseEvaluateRequest(const Json& body) {
  EvaluateRequest request;
  if (body.isArray()) {
    request.array = true;
    const JsonArray& entries = body.asArray();
    if (entries.empty()) {
      throw config::DesignIoError("evaluate request array is empty");
    }
    request.items.reserve(entries.size());
    for (const Json& entry : entries) {
      request.items.push_back(parseEvaluateItem(entry));
      const std::chrono::milliseconds deadline = parseDeadline(entry);
      if (deadline.count() > 0 &&
          (request.deadline.count() == 0 || deadline < request.deadline)) {
        request.deadline = deadline;  // tightest entry wins for the batch
      }
    }
    return request;
  }
  request.items.push_back(parseEvaluateItem(body));
  request.deadline = parseDeadline(body);
  return request;
}

engine::EvalRequest toEngineRequest(const EvaluateItem& item) {
  engine::EvalRequest request;
  request.design = item.design;
  request.scenario = item.scenario;
  return request;
}

}  // namespace stordep::service
