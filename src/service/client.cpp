#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace stordep::service {

namespace {

void applyTimeout(int fd, std::chrono::milliseconds timeout) {
  if (timeout.count() <= 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port,
               std::chrono::milliseconds timeout)
    : host_(host), port_(port), timeout_(timeout) {
  connect();
}

Client::~Client() { disconnect(); }

Client::Client(Client&& other) noexcept
    : host_(std::move(other.host_)),
      port_(other.port_),
      timeout_(other.timeout_),
      fd_(other.fd_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    disconnect();
    host_ = std::move(other.host_);
    port_ = other.port_;
    timeout_ = other.timeout_;
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::disconnect() noexcept {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

void Client::connect() {
  disconnect();
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw std::runtime_error("socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    throw std::runtime_error("bad address: " + host_);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string reason = std::strerror(errno);
    close(fd);
    throw std::runtime_error("connect to " + host_ + ":" +
                             std::to_string(port_) + " failed: " + reason);
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  applyTimeout(fd, timeout_);
  fd_ = fd;
}

void Client::sendRequest(const std::string& method, const std::string& target,
                         const std::string& body,
                         const HttpHeaders& headers) {
  std::string out;
  out.reserve(128 + body.size());
  out += method;
  out += ' ';
  out += target;
  out += " HTTP/1.1\r\nHost: ";
  out += host_;
  out += "\r\n";
  for (const auto& [name, value] : headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  if (!body.empty() || method == "POST" || method == "PUT") {
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n";
  out += body;

  std::string_view pending = out;
  while (!pending.empty()) {
    const ssize_t n = send(fd_, pending.data(), pending.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      disconnect();
      throw std::runtime_error("send failed: " +
                               std::string(std::strerror(errno)));
    }
    pending.remove_prefix(static_cast<std::size_t>(n));
  }
}

HttpClientResponse Client::readResponse(
    const std::function<void(std::string_view line)>* onLine) {
  HttpResponseParser parser;
  std::size_t emitted = 0;  // body bytes already delivered as lines
  char buf[16 * 1024];
  while (parser.status() == ParseStatus::kNeedMore) {
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      disconnect();
      throw std::runtime_error("recv failed: " +
                               std::string(std::strerror(errno)));
    }
    if (n == 0) {
      disconnect();
      throw std::runtime_error("connection closed mid-response");
    }
    std::string_view data(buf, static_cast<std::size_t>(n));
    while (!data.empty() && parser.status() == ParseStatus::kNeedMore) {
      data.remove_prefix(parser.feed(data));
    }
    if (onLine != nullptr) {
      // The parser decodes chunks into response().body as they arrive;
      // emit every complete newline-terminated line we have not seen yet.
      const std::string& bodySoFar = parser.response().body;
      std::size_t newline;
      while ((newline = bodySoFar.find('\n', emitted)) != std::string::npos) {
        (*onLine)(std::string_view(bodySoFar).substr(emitted,
                                                     newline - emitted));
        emitted = newline + 1;
      }
    }
  }
  if (parser.status() == ParseStatus::kError) {
    disconnect();
    throw std::runtime_error("malformed response: " + parser.error().message);
  }
  HttpClientResponse response = std::move(parser.response());
  if (!response.keepAlive()) disconnect();
  return response;
}

HttpClientResponse Client::request(const std::string& method,
                                   const std::string& target,
                                   const std::string& body,
                                   const HttpHeaders& headers) {
  if (fd_ < 0) connect();
  try {
    sendRequest(method, target, body, headers);
    return readResponse(nullptr);
  } catch (const std::exception&) {
    // The keep-alive connection may have been closed between requests;
    // retry exactly once on a fresh connection.
    connect();
    sendRequest(method, target, body, headers);
    return readResponse(nullptr);
  }
}

HttpClientResponse Client::postStreaming(
    const std::string& target, const std::string& body,
    const std::function<void(std::string_view line)>& onLine) {
  if (fd_ < 0) connect();
  sendRequest("POST", target, body, {});
  return readResponse(&onLine);
}

}  // namespace stordep::service
