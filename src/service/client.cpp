#include "service/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace stordep::service {

namespace {

void applyTimeout(int fd, std::chrono::milliseconds timeout) {
  if (timeout.count() <= 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

[[nodiscard]] bool errnoIsTimeout(int err) noexcept {
  return err == EAGAIN || err == EWOULDBLOCK || err == ETIMEDOUT;
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port,
               std::chrono::milliseconds timeout)
    : Client(host, port, ClientOptions{timeout, std::chrono::milliseconds{0}}) {
}

Client::Client(const std::string& host, std::uint16_t port,
               ClientOptions options)
    : host_(host), port_(port), options_(options) {
  connect();
}

Client::~Client() { disconnect(); }

Client::Client(Client&& other) noexcept
    : host_(std::move(other.host_)),
      port_(other.port_),
      options_(other.options_),
      fd_(other.fd_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    disconnect();
    host_ = std::move(other.host_);
    port_ = other.port_;
    options_ = other.options_;
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::disconnect() noexcept {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

void Client::connect() {
  disconnect();
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw TransportError(TransportError::Stage::kConnect, false, false,
                         "socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    throw TransportError(TransportError::Stage::kConnect, false, false,
                         "bad address: " + host_);
  }
  const auto failConnect = [&](int err, bool timedOut,
                               const std::string& reason) {
    close(fd);
    throw TransportError(TransportError::Stage::kConnect, false,
                         timedOut || errnoIsTimeout(err),
                         "connect to " + host_ + ":" + std::to_string(port_) +
                             " failed: " + reason);
  };
  if (options_.connectTimeout.count() > 0) {
    // Bounded establishment: non-blocking connect, poll for writability,
    // then read the deferred result with SO_ERROR. A black-holed peer (SYN
    // dropped, no RST) fails here after connectTimeout instead of the
    // kernel's ~2-minute retry schedule.
    const int flags = fcntl(fd, F_GETFL, 0);
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      if (errno != EINPROGRESS) failConnect(errno, false, std::strerror(errno));
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      int pn;
      do {
        pn = poll(&pfd, 1, static_cast<int>(options_.connectTimeout.count()));
      } while (pn < 0 && errno == EINTR);
      if (pn == 0) {
        failConnect(0, true,
                    "timed out after " +
                        std::to_string(options_.connectTimeout.count()) + "ms");
      }
      if (pn < 0) failConnect(errno, false, std::strerror(errno));
      int soErr = 0;
      socklen_t len = sizeof(soErr);
      getsockopt(fd, SOL_SOCKET, SO_ERROR, &soErr, &len);
      if (soErr != 0) failConnect(soErr, false, std::strerror(soErr));
    }
    fcntl(fd, F_SETFL, flags);  // back to blocking for request I/O
  } else if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
             0) {
    failConnect(errno, false, std::strerror(errno));
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  applyTimeout(fd, options_.timeout);
  fd_ = fd;
  exchanged_ = false;
}

void Client::sendRequest(const std::string& method, const std::string& target,
                         const std::string& body, const HttpHeaders& headers,
                         bool reused) {
  std::string out;
  out.reserve(128 + body.size());
  out += method;
  out += ' ';
  out += target;
  out += " HTTP/1.1\r\nHost: ";
  out += host_;
  out += "\r\n";
  for (const auto& [name, value] : headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  if (!body.empty() || method == "POST" || method == "PUT") {
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n";
  out += body;

  std::string_view pending = out;
  while (!pending.empty()) {
    const ssize_t n = send(fd_, pending.data(), pending.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      disconnect();
      throw TransportError(TransportError::Stage::kSend, reused,
                           errnoIsTimeout(err),
                           "send failed: " +
                               std::string(std::strerror(err)));
    }
    pending.remove_prefix(static_cast<std::size_t>(n));
  }
}

HttpClientResponse Client::readResponse(
    const std::function<void(std::string_view line)>* onLine, bool reused) {
  HttpResponseParser parser;
  std::size_t emitted = 0;   // body bytes already delivered as lines
  std::size_t received = 0;  // total response bytes seen — None vs Torn
  char buf[16 * 1024];
  const auto stageForDeath = [&received] {
    return received == 0 ? TransportError::Stage::kResponseNone
                         : TransportError::Stage::kResponseTorn;
  };
  while (parser.status() == ParseStatus::kNeedMore) {
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      disconnect();
      throw TransportError(stageForDeath(), reused, errnoIsTimeout(err),
                           "recv failed: " +
                               std::string(std::strerror(err)));
    }
    if (n == 0) {
      disconnect();
      throw TransportError(stageForDeath(), reused, false,
                           received == 0 ? "connection closed before response"
                                         : "connection closed mid-response");
    }
    received += static_cast<std::size_t>(n);
    std::string_view data(buf, static_cast<std::size_t>(n));
    while (!data.empty() && parser.status() == ParseStatus::kNeedMore) {
      data.remove_prefix(parser.feed(data));
    }
    if (onLine != nullptr) {
      // The parser decodes chunks into response().body as they arrive;
      // emit every complete newline-terminated line we have not seen yet.
      const std::string& bodySoFar = parser.response().body;
      std::size_t newline;
      while ((newline = bodySoFar.find('\n', emitted)) != std::string::npos) {
        (*onLine)(std::string_view(bodySoFar).substr(emitted,
                                                     newline - emitted));
        emitted = newline + 1;
      }
    }
  }
  if (parser.status() == ParseStatus::kError) {
    disconnect();
    throw TransportError(TransportError::Stage::kMalformed, reused, false,
                         "malformed response: " + parser.error().message);
  }
  HttpClientResponse response = std::move(parser.response());
  exchanged_ = true;
  if (!response.keepAlive()) disconnect();
  return response;
}

HttpClientResponse Client::request(const std::string& method,
                                   const std::string& target,
                                   const std::string& body,
                                   const HttpHeaders& headers,
                                   bool idempotent) {
  const bool reused = fd_ >= 0 && exchanged_;
  if (fd_ < 0) connect();
  try {
    sendRequest(method, target, body, headers, reused);
    return readResponse(nullptr, reused);
  } catch (const TransportError& e) {
    if (!e.safeToRetry(idempotent)) throw;
    // One retry on a fresh connection; a second failure propagates.
    connect();
    sendRequest(method, target, body, headers, /*reused=*/false);
    return readResponse(nullptr, /*reused=*/false);
  }
}

HttpClientResponse Client::postStreaming(
    const std::string& target, const std::string& body,
    const std::function<void(std::string_view line)>& onLine) {
  const bool reused = fd_ >= 0 && exchanged_;
  if (fd_ < 0) connect();
  sendRequest("POST", target, body, {}, reused);
  return readResponse(&onLine, reused);
}

}  // namespace stordep::service
