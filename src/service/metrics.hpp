// metrics.hpp — the service's observable surface (/metrics).
//
// Every counter here is a relaxed atomic updated on the hot path and read
// by the scraper: recording a latency is two atomic adds and one bucketed
// increment, cheap enough to run per request. Latency histograms use
// log2-spaced buckets from 1 µs to ~1 hour; quantiles are estimated by
// linear interpolation inside the bucket that crosses the rank, which is
// exact enough for p50/p99 dashboards without storing samples.
//
// The /metrics document has two time bases:
//   * lifetime  — monotone totals since process start;
//   * interval  — what happened since the *previous* scrape, computed from
//     snapshot diffs (EvalCache::Stats::delta) and read-and-reset counters
//     (engine::fingerprintCountersReset), so a periodic scraper sees rates
//     without doing its own bookkeeping.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "config/json.hpp"
#include "engine/batch.hpp"

namespace stordep::service {

class LatencyHistogram {
 public:
  /// Bucket b covers [2^b, 2^(b+1)) microseconds; the last bucket is
  /// open-ended. 32 buckets reach ~71 minutes.
  static constexpr int kBuckets = 32;

  void record(std::chrono::nanoseconds latency) noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    double meanMs = 0.0;
    double p50Ms = 0.0;
    double p90Ms = 0.0;
    double p99Ms = 0.0;
    double maxMs = 0.0;
  };
  [[nodiscard]] Snapshot snapshot() const noexcept;
  [[nodiscard]] config::Json toJson() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sumNanos_{0};
  std::atomic<std::uint64_t> maxNanos_{0};
};

/// Per-endpoint request accounting.
struct EndpointMetrics {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> errors{0};  ///< responses with status >= 400
  LatencyHistogram latency;

  void record(int status, std::chrono::nanoseconds latency) noexcept {
    requests.fetch_add(1, std::memory_order_relaxed);
    if (status >= 400) errors.fetch_add(1, std::memory_order_relaxed);
    this->latency.record(latency);
  }
  [[nodiscard]] config::Json toJson() const;
};

class ServiceMetrics {
 public:
  ServiceMetrics() : start_(std::chrono::steady_clock::now()) {}

  // Endpoints with their own latency series.
  EndpointMetrics evaluate;
  EndpointMetrics search;
  EndpointMetrics metricsEndpoint;
  EndpointMetrics healthz;
  EndpointMetrics other;  ///< 404s, parse errors, admission rejections

  // Connection gauges/counters.
  std::atomic<std::int64_t> activeConnections{0};
  std::atomic<std::uint64_t> connectionsAccepted{0};
  std::atomic<std::uint64_t> connectionsRejected{0};  ///< over the cap

  // Admission control.
  std::atomic<std::int64_t> queuedSlots{0};    ///< waiting for a wave
  std::atomic<std::int64_t> inFlightSlots{0};  ///< inside evaluateBatch
  std::atomic<std::int64_t> activeSearches{0};
  std::atomic<std::uint64_t> rejectedQueueFull{0};  ///< 429s
  std::atomic<std::uint64_t> rejectedDraining{0};   ///< 503s while draining
  std::atomic<std::uint64_t> deadlineExpired{0};    ///< 504s

  // Batching effectiveness.
  std::atomic<std::uint64_t> waves{0};         ///< evaluateBatch calls
  std::atomic<std::uint64_t> batchedSlots{0};  ///< slots across all waves
  std::atomic<std::uint64_t> waveFailures{0};  ///< waves with >= 1 failed slot
  std::atomic<std::uint64_t> parseErrors{0};   ///< HTTP-level 4xx

  // Resilience / degradation. brownoutTier is a gauge (0 = normal, 1 = shed
  // stochastic envelopes, 2 = cache-hits-only, 3 = full drain); the rest are
  // monotone counters so transitions and shed load are observable from
  // /metrics.
  std::atomic<std::int64_t> brownoutTier{0};
  std::atomic<std::uint64_t> brownoutTransitions{0};
  std::atomic<std::uint64_t> shedStochastic{0};  ///< envelopes stripped
  std::atomic<std::uint64_t> shedCold{0};        ///< cold requests 503'd
  std::atomic<std::uint64_t> searchPeerDisconnects{0};

  // Monte-Carlo load: runs/trials served and the wall time spent inside
  // runTrials, split by whether the compiled TrialPlan path was taken.
  // snapshot() derives interval trials/sec from the deltas.
  std::atomic<std::uint64_t> stochasticRuns{0};
  std::atomic<std::uint64_t> stochasticPlanRuns{0};
  std::atomic<std::uint64_t> stochasticTrials{0};
  std::atomic<std::uint64_t> stochasticWallNanos{0};

  void recordStochastic(int trials, double wallSeconds,
                        bool usedPlan) noexcept {
    stochasticRuns.fetch_add(1, std::memory_order_relaxed);
    if (usedPlan) stochasticPlanRuns.fetch_add(1, std::memory_order_relaxed);
    stochasticTrials.fetch_add(static_cast<std::uint64_t>(trials),
                               std::memory_order_relaxed);
    stochasticWallNanos.fetch_add(
        static_cast<std::uint64_t>(wallSeconds * 1e9),
        std::memory_order_relaxed);
  }

  /// The full /metrics document. Takes the engine to snapshot its caches;
  /// thread-safe (interval bookkeeping is mutex-guarded, everything else is
  /// atomics).
  [[nodiscard]] config::Json snapshot(engine::Engine& engine);

 private:
  std::chrono::steady_clock::time_point start_;
  std::mutex intervalMu_;
  std::chrono::steady_clock::time_point lastScrape_{};
  engine::EvalCache::Stats lastCacheStats_{};
  std::uint64_t lastStochasticRuns_ = 0;
  std::uint64_t lastStochasticPlanRuns_ = 0;
  std::uint64_t lastStochasticTrials_ = 0;
  std::uint64_t lastStochasticWallNanos_ = 0;
  bool scraped_ = false;
};

}  // namespace stordep::service
