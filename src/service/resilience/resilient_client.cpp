#include "service/resilience/resilient_client.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <thread>
#include <utility>

namespace stordep::service::resilience {

namespace {

/// Target path without the query string — the breaker granularity.
[[nodiscard]] std::string pathOf(const std::string& target) {
  const std::size_t query = target.find('?');
  return query == std::string::npos ? target : target.substr(0, query);
}

/// Retry-After in milliseconds, when present and a plain delta-seconds
/// value (the only form our server emits). nullopt otherwise.
[[nodiscard]] std::optional<std::chrono::milliseconds> retryAfterOf(
    const HttpClientResponse& response) {
  const std::string* value = response.header("Retry-After");
  if (value == nullptr || value->empty()) return std::nullopt;
  char* end = nullptr;
  const long seconds = std::strtol(value->c_str(), &end, 10);
  if (end == value->c_str() || seconds < 0) return std::nullopt;
  return std::chrono::milliseconds{seconds * 1000};
}

/// Statuses where the server explicitly did NOT apply the request, so a
/// retry can never double-submit regardless of idempotency.
[[nodiscard]] bool statusIsRetryable(int status) noexcept {
  return status == 429 || status == 503;
}

/// Statuses the circuit breaker counts as server failure (a busy-but-alive
/// 429 is not one).
[[nodiscard]] bool statusIsServerFailure(int status) noexcept {
  return status == 500 || status == 502 || status == 503 || status == 504;
}

}  // namespace

ResilientClient::ResilientClient(std::string host, std::uint16_t port,
                                 ResilientClientOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      rng_(sim::Rng::substreamSeed(options.seed, 0x7e71)),
      winnerLatenciesMs_(128, -1) {}

CircuitBreaker& ResilientClient::breakerFor(const std::string& target) {
  auto& slot = breakers_[pathOf(target)];
  if (!slot) slot = std::make_unique<CircuitBreaker>(options_.breaker);
  return *slot;
}

CircuitBreaker::State ResilientClient::breakerState(
    const std::string& target) {
  return breakerFor(target).state();
}

Client& ResilientClient::connection() {
  if (!client_) {
    client_.emplace(host_, port_,
                    ClientOptions{options_.timeout, options_.connectTimeout});
  }
  return *client_;
}

std::chrono::milliseconds ResilientClient::hedgeDelay() const {
  std::vector<std::int64_t> samples;
  samples.reserve(winnerLatenciesMs_.size());
  for (const std::int64_t v : winnerLatenciesMs_) {
    if (v >= 0) samples.push_back(v);
  }
  if (samples.empty()) return options_.hedgeFloor;
  std::sort(samples.begin(), samples.end());
  const double rank =
      options_.hedgeQuantile * static_cast<double>(samples.size() - 1);
  const std::int64_t quantile =
      samples[static_cast<std::size_t>(rank + 0.5)];
  return std::max(options_.hedgeFloor, std::chrono::milliseconds{quantile});
}

void ResilientClient::recordWinnerLatency(std::chrono::milliseconds latency) {
  winnerLatenciesMs_[winnerHead_] = latency.count();
  winnerHead_ = (winnerHead_ + 1) % winnerLatenciesMs_.size();
}

HttpClientResponse ResilientClient::hedgedAttempt(const std::string& method,
                                                  const std::string& target,
                                                  const std::string& body,
                                                  const HttpHeaders& headers,
                                                  bool idempotent) {
  // Both runners use their own connection: a straggler may outlive this
  // call, so it must not share the member keep-alive client. The shared
  // state is reference-counted for the same reason.
  struct Race {
    std::mutex mu;
    std::condition_variable cv;
    bool won = false;
    bool winnerIsHedge = false;
    int launched = 1;
    int finished = 0;
    HttpClientResponse response;
    std::exception_ptr firstError;
  };
  auto race = std::make_shared<Race>();
  const std::string host = host_;
  const std::uint16_t port = port_;
  const ClientOptions clientOptions{options_.timeout, options_.connectTimeout};
  const auto runner = [race, host, port, clientOptions, method, target, body,
                       headers, idempotent](bool isHedge) {
    try {
      Client client(host, port, clientOptions);
      HttpClientResponse response =
          client.request(method, target, body, headers, idempotent);
      std::lock_guard<std::mutex> lock(race->mu);
      if (!race->won) {
        race->won = true;
        race->winnerIsHedge = isHedge;
        race->response = std::move(response);
      }
      ++race->finished;
      race->cv.notify_all();
    } catch (...) {
      std::lock_guard<std::mutex> lock(race->mu);
      if (!race->firstError) race->firstError = std::current_exception();
      ++race->finished;
      race->cv.notify_all();
    }
  };

  const auto start = std::chrono::steady_clock::now();
  std::thread(runner, /*isHedge=*/false).detach();

  std::unique_lock<std::mutex> lock(race->mu);
  const auto primarySettled = [&race] {
    return race->won || race->finished >= race->launched;
  };
  if (!race->cv.wait_for(lock, hedgeDelay(), primarySettled)) {
    race->launched = 2;
    ++stats_.hedges;
    std::thread(runner, /*isHedge=*/true).detach();
  }
  race->cv.wait(lock, [&race] {
    return race->won || race->finished >= race->launched;
  });
  if (race->won) {
    if (race->winnerIsHedge) ++stats_.hedgeWins;
    recordWinnerLatency(std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start));
    return std::move(race->response);
  }
  std::rethrow_exception(race->firstError);
}

HttpClientResponse ResilientClient::oneAttempt(const std::string& method,
                                               const std::string& target,
                                               const std::string& body,
                                               const HttpHeaders& headers,
                                               bool idempotent) {
  if (options_.hedging && idempotent) {
    return hedgedAttempt(method, target, body, headers, idempotent);
  }
  return connection().request(method, target, body, headers, idempotent);
}

ResilientClient::Result ResilientClient::request(const std::string& method,
                                                 const std::string& target,
                                                 const std::string& body,
                                                 const HttpHeaders& headers,
                                                 bool idempotent) {
  CircuitBreaker& breaker = breakerFor(target);
  const int maxAttempts = std::max(1, options_.retry.maxAttempts);
  std::chrono::milliseconds backoff = options_.retry.baseBackoff;
  std::string lastError;
  int attempt = 0;
  while (attempt < maxAttempts) {
    if (!breaker.allow()) {
      ++stats_.breakerShortCircuits;
      return engine::EvalError{
          engine::EvalErrorCode::kUnavailable,
          "circuit breaker open for " + pathOf(target),
          /*transient=*/true, /*attempts=*/attempt};
    }
    ++attempt;
    ++stats_.attempts;
    try {
      HttpClientResponse response =
          oneAttempt(method, target, body, headers, idempotent);
      breaker.record(!statusIsServerFailure(response.status));
      if (statusIsRetryable(response.status) && attempt < maxAttempts) {
        backoff = nextBackoff(options_.retry, backoff, rng_);
        std::chrono::milliseconds wait = backoff;
        if (options_.retry.honorRetryAfter) {
          if (const auto retryAfter = retryAfterOf(response)) {
            wait = std::min(*retryAfter, options_.retry.maxRetryAfter);
            ++stats_.retryAfterHonored;
          }
        }
        ++stats_.retries;
        std::this_thread::sleep_for(wait);
        continue;
      }
      return response;
    } catch (const TransportError& error) {
      breaker.record(false);
      lastError = std::string(error.stageName()) + ": " + error.what();
      if (attempt >= maxAttempts || !error.safeToRetry(idempotent)) {
        return engine::EvalError{engine::EvalErrorCode::kUnavailable,
                                 lastError, /*transient=*/true,
                                 /*attempts=*/attempt};
      }
      ++stats_.retries;
      backoff = nextBackoff(options_.retry, backoff, rng_);
      std::this_thread::sleep_for(backoff);
    }
  }
  return engine::EvalError{
      engine::EvalErrorCode::kUnavailable,
      lastError.empty() ? "retry budget exhausted" : lastError,
      /*transient=*/true, /*attempts=*/attempt};
}

ResilientClient::Result ResilientClient::postStreaming(
    const std::string& target, const std::string& body,
    const std::function<void(std::string_view line)>& onLine) {
  CircuitBreaker& breaker = breakerFor(target);
  const int maxAttempts = std::max(1, options_.retry.maxAttempts);
  std::chrono::milliseconds backoff = options_.retry.baseBackoff;
  std::string lastError;
  int attempt = 0;
  // Client-side checkpoint: lines already handed to the caller. A retry
  // re-runs the (deterministic) search and skips this prefix, so the
  // caller's stream is gapless and duplicate-free.
  std::size_t delivered = 0;
  while (attempt < maxAttempts) {
    if (!breaker.allow()) {
      ++stats_.breakerShortCircuits;
      return engine::EvalError{
          engine::EvalErrorCode::kUnavailable,
          "circuit breaker open for " + pathOf(target),
          /*transient=*/true, /*attempts=*/attempt};
    }
    ++attempt;
    ++stats_.attempts;
    std::size_t seen = 0;
    try {
      HttpClientResponse response = connection().postStreaming(
          target, body, [&](std::string_view line) {
            if (++seen > delivered) {
              onLine(line);
              delivered = seen;
            }
          });
      breaker.record(!statusIsServerFailure(response.status));
      if (statusIsRetryable(response.status) && attempt < maxAttempts) {
        backoff = nextBackoff(options_.retry, backoff, rng_);
        std::chrono::milliseconds wait = backoff;
        if (options_.retry.honorRetryAfter) {
          if (const auto retryAfter = retryAfterOf(response)) {
            wait = std::min(*retryAfter, options_.retry.maxRetryAfter);
            ++stats_.retryAfterHonored;
          }
        }
        ++stats_.retries;
        std::this_thread::sleep_for(wait);
        continue;
      }
      return response;
    } catch (const TransportError& error) {
      breaker.record(false);
      lastError = std::string(error.stageName()) + ": " + error.what();
      // The search is pure, so replay-and-skip is always safe — except
      // when the server spoke garbage, which no retry will fix.
      if (attempt >= maxAttempts ||
          error.stage() == TransportError::Stage::kMalformed) {
        return engine::EvalError{engine::EvalErrorCode::kUnavailable,
                                 lastError, /*transient=*/true,
                                 /*attempts=*/attempt};
      }
      ++stats_.retries;
      backoff = nextBackoff(options_.retry, backoff, rng_);
      std::this_thread::sleep_for(backoff);
    }
  }
  return engine::EvalError{
      engine::EvalErrorCode::kUnavailable,
      lastError.empty() ? "retry budget exhausted" : lastError,
      /*transient=*/true, /*attempts=*/attempt};
}

}  // namespace stordep::service::resilience
