#include "service/resilience/chaos_proxy.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "sim/rng.hpp"

namespace stordep::service::resilience {

namespace {

void setRecvTimeout(int fd, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/// Close with an RST instead of an orderly FIN (SO_LINGER with zero
/// timeout discards the send queue and sends a reset).
void resetClose(int fd) {
  linger lin{};
  lin.l_onoff = 1;
  lin.l_linger = 0;
  setsockopt(fd, SOL_SOCKET, SO_LINGER, &lin, sizeof(lin));
  close(fd);
}

/// Arm a reset without releasing the descriptor: discard the send queue
/// (SO_LINGER zero) and shut both directions down so the peer sees the
/// connection die immediately, while the fd NUMBER stays allocated. Pump
/// threads must never close() — the sibling pump may be between recv()
/// calls on the same number, and in a single-process harness the kernel
/// would recycle it for an unrelated client/server socket, crossing
/// responses between requests. The deferred close in reapFinished()/stop()
/// (after both pumps are joined) sends the actual RST.
void armReset(int fd) {
  linger lin{};
  lin.l_onoff = 1;
  lin.l_linger = 0;
  setsockopt(fd, SOL_SOCKET, SO_LINGER, &lin, sizeof(lin));
  shutdown(fd, SHUT_RDWR);
}

bool writeAllBytes(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

const char* toString(ChaosFault fault) noexcept {
  switch (fault) {
    case ChaosFault::kNone:
      return "none";
    case ChaosFault::kConnectReset:
      return "connect-reset";
    case ChaosFault::kAcceptStall:
      return "accept-stall";
    case ChaosFault::kTornWrite:
      return "torn-write";
    case ChaosFault::kTruncateResponse:
      return "truncate-response";
    case ChaosFault::kTrickle:
      return "trickle";
    case ChaosFault::kBlackhole:
      return "blackhole";
  }
  return "none";
}

struct ChaosProxy::Conn {
  std::uint64_t id = 0;
  int clientFd = -1;
  int upstreamFd = -1;
  ChaosDecision decision;
  std::thread requestPump;   // client -> upstream
  std::thread responsePump;  // upstream -> client
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> responseBytes{0};
};

ChaosDecision ChaosProxy::planFor(const ChaosOptions& options,
                                  std::uint64_t connId) {
  sim::Rng rng(sim::Rng::substreamSeed(options.seed, connId));
  const double u = rng.uniform();

  ChaosDecision out;
  out.connId = connId;

  // One draw walks the cumulative probabilities in a fixed order; the
  // fault parameter always comes from the SECOND draw of the substream, so
  // the schedule is stable under any re-weighting of later faults.
  double edge = 0.0;
  const auto hit = [&](double prob) {
    edge += prob;
    return u < edge;
  };
  if (hit(options.resetProb)) {
    out.fault = ChaosFault::kConnectReset;
    out.param = rng.uniformInt(
        static_cast<std::uint64_t>(options.resetAfterMaxBytes) + 1);
  } else if (hit(options.stallProb)) {
    out.fault = ChaosFault::kAcceptStall;
    out.param = static_cast<std::uint64_t>(options.stall.count());
  } else if (hit(options.tornWriteProb)) {
    out.fault = ChaosFault::kTornWrite;
    out.param = 1 + rng.uniformInt(
                        static_cast<std::uint64_t>(options.tornMaxChunk));
  } else if (hit(options.truncateProb)) {
    out.fault = ChaosFault::kTruncateResponse;
    out.param = 1 + rng.uniformInt(
                        static_cast<std::uint64_t>(options.truncateMaxBytes));
  } else if (hit(options.trickleProb)) {
    out.fault = ChaosFault::kTrickle;
    out.param = static_cast<std::uint64_t>(options.trickleBytes);
  } else if (hit(options.blackholeProb)) {
    out.fault = ChaosFault::kBlackhole;
    out.param = static_cast<std::uint64_t>(options.blackholeHold.count());
  } else {
    out.fault = ChaosFault::kNone;
  }
  out.applied = out.fault != ChaosFault::kNone;
  return out;
}

ChaosProxy::ChaosProxy(const std::string& upstreamHost,
                       std::uint16_t upstreamPort, ChaosOptions options)
    : options_(options),
      upstreamHost_(upstreamHost),
      upstreamPort_(upstreamPort) {
  listenFd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listenFd_ < 0) {
    throw std::runtime_error("chaos proxy: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(listenFd_, 64) != 0) {
    const std::string reason = std::strerror(errno);
    close(listenFd_);
    listenFd_ = -1;
    throw std::runtime_error("chaos proxy: bind/listen failed: " + reason);
  }
  socklen_t len = sizeof(addr);
  getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

ChaosProxy::~ChaosProxy() { stop(); }

void ChaosProxy::start() {
  if (acceptThread_.joinable()) return;
  acceptThread_ = std::thread([this] { acceptLoop(); });
}

void ChaosProxy::stop() {
  if (stop_.exchange(true)) {
    if (acceptThread_.joinable()) acceptThread_.join();
    return;
  }
  if (listenFd_ >= 0) {
    shutdown(listenFd_, SHUT_RDWR);
    close(listenFd_);
    listenFd_ = -1;
  }
  if (acceptThread_.joinable()) acceptThread_.join();
  std::vector<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.swap(conns_);
  }
  for (const auto& conn : conns) {
    if (conn->clientFd >= 0) shutdown(conn->clientFd, SHUT_RDWR);
    if (conn->upstreamFd >= 0) shutdown(conn->upstreamFd, SHUT_RDWR);
  }
  for (const auto& conn : conns) {
    if (conn->requestPump.joinable()) conn->requestPump.join();
    if (conn->responsePump.joinable()) conn->responsePump.join();
    if (conn->clientFd >= 0) close(conn->clientFd);
    if (conn->upstreamFd >= 0) close(conn->upstreamFd);
  }
}

bool ChaosProxy::consumeBudget(ChaosFault fault) {
  if (fault == ChaosFault::kNone) return false;
  int budget = -1;
  switch (fault) {
    case ChaosFault::kConnectReset:
      budget = options_.resetBudget;
      break;
    case ChaosFault::kAcceptStall:
      budget = options_.stallBudget;
      break;
    case ChaosFault::kTornWrite:
      budget = options_.tornWriteBudget;
      break;
    case ChaosFault::kTruncateResponse:
      budget = options_.truncateBudget;
      break;
    case ChaosFault::kTrickle:
      budget = options_.trickleBudget;
      break;
    case ChaosFault::kBlackhole:
      budget = options_.blackholeBudget;
      break;
    case ChaosFault::kNone:
      break;
  }
  auto& used = budgetUsed_[static_cast<std::size_t>(fault)];
  if (budget < 0) {
    used.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // Reserve one unit; roll back when over budget.
  const int prior = used.fetch_add(1, std::memory_order_relaxed);
  if (prior >= budget) {
    used.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void ChaosProxy::acceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    const int clientFd = accept4(listenFd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (clientFd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop()
    }
    const std::uint64_t connId =
        nextConnId_.fetch_add(1, std::memory_order_relaxed);
    ChaosDecision decision = planFor(options_, connId);
    if (decision.applied && !consumeBudget(decision.fault)) {
      decision.applied = false;
    }

    auto conn = std::make_unique<Conn>();
    conn->id = connId;
    conn->clientFd = clientFd;
    conn->decision = decision;

    // Connect upstream. A failure here (server draining/stopped) behaves
    // like a reset from the client's point of view.
    const int upFd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in up{};
    up.sin_family = AF_INET;
    up.sin_port = htons(upstreamPort_);
    inet_pton(AF_INET, upstreamHost_.c_str(), &up.sin_addr);
    if (upFd < 0 ||
        ::connect(upFd, reinterpret_cast<sockaddr*>(&up), sizeof(up)) != 0) {
      if (upFd >= 0) close(upFd);
      resetClose(clientFd);
      conn->clientFd = -1;
      std::lock_guard<std::mutex> lock(mu_);
      decisions_.push_back(decision);
      continue;
    }
    const int one = 1;
    setsockopt(clientFd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    setsockopt(upFd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Short receive timeouts let the pump threads poll the stop flag.
    setRecvTimeout(clientFd, std::chrono::milliseconds{50});
    setRecvTimeout(upFd, std::chrono::milliseconds{50});
    conn->upstreamFd = upFd;

    {
      std::lock_guard<std::mutex> lock(mu_);
      decisions_.push_back(decision);
    }
    runConn(*conn);
    {
      std::lock_guard<std::mutex> lock(mu_);
      conns_.push_back(std::move(conn));
    }
    reapFinished();
  }
}

void ChaosProxy::runConn(Conn& conn) {
  conn.requestPump = std::thread([this, &conn] {
    pump(conn, conn.clientFd, conn.upstreamFd, /*isResponseDirection=*/false);
  });
  conn.responsePump = std::thread([this, &conn] {
    pump(conn, conn.upstreamFd, conn.clientFd, /*isResponseDirection=*/true);
  });
}

void ChaosProxy::pump(Conn& conn, int fromFd, int toFd,
                      bool isResponseDirection) {
  const ChaosFault fault =
      conn.decision.applied ? conn.decision.fault : ChaosFault::kNone;
  const std::uint64_t param = conn.decision.param;

  if (isResponseDirection && fault == ChaosFault::kAcceptStall) {
    // Stall before any response byte is forwarded; the client's request
    // sits in kernel buffers meanwhile, so this injects pure latency.
    std::this_thread::sleep_for(options_.stall);
  }
  if (isResponseDirection && fault == ChaosFault::kConnectReset &&
      param == 0) {
    armReset(toFd);
    shutdown(fromFd, SHUT_RDWR);
    conn.done.store(true, std::memory_order_release);
    return;
  }

  std::uint64_t forwarded = 0;
  char buf[8 * 1024];
  bool peerGone = false;
  while (!stop_.load(std::memory_order_relaxed) && !peerGone &&
         !conn.done.load(std::memory_order_acquire)) {
    const ssize_t n = recv(fromFd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // poll tick
      break;
    }
    if (n == 0) {
      // Orderly EOF from the source: half-close the sink so the peer sees
      // the same framing, then let the other pump drain.
      shutdown(toFd, SHUT_WR);
      break;
    }
    const char* data = buf;
    std::size_t size = static_cast<std::size_t>(n);

    if (isResponseDirection) {
      switch (fault) {
        case ChaosFault::kBlackhole: {
          // Swallow the bytes; after the hold, kill both sides.
          forwarded += size;
          std::this_thread::sleep_for(options_.blackholeHold);
          conn.done.store(true, std::memory_order_release);
          shutdown(toFd, SHUT_RDWR);
          shutdown(fromFd, SHUT_RDWR);
          return;
        }
        case ChaosFault::kConnectReset: {
          const std::uint64_t keep =
              forwarded >= param ? 0 : param - forwarded;
          const std::size_t pass =
              static_cast<std::size_t>(std::min<std::uint64_t>(keep, size));
          if (pass > 0) writeAllBytes(toFd, data, pass);
          forwarded += pass;
          if (forwarded >= param) {
            armReset(toFd);
            shutdown(fromFd, SHUT_RDWR);
            conn.done.store(true, std::memory_order_release);
            return;
          }
          continue;
        }
        case ChaosFault::kTruncateResponse: {
          const std::uint64_t keep =
              forwarded >= param ? 0 : param - forwarded;
          const std::size_t pass =
              static_cast<std::size_t>(std::min<std::uint64_t>(keep, size));
          if (pass > 0) writeAllBytes(toFd, data, pass);
          forwarded += pass;
          if (forwarded >= param) {
            shutdown(toFd, SHUT_RDWR);  // orderly close: torn response
            shutdown(fromFd, SHUT_RDWR);
            conn.done.store(true, std::memory_order_release);
            return;
          }
          continue;
        }
        case ChaosFault::kTrickle: {
          const std::size_t step = param == 0 ? 1
                                              : static_cast<std::size_t>(param);
          std::size_t off = 0;
          while (off < size) {
            const std::size_t chunk = std::min(step, size - off);
            if (!writeAllBytes(toFd, data + off, chunk)) {
              peerGone = true;
              break;
            }
            off += chunk;
            std::this_thread::sleep_for(options_.trickleDelay);
          }
          forwarded += size;
          continue;
        }
        default:
          break;
      }
    }

    // Torn writes apply in both directions (requests exercise the server's
    // torn-read parser, responses the client's) for the first
    // tornBytesCap bytes.
    if (fault == ChaosFault::kTornWrite && forwarded < options_.tornBytesCap) {
      const std::size_t step =
          param == 0 ? 1 : static_cast<std::size_t>(param);
      std::size_t off = 0;
      while (off < size) {
        const std::size_t chunk = std::min(step, size - off);
        if (!writeAllBytes(toFd, data + off, chunk)) {
          peerGone = true;
          break;
        }
        off += chunk;
        std::this_thread::sleep_for(options_.tornDelay);
      }
      forwarded += size;
      continue;
    }

    if (!writeAllBytes(toFd, data, size)) {
      peerGone = true;
      break;
    }
    forwarded += size;
  }
  if (isResponseDirection) {
    conn.responseBytes.store(forwarded, std::memory_order_relaxed);
    conn.done.store(true, std::memory_order_release);
  }
}

void ChaosProxy::reapFinished() {
  std::vector<std::unique_ptr<Conn>> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& conn : finished) {
    if (conn->clientFd >= 0) shutdown(conn->clientFd, SHUT_RDWR);
    if (conn->upstreamFd >= 0) shutdown(conn->upstreamFd, SHUT_RDWR);
    if (conn->requestPump.joinable()) conn->requestPump.join();
    if (conn->responsePump.joinable()) conn->responsePump.join();
    if (conn->clientFd >= 0) close(conn->clientFd);
    if (conn->upstreamFd >= 0) close(conn->upstreamFd);
  }
}

ChaosProxy::Stats ChaosProxy::stats() const {
  Stats out;
  std::lock_guard<std::mutex> lock(mu_);
  out.connections = decisions_.size();
  for (const ChaosDecision& d : decisions_) {
    if (d.applied && d.fault != ChaosFault::kNone) {
      ++out.faultsInjected;
      ++out.byFault[static_cast<std::size_t>(d.fault)];
    }
  }
  return out;
}

std::vector<ChaosDecision> ChaosProxy::decisions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return decisions_;
}

}  // namespace stordep::service::resilience
