#include "service/resilience/retry.hpp"

#include <algorithm>

#include "sim/rng.hpp"

namespace stordep::service::resilience {

std::chrono::milliseconds nextBackoff(const RetryPolicy& policy,
                                      std::chrono::milliseconds previous,
                                      sim::Rng& rng) {
  const double base = static_cast<double>(
      std::max<std::int64_t>(1, policy.baseBackoff.count()));
  const double prev =
      std::max(base, static_cast<double>(previous.count()));
  const double drawn = rng.uniform(base, prev * 3.0);
  const auto capped = std::min<std::int64_t>(
      policy.maxBackoff.count(), static_cast<std::int64_t>(drawn));
  return std::chrono::milliseconds{std::max<std::int64_t>(1, capped)};
}

const char* toString(CircuitBreaker::State state) noexcept {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "closed";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(options),
      outcomes_(std::max<std::size_t>(1, options.window), false) {}

double CircuitBreaker::failureRateLocked() const {
  if (filled_ == 0) return 0.0;
  std::size_t failures = 0;
  for (std::size_t i = 0; i < filled_; ++i) {
    if (outcomes_[i]) ++failures;
  }
  return static_cast<double>(failures) / static_cast<double>(filled_);
}

bool CircuitBreaker::allow(std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now - openedAt_ < options_.openFor) {
        ++shortCircuits_;
        return false;
      }
      state_ = State::kHalfOpen;
      probesInFlight_ = 0;
      [[fallthrough]];
    case State::kHalfOpen:
      if (probesInFlight_ >= options_.halfOpenProbes) {
        ++shortCircuits_;
        return false;
      }
      ++probesInFlight_;
      return true;
  }
  return true;
}

void CircuitBreaker::record(bool success,
                            std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    if (success) {
      // Probe succeeded: close and start from a clean window.
      state_ = State::kClosed;
      head_ = 0;
      filled_ = 0;
      probesInFlight_ = 0;
      return;
    }
    state_ = State::kOpen;
    openedAt_ = now;
    probesInFlight_ = 0;
    return;
  }
  if (state_ == State::kOpen) return;  // late result from before opening

  outcomes_[head_] = !success;
  head_ = (head_ + 1) % outcomes_.size();
  filled_ = std::min(filled_ + 1, outcomes_.size());
  if (filled_ >= options_.minSamples &&
      failureRateLocked() >= options_.failureRateToOpen) {
    state_ = State::kOpen;
    openedAt_ = now;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

std::uint64_t CircuitBreaker::shortCircuits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shortCircuits_;
}

double CircuitBreaker::failureRate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failureRateLocked();
}

}  // namespace stordep::service::resilience
