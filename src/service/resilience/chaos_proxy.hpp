// chaos_proxy.hpp — deterministic socket-layer fault injection.
//
// The socket-layer sibling of engine::FaultInjector: a small in-process TCP
// proxy that sits between a client and the evaluation server and injects
// the failures real networks produce — connection resets, accept stalls,
// byte-level torn writes, response truncation, slow-loris trickle, and
// black-hole timeouts — so the client's retry/hedging logic and the
// server's torn-read handling are exercised end to end.
//
// Determinism is the point. Each accepted connection gets a sequential
// connId, and the fault planned for it is a PURE function of
// (options.seed, connId): planFor() seeds a fresh sim::Rng with
// Rng::substreamSeed(seed, connId) and draws the fault and its parameter
// from that substream. The same seed therefore reproduces the same fault
// schedule regardless of thread interleaving, and any observer can recompute
// the schedule after the fact to audit what the proxy actually did
// (bench_chaos does exactly this).
//
// Budgets bound the blast radius: each fault kind has an optional budget;
// once spent, later connections planned for that fault pass through clean
// (the decision is recorded with applied=false so the audit trail stays
// complete).
//
// Test infrastructure: blocking sockets, two pump threads per connection,
// not tuned for throughput.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace stordep::service::resilience {

enum class ChaosFault {
  kNone = 0,
  kConnectReset,      ///< RST the client after forwarding N response bytes
  kAcceptStall,       ///< delay before the proxy starts forwarding
  kTornWrite,         ///< forward in tiny chunks with sub-ms pauses
  kTruncateResponse,  ///< forward N response bytes, then FIN-close
  kTrickle,           ///< slow-loris: small chunks, fixed pause each
  kBlackhole,         ///< swallow the response, hold, then close
};
inline constexpr int kChaosFaultKinds = 7;

[[nodiscard]] const char* toString(ChaosFault fault) noexcept;

struct ChaosOptions {
  std::uint64_t seed = 1;

  // Per-fault injection probabilities; evaluated in declaration order from
  // one uniform draw, so they must sum to <= 1 (the remainder is kNone).
  double resetProb = 0.0;
  double stallProb = 0.0;
  double tornWriteProb = 0.0;
  double truncateProb = 0.0;
  double trickleProb = 0.0;
  double blackholeProb = 0.0;

  // Per-fault budgets: at most this many connections actually get the
  // fault; -1 = unlimited. Spent budgets downgrade to pass-through.
  int resetBudget = -1;
  int stallBudget = -1;
  int tornWriteBudget = -1;
  int truncateBudget = -1;
  int trickleBudget = -1;
  int blackholeBudget = -1;

  std::chrono::milliseconds stall{50};
  std::chrono::milliseconds blackholeHold{1500};
  /// Reset fires after uniform[0, resetAfterMaxBytes] response bytes
  /// (0 = reset before any response byte).
  std::size_t resetAfterMaxBytes = 128;
  /// Truncation forwards uniform[1, truncateMaxBytes] response bytes.
  std::size_t truncateMaxBytes = 256;
  /// Torn writes use chunks of uniform[1, tornMaxChunk] bytes...
  std::size_t tornMaxChunk = 7;
  std::chrono::microseconds tornDelay{200};
  /// ...but only for the first tornBytesCap bytes per direction, so a
  /// keep-alive connection does not stay slow forever.
  std::size_t tornBytesCap = 4096;
  std::size_t trickleBytes = 64;
  std::chrono::milliseconds trickleDelay{1};
};

/// What the proxy decided for one connection. `param` is fault-specific
/// (byte thresholds, chunk sizes, delays in ms); `applied` is false when a
/// spent budget downgraded the planned fault to pass-through.
struct ChaosDecision {
  std::uint64_t connId = 0;
  ChaosFault fault = ChaosFault::kNone;
  std::uint64_t param = 0;
  bool applied = false;
};

class ChaosProxy {
 public:
  /// Plans the fault for `connId` — a pure function of (options.seed,
  /// connId); budgets are NOT consulted (`applied` mirrors fault != kNone).
  /// Exposed so tests and bench_chaos can recompute and audit the schedule.
  [[nodiscard]] static ChaosDecision planFor(const ChaosOptions& options,
                                             std::uint64_t connId);

  /// Proxies 127.0.0.1:<port()> -> upstreamHost:upstreamPort. The listener
  /// is bound in the constructor (port() is valid immediately); the accept
  /// loop starts with start().
  ChaosProxy(const std::string& upstreamHost, std::uint16_t upstreamPort,
             ChaosOptions options);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  void start();
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const ChaosOptions& options() const noexcept {
    return options_;
  }

  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t faultsInjected = 0;  ///< decisions with applied && != kNone
    std::array<std::uint64_t, kChaosFaultKinds> byFault{};
  };
  [[nodiscard]] Stats stats() const;

  /// Every decision made so far, in connId order — the audit trail.
  [[nodiscard]] std::vector<ChaosDecision> decisions() const;

 private:
  struct Conn;

  void acceptLoop();
  void runConn(Conn& conn);
  void pump(Conn& conn, int fromFd, int toFd, bool isResponseDirection);
  void reapFinished();
  [[nodiscard]] bool consumeBudget(ChaosFault fault);

  ChaosOptions options_;
  std::string upstreamHost_;
  std::uint16_t upstreamPort_ = 0;
  std::uint16_t port_ = 0;
  int listenFd_ = -1;
  std::atomic<bool> stop_{false};
  std::thread acceptThread_;

  std::atomic<std::uint64_t> nextConnId_{0};
  std::array<std::atomic<int>, kChaosFaultKinds> budgetUsed_{};

  mutable std::mutex mu_;
  std::vector<ChaosDecision> decisions_;
  std::vector<std::unique_ptr<Conn>> conns_;
};

}  // namespace stordep::service::resilience
