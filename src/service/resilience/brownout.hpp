// brownout.hpp — tiered load-shedding state machine for the server.
//
// Under sustained overload or repeated batcher failures the server should
// degrade in steps rather than fall over: each tier sheds the most
// expensive remaining work first, and recovery walks back down with
// hysteresis so the server does not flap at the boundary.
//
//   tier 0 — normal operation.
//   tier 1 — shed stochastic envelopes: /v1/evaluate still answers, but
//            Monte-Carlo "stochastic" sections are replaced with a
//            structured unavailable error (they dominate per-request cost).
//   tier 2 — cache-hits-only: cold /v1/evaluate requests and all
//            /v1/search requests get 503 + Retry-After; warm requests are
//            served from the EvalCache.
//   tier 3 — full drain: every API request gets 503 + Retry-After.
//
// The controller is pure logic driven by the server's event-loop tick: it
// sees a pressure sample in [0, 1] (queue occupancy) and the number of
// failed waves since the last tick, and escalates after `ticksToEscalate`
// consecutive hot ticks (or a burst of failed waves), de-escalates one
// tier after `ticksToRecover` consecutive cool ticks. No clock, no
// threads — trivially unit-testable; the caller provides the cadence.
#pragma once

#include <cstdint>

namespace stordep::service::resilience {

struct BrownoutOptions {
  /// Pressure at or above this counts as a hot tick.
  double enterPressure = 0.75;
  /// Pressure at or below this counts as a cool tick; in between resets
  /// both streaks (hysteresis band).
  double exitPressure = 0.25;
  int ticksToEscalate = 3;
  int ticksToRecover = 5;
  /// Failed waves within one tick that count as an immediate hot tick
  /// (batcher trouble escalates even when the queue looks shallow).
  std::uint64_t failedWavesToEscalate = 3;
  int maxTier = 3;
};

class BrownoutController {
 public:
  explicit BrownoutController(BrownoutOptions options = {})
      : options_(options) {}

  /// One observation; returns the (possibly new) tier. `queuePressure` is
  /// the admission queue occupancy in [0, 1]; `failedWavesDelta` the waves
  /// with >= 1 failed slot since the previous tick.
  int tick(double queuePressure, std::uint64_t failedWavesDelta);

  [[nodiscard]] int tier() const noexcept {
    return forcedTier_ >= 0 ? forcedTier_ : tier_;
  }
  [[nodiscard]] std::uint64_t transitions() const noexcept {
    return transitions_;
  }

  /// Pins the tier (tests, operator override); -1 releases the pin. A pin
  /// change counts as a transition so it is observable in /metrics.
  void force(int tier) noexcept;

 private:
  BrownoutOptions options_;
  int tier_ = 0;
  int forcedTier_ = -1;
  int hotStreak_ = 0;
  int coolStreak_ = 0;
  std::uint64_t transitions_ = 0;
};

}  // namespace stordep::service::resilience
