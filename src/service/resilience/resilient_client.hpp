// resilient_client.hpp — retrying, hedging, circuit-breaking HTTP client.
//
// Wraps the minimal blocking service::Client with the policies a client of
// an unreliable network actually needs, and converts transport failures
// into the engine's structured error taxonomy instead of exceptions:
// request() returns engine::Expected<HttpClientResponse>, where the error
// arm is an EvalError with code kUnavailable (transient, attempts filled
// in) — so callers handle a dead server exactly like any other engine
// failure value.
//
// Policies, in the order they apply:
//
//   * Circuit breaker (per request path): transport failures and 5xx
//     responses count against a sliding window; an open breaker fails
//     fast with kUnavailable "circuit breaker open" without touching the
//     network. 429s count as successes — a busy server is alive.
//
//   * Retry with decorrelated-jitter backoff: transport errors retry only
//     when TransportError::safeToRetry(idempotent) says the attempt
//     cannot have been applied server-side. 429/503 *responses* always
//     retry (the server explicitly did not apply the request), honoring
//     Retry-After when present (capped).
//
//   * Hedging (opt-in, idempotent requests only): when the primary
//     attempt is slower than an adaptive threshold — max(hedgeFloor, the
//     observed p95 of recent winner latencies) — a second identical
//     request races it on a fresh connection; first completion wins and
//     stragglers are abandoned.
//
//   * Streaming resume: postStreaming() tracks how many NDJSON lines were
//     delivered to the caller; a mid-stream transport failure re-issues
//     the (deterministic) search and skips the lines already delivered —
//     a client-side checkpoint, so the caller sees a gapless,
//     duplicate-free stream instead of a blind replay.
//
// Randomness (jitter) comes from a seeded sim::Rng, so a fixed-seed chaos
// run replays the same retry schedule.
//
// Thread-safety: one ResilientClient per thread, like the base Client.
// (The hedging worker threads are internal and self-contained.)
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/errors.hpp"
#include "service/client.hpp"
#include "service/resilience/retry.hpp"
#include "sim/rng.hpp"

namespace stordep::service::resilience {

struct ResilientClientOptions {
  RetryPolicy retry;
  CircuitBreakerOptions breaker;
  bool hedging = false;
  /// Hedge launch threshold: max(hedgeFloor, observed winner-latency
  /// quantile). The floor keeps cold starts from hedging everything.
  std::chrono::milliseconds hedgeFloor{20};
  double hedgeQuantile = 0.95;
  /// Socket-level send/recv timeout per attempt.
  std::chrono::milliseconds timeout{30'000};
  /// Bound on TCP connection establishment per attempt (0 = blocking
  /// connect; see ClientOptions::connectTimeout). The cluster router sets
  /// this so forwarding to a black-holed owner fails fast.
  std::chrono::milliseconds connectTimeout{0};
  std::uint64_t seed = 1;
};

class ResilientClient {
 public:
  using Result = engine::Expected<HttpClientResponse>;

  ResilientClient(std::string host, std::uint16_t port,
                  ResilientClientOptions options = {});

  ResilientClient(const ResilientClient&) = delete;
  ResilientClient& operator=(const ResilientClient&) = delete;

  /// A full policy-managed exchange. Never throws on transport failure;
  /// returns kUnavailable (transient) instead. Non-transport HTTP error
  /// responses (4xx/5xx) are returned as values — status classification
  /// is the caller's business.
  Result request(const std::string& method, const std::string& target,
                 const std::string& body = "", const HttpHeaders& headers = {},
                 bool idempotent = true);

  Result get(const std::string& target) { return request("GET", target); }
  Result post(const std::string& target, const std::string& body,
              bool idempotent = true) {
    return request("POST", target, body, {}, idempotent);
  }

  /// Streaming POST with gapless resume (see file comment). `onLine` sees
  /// each NDJSON line exactly once even across mid-stream retries.
  Result postStreaming(
      const std::string& target, const std::string& body,
      const std::function<void(std::string_view line)>& onLine);

  struct Stats {
    std::uint64_t attempts = 0;  ///< network round trips started
    std::uint64_t retries = 0;
    std::uint64_t hedges = 0;
    std::uint64_t hedgeWins = 0;
    std::uint64_t breakerShortCircuits = 0;
    std::uint64_t retryAfterHonored = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Breaker state for a target path (kClosed if never used).
  [[nodiscard]] CircuitBreaker::State breakerState(const std::string& target);

 private:
  CircuitBreaker& breakerFor(const std::string& target);
  HttpClientResponse oneAttempt(const std::string& method,
                                const std::string& target,
                                const std::string& body,
                                const HttpHeaders& headers, bool idempotent);
  HttpClientResponse hedgedAttempt(const std::string& method,
                                   const std::string& target,
                                   const std::string& body,
                                   const HttpHeaders& headers,
                                   bool idempotent);
  [[nodiscard]] std::chrono::milliseconds hedgeDelay() const;
  void recordWinnerLatency(std::chrono::milliseconds latency);
  Client& connection();

  std::string host_;
  std::uint16_t port_ = 0;
  ResilientClientOptions options_;
  sim::Rng rng_;
  std::optional<Client> client_;  // lazy: ctor must not require the server
  std::map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;
  std::vector<std::int64_t> winnerLatenciesMs_;  // ring, newest overwrites
  std::size_t winnerHead_ = 0;
  Stats stats_;
};

}  // namespace stordep::service::resilience
