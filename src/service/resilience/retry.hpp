// retry.hpp — retry pacing and circuit breaking for the resilient client.
//
// Two small, independently testable pieces:
//
//   * RetryPolicy / nextBackoff — capped exponential backoff with
//     decorrelated jitter (next = min(cap, uniform[base, prev*3))), the
//     AWS-architecture-blog variant that both spreads retries and grows
//     the mean interval. Deterministic given the caller's sim::Rng, so
//     chaos runs replay byte-identically.
//
//   * CircuitBreaker — the classic closed / open / half-open machine over
//     a sliding outcome window. Closed counts failures in a ring of the
//     last `window` outcomes and opens once `minSamples` outcomes exist
//     and the failure rate reaches `failureRateToOpen`. Open fails fast
//     (allow() == false) until `openFor` has elapsed, then half-open
//     admits `halfOpenProbes` probes: one success closes the breaker and
//     clears the window, one failure reopens it. Time is passed in by the
//     caller so unit tests can drive transitions without sleeping.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace stordep::sim {
class Rng;
}

namespace stordep::service::resilience {

struct RetryPolicy {
  int maxAttempts = 4;  ///< total tries, including the first
  std::chrono::milliseconds baseBackoff{10};
  std::chrono::milliseconds maxBackoff{1000};
  /// Honor a server-provided Retry-After (seconds) instead of the computed
  /// backoff, capped at maxRetryAfter.
  bool honorRetryAfter = true;
  std::chrono::milliseconds maxRetryAfter{5000};
};

/// The delay before the next attempt, given the previous delay (pass
/// baseBackoff for the first retry). Decorrelated jitter, capped.
[[nodiscard]] std::chrono::milliseconds nextBackoff(
    const RetryPolicy& policy, std::chrono::milliseconds previous,
    sim::Rng& rng);

struct CircuitBreakerOptions {
  std::size_t window = 16;      ///< sliding outcome window size
  std::size_t minSamples = 8;   ///< outcomes needed before opening
  double failureRateToOpen = 0.5;
  std::chrono::milliseconds openFor{1000};
  int halfOpenProbes = 1;
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerOptions options = {});

  /// Whether a request may proceed now. Transitions open -> half-open when
  /// the open period has elapsed. A true return in half-open consumes a
  /// probe slot; the caller must follow up with record().
  [[nodiscard]] bool allow(
      std::chrono::steady_clock::time_point now =
          std::chrono::steady_clock::now());

  /// Reports the outcome of an allowed request.
  void record(bool success,
              std::chrono::steady_clock::time_point now =
                  std::chrono::steady_clock::now());

  [[nodiscard]] State state() const;
  /// allow() == false decisions — the fail-fast count.
  [[nodiscard]] std::uint64_t shortCircuits() const;
  [[nodiscard]] double failureRate() const;

 private:
  [[nodiscard]] double failureRateLocked() const;

  CircuitBreakerOptions options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  std::vector<bool> outcomes_;  // ring: true = failure
  std::size_t head_ = 0;
  std::size_t filled_ = 0;
  std::chrono::steady_clock::time_point openedAt_{};
  int probesInFlight_ = 0;
  std::uint64_t shortCircuits_ = 0;
};

[[nodiscard]] const char* toString(CircuitBreaker::State state) noexcept;

}  // namespace stordep::service::resilience
