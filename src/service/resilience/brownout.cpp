#include "service/resilience/brownout.hpp"

#include <algorithm>

namespace stordep::service::resilience {

int BrownoutController::tick(double queuePressure,
                             std::uint64_t failedWavesDelta) {
  const bool hot = queuePressure >= options_.enterPressure ||
                   failedWavesDelta >= options_.failedWavesToEscalate;
  const bool cool =
      queuePressure <= options_.exitPressure && failedWavesDelta == 0;

  if (hot) {
    ++hotStreak_;
    coolStreak_ = 0;
    if (hotStreak_ >= options_.ticksToEscalate && tier_ < options_.maxTier) {
      ++tier_;
      ++transitions_;
      hotStreak_ = 0;
    }
  } else if (cool) {
    ++coolStreak_;
    hotStreak_ = 0;
    if (coolStreak_ >= options_.ticksToRecover && tier_ > 0) {
      --tier_;
      ++transitions_;
      coolStreak_ = 0;
    }
  } else {
    // Inside the hysteresis band: hold the tier, restart both streaks.
    hotStreak_ = 0;
    coolStreak_ = 0;
  }
  return tier();
}

void BrownoutController::force(int tier) noexcept {
  const int clamped =
      tier < 0 ? -1 : std::min(tier, options_.maxTier);
  if (clamped != forcedTier_) {
    forcedTier_ = clamped;
    ++transitions_;
    hotStreak_ = 0;
    coolStreak_ = 0;
  }
}

}  // namespace stordep::service::resilience
