#include "service/http.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <optional>

namespace stordep::service {

namespace {

[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

[[nodiscard]] std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// "name: value" → appended to `headers`; false on a malformed line.
bool parseHeaderLine(std::string_view line, HttpHeaders& headers) {
  const std::size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  const std::string_view name = line.substr(0, colon);
  // Field names are tokens: no spaces (a space before the colon is the
  // classic request-smuggling vector, so it is an error, not a trim).
  for (const char c : name) {
    if (c == ' ' || c == '\t') return false;
  }
  headers.emplace_back(std::string(name),
                       std::string(trim(line.substr(colon + 1))));
  return true;
}

/// Strict base-10 Content-Length; nullopt on anything else.
[[nodiscard]] std::optional<std::uint64_t> parseContentLength(
    std::string_view text) {
  if (text.empty() || text.size() > 18) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

/// Connection semantics shared by requests and responses.
[[nodiscard]] bool computeKeepAlive(const HttpHeaders& headers,
                                    int versionMinor) noexcept {
  const std::string* connection = findHeader(headers, "connection");
  if (connection != nullptr) {
    if (iequals(*connection, "close")) return false;
    if (iequals(*connection, "keep-alive")) return true;
  }
  return versionMinor >= 1;
}

}  // namespace

const std::string* findHeader(const HttpHeaders& headers,
                              std::string_view name) noexcept {
  for (const auto& [key, value] : headers) {
    if (iequals(key, name)) return &value;
  }
  return nullptr;
}

bool HttpRequest::keepAlive() const noexcept {
  return computeKeepAlive(headers, versionMinor);
}

std::string_view HttpRequest::path() const noexcept {
  const std::string_view t = target;
  const std::size_t query = t.find('?');
  return query == std::string_view::npos ? t : t.substr(0, query);
}

bool HttpClientResponse::keepAlive() const noexcept {
  return computeKeepAlive(headers, versionMinor);
}

// ---- HttpRequestParser -----------------------------------------------------

void HttpRequestParser::fail(int status, std::string message) {
  state_ = State::kError;
  status_ = ParseStatus::kError;
  error_ = ParseError{status, std::move(message)};
}

void HttpRequestParser::reset() {
  state_ = State::kRequestLine;
  status_ = ParseStatus::kNeedMore;
  request_ = HttpRequest{};
  error_ = ParseError{};
  line_.clear();
  sawCr_ = false;
  headerBytes_ = 0;
  bodyRemaining_ = 0;
}

void HttpRequestParser::finishRequestLine() {
  if (line_.empty()) return;  // tolerate leading blank lines (RFC 9112 §2.2)
  const std::string_view line = line_;
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1 || sp2 + 1 >= line.size()) {
    fail(400, "malformed request line");
    return;
  }
  request_.method = std::string(line.substr(0, sp1));
  request_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  const std::string_view version = line.substr(sp2 + 1);
  if (version == "HTTP/1.1") {
    request_.versionMinor = 1;
  } else if (version == "HTTP/1.0") {
    request_.versionMinor = 0;
  } else if (version.substr(0, 5) == "HTTP/") {
    // A real HTTP version we don't speak: 505 tells the client to retry
    // with a supported one. Anything else is just a garbled request line.
    fail(505, "unsupported HTTP version");
    return;
  } else {
    fail(400, "malformed request line");
    return;
  }
  if (request_.target[0] != '/') {
    fail(400, "request target must be origin-form");
    return;
  }
  state_ = State::kHeaders;
  line_.clear();
}

void HttpRequestParser::finishHeaderLine() {
  if (line_.empty()) {
    finishHeaderBlock();
    return;
  }
  if (line_[0] == ' ' || line_[0] == '\t') {
    fail(400, "obsolete header line folding");
    return;
  }
  if (!parseHeaderLine(line_, request_.headers)) {
    fail(400, "malformed header line");
    return;
  }
  line_.clear();
}

void HttpRequestParser::finishHeaderBlock() {
  const std::string* transferEncoding =
      request_.header("transfer-encoding");
  const std::string* contentLength = request_.header("content-length");
  if (transferEncoding != nullptr) {
    if (!iequals(*transferEncoding, "chunked")) {
      fail(501, "unsupported transfer encoding");
      return;
    }
    if (contentLength != nullptr) {
      fail(400, "both Transfer-Encoding and Content-Length");
      return;
    }
    request_.chunked = true;
    state_ = State::kChunkSize;
    line_.clear();
    return;
  }
  if (contentLength != nullptr) {
    const std::optional<std::uint64_t> length =
        parseContentLength(*contentLength);
    if (!length) {
      fail(400, "malformed Content-Length");
      return;
    }
    if (*length > limits_.maxBodyBytes) {
      fail(413, "request body too large");
      return;
    }
    bodyRemaining_ = static_cast<std::size_t>(*length);
    if (bodyRemaining_ == 0) {
      state_ = State::kComplete;
      status_ = ParseStatus::kComplete;
      return;
    }
    request_.body.reserve(bodyRemaining_);
    state_ = State::kBody;
    return;
  }
  // No body.
  state_ = State::kComplete;
  status_ = ParseStatus::kComplete;
}

void HttpRequestParser::finishChunkSizeLine() {
  std::string_view line = std::string_view(line_);
  const std::size_t ext = line.find(';');
  if (ext != std::string_view::npos) line = trim(line.substr(0, ext));
  if (line.empty() || line.size() > 16) {
    fail(400, "malformed chunk size");
    return;
  }
  std::uint64_t size = 0;
  for (const char c : line) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      fail(400, "malformed chunk size");
      return;
    }
    size = size * 16 + static_cast<std::uint64_t>(digit);
  }
  line_.clear();
  if (size == 0) {
    state_ = State::kTrailers;
    return;
  }
  if (request_.body.size() + size > limits_.maxBodyBytes) {
    fail(413, "request body too large");
    return;
  }
  bodyRemaining_ = static_cast<std::size_t>(size);
  state_ = State::kChunkData;
}

std::size_t HttpRequestParser::feed(std::string_view data) {
  std::size_t i = 0;
  while (i < data.size() && state_ != State::kComplete &&
         state_ != State::kError) {
    // Bulk states first: copy as much payload as is available.
    if (state_ == State::kBody || state_ == State::kChunkData) {
      const std::size_t take =
          std::min(bodyRemaining_, data.size() - i);
      request_.body.append(data.substr(i, take));
      bodyRemaining_ -= take;
      i += take;
      if (bodyRemaining_ == 0) {
        if (state_ == State::kBody) {
          state_ = State::kComplete;
          status_ = ParseStatus::kComplete;
        } else {
          state_ = State::kChunkDataEnd;
        }
      }
      continue;
    }

    const char c = data[i++];
    // Everything below is line-structured.
    if (state_ == State::kHeaders || state_ == State::kTrailers) {
      if (++headerBytes_ > limits_.maxHeaderBytes) {
        fail(431, "header block too large");
        break;
      }
    }
    if (c == '\r') {
      if (sawCr_) {
        fail(400, "stray CR");
        break;
      }
      sawCr_ = true;
      continue;
    }
    if (sawCr_ && c != '\n') {
      fail(400, "CR not followed by LF");
      break;
    }
    sawCr_ = false;
    if (c != '\n') {
      line_.push_back(c);
      if (state_ == State::kRequestLine &&
          line_.size() > limits_.maxRequestLineBytes) {
        fail(431, "request line too long");
        break;
      }
      if (state_ == State::kChunkDataEnd) {
        fail(400, "missing CRLF after chunk data");
        break;
      }
      continue;
    }

    // End of line.
    switch (state_) {
      case State::kRequestLine:
        finishRequestLine();
        break;
      case State::kHeaders:
        finishHeaderLine();
        break;
      case State::kChunkSize:
        finishChunkSizeLine();
        break;
      case State::kChunkDataEnd:
        if (!line_.empty()) {
          fail(400, "missing CRLF after chunk data");
        } else {
          state_ = State::kChunkSize;
        }
        break;
      case State::kTrailers:
        if (line_.empty()) {
          state_ = State::kComplete;
          status_ = ParseStatus::kComplete;
        } else {
          line_.clear();  // trailer fields are accepted and ignored
        }
        break;
      default:
        fail(500, "parser state error");
        break;
    }
  }
  return i;
}

// ---- Response serialization ------------------------------------------------

const char* reasonPhrase(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

namespace {

void appendHead(std::string& out, int status, const HttpHeaders& headers) {
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += reasonPhrase(status);
  out += "\r\n";
  for (const auto& [name, value] : headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
}

}  // namespace

std::string serializeResponse(const HttpResponse& response, bool keepAlive) {
  std::string out;
  out.reserve(128 + response.body.size());
  appendHead(out, response.status, response.headers);
  out += "Content-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\n";
  if (!keepAlive) out += "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

std::string serializeChunkedHead(int status, const HttpHeaders& headers) {
  std::string out;
  appendHead(out, status, headers);
  out += "Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
  return out;
}

std::string encodeChunk(std::string_view data) {
  if (data.empty()) return {};
  std::string out;
  out.reserve(data.size() + 20);
  char size[17];
  std::snprintf(size, sizeof(size), "%zx", data.size());
  out += size;
  out += "\r\n";
  out += data;
  out += "\r\n";
  return out;
}

// ---- HttpResponseParser ----------------------------------------------------

void HttpResponseParser::fail(std::string message) {
  state_ = State::kError;
  status_ = ParseStatus::kError;
  error_ = ParseError{0, std::move(message)};
}

void HttpResponseParser::reset() {
  state_ = State::kStatusLine;
  status_ = ParseStatus::kNeedMore;
  response_ = HttpClientResponse{};
  error_ = ParseError{};
  line_.clear();
  sawCr_ = false;
  headerBytes_ = 0;
  bodyRemaining_ = 0;
}

void HttpResponseParser::finishStatusLine() {
  const std::string_view line = line_;
  // "HTTP/1.x NNN reason"
  if (line.size() < 12 || line.compare(0, 7, "HTTP/1.") != 0 ||
      line[8] != ' ') {
    fail("malformed status line");
    return;
  }
  response_.versionMinor = line[7] - '0';
  int status = 0;
  for (std::size_t i = 9; i < 12; ++i) {
    if (line[i] < '0' || line[i] > '9') {
      fail("malformed status code");
      return;
    }
    status = status * 10 + (line[i] - '0');
  }
  response_.status = status;
  state_ = State::kHeaders;
  line_.clear();
}

void HttpResponseParser::finishHeaderLine() {
  if (line_.empty()) {
    finishHeaderBlock();
    return;
  }
  if (!parseHeaderLine(line_, response_.headers)) {
    fail("malformed header line");
    return;
  }
  line_.clear();
}

void HttpResponseParser::finishHeaderBlock() {
  if (response_.status == 204 || response_.status == 304) {
    state_ = State::kComplete;
    status_ = ParseStatus::kComplete;
    return;
  }
  const std::string* transferEncoding =
      response_.header("transfer-encoding");
  if (transferEncoding != nullptr && iequals(*transferEncoding, "chunked")) {
    response_.chunked = true;
    state_ = State::kChunkSize;
    line_.clear();
    return;
  }
  const std::string* contentLength = response_.header("content-length");
  if (contentLength != nullptr) {
    const std::optional<std::uint64_t> length =
        parseContentLength(*contentLength);
    if (!length || *length > limits_.maxBodyBytes) {
      fail("bad Content-Length");
      return;
    }
    bodyRemaining_ = static_cast<std::size_t>(*length);
    if (bodyRemaining_ == 0) {
      state_ = State::kComplete;
      status_ = ParseStatus::kComplete;
      return;
    }
    state_ = State::kBody;
    return;
  }
  // Neither framing header: the service never sends such responses, so
  // treat the body as empty rather than reading to connection close.
  state_ = State::kComplete;
  status_ = ParseStatus::kComplete;
}

void HttpResponseParser::finishChunkSizeLine() {
  std::string_view line = std::string_view(line_);
  const std::size_t ext = line.find(';');
  if (ext != std::string_view::npos) line = trim(line.substr(0, ext));
  if (line.empty() || line.size() > 16) {
    fail("malformed chunk size");
    return;
  }
  std::uint64_t size = 0;
  for (const char c : line) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      fail("malformed chunk size");
      return;
    }
    size = size * 16 + static_cast<std::uint64_t>(digit);
  }
  line_.clear();
  if (size == 0) {
    state_ = State::kTrailers;
    return;
  }
  if (response_.body.size() + size > limits_.maxBodyBytes) {
    fail("response body too large");
    return;
  }
  bodyRemaining_ = static_cast<std::size_t>(size);
  state_ = State::kChunkData;
}

std::size_t HttpResponseParser::feed(std::string_view data) {
  std::size_t i = 0;
  while (i < data.size() && state_ != State::kComplete &&
         state_ != State::kError) {
    if (state_ == State::kBody || state_ == State::kChunkData) {
      const std::size_t take = std::min(bodyRemaining_, data.size() - i);
      response_.body.append(data.substr(i, take));
      bodyRemaining_ -= take;
      i += take;
      if (bodyRemaining_ == 0) {
        if (state_ == State::kBody) {
          state_ = State::kComplete;
          status_ = ParseStatus::kComplete;
        } else {
          state_ = State::kChunkDataEnd;
        }
      }
      continue;
    }

    const char c = data[i++];
    if (state_ == State::kHeaders || state_ == State::kTrailers) {
      if (++headerBytes_ > limits_.maxHeaderBytes) {
        fail("header block too large");
        break;
      }
    }
    if (c == '\r') {
      if (sawCr_) {
        fail("stray CR");
        break;
      }
      sawCr_ = true;
      continue;
    }
    if (sawCr_ && c != '\n') {
      fail("CR not followed by LF");
      break;
    }
    sawCr_ = false;
    if (c != '\n') {
      line_.push_back(c);
      if (state_ == State::kChunkDataEnd) {
        fail("missing CRLF after chunk data");
        break;
      }
      continue;
    }

    switch (state_) {
      case State::kStatusLine:
        finishStatusLine();
        break;
      case State::kHeaders:
        finishHeaderLine();
        break;
      case State::kChunkSize:
        finishChunkSizeLine();
        break;
      case State::kChunkDataEnd:
        if (!line_.empty()) {
          fail("missing CRLF after chunk data");
        } else {
          state_ = State::kChunkSize;
        }
        break;
      case State::kTrailers:
        if (line_.empty()) {
          state_ = State::kComplete;
          status_ = ParseStatus::kComplete;
        } else {
          line_.clear();
        }
        break;
      default:
        fail("parser state error");
        break;
    }
  }
  return i;
}

}  // namespace stordep::service
