// design_space.hpp — enumerable space of candidate storage designs.
//
// The paper's introduction motivates the framework as "the inner-most loop
// of an automated optimization loop" for dependable storage design. This
// module provides the loop's search space: a candidate is a combination of
// a PiT technique, a backup policy, a vaulting policy and an inter-array
// mirroring choice over the case-study device catalog; build() materializes
// it as a StorageDesign ready for evaluate().
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/hierarchy.hpp"

namespace stordep::optimizer {

enum class PitChoice { kNone, kSnapshot, kSplitMirror };
enum class BackupChoice { kNone, kFullOnly, kFullPlusIncremental };
enum class MirrorChoice { kNone, kSync, kAsync, kAsyncBatch };

[[nodiscard]] std::string toString(PitChoice choice);
[[nodiscard]] std::string toString(BackupChoice choice);
[[nodiscard]] std::string toString(MirrorChoice choice);

/// One point in the design space.
struct CandidateSpec {
  PitChoice pit = PitChoice::kNone;
  Duration pitAccW = hours(12);
  int pitRetentionCount = 4;

  BackupChoice backup = BackupChoice::kNone;
  /// Interval between fulls (propW is derived as accW/2, capped at 48 h;
  /// the case-study policies follow the same proportions).
  Duration backupAccW = weeks(1);

  bool vault = false;  ///< requires backup != kNone
  Duration vaultAccW = weeks(4);

  MirrorChoice mirror = MirrorChoice::kNone;
  int mirrorLinkCount = 1;

  /// Human-readable label ("split-mirror(12 hr x4) + full(1 wk) + vault(4 wk)").
  [[nodiscard]] std::string label() const;

  /// True when the combination is structurally valid (vault needs backup,
  /// at least one secondary copy exists, positive windows, ...).
  [[nodiscard]] bool valid() const;

  /// Materializes the candidate over the case-study device catalog.
  [[nodiscard]] StorageDesign build(const WorkloadSpec& workload,
                                    const BusinessRequirements& business) const;

  friend bool operator==(const CandidateSpec&, const CandidateSpec&) = default;
};

/// Grids to enumerate; defaults give a ~200-candidate space.
struct DesignSpaceOptions {
  std::vector<PitChoice> pitChoices{PitChoice::kNone, PitChoice::kSnapshot,
                                    PitChoice::kSplitMirror};
  std::vector<Duration> pitAccWs{hours(6), hours(12), hours(24)};
  std::vector<int> pitRetentionCounts{4};
  std::vector<BackupChoice> backupChoices{BackupChoice::kNone,
                                          BackupChoice::kFullOnly,
                                          BackupChoice::kFullPlusIncremental};
  std::vector<Duration> backupAccWs{hours(24), weeks(1)};
  std::vector<Duration> vaultAccWs{weeks(1), weeks(4)};
  std::vector<MirrorChoice> mirrorChoices{MirrorChoice::kNone,
                                          MirrorChoice::kAsyncBatch};
  std::vector<int> mirrorLinkCounts{1, 4, 10};
};

/// Exact number of grid points the options span (valid and invalid alike):
/// the cardinality product with the same axis collapsing the enumeration
/// applies (e.g. the PiT axes contribute one point, not |accWs| x |rets|,
/// when pit == kNone). enumerateDesignSpace pre-reserves from this.
[[nodiscard]] std::uint64_t gridCardinality(const DesignSpaceOptions& options);

/// Streaming enumeration of the same space, in the same order, without
/// materializing it: next() yields structurally valid candidates one at a
/// time, so searchDesignSpace can pipeline a million-point grid into the
/// thread pool in bounded memory. The sequence of specs produced is exactly
/// the vector enumerateDesignSpace returns.
class DesignSpaceCursor {
 public:
  explicit DesignSpaceCursor(DesignSpaceOptions options = {});

  /// Writes the next valid candidate into `out`; false when exhausted.
  [[nodiscard]] bool next(CandidateSpec& out);

  /// Restricts enumeration to grid indices [begin, end) in the all-points
  /// numbering enumerated() counts (valid and invalid alike). Cursors over
  /// a partition of [0, gridCardinality()) concatenate to exactly the full
  /// enumeration — the contract the cluster sweep partitioner relies on.
  /// Must be called before the first next().
  void restrictTo(std::uint64_t begin, std::uint64_t end);

  [[nodiscard]] bool exhausted() const noexcept { return exhausted_; }
  /// Grid points visited so far (including invalid combinations skipped).
  [[nodiscard]] std::uint64_t enumerated() const noexcept {
    return enumerated_;
  }
  /// Valid candidates handed out so far.
  [[nodiscard]] std::uint64_t produced() const noexcept { return produced_; }
  [[nodiscard]] const DesignSpaceOptions& options() const noexcept {
    return options_;
  }

 private:
  static constexpr int kDepth = 9;

  [[nodiscard]] std::size_t extent(int digit) const;
  [[nodiscard]] CandidateSpec specAt() const;
  /// Zero-fills digits [from, kDepth), advancing outer digits past any
  /// empty inner axis; false when the whole grid is exhausted.
  bool positionFrom(int from);
  bool advance();

  DesignSpaceOptions options_;
  std::array<std::size_t, kDepth> idx_{};
  bool started_ = false;
  bool exhausted_ = false;
  std::uint64_t enumerated_ = 0;
  std::uint64_t produced_ = 0;
  std::uint64_t rangeBegin_ = 0;
  std::uint64_t rangeEnd_ = UINT64_MAX;
};

/// Enumerates every structurally valid candidate in the grid.
[[nodiscard]] std::vector<CandidateSpec> enumerateDesignSpace(
    const DesignSpaceOptions& options = {});

}  // namespace stordep::optimizer
