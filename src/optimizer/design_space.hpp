// design_space.hpp — enumerable space of candidate storage designs.
//
// The paper's introduction motivates the framework as "the inner-most loop
// of an automated optimization loop" for dependable storage design. This
// module provides the loop's search space: a candidate is a combination of
// a PiT technique, a backup policy, a vaulting policy and an inter-array
// mirroring choice over the case-study device catalog; build() materializes
// it as a StorageDesign ready for evaluate().
#pragma once

#include <string>
#include <vector>

#include "core/hierarchy.hpp"

namespace stordep::optimizer {

enum class PitChoice { kNone, kSnapshot, kSplitMirror };
enum class BackupChoice { kNone, kFullOnly, kFullPlusIncremental };
enum class MirrorChoice { kNone, kSync, kAsync, kAsyncBatch };

[[nodiscard]] std::string toString(PitChoice choice);
[[nodiscard]] std::string toString(BackupChoice choice);
[[nodiscard]] std::string toString(MirrorChoice choice);

/// One point in the design space.
struct CandidateSpec {
  PitChoice pit = PitChoice::kNone;
  Duration pitAccW = hours(12);
  int pitRetentionCount = 4;

  BackupChoice backup = BackupChoice::kNone;
  /// Interval between fulls (propW is derived as accW/2, capped at 48 h;
  /// the case-study policies follow the same proportions).
  Duration backupAccW = weeks(1);

  bool vault = false;  ///< requires backup != kNone
  Duration vaultAccW = weeks(4);

  MirrorChoice mirror = MirrorChoice::kNone;
  int mirrorLinkCount = 1;

  /// Human-readable label ("split-mirror(12 hr x4) + full(1 wk) + vault(4 wk)").
  [[nodiscard]] std::string label() const;

  /// True when the combination is structurally valid (vault needs backup,
  /// at least one secondary copy exists, positive windows, ...).
  [[nodiscard]] bool valid() const;

  /// Materializes the candidate over the case-study device catalog.
  [[nodiscard]] StorageDesign build(const WorkloadSpec& workload,
                                    const BusinessRequirements& business) const;

  friend bool operator==(const CandidateSpec&, const CandidateSpec&) = default;
};

/// Grids to enumerate; defaults give a ~200-candidate space.
struct DesignSpaceOptions {
  std::vector<PitChoice> pitChoices{PitChoice::kNone, PitChoice::kSnapshot,
                                    PitChoice::kSplitMirror};
  std::vector<Duration> pitAccWs{hours(6), hours(12), hours(24)};
  std::vector<int> pitRetentionCounts{4};
  std::vector<BackupChoice> backupChoices{BackupChoice::kNone,
                                          BackupChoice::kFullOnly,
                                          BackupChoice::kFullPlusIncremental};
  std::vector<Duration> backupAccWs{hours(24), weeks(1)};
  std::vector<Duration> vaultAccWs{weeks(1), weeks(4)};
  std::vector<MirrorChoice> mirrorChoices{MirrorChoice::kNone,
                                          MirrorChoice::kAsyncBatch};
  std::vector<int> mirrorLinkCounts{1, 4, 10};
};

/// Enumerates every structurally valid candidate in the grid.
[[nodiscard]] std::vector<CandidateSpec> enumerateDesignSpace(
    const DesignSpaceOptions& options = {});

}  // namespace stordep::optimizer
