#include "optimizer/search.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

#include "casestudy/casestudy.hpp"
#include "optimizer/checkpoint.hpp"
#include "stochastic/evaluator.hpp"

namespace stordep::optimizer {

namespace {

/// Expected-penalty objective parameters; null pointer = worst-case mode
/// (the default, kept bit-identical to the serial reference).
struct StochasticObjectiveSpec {
  int trials = 512;
  std::uint64_t seed = 1;
};

/// Shared scenario-set preparation: fingerprints hoisted out of the
/// candidate loop (the same scenarios are paired with every candidate).
std::vector<engine::Fingerprint> fingerprintScenarios(
    const std::vector<ScenarioCase>& scenarios) {
  std::vector<engine::Fingerprint> fps;
  fps.reserve(scenarios.size());
  for (const ScenarioCase& sc : scenarios) {
    fps.push_back(engine::fingerprintScenario(sc.scenario));
  }
  return fps;
}

/// Folds one scenario evaluation into the candidate summary. Returns false
/// when the candidate is infeasible and the scenario loop should stop (the
/// same early-out the serial reference takes).
bool foldScenario(EvaluatedCandidate& out, const EvaluationResult& result,
                  const ScenarioCase& sc, bool& outlaysRecorded) {
  if (!result.utilization.feasible()) {
    out.feasible = false;
    out.rejectionReason = "over-utilized: " + result.utilization.errors[0];
    return false;
  }
  if (!result.recovery.recoverable) {
    out.feasible = false;
    out.rejectionReason = "unrecoverable under scenario '" + sc.name + "'";
    return false;
  }
  if (!result.meetsObjectives) {
    out.meetsObjectives = false;
    out.rejectionReason = "misses RTO/RPO under scenario '" + sc.name + "'";
  }
  if (!outlaysRecorded) {
    out.outlays = result.cost.totalOutlays;  // scenario-independent
    outlaysRecorded = true;
  }
  out.weightedPenalties += result.cost.totalPenalties * sc.weight;
  out.worstRecoveryTime =
      std::max(out.worstRecoveryTime, result.recovery.recoveryTime);
  out.worstDataLoss = std::max(out.worstDataLoss, result.recovery.dataLoss);
  return true;
}

/// Plan-backed candidate evaluation: the compile-once fast path. The design
/// is compiled into an engine::EvalPlan and every scenario folds through
/// EvalPlan::evaluate on the calling thread's bump arena — no per-eval heap
/// allocation, no cache traffic, no shard locks. Field for field this
/// reproduces evaluateCandidateImpl + foldScenario (the plan contract
/// guarantees bit-identical metrics; the plan-vs-legacy oracle enforces it),
/// including the exact rejection strings. Returns nullopt when the design is
/// not plannable, in which case the caller takes the keyed legacy path.
/// Never throws: failures are captured as EvaluatedCandidate::error.
std::optional<EvaluatedCandidate> tryEvaluateCandidateViaPlan(
    const CandidateSpec& spec, const WorkloadSpec& workload,
    const BusinessRequirements& business,
    const std::vector<ScenarioCase>& scenarios) {
  EvaluatedCandidate out;
  out.spec = spec;
  out.label = spec.label();
  out.feasible = true;
  out.meetsObjectives = true;

  try {
    const StorageDesign design = spec.build(workload, business);
    const std::shared_ptr<const engine::EvalPlan> plan =
        engine::EvalPlan::compile(design);
    if (plan == nullptr) return std::nullopt;  // legacy fallback

    bool outlaysRecorded = false;
    for (const ScenarioCase& sc : scenarios) {
      // Scenario-independent, but checked inside the loop so an empty
      // scenario set leaves the candidate untouched, like the legacy fold.
      if (!plan->utilizationFeasible()) {
        out.feasible = false;
        out.rejectionReason = "over-utilized: " + plan->utilizationError();
        break;
      }
      const EvaluationMetrics m =
          plan->evaluate(sc.scenario, engine::Engine::threadArena());
      if (!m.recoverable) {
        out.feasible = false;
        out.rejectionReason = "unrecoverable under scenario '" + sc.name + "'";
        break;
      }
      if (!m.meetsObjectives) {
        out.meetsObjectives = false;
        out.rejectionReason = "misses RTO/RPO under scenario '" + sc.name + "'";
      }
      if (!outlaysRecorded) {
        out.outlays = m.totalOutlays;  // scenario-independent
        outlaysRecorded = true;
      }
      out.weightedPenalties += m.totalPenalties * sc.weight;
      out.worstRecoveryTime = std::max(out.worstRecoveryTime, m.recoveryTime);
      out.worstDataLoss = std::max(out.worstDataLoss, m.dataLoss);
    }
  } catch (...) {
    // build() rejected the candidate (same isolation as the legacy path).
    out.error = engine::errorFromCurrentException();
  }

  if (out.error) {
    out.feasible = false;
    out.rejectionReason = "evaluation failed: " + out.error->describe();
  }
  out.totalCost = out.outlays + out.weightedPenalties;
  return out;
}

/// Evaluates one candidate against the scenario set. Never throws: a build
/// or evaluation failure (past the retry budget in `evalOptions`) is
/// captured as EvaluatedCandidate::error, isolating the failure to this
/// candidate.
EvaluatedCandidate evaluateCandidateImpl(
    const CandidateSpec& spec, const WorkloadSpec& workload,
    const BusinessRequirements& business,
    const std::vector<ScenarioCase>& scenarios, engine::Engine& eng,
    const std::vector<engine::Fingerprint>& scenarioFps,
    const engine::BatchOptions& evalOptions,
    const StochasticObjectiveSpec* stochastic = nullptr) {
  EvaluatedCandidate out;
  out.spec = spec;
  out.label = spec.label();
  out.feasible = true;
  out.meetsObjectives = true;

  try {
    const StorageDesign design = spec.build(workload, business);
    // One structural pass yields the cache key and the per-level sub-keys
    // the engine's demand cache shares across candidates.
    const engine::DesignFingerprints parts =
        engine::fingerprintDesignParts(design);
    // Scenario-independent sub-models (utilization, outlays, warnings) are
    // computed at most once per candidate, and only if some scenario misses
    // the cache.
    std::optional<DesignPrecomputation> precomputed;
    bool outlaysRecorded = false;
    // Per-scenario worst-case penalty contributions, kept in fold order so
    // the expected-penalty objective can fall back scenario-by-scenario.
    std::vector<Money> analyticPenalties;

    for (std::size_t j = 0; j < scenarios.size(); ++j) {
      engine::EvalOutcome outcome = eng.tryEvaluateKeyed(
          design, scenarios[j].scenario,
          engine::combine(parts.design, scenarioFps[j]), precomputed,
          evalOptions, nullptr, &parts);
      if (!outcome.ok()) {
        out.error = outcome.error();
        break;
      }
      if (!foldScenario(out, outcome.value(), scenarios[j], outlaysRecorded)) {
        break;
      }
      if (stochastic != nullptr) {
        analyticPenalties.push_back(outcome.value().cost.totalPenalties *
                                    scenarios[j].weight);
      }
    }

    // Expected-penalty objective: replace the worst-case penalty term with
    // the Monte-Carlo expectation. Trials run serially (the candidate loop
    // is already parallel) from a fixed root seed, so rankings stay
    // deterministic. Scenarios the simulation cannot serve keep their
    // worst-case contribution; a design the simulator rejects outright
    // keeps all of them.
    if (stochastic != nullptr && !out.error && out.feasible &&
        out.meetsObjectives &&
        analyticPenalties.size() == scenarios.size()) {
      try {
        stochastic::StochasticOptions sopt;
        sopt.trials = stochastic->trials;
        sopt.seed = stochastic->seed;
        sopt.threads = 1;
        const stochastic::StochasticEvaluator sampler(design, sopt);
        Money expected = Money::zero();
        for (std::size_t j = 0; j < scenarios.size(); ++j) {
          const auto dist = sampler.distributionFor(scenarios[j].scenario);
          if (dist.ok() && dist.value().expectedPenalty.isFinite()) {
            expected += dist.value().expectedPenalty * scenarios[j].weight;
          } else {
            expected += analyticPenalties[j];
          }
        }
        out.weightedPenalties = expected;
      } catch (...) {
        // Simulator rejected the design; the analytic worst-case penalties
        // already accumulated stand.
      }
    }
  } catch (...) {
    // build() or fingerprinting rejected the candidate.
    out.error = engine::errorFromCurrentException();
  }

  if (out.error) {
    out.feasible = false;
    out.rejectionReason = "evaluation failed: " + out.error->describe();
  }
  out.totalCost = out.outlays + out.weightedPenalties;
  return out;
}

/// Deterministic ranking shared by all search paths.
void rankCandidates(SearchResult& result,
                    std::vector<EvaluatedCandidate> evaluated) {
  for (EvaluatedCandidate& candidate : evaluated) {
    ++result.evaluated;
    if (candidate.error) ++result.failed;
    if (candidate.feasible && candidate.meetsObjectives) {
      result.ranked.push_back(std::move(candidate));
    } else {
      result.rejected.push_back(std::move(candidate));
    }
  }
  std::sort(result.ranked.begin(), result.ranked.end(),
            [](const EvaluatedCandidate& a, const EvaluatedCandidate& b) {
              if (a.totalCost != b.totalCost) return a.totalCost < b.totalCost;
              return a.label < b.label;  // deterministic tie-break
            });
}

/// Fills the throughput fields every search path reports (evaluated counts
/// both computed and journal-restored candidates).
void finalizeThroughput(SearchResult& result,
                        std::chrono::steady_clock::time_point start) {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  result.wallSeconds = elapsed.count();
  result.candidatesPerSec =
      result.wallSeconds > 0.0
          ? static_cast<double>(result.evaluated) / result.wallSeconds
          : 0.0;
}

}  // namespace

SearchResult rankEvaluated(std::vector<EvaluatedCandidate> evaluated) {
  SearchResult result;
  rankCandidates(result, std::move(evaluated));
  return result;
}

EvaluatedCandidate evaluateCandidate(
    const CandidateSpec& spec, const WorkloadSpec& workload,
    const BusinessRequirements& business,
    const std::vector<ScenarioCase>& scenarios, engine::Engine* eng,
    bool usePlan) {
  engine::Engine& resolved = eng != nullptr ? *eng : engine::Engine::shared();
  if (usePlan && resolved.faultInjector() == nullptr) {
    if (std::optional<EvaluatedCandidate> viaPlan =
            tryEvaluateCandidateViaPlan(spec, workload, business, scenarios)) {
      return std::move(*viaPlan);
    }
  }
  return evaluateCandidateImpl(spec, workload, business, scenarios, resolved,
                               fingerprintScenarios(scenarios),
                               engine::BatchOptions{});
}

SearchResult searchDesignSpace(const std::vector<CandidateSpec>& candidates,
                               const WorkloadSpec& workload,
                               const BusinessRequirements& business,
                               const std::vector<ScenarioCase>& scenarios,
                               engine::Engine* eng) {
  SearchOptions options;
  options.eng = eng;
  options.maxRetries = 0;
  return searchDesignSpace(candidates, workload, business, scenarios, options);
}

SearchResult searchDesignSpace(const std::vector<CandidateSpec>& candidates,
                               const WorkloadSpec& workload,
                               const BusinessRequirements& business,
                               const std::vector<ScenarioCase>& scenarios,
                               const SearchOptions& options) {
  const auto startTime = std::chrono::steady_clock::now();
  engine::Engine& resolved =
      options.eng != nullptr ? *options.eng : engine::Engine::shared();
  const std::vector<engine::Fingerprint> scenarioFps =
      fingerprintScenarios(scenarios);

  engine::BatchOptions evalOptions;
  evalOptions.maxRetries = options.maxRetries;
  evalOptions.retryBackoff = options.retryBackoff;

  engine::CancellationToken token = options.token;
  if (options.deadline.count() > 0) {
    token = token.withDeadline(options.deadline);
  }
  const bool cancellable = token.cancellable();

  const StochasticObjectiveSpec stochasticSpec{options.stochasticTrials,
                                               options.stochasticSeed};
  const StochasticObjectiveSpec* stochastic =
      options.objective == Objective::kExpectedPenalty ? &stochasticSpec
                                                       : nullptr;

  // The plan fast path applies only to the deterministic worst-case
  // objective with no fault injection; everything else needs the keyed
  // legacy path (retries, injected-failure probes, Monte-Carlo penalties).
  const bool planEligible = options.usePlan && stochastic == nullptr &&
                            resolved.faultInjector() == nullptr;

  // Resume: restore journaled candidates before fanning out, so the sweep
  // spends its budget only on un-finished work.
  std::unique_ptr<CheckpointJournal> journal;
  std::vector<engine::Fingerprint> keys;
  if (!options.checkpointPath.empty()) {
    journal = std::make_unique<CheckpointJournal>(
        options.checkpointPath,
        fingerprintSearchContext(workload, business, scenarios),
        options.checkpointEvery);
    keys.reserve(candidates.size());
    for (const CandidateSpec& spec : candidates) {
      keys.push_back(fingerprintCandidate(spec));
    }
  }

  SearchResult result;

  // Fan out at candidate granularity; every result lands in its own slot,
  // so the ranking below sees exactly the serial order. `completed` marks
  // the slots that hold a finished evaluation when the sweep is cancelled
  // part-way (vector<char>: written concurrently per index).
  std::vector<EvaluatedCandidate> evaluated(candidates.size());
  std::vector<char> completed(candidates.size(), 0);
  if (journal) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (const EvaluatedCandidate* record = journal->find(keys[i])) {
        evaluated[i] = *record;
        evaluated[i].spec = candidates[i];  // journal stores metrics only
        completed[i] = 1;
        ++result.skipped;
      }
    }
  }

  // Cold sweeps through the legacy fallback are insert-heavy; buffer the
  // cache writes per worker and merge them once the fan-out joins.
  engine::Engine::WriteBehindScope writeBehind(resolved);
  const bool ranAll = resolved.parallelForCancellable(
      candidates.size(),
      [&](std::size_t i) {
        if (completed[i] != 0) return;  // restored from the journal
        if (cancellable && token.cancelled()) return;
        std::optional<EvaluatedCandidate> viaPlan;
        if (planEligible) {
          viaPlan = tryEvaluateCandidateViaPlan(candidates[i], workload,
                                                business, scenarios);
        }
        evaluated[i] =
            viaPlan ? std::move(*viaPlan)
                    : evaluateCandidateImpl(candidates[i], workload, business,
                                            scenarios, resolved, scenarioFps,
                                            evalOptions, stochastic);
        completed[i] = 1;
        // Only clean evaluations are journaled: a transiently-failed
        // candidate should be re-attempted on resume, not pinned.
        if (journal && !evaluated[i].error) {
          journal->record(keys[i], evaluated[i]);
        }
      },
      token);
  if (journal) journal->flush();

  std::vector<EvaluatedCandidate> finished;
  finished.reserve(candidates.size());
  bool anyIncomplete = false;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (completed[i] != 0) {
      finished.push_back(std::move(evaluated[i]));
    } else {
      anyIncomplete = true;
    }
  }
  result.cancelled = !ranAll || anyIncomplete;
  rankCandidates(result, std::move(finished));
  finalizeThroughput(result, startTime);
  return result;
}

SearchResult searchDesignSpaceStreaming(DesignSpaceCursor& cursor,
                                        const WorkloadSpec& workload,
                                        const BusinessRequirements& business,
                                        const std::vector<ScenarioCase>& scenarios,
                                        const SearchOptions& options) {
  const auto startTime = std::chrono::steady_clock::now();
  engine::Engine& resolved =
      options.eng != nullptr ? *options.eng : engine::Engine::shared();
  const std::vector<engine::Fingerprint> scenarioFps =
      fingerprintScenarios(scenarios);

  engine::BatchOptions evalOptions;
  evalOptions.maxRetries = options.maxRetries;
  evalOptions.retryBackoff = options.retryBackoff;

  engine::CancellationToken token = options.token;
  if (options.deadline.count() > 0) {
    token = token.withDeadline(options.deadline);
  }
  const bool cancellable = token.cancellable();

  const StochasticObjectiveSpec stochasticSpec{options.stochasticTrials,
                                               options.stochasticSeed};
  const StochasticObjectiveSpec* stochastic =
      options.objective == Objective::kExpectedPenalty ? &stochasticSpec
                                                       : nullptr;

  const bool planEligible = options.usePlan && stochastic == nullptr &&
                            resolved.faultInjector() == nullptr;

  std::unique_ptr<CheckpointJournal> journal;
  if (!options.checkpointPath.empty()) {
    journal = std::make_unique<CheckpointJournal>(
        options.checkpointPath,
        fingerprintSearchContext(workload, business, scenarios),
        options.checkpointEvery);
  }

  SearchResult result;
  std::vector<EvaluatedCandidate> finished;

  // One write-behind window covers every wave: candidates are unique across
  // chunks, so deferring the merge to the end of the sweep loses no reuse,
  // and the per-thread flush bound keeps buffered memory flat.
  engine::Engine::WriteBehindScope writeBehind(resolved);

  // Wave buffers, reused across chunks: peak memory is O(streamChunk)
  // materialized candidates regardless of grid size.
  const std::size_t chunkSize = std::max<std::size_t>(1, options.streamChunk);
  std::vector<CandidateSpec> chunk;
  chunk.reserve(chunkSize);
  std::vector<engine::Fingerprint> keys;
  std::vector<EvaluatedCandidate> evaluated;
  std::vector<char> completed;
  std::vector<EvaluatedCandidate> waveFinished;

  bool stopped = false;
  CandidateSpec spec;
  while (!stopped) {
    chunk.clear();
    while (chunk.size() < chunkSize && cursor.next(spec)) {
      chunk.push_back(spec);
    }
    if (chunk.empty()) break;

    if (journal) {
      keys.clear();
      keys.reserve(chunk.size());
      for (const CandidateSpec& c : chunk) {
        keys.push_back(fingerprintCandidate(c));
      }
    }
    evaluated.assign(chunk.size(), EvaluatedCandidate{});
    completed.assign(chunk.size(), 0);
    if (journal) {
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        if (const EvaluatedCandidate* record = journal->find(keys[i])) {
          evaluated[i] = *record;
          evaluated[i].spec = chunk[i];  // journal stores metrics only
          completed[i] = 1;
          ++result.skipped;
        }
      }
    }

    const bool ranAll = resolved.parallelForCancellable(
        chunk.size(),
        [&](std::size_t i) {
          if (completed[i] != 0) return;
          if (cancellable && token.cancelled()) return;
          std::optional<EvaluatedCandidate> viaPlan;
          if (planEligible) {
            viaPlan = tryEvaluateCandidateViaPlan(chunk[i], workload, business,
                                                  scenarios);
          }
          evaluated[i] =
              viaPlan ? std::move(*viaPlan)
                      : evaluateCandidateImpl(chunk[i], workload, business,
                                              scenarios, resolved, scenarioFps,
                                              evalOptions, stochastic);
          completed[i] = 1;
          if (journal && !evaluated[i].error) {
            journal->record(keys[i], evaluated[i]);
          }
        },
        token);

    waveFinished.clear();
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      if (completed[i] != 0) {
        waveFinished.push_back(std::move(evaluated[i]));
      } else {
        stopped = true;  // cancellation left this slot un-evaluated
      }
    }
    if (!ranAll) stopped = true;
    if (options.onCandidates) options.onCandidates(waveFinished);
    for (EvaluatedCandidate& c : waveFinished) {
      finished.push_back(std::move(c));
    }
    if (options.onProgress) options.onProgress(finished.size());
    if (options.waveDelay.count() > 0 && !stopped) {
      std::this_thread::sleep_for(options.waveDelay);
    }
  }
  if (journal) journal->flush();

  result.cancelled = stopped;
  rankCandidates(result, std::move(finished));
  finalizeThroughput(result, startTime);
  return result;
}

SearchResult searchDesignSpaceSerial(
    const std::vector<CandidateSpec>& candidates, const WorkloadSpec& workload,
    const BusinessRequirements& business,
    const std::vector<ScenarioCase>& scenarios) {
  const auto startTime = std::chrono::steady_clock::now();
  std::vector<EvaluatedCandidate> evaluated;
  evaluated.reserve(candidates.size());
  for (const CandidateSpec& spec : candidates) {
    EvaluatedCandidate out;
    out.spec = spec;
    out.label = spec.label();
    out.feasible = true;
    out.meetsObjectives = true;

    const StorageDesign design = spec.build(workload, business);
    bool outlaysRecorded = false;
    for (const ScenarioCase& sc : scenarios) {
      const EvaluationResult result = evaluate(design, sc.scenario);
      if (!foldScenario(out, result, sc, outlaysRecorded)) break;
    }
    out.totalCost = out.outlays + out.weightedPenalties;
    evaluated.push_back(std::move(out));
  }

  SearchResult result;
  rankCandidates(result, std::move(evaluated));
  finalizeThroughput(result, startTime);
  return result;
}

std::vector<EvaluatedCandidate> paretoFrontier(
    const std::vector<EvaluatedCandidate>& candidates) {
  auto dominates = [](const EvaluatedCandidate& a,
                      const EvaluatedCandidate& b) {
    const bool geAll = a.outlays <= b.outlays &&
                       a.worstRecoveryTime <= b.worstRecoveryTime &&
                       a.worstDataLoss <= b.worstDataLoss;
    const bool gtAny = a.outlays < b.outlays ||
                       a.worstRecoveryTime < b.worstRecoveryTime ||
                       a.worstDataLoss < b.worstDataLoss;
    return geAll && gtAny;
  };

  std::vector<EvaluatedCandidate> frontier;
  for (const EvaluatedCandidate& candidate : candidates) {
    if (!candidate.feasible) continue;
    bool dominated = false;
    for (const EvaluatedCandidate& other : candidates) {
      if (!other.feasible) continue;
      if (dominates(other, candidate)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(candidate);
  }
  std::sort(frontier.begin(), frontier.end(),
            [](const EvaluatedCandidate& a, const EvaluatedCandidate& b) {
              if (a.outlays != b.outlays) return a.outlays < b.outlays;
              return a.label < b.label;
            });
  // Identical metric triples would all survive domination; keep the first
  // of each (deterministic by label through the sort above).
  std::vector<EvaluatedCandidate> unique;
  for (auto& candidate : frontier) {
    const bool duplicate =
        !unique.empty() && unique.back().outlays == candidate.outlays &&
        unique.back().worstRecoveryTime == candidate.worstRecoveryTime &&
        unique.back().worstDataLoss == candidate.worstDataLoss;
    if (!duplicate) unique.push_back(std::move(candidate));
  }
  return unique;
}

std::vector<ScenarioCase> caseStudyScenarios() {
  return {
      ScenarioCase{"object failure", casestudy::objectFailure(), 1.0},
      ScenarioCase{"array failure", casestudy::arrayFailure(), 1.0},
      ScenarioCase{"site disaster", casestudy::siteDisaster(), 1.0},
  };
}

}  // namespace stordep::optimizer
