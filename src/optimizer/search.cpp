#include "optimizer/search.hpp"

#include <algorithm>

#include "casestudy/casestudy.hpp"

namespace stordep::optimizer {

EvaluatedCandidate evaluateCandidate(
    const CandidateSpec& spec, const WorkloadSpec& workload,
    const BusinessRequirements& business,
    const std::vector<ScenarioCase>& scenarios) {
  EvaluatedCandidate out;
  out.spec = spec;
  out.label = spec.label();
  out.feasible = true;
  out.meetsObjectives = true;

  const StorageDesign design = spec.build(workload, business);
  bool outlaysRecorded = false;

  for (const ScenarioCase& sc : scenarios) {
    const EvaluationResult result = evaluate(design, sc.scenario);
    if (!result.utilization.feasible()) {
      out.feasible = false;
      out.rejectionReason = "over-utilized: " + result.utilization.errors[0];
      break;
    }
    if (!result.recovery.recoverable) {
      out.feasible = false;
      out.rejectionReason = "unrecoverable under scenario '" + sc.name + "'";
      break;
    }
    if (!result.meetsObjectives) {
      out.meetsObjectives = false;
      out.rejectionReason = "misses RTO/RPO under scenario '" + sc.name + "'";
    }
    if (!outlaysRecorded) {
      out.outlays = result.cost.totalOutlays;  // scenario-independent
      outlaysRecorded = true;
    }
    out.weightedPenalties += result.cost.totalPenalties * sc.weight;
    out.worstRecoveryTime =
        std::max(out.worstRecoveryTime, result.recovery.recoveryTime);
    out.worstDataLoss = std::max(out.worstDataLoss, result.recovery.dataLoss);
  }
  out.totalCost = out.outlays + out.weightedPenalties;
  return out;
}

SearchResult searchDesignSpace(const std::vector<CandidateSpec>& candidates,
                               const WorkloadSpec& workload,
                               const BusinessRequirements& business,
                               const std::vector<ScenarioCase>& scenarios) {
  SearchResult result;
  for (const CandidateSpec& spec : candidates) {
    EvaluatedCandidate evaluated =
        evaluateCandidate(spec, workload, business, scenarios);
    ++result.evaluated;
    if (evaluated.feasible && evaluated.meetsObjectives) {
      result.ranked.push_back(std::move(evaluated));
    } else {
      result.rejected.push_back(std::move(evaluated));
    }
  }
  std::sort(result.ranked.begin(), result.ranked.end(),
            [](const EvaluatedCandidate& a, const EvaluatedCandidate& b) {
              if (a.totalCost != b.totalCost) return a.totalCost < b.totalCost;
              return a.label < b.label;  // deterministic tie-break
            });
  return result;
}

std::vector<EvaluatedCandidate> paretoFrontier(
    const std::vector<EvaluatedCandidate>& candidates) {
  auto dominates = [](const EvaluatedCandidate& a,
                      const EvaluatedCandidate& b) {
    const bool geAll = a.outlays <= b.outlays &&
                       a.worstRecoveryTime <= b.worstRecoveryTime &&
                       a.worstDataLoss <= b.worstDataLoss;
    const bool gtAny = a.outlays < b.outlays ||
                       a.worstRecoveryTime < b.worstRecoveryTime ||
                       a.worstDataLoss < b.worstDataLoss;
    return geAll && gtAny;
  };

  std::vector<EvaluatedCandidate> frontier;
  for (const EvaluatedCandidate& candidate : candidates) {
    if (!candidate.feasible) continue;
    bool dominated = false;
    for (const EvaluatedCandidate& other : candidates) {
      if (!other.feasible) continue;
      if (dominates(other, candidate)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(candidate);
  }
  std::sort(frontier.begin(), frontier.end(),
            [](const EvaluatedCandidate& a, const EvaluatedCandidate& b) {
              if (a.outlays != b.outlays) return a.outlays < b.outlays;
              return a.label < b.label;
            });
  // Identical metric triples would all survive domination; keep the first
  // of each (deterministic by label through the sort above).
  std::vector<EvaluatedCandidate> unique;
  for (auto& candidate : frontier) {
    const bool duplicate =
        !unique.empty() && unique.back().outlays == candidate.outlays &&
        unique.back().worstRecoveryTime == candidate.worstRecoveryTime &&
        unique.back().worstDataLoss == candidate.worstDataLoss;
    if (!duplicate) unique.push_back(std::move(candidate));
  }
  return unique;
}

std::vector<ScenarioCase> caseStudyScenarios() {
  return {
      ScenarioCase{"object failure", casestudy::objectFailure(), 1.0},
      ScenarioCase{"array failure", casestudy::arrayFailure(), 1.0},
      ScenarioCase{"site disaster", casestudy::siteDisaster(), 1.0},
  };
}

}  // namespace stordep::optimizer
