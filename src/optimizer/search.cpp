#include "optimizer/search.hpp"

#include <algorithm>

#include "casestudy/casestudy.hpp"

namespace stordep::optimizer {

namespace {

/// Shared scenario-set preparation: fingerprints hoisted out of the
/// candidate loop (the same scenarios are paired with every candidate).
std::vector<engine::Fingerprint> fingerprintScenarios(
    const std::vector<ScenarioCase>& scenarios) {
  std::vector<engine::Fingerprint> fps;
  fps.reserve(scenarios.size());
  for (const ScenarioCase& sc : scenarios) {
    fps.push_back(engine::fingerprintScenario(sc.scenario));
  }
  return fps;
}

/// Folds one scenario evaluation into the candidate summary. Returns false
/// when the candidate is infeasible and the scenario loop should stop (the
/// same early-out the serial reference takes).
bool foldScenario(EvaluatedCandidate& out, const EvaluationResult& result,
                  const ScenarioCase& sc, bool& outlaysRecorded) {
  if (!result.utilization.feasible()) {
    out.feasible = false;
    out.rejectionReason = "over-utilized: " + result.utilization.errors[0];
    return false;
  }
  if (!result.recovery.recoverable) {
    out.feasible = false;
    out.rejectionReason = "unrecoverable under scenario '" + sc.name + "'";
    return false;
  }
  if (!result.meetsObjectives) {
    out.meetsObjectives = false;
    out.rejectionReason = "misses RTO/RPO under scenario '" + sc.name + "'";
  }
  if (!outlaysRecorded) {
    out.outlays = result.cost.totalOutlays;  // scenario-independent
    outlaysRecorded = true;
  }
  out.weightedPenalties += result.cost.totalPenalties * sc.weight;
  out.worstRecoveryTime =
      std::max(out.worstRecoveryTime, result.recovery.recoveryTime);
  out.worstDataLoss = std::max(out.worstDataLoss, result.recovery.dataLoss);
  return true;
}

EvaluatedCandidate evaluateCandidateImpl(
    const CandidateSpec& spec, const WorkloadSpec& workload,
    const BusinessRequirements& business,
    const std::vector<ScenarioCase>& scenarios, engine::Engine& eng,
    const std::vector<engine::Fingerprint>& scenarioFps) {
  EvaluatedCandidate out;
  out.spec = spec;
  out.label = spec.label();
  out.feasible = true;
  out.meetsObjectives = true;

  const StorageDesign design = spec.build(workload, business);
  const engine::Fingerprint designFp = engine::fingerprintDesign(design);
  // Scenario-independent sub-models (utilization, outlays, warnings) are
  // computed at most once per candidate, and only if some scenario misses
  // the cache.
  std::optional<DesignPrecomputation> precomputed;
  bool outlaysRecorded = false;

  for (std::size_t j = 0; j < scenarios.size(); ++j) {
    const EvaluationResult result =
        eng.evaluateKeyed(design, scenarios[j].scenario,
                          engine::combine(designFp, scenarioFps[j]),
                          precomputed);
    if (!foldScenario(out, result, scenarios[j], outlaysRecorded)) break;
  }
  out.totalCost = out.outlays + out.weightedPenalties;
  return out;
}

/// Deterministic ranking shared by all search paths.
void rankCandidates(SearchResult& result,
                    std::vector<EvaluatedCandidate> evaluated) {
  for (EvaluatedCandidate& candidate : evaluated) {
    ++result.evaluated;
    if (candidate.feasible && candidate.meetsObjectives) {
      result.ranked.push_back(std::move(candidate));
    } else {
      result.rejected.push_back(std::move(candidate));
    }
  }
  std::sort(result.ranked.begin(), result.ranked.end(),
            [](const EvaluatedCandidate& a, const EvaluatedCandidate& b) {
              if (a.totalCost != b.totalCost) return a.totalCost < b.totalCost;
              return a.label < b.label;  // deterministic tie-break
            });
}

}  // namespace

EvaluatedCandidate evaluateCandidate(
    const CandidateSpec& spec, const WorkloadSpec& workload,
    const BusinessRequirements& business,
    const std::vector<ScenarioCase>& scenarios, engine::Engine* eng) {
  engine::Engine& resolved = eng != nullptr ? *eng : engine::Engine::shared();
  return evaluateCandidateImpl(spec, workload, business, scenarios, resolved,
                               fingerprintScenarios(scenarios));
}

SearchResult searchDesignSpace(const std::vector<CandidateSpec>& candidates,
                               const WorkloadSpec& workload,
                               const BusinessRequirements& business,
                               const std::vector<ScenarioCase>& scenarios,
                               engine::Engine* eng) {
  engine::Engine& resolved = eng != nullptr ? *eng : engine::Engine::shared();
  const std::vector<engine::Fingerprint> scenarioFps =
      fingerprintScenarios(scenarios);

  // Fan out at candidate granularity; every result lands in its own slot,
  // so the ranking below sees exactly the serial order.
  std::vector<EvaluatedCandidate> evaluated(candidates.size());
  resolved.parallelFor(candidates.size(), [&](std::size_t i) {
    evaluated[i] = evaluateCandidateImpl(candidates[i], workload, business,
                                         scenarios, resolved, scenarioFps);
  });

  SearchResult result;
  rankCandidates(result, std::move(evaluated));
  return result;
}

SearchResult searchDesignSpaceSerial(
    const std::vector<CandidateSpec>& candidates, const WorkloadSpec& workload,
    const BusinessRequirements& business,
    const std::vector<ScenarioCase>& scenarios) {
  std::vector<EvaluatedCandidate> evaluated;
  evaluated.reserve(candidates.size());
  for (const CandidateSpec& spec : candidates) {
    EvaluatedCandidate out;
    out.spec = spec;
    out.label = spec.label();
    out.feasible = true;
    out.meetsObjectives = true;

    const StorageDesign design = spec.build(workload, business);
    bool outlaysRecorded = false;
    for (const ScenarioCase& sc : scenarios) {
      const EvaluationResult result = evaluate(design, sc.scenario);
      if (!foldScenario(out, result, sc, outlaysRecorded)) break;
    }
    out.totalCost = out.outlays + out.weightedPenalties;
    evaluated.push_back(std::move(out));
  }

  SearchResult result;
  rankCandidates(result, std::move(evaluated));
  return result;
}

std::vector<EvaluatedCandidate> paretoFrontier(
    const std::vector<EvaluatedCandidate>& candidates) {
  auto dominates = [](const EvaluatedCandidate& a,
                      const EvaluatedCandidate& b) {
    const bool geAll = a.outlays <= b.outlays &&
                       a.worstRecoveryTime <= b.worstRecoveryTime &&
                       a.worstDataLoss <= b.worstDataLoss;
    const bool gtAny = a.outlays < b.outlays ||
                       a.worstRecoveryTime < b.worstRecoveryTime ||
                       a.worstDataLoss < b.worstDataLoss;
    return geAll && gtAny;
  };

  std::vector<EvaluatedCandidate> frontier;
  for (const EvaluatedCandidate& candidate : candidates) {
    if (!candidate.feasible) continue;
    bool dominated = false;
    for (const EvaluatedCandidate& other : candidates) {
      if (!other.feasible) continue;
      if (dominates(other, candidate)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(candidate);
  }
  std::sort(frontier.begin(), frontier.end(),
            [](const EvaluatedCandidate& a, const EvaluatedCandidate& b) {
              if (a.outlays != b.outlays) return a.outlays < b.outlays;
              return a.label < b.label;
            });
  // Identical metric triples would all survive domination; keep the first
  // of each (deterministic by label through the sort above).
  std::vector<EvaluatedCandidate> unique;
  for (auto& candidate : frontier) {
    const bool duplicate =
        !unique.empty() && unique.back().outlays == candidate.outlays &&
        unique.back().worstRecoveryTime == candidate.worstRecoveryTime &&
        unique.back().worstDataLoss == candidate.worstDataLoss;
    if (!duplicate) unique.push_back(std::move(candidate));
  }
  return unique;
}

std::vector<ScenarioCase> caseStudyScenarios() {
  return {
      ScenarioCase{"object failure", casestudy::objectFailure(), 1.0},
      ScenarioCase{"array failure", casestudy::arrayFailure(), 1.0},
      ScenarioCase{"site disaster", casestudy::siteDisaster(), 1.0},
  };
}

}  // namespace stordep::optimizer
