// checkpoint.hpp — crash-safe journaling of design-space search progress.
//
// A long sweep (thousands of candidates, expensive scenario sets, possibly
// wall-clock deadlines) should not lose its work to a crash, a kill -9 or a
// deliberate cancellation. CheckpointJournal gives searchDesignSpace an
// append-only JSONL file of completed candidate evaluations:
//
//   line 1:  {"format": "stordep-checkpoint-v1", "context": "<32 hex>"}
//   line 2+: {"key": "<32 hex>", "result": { ...EvaluatedCandidate... }}
//
// `context` fingerprints the search inputs (workload, business requirements,
// scenario set with weights) so a journal is only ever resumed against the
// sweep that wrote it; `key` is the canonical fingerprint of one
// CandidateSpec. On open, an existing journal with a matching context is
// loaded — a truncated final line (the crash case: the process died
// mid-append) is tolerated and dropped — and the file is compacted via
// write-temp-then-rename so new appends never land after a partial record.
// A mismatched or unreadable journal is discarded and the file restarted.
//
// Numbers round-trip exactly: finite doubles survive the JSON layer's
// shortest-exact formatting bit-for-bit, and non-finite values (infinite
// recovery times) are encoded as the strings "inf"/"-inf"/"nan" because
// JSON itself cannot carry them. A resumed search therefore reproduces the
// exact ranking of an uninterrupted run.
//
// Only error-free evaluations are journaled: a candidate that failed with a
// transient fault is re-attempted on resume rather than pinned to its error.
#pragma once

#include <cstddef>
#include <fstream>
#include <mutex>
#include <string>
#include <unordered_map>

#include "config/json.hpp"
#include "engine/fingerprint.hpp"
#include "optimizer/search.hpp"

namespace stordep::optimizer {

/// Canonical JSON for a candidate spec (enum names, windows in seconds);
/// the basis of its checkpoint key.
[[nodiscard]] config::Json candidateSpecToJson(const CandidateSpec& spec);

/// Checkpoint key: fingerprint of the candidate's canonical JSON.
[[nodiscard]] engine::Fingerprint fingerprintCandidate(
    const CandidateSpec& spec);

/// Context fingerprint over everything (besides the candidate list) that
/// determines an evaluation: workload, business requirements, and the
/// scenario set with names and weights.
[[nodiscard]] engine::Fingerprint fingerprintSearchContext(
    const WorkloadSpec& workload, const BusinessRequirements& business,
    const std::vector<ScenarioCase>& scenarios);

/// Round-trip of one completed evaluation (everything but `spec`, which the
/// resuming search re-attaches from its own candidate list, and `error`,
/// which is never journaled). Non-finite quantities are string-encoded.
[[nodiscard]] config::Json evaluatedCandidateToJson(
    const EvaluatedCandidate& candidate);
[[nodiscard]] EvaluatedCandidate evaluatedCandidateFromJson(
    const config::Json& value);

class CheckpointJournal {
 public:
  /// Opens (or creates) the journal at `path` for the given search context.
  /// Existing records with a matching context are loaded and the file is
  /// compacted; anything else (missing file, wrong context, corrupt header)
  /// starts an empty journal. `flushEvery` bounds how many records may sit
  /// unflushed (1 = fsync-ish durability per record, larger = cheaper).
  /// Throws config::DesignIoError when the file cannot be (re)written.
  CheckpointJournal(std::string path, const engine::Fingerprint& context,
                    std::size_t flushEvery = 16);
  ~CheckpointJournal();

  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;

  /// The completed evaluation for `key`, or nullptr. (Pointer stays valid
  /// until the journal is destroyed; record() never rewrites loaded slots.)
  [[nodiscard]] const EvaluatedCandidate* find(
      const engine::Fingerprint& key) const;

  /// Appends one completed evaluation. Thread-safe; duplicate keys are
  /// ignored (first record wins, matching the deterministic evaluator).
  void record(const engine::Fingerprint& key,
              const EvaluatedCandidate& candidate);

  void flush();

  /// Records currently held (resumed + newly recorded).
  [[nodiscard]] std::size_t size() const;
  /// Records loaded from disk when the journal was opened.
  [[nodiscard]] std::size_t resumed() const noexcept { return resumed_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  void appendLocked(const engine::Fingerprint& key,
                    const EvaluatedCandidate& candidate);

  mutable std::mutex mu_;
  std::string path_;
  std::size_t flushEvery_;
  std::size_t sinceFlush_ = 0;
  std::size_t resumed_ = 0;
  std::ofstream out_;
  std::unordered_map<engine::Fingerprint, EvaluatedCandidate,
                     engine::FingerprintHash>
      records_;
};

}  // namespace stordep::optimizer
