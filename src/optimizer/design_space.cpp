#include "optimizer/design_space.hpp"

#include <algorithm>
#include <sstream>

#include "casestudy/casestudy.hpp"
#include "core/techniques/backup.hpp"
#include "core/techniques/remote_mirror.hpp"
#include "core/techniques/snapshot.hpp"
#include "core/techniques/split_mirror.hpp"
#include "core/techniques/vaulting.hpp"
#include "devices/catalog.hpp"

namespace stordep::optimizer {

std::string toString(PitChoice choice) {
  switch (choice) {
    case PitChoice::kNone:
      return "no-pit";
    case PitChoice::kSnapshot:
      return "snapshot";
    case PitChoice::kSplitMirror:
      return "split-mirror";
  }
  return "?";
}

std::string toString(BackupChoice choice) {
  switch (choice) {
    case BackupChoice::kNone:
      return "no-backup";
    case BackupChoice::kFullOnly:
      return "full";
    case BackupChoice::kFullPlusIncremental:
      return "full+incr";
  }
  return "?";
}

std::string toString(MirrorChoice choice) {
  switch (choice) {
    case MirrorChoice::kNone:
      return "no-mirror";
    case MirrorChoice::kSync:
      return "sync-mirror";
    case MirrorChoice::kAsync:
      return "async-mirror";
    case MirrorChoice::kAsyncBatch:
      return "asyncB-mirror";
  }
  return "?";
}

std::string CandidateSpec::label() const {
  std::ostringstream os;
  bool first = true;
  auto sep = [&] {
    if (!first) os << " + ";
    first = false;
  };
  if (pit != PitChoice::kNone) {
    sep();
    os << toString(pit) << "(" << toString(pitAccW) << " x"
       << pitRetentionCount << ")";
  }
  if (backup != BackupChoice::kNone) {
    sep();
    os << toString(backup) << "(" << toString(backupAccW) << ")";
    if (vault) os << " + vault(" << toString(vaultAccW) << ")";
  }
  if (mirror != MirrorChoice::kNone) {
    sep();
    os << toString(mirror) << "(" << mirrorLinkCount
       << (mirrorLinkCount == 1 ? " link)" : " links)");
  }
  if (first) os << "primary-only";
  return os.str();
}

bool CandidateSpec::valid() const {
  if (vault && backup == BackupChoice::kNone) return false;
  if (pit == PitChoice::kNone && backup == BackupChoice::kNone &&
      mirror == MirrorChoice::kNone) {
    return false;  // no protection at all
  }
  // Backup needs a PiT technique for a consistent source image (the paper's
  // backup model assumes one).
  if (backup != BackupChoice::kNone && pit == PitChoice::kNone) return false;
  if (pit != PitChoice::kNone &&
      (!(pitAccW.secs() > 0) || pitRetentionCount < 1)) {
    return false;
  }
  if (backup != BackupChoice::kNone && !(backupAccW.secs() > 0)) return false;
  if (backup == BackupChoice::kFullPlusIncremental &&
      backupAccW < hours(48)) {
    return false;  // no room for daily incrementals inside the cycle
  }
  if (vault && vaultAccW < backupAccW) return false;
  if (mirror != MirrorChoice::kNone && mirrorLinkCount < 1) return false;
  return true;
}

StorageDesign CandidateSpec::build(const WorkloadSpec& workload,
                                   const BusinessRequirements& business) const {
  namespace cs = casestudy;
  if (!valid()) {
    throw DesignError("cannot build invalid candidate: " + label());
  }

  auto array =
      catalog::midrangeDiskArray(cs::kPrimaryArrayName,
                                 Location::at(cs::kPrimarySite));
  std::vector<TechniquePtr> levels;
  levels.push_back(std::make_shared<PrimaryCopy>(array));

  if (pit != PitChoice::kNone) {
    const ProtectionPolicy policy(
        WindowSpec{.accW = pitAccW,
                   .propW = Duration::zero(),
                   .holdW = Duration::zero(),
                   .propRep = pit == PitChoice::kSnapshot
                                  ? Representation::kPartial
                                  : Representation::kFull},
        pitRetentionCount, pitAccW * static_cast<double>(pitRetentionCount),
        pit == PitChoice::kSnapshot ? Representation::kPartial
                                    : Representation::kFull);
    if (pit == PitChoice::kSnapshot) {
      levels.push_back(
          std::make_shared<VirtualSnapshot>("snapshot", array, policy));
    } else {
      levels.push_back(
          std::make_shared<SplitMirror>("split mirror", array, policy));
    }
  }

  if (mirror != MirrorChoice::kNone) {
    auto remote = catalog::midrangeDiskArray("mirror-array",
                                             Location::at(cs::kMirrorSite),
                                             RaidLevel::kRaid1,
                                             SpareSpec::none());
    auto links = catalog::oc3WanLinks("wan-links", Location::at("wide-area"),
                                      mirrorLinkCount);
    ProtectionPolicy policy = continuousMirrorPolicy();
    MirrorMode mode = MirrorMode::kSync;
    if (mirror == MirrorChoice::kAsync) {
      mode = MirrorMode::kAsync;
    } else if (mirror == MirrorChoice::kAsyncBatch) {
      mode = MirrorMode::kAsyncBatch;
      policy = ProtectionPolicy(WindowSpec{.accW = minutes(1),
                                           .propW = minutes(1),
                                           .holdW = Duration::zero(),
                                           .propRep = Representation::kPartial},
                                1, minutes(1));
    }
    levels.push_back(std::make_shared<RemoteMirror>(
        toString(mirror), mode, array, remote, links, std::move(policy)));
  }

  if (backup != BackupChoice::kNone) {
    auto library = catalog::enterpriseTapeLibrary(
        "tape-library", Location::at(cs::kPrimarySite));
    const Duration propW = std::min(backupAccW * 0.5, hours(48));
    const Duration retW = weeks(4);
    const int retCnt = std::max(
        1, static_cast<int>(retW / backupAccW));
    ProtectionPolicy policy =
        backup == BackupChoice::kFullOnly
            ? ProtectionPolicy(WindowSpec{.accW = backupAccW,
                                          .propW = propW,
                                          .holdW = hours(1)},
                               retCnt, retW)
            : ProtectionPolicy(
                  WindowSpec{.accW = backupAccW,
                             .propW = propW,
                             .holdW = hours(1)},
                  WindowSpec{.accW = hours(24),
                             .propW = hours(12),
                             .holdW = hours(1),
                             .propRep = Representation::kPartial},
                  std::max(1, static_cast<int>(backupAccW / hours(24)) - 1),
                  backupAccW, retCnt, retW);
    levels.push_back(std::make_shared<Backup>(
        "tape backup",
        backup == BackupChoice::kFullOnly
            ? BackupStyle::kFullOnly
            : BackupStyle::kCumulativeIncremental,
        array, library, policy));

    if (vault) {
      auto vaultDevice = catalog::offsiteTapeVault(
          "tape-vault", Location::at(cs::kVaultSite));
      auto shipment = catalog::overnightAirShipment(
          "air-shipment", Location::at("in-transit"));
      const int vaultRetCnt = std::max(
          1, static_cast<int>(years(3) / vaultAccW));
      const ProtectionPolicy vaultPolicy(
          WindowSpec{.accW = vaultAccW,
                     .propW = hours(24),
                     .holdW = hours(12)},
          vaultRetCnt, years(3));
      levels.push_back(std::make_shared<Vaulting>(
          "remote vaulting", library, vaultDevice, shipment, vaultPolicy,
          retW));
    }
  }

  return StorageDesign(label(), workload, business, std::move(levels),
                       cs::recoveryFacility());
}

std::vector<CandidateSpec> enumerateDesignSpace(
    const DesignSpaceOptions& options) {
  std::vector<CandidateSpec> out;
  for (PitChoice pit : options.pitChoices) {
    const auto pitAccWs = pit == PitChoice::kNone
                              ? std::vector<Duration>{hours(12)}
                              : options.pitAccWs;
    const auto pitRets = pit == PitChoice::kNone
                             ? std::vector<int>{1}
                             : options.pitRetentionCounts;
    for (Duration pitAccW : pitAccWs) {
      for (int pitRet : pitRets) {
        for (BackupChoice backup : options.backupChoices) {
          const auto backupAccWs = backup == BackupChoice::kNone
                                       ? std::vector<Duration>{weeks(1)}
                                       : options.backupAccWs;
          for (Duration backupAccW : backupAccWs) {
            const std::vector<bool> vaultChoices =
                backup == BackupChoice::kNone ? std::vector<bool>{false}
                                              : std::vector<bool>{false, true};
            for (bool vault : vaultChoices) {
              const auto vaultAccWs = vault ? options.vaultAccWs
                                            : std::vector<Duration>{weeks(4)};
              for (Duration vaultAccW : vaultAccWs) {
                for (MirrorChoice mirror : options.mirrorChoices) {
                  const auto linkCounts =
                      mirror == MirrorChoice::kNone
                          ? std::vector<int>{1}
                          : options.mirrorLinkCounts;
                  for (int links : linkCounts) {
                    CandidateSpec spec;
                    spec.pit = pit;
                    spec.pitAccW = pitAccW;
                    spec.pitRetentionCount = pitRet;
                    spec.backup = backup;
                    spec.backupAccW = backupAccW;
                    spec.vault = vault;
                    spec.vaultAccW = vaultAccW;
                    spec.mirror = mirror;
                    spec.mirrorLinkCount = links;
                    if (spec.valid()) out.push_back(spec);
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace stordep::optimizer
