#include "optimizer/design_space.hpp"

#include <algorithm>
#include <sstream>

#include "casestudy/casestudy.hpp"
#include "core/techniques/backup.hpp"
#include "core/techniques/remote_mirror.hpp"
#include "core/techniques/snapshot.hpp"
#include "core/techniques/split_mirror.hpp"
#include "core/techniques/vaulting.hpp"
#include "devices/catalog.hpp"

namespace stordep::optimizer {

std::string toString(PitChoice choice) {
  switch (choice) {
    case PitChoice::kNone:
      return "no-pit";
    case PitChoice::kSnapshot:
      return "snapshot";
    case PitChoice::kSplitMirror:
      return "split-mirror";
  }
  return "?";
}

std::string toString(BackupChoice choice) {
  switch (choice) {
    case BackupChoice::kNone:
      return "no-backup";
    case BackupChoice::kFullOnly:
      return "full";
    case BackupChoice::kFullPlusIncremental:
      return "full+incr";
  }
  return "?";
}

std::string toString(MirrorChoice choice) {
  switch (choice) {
    case MirrorChoice::kNone:
      return "no-mirror";
    case MirrorChoice::kSync:
      return "sync-mirror";
    case MirrorChoice::kAsync:
      return "async-mirror";
    case MirrorChoice::kAsyncBatch:
      return "asyncB-mirror";
  }
  return "?";
}

std::string CandidateSpec::label() const {
  std::ostringstream os;
  bool first = true;
  auto sep = [&] {
    if (!first) os << " + ";
    first = false;
  };
  if (pit != PitChoice::kNone) {
    sep();
    os << toString(pit) << "(" << toString(pitAccW) << " x"
       << pitRetentionCount << ")";
  }
  if (backup != BackupChoice::kNone) {
    sep();
    os << toString(backup) << "(" << toString(backupAccW) << ")";
    if (vault) os << " + vault(" << toString(vaultAccW) << ")";
  }
  if (mirror != MirrorChoice::kNone) {
    sep();
    os << toString(mirror) << "(" << mirrorLinkCount
       << (mirrorLinkCount == 1 ? " link)" : " links)");
  }
  if (first) os << "primary-only";
  return os.str();
}

bool CandidateSpec::valid() const {
  if (vault && backup == BackupChoice::kNone) return false;
  if (pit == PitChoice::kNone && backup == BackupChoice::kNone &&
      mirror == MirrorChoice::kNone) {
    return false;  // no protection at all
  }
  // Backup needs a PiT technique for a consistent source image (the paper's
  // backup model assumes one).
  if (backup != BackupChoice::kNone && pit == PitChoice::kNone) return false;
  if (pit != PitChoice::kNone &&
      (!(pitAccW.secs() > 0) || pitRetentionCount < 1)) {
    return false;
  }
  if (backup != BackupChoice::kNone && !(backupAccW.secs() > 0)) return false;
  if (backup == BackupChoice::kFullPlusIncremental &&
      backupAccW < hours(48)) {
    return false;  // no room for daily incrementals inside the cycle
  }
  if (vault && vaultAccW < backupAccW) return false;
  if (mirror != MirrorChoice::kNone && mirrorLinkCount < 1) return false;
  return true;
}

StorageDesign CandidateSpec::build(const WorkloadSpec& workload,
                                   const BusinessRequirements& business) const {
  namespace cs = casestudy;
  if (!valid()) {
    throw DesignError("cannot build invalid candidate: " + label());
  }

  auto array =
      catalog::midrangeDiskArray(cs::kPrimaryArrayName,
                                 Location::at(cs::kPrimarySite));
  std::vector<TechniquePtr> levels;
  levels.push_back(std::make_shared<PrimaryCopy>(array));

  if (pit != PitChoice::kNone) {
    const ProtectionPolicy policy(
        WindowSpec{.accW = pitAccW,
                   .propW = Duration::zero(),
                   .holdW = Duration::zero(),
                   .propRep = pit == PitChoice::kSnapshot
                                  ? Representation::kPartial
                                  : Representation::kFull},
        pitRetentionCount, pitAccW * static_cast<double>(pitRetentionCount),
        pit == PitChoice::kSnapshot ? Representation::kPartial
                                    : Representation::kFull);
    if (pit == PitChoice::kSnapshot) {
      levels.push_back(
          std::make_shared<VirtualSnapshot>("snapshot", array, policy));
    } else {
      levels.push_back(
          std::make_shared<SplitMirror>("split mirror", array, policy));
    }
  }

  if (mirror != MirrorChoice::kNone) {
    auto remote = catalog::midrangeDiskArray("mirror-array",
                                             Location::at(cs::kMirrorSite),
                                             RaidLevel::kRaid1,
                                             SpareSpec::none());
    auto links = catalog::oc3WanLinks("wan-links", Location::at("wide-area"),
                                      mirrorLinkCount);
    ProtectionPolicy policy = continuousMirrorPolicy();
    MirrorMode mode = MirrorMode::kSync;
    if (mirror == MirrorChoice::kAsync) {
      mode = MirrorMode::kAsync;
    } else if (mirror == MirrorChoice::kAsyncBatch) {
      mode = MirrorMode::kAsyncBatch;
      policy = ProtectionPolicy(WindowSpec{.accW = minutes(1),
                                           .propW = minutes(1),
                                           .holdW = Duration::zero(),
                                           .propRep = Representation::kPartial},
                                1, minutes(1));
    }
    levels.push_back(std::make_shared<RemoteMirror>(
        toString(mirror), mode, array, remote, links, std::move(policy)));
  }

  if (backup != BackupChoice::kNone) {
    auto library = catalog::enterpriseTapeLibrary(
        "tape-library", Location::at(cs::kPrimarySite));
    const Duration propW = std::min(backupAccW * 0.5, hours(48));
    const Duration retW = weeks(4);
    const int retCnt = std::max(
        1, static_cast<int>(retW / backupAccW));
    ProtectionPolicy policy =
        backup == BackupChoice::kFullOnly
            ? ProtectionPolicy(WindowSpec{.accW = backupAccW,
                                          .propW = propW,
                                          .holdW = hours(1)},
                               retCnt, retW)
            : ProtectionPolicy(
                  WindowSpec{.accW = backupAccW,
                             .propW = propW,
                             .holdW = hours(1)},
                  WindowSpec{.accW = hours(24),
                             .propW = hours(12),
                             .holdW = hours(1),
                             .propRep = Representation::kPartial},
                  std::max(1, static_cast<int>(backupAccW / hours(24)) - 1),
                  backupAccW, retCnt, retW);
    levels.push_back(std::make_shared<Backup>(
        "tape backup",
        backup == BackupChoice::kFullOnly
            ? BackupStyle::kFullOnly
            : BackupStyle::kCumulativeIncremental,
        array, library, policy));

    if (vault) {
      auto vaultDevice = catalog::offsiteTapeVault(
          "tape-vault", Location::at(cs::kVaultSite));
      auto shipment = catalog::overnightAirShipment(
          "air-shipment", Location::at("in-transit"));
      const int vaultRetCnt = std::max(
          1, static_cast<int>(years(3) / vaultAccW));
      const ProtectionPolicy vaultPolicy(
          WindowSpec{.accW = vaultAccW,
                     .propW = hours(24),
                     .holdW = hours(12)},
          vaultRetCnt, years(3));
      levels.push_back(std::make_shared<Vaulting>(
          "remote vaulting", library, vaultDevice, shipment, vaultPolicy,
          retW));
    }
  }

  return StorageDesign(label(), workload, business, std::move(levels),
                       cs::recoveryFacility());
}

std::uint64_t gridCardinality(const DesignSpaceOptions& options) {
  // The same axis collapsing the enumeration applies: a kNone choice
  // collapses its dependent axes to a single point.
  std::uint64_t total = 0;
  for (PitChoice pit : options.pitChoices) {
    const std::uint64_t pitN =
        pit == PitChoice::kNone
            ? 1
            : static_cast<std::uint64_t>(options.pitAccWs.size()) *
                  options.pitRetentionCounts.size();
    for (BackupChoice backup : options.backupChoices) {
      const std::uint64_t backupN =
          backup == BackupChoice::kNone ? 1 : options.backupAccWs.size();
      const std::uint64_t vaultN =
          backup == BackupChoice::kNone ? 1 : 1 + options.vaultAccWs.size();
      for (MirrorChoice mirror : options.mirrorChoices) {
        const std::uint64_t mirrorN = mirror == MirrorChoice::kNone
                                          ? 1
                                          : options.mirrorLinkCounts.size();
        total += pitN * backupN * vaultN * mirrorN;
      }
    }
  }
  return total;
}

DesignSpaceCursor::DesignSpaceCursor(DesignSpaceOptions options)
    : options_(std::move(options)) {}

std::size_t DesignSpaceCursor::extent(int digit) const {
  // Digit order (outer to inner) mirrors the nested enumeration loops;
  // collapsed axes have extent 1, their value pinned by specAt().
  switch (digit) {
    case 0:
      return options_.pitChoices.size();
    case 1:
      return options_.pitChoices[idx_[0]] == PitChoice::kNone
                 ? 1
                 : options_.pitAccWs.size();
    case 2:
      return options_.pitChoices[idx_[0]] == PitChoice::kNone
                 ? 1
                 : options_.pitRetentionCounts.size();
    case 3:
      return options_.backupChoices.size();
    case 4:
      return options_.backupChoices[idx_[3]] == BackupChoice::kNone
                 ? 1
                 : options_.backupAccWs.size();
    case 5:  // vault: {false} or {false, true}
      return options_.backupChoices[idx_[3]] == BackupChoice::kNone ? 1 : 2;
    case 6:
      return idx_[5] == 1 ? options_.vaultAccWs.size() : 1;
    case 7:
      return options_.mirrorChoices.size();
    default:
      return options_.mirrorChoices[idx_[7]] == MirrorChoice::kNone
                 ? 1
                 : options_.mirrorLinkCounts.size();
  }
}

CandidateSpec DesignSpaceCursor::specAt() const {
  CandidateSpec spec;
  spec.pit = options_.pitChoices[idx_[0]];
  const bool hasPit = spec.pit != PitChoice::kNone;
  spec.pitAccW = hasPit ? options_.pitAccWs[idx_[1]] : hours(12);
  spec.pitRetentionCount = hasPit ? options_.pitRetentionCounts[idx_[2]] : 1;
  spec.backup = options_.backupChoices[idx_[3]];
  const bool hasBackup = spec.backup != BackupChoice::kNone;
  spec.backupAccW = hasBackup ? options_.backupAccWs[idx_[4]] : weeks(1);
  spec.vault = hasBackup && idx_[5] == 1;
  spec.vaultAccW = spec.vault ? options_.vaultAccWs[idx_[6]] : weeks(4);
  spec.mirror = options_.mirrorChoices[idx_[7]];
  spec.mirrorLinkCount = spec.mirror == MirrorChoice::kNone
                             ? 1
                             : options_.mirrorLinkCounts[idx_[8]];
  return spec;
}

bool DesignSpaceCursor::positionFrom(int from) {
  // Iterative (not recursive): an empty inner axis under a long run of
  // outer values must not deepen the stack per skipped prefix.
  int digit = from;
  while (digit < kDepth) {
    if (extent(digit) > 0) {
      idx_[static_cast<std::size_t>(digit)] = 0;
      ++digit;
      continue;
    }
    // No point exists under the current prefix: advance the nearest outer
    // digit that can still move and restart positioning below it.
    int outer = digit - 1;
    while (outer >= 0 &&
           idx_[static_cast<std::size_t>(outer)] + 1 >= extent(outer)) {
      --outer;
    }
    if (outer < 0) {
      exhausted_ = true;
      return false;
    }
    ++idx_[static_cast<std::size_t>(outer)];
    digit = outer + 1;
  }
  return true;
}

bool DesignSpaceCursor::advance() {
  int digit = kDepth - 1;
  while (digit >= 0 &&
         idx_[static_cast<std::size_t>(digit)] + 1 >= extent(digit)) {
    --digit;
  }
  if (digit < 0) {
    exhausted_ = true;
    return false;
  }
  ++idx_[static_cast<std::size_t>(digit)];
  return positionFrom(digit + 1);
}

void DesignSpaceCursor::restrictTo(std::uint64_t begin, std::uint64_t end) {
  rangeBegin_ = begin;
  rangeEnd_ = end;
}

bool DesignSpaceCursor::next(CandidateSpec& out) {
  while (!exhausted_) {
    if (!started_) {
      started_ = true;
      if (!positionFrom(0)) return false;
    } else if (!advance()) {
      return false;
    }
    ++enumerated_;
    // Grid index of the point just visited; a restricted cursor walks (but
    // never produces) points before its range and stops at its end. The
    // skip walk is O(begin) odometer steps — negligible on these grids.
    const std::uint64_t gridIndex = enumerated_ - 1;
    if (gridIndex < rangeBegin_) continue;
    if (gridIndex >= rangeEnd_) {
      exhausted_ = true;
      return false;
    }
    CandidateSpec spec = specAt();
    if (spec.valid()) {
      ++produced_;
      out = spec;
      return true;
    }
  }
  return false;
}

std::vector<CandidateSpec> enumerateDesignSpace(
    const DesignSpaceOptions& options) {
  std::vector<CandidateSpec> out;
  out.reserve(gridCardinality(options));
  DesignSpaceCursor cursor(options);
  CandidateSpec spec;
  while (cursor.next(spec)) out.push_back(spec);
  return out;
}

}  // namespace stordep::optimizer
