#include "optimizer/refine.hpp"

namespace stordep::optimizer {

std::vector<CandidateSpec> neighbors(const CandidateSpec& spec,
                                     const RefineOptions& options) {
  std::vector<CandidateSpec> out;
  auto push = [&](CandidateSpec next) {
    if (next.valid()) out.push_back(std::move(next));
  };

  if (spec.pit != PitChoice::kNone) {
    for (const double f : options.windowFactors) {
      CandidateSpec next = spec;
      next.pitAccW = spec.pitAccW * f;
      push(std::move(next));
    }
    for (const int delta : {-1, +1}) {
      CandidateSpec next = spec;
      next.pitRetentionCount = spec.pitRetentionCount + delta;
      push(std::move(next));
    }
    {
      CandidateSpec next = spec;
      next.pitRetentionCount = spec.pitRetentionCount * 2;
      push(std::move(next));
    }
  }
  if (spec.backup != BackupChoice::kNone) {
    for (const double f : options.windowFactors) {
      CandidateSpec next = spec;
      next.backupAccW = spec.backupAccW * f;
      push(std::move(next));
    }
  }
  if (spec.vault) {
    for (const double f : options.windowFactors) {
      CandidateSpec next = spec;
      next.vaultAccW = spec.vaultAccW * f;
      push(std::move(next));
    }
  }
  if (spec.mirror != MirrorChoice::kNone) {
    for (const int delta : {-1, +1}) {
      CandidateSpec next = spec;
      next.mirrorLinkCount = spec.mirrorLinkCount + delta;
      push(std::move(next));
    }
  }
  return out;
}

RefineResult refineCandidate(const CandidateSpec& start,
                             const WorkloadSpec& workload,
                             const BusinessRequirements& business,
                             const std::vector<ScenarioCase>& scenarios,
                             const RefineOptions& options) {
  RefineResult result;
  result.best = evaluateCandidate(start, workload, business, scenarios);
  ++result.evaluations;
  const Money startCost = result.best.totalCost;
  if (!result.best.feasible) {
    result.improvement = Money::zero();
    return result;
  }

  for (int step = 0; step < options.maxSteps; ++step) {
    const EvaluatedCandidate* accepted = nullptr;
    EvaluatedCandidate bestNeighbor;
    for (const CandidateSpec& next : neighbors(result.best.spec, options)) {
      EvaluatedCandidate evaluated =
          evaluateCandidate(next, workload, business, scenarios);
      ++result.evaluations;
      if (!evaluated.feasible || !evaluated.meetsObjectives) continue;
      if (evaluated.totalCost < result.best.totalCost &&
          (accepted == nullptr ||
           evaluated.totalCost < bestNeighbor.totalCost)) {
        bestNeighbor = std::move(evaluated);
        accepted = &bestNeighbor;
      }
    }
    if (accepted == nullptr) break;  // local optimum
    result.best = std::move(bestNeighbor);
    ++result.steps;
  }
  result.improvement = startCost - result.best.totalCost;
  return result;
}

}  // namespace stordep::optimizer
