#include "optimizer/refine.hpp"

namespace stordep::optimizer {

std::vector<CandidateSpec> neighbors(const CandidateSpec& spec,
                                     const RefineOptions& options) {
  std::vector<CandidateSpec> out;
  // Upper bound on the neighborhood: window-factor moves on up to three
  // axes plus the retention and link-count tweaks.
  out.reserve(3 * options.windowFactors.size() + 5);
  auto push = [&](CandidateSpec next) {
    if (next.valid()) out.push_back(std::move(next));
  };

  if (spec.pit != PitChoice::kNone) {
    for (const double f : options.windowFactors) {
      CandidateSpec next = spec;
      next.pitAccW = spec.pitAccW * f;
      push(std::move(next));
    }
    for (const int delta : {-1, +1}) {
      CandidateSpec next = spec;
      next.pitRetentionCount = spec.pitRetentionCount + delta;
      push(std::move(next));
    }
    {
      CandidateSpec next = spec;
      next.pitRetentionCount = spec.pitRetentionCount * 2;
      push(std::move(next));
    }
  }
  if (spec.backup != BackupChoice::kNone) {
    for (const double f : options.windowFactors) {
      CandidateSpec next = spec;
      next.backupAccW = spec.backupAccW * f;
      push(std::move(next));
    }
  }
  if (spec.vault) {
    for (const double f : options.windowFactors) {
      CandidateSpec next = spec;
      next.vaultAccW = spec.vaultAccW * f;
      push(std::move(next));
    }
  }
  if (spec.mirror != MirrorChoice::kNone) {
    for (const int delta : {-1, +1}) {
      CandidateSpec next = spec;
      next.mirrorLinkCount = spec.mirrorLinkCount + delta;
      push(std::move(next));
    }
  }
  return out;
}

RefineResult refineCandidate(const CandidateSpec& start,
                             const WorkloadSpec& workload,
                             const BusinessRequirements& business,
                             const std::vector<ScenarioCase>& scenarios,
                             const RefineOptions& options,
                             engine::Engine* eng) {
  engine::Engine& resolved = eng != nullptr ? *eng : engine::Engine::shared();

  RefineResult result;
  result.best = evaluateCandidate(start, workload, business, scenarios,
                                  &resolved, options.usePlan);
  ++result.evaluations;
  const Money startCost = result.best.totalCost;
  if (!result.best.feasible) {
    result.improvement = Money::zero();
    return result;
  }

  const bool cancellable = options.token.cancellable();
  for (int step = 0; step < options.maxSteps; ++step) {
    // Poll between steps: the climb stops cleanly at the last accepted
    // move instead of abandoning a half-evaluated neighborhood.
    if (cancellable && options.token.cancelled()) {
      result.cancelled = true;
      break;
    }
    const std::vector<CandidateSpec> moves =
        neighbors(result.best.spec, options);
    // Evaluate the whole neighborhood in parallel, then pick the accepted
    // move serially in neighbor order (first-wins on cost ties), exactly
    // like the serial climb.
    std::vector<EvaluatedCandidate> evaluated(moves.size());
    {
      // Buffer cache writes from any legacy-fallback neighbors per worker
      // (no-op when every neighbor takes the plan path).
      engine::Engine::WriteBehindScope writeBehind(resolved);
      resolved.parallelFor(moves.size(), [&](std::size_t i) {
        evaluated[i] = evaluateCandidate(moves[i], workload, business,
                                         scenarios, &resolved,
                                         options.usePlan);
      });
    }
    result.evaluations += static_cast<int>(moves.size());

    std::size_t accepted = evaluated.size();
    for (std::size_t i = 0; i < evaluated.size(); ++i) {
      const EvaluatedCandidate& candidate = evaluated[i];
      if (!candidate.feasible || !candidate.meetsObjectives) continue;
      if (candidate.totalCost < result.best.totalCost &&
          (accepted == evaluated.size() ||
           candidate.totalCost < evaluated[accepted].totalCost)) {
        accepted = i;
      }
    }
    if (accepted == evaluated.size()) break;  // local optimum
    result.best = std::move(evaluated[accepted]);
    ++result.steps;
  }
  result.improvement = startCost - result.best.totalCost;
  return result;
}

}  // namespace stordep::optimizer
