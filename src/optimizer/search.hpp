// search.hpp — exhaustive evaluation over the design space.
//
// For each candidate design, evaluates every failure scenario in the given
// set, rejects candidates that are infeasible (over-utilized hardware or an
// unrecoverable scenario) or that miss the business RTO/RPO, and ranks the
// survivors by scenario-weighted total cost. This is the paper's "automated
// optimization loop" realized over the analytic models — fast enough to
// evaluate hundreds of candidates in milliseconds.
//
// Evaluation goes through an engine::Engine (src/engine/): candidates fan
// out across the engine's thread pool and every (design, scenario) pair is
// memoized in its result cache, so repeated sweeps (refinement, what-if
// re-runs) mostly hit the cache. The engine-backed path is bit-identical to
// the serial reference (`searchDesignSpaceSerial`): candidates are written
// to indexed slots and ranked by the same deterministic comparison, and
// evaluate() itself is a pure function.
// Robustness: candidate evaluation is isolated — a candidate whose build or
// evaluation fails carries a structured engine::EvalError instead of
// aborting the sweep — and the SearchOptions overload adds cooperative
// cancellation, a wall-clock deadline, transient-failure retries and
// crash-safe checkpoint/resume (optimizer/checkpoint.hpp): completed
// candidates are journaled, and a resumed sweep skips them while producing
// the exact ranking of an uninterrupted run.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "engine/batch.hpp"
#include "optimizer/design_space.hpp"

namespace stordep::optimizer {

/// One scenario to design against, with an importance weight used when
/// combining penalty costs across scenarios.
struct ScenarioCase {
  std::string name;
  FailureScenario scenario;
  double weight = 1.0;
};

/// A candidate with its evaluation summary across all scenarios.
struct EvaluatedCandidate {
  CandidateSpec spec;
  std::string label;
  bool feasible = false;         ///< hardware fits and everything recovers
  bool meetsObjectives = false;  ///< RTO/RPO satisfied in every scenario
  Money outlays;                 ///< annual outlays (scenario-independent)
  Money weightedPenalties;       ///< sum of weight x penalties
  Money totalCost;               ///< outlays + weighted penalties
  Duration worstRecoveryTime;    ///< max across scenarios
  Duration worstDataLoss;        ///< max across scenarios
  std::string rejectionReason;   ///< set when infeasible / objective-missed
  /// Set when the candidate could not be evaluated at all (its build threw,
  /// or an evaluation failed past the retry budget). Errored candidates are
  /// never feasible and land in SearchResult::rejected.
  std::optional<engine::EvalError> error;
};

struct SearchResult {
  /// Feasible, objective-meeting candidates, cheapest first.
  std::vector<EvaluatedCandidate> ranked;
  /// Everything else, with reasons.
  std::vector<EvaluatedCandidate> rejected;
  int evaluated = 0;
  /// Candidates restored from a checkpoint journal instead of re-evaluated.
  int skipped = 0;
  /// Candidates whose evaluation errored (they appear in `rejected` with
  /// EvaluatedCandidate::error set).
  int failed = 0;
  /// True when the sweep stopped early (cancellation or deadline); ranked/
  /// rejected then cover only the candidates that completed — with a
  /// checkpoint journal, a later run resumes the rest.
  bool cancelled = false;
  /// Sweep wall time and throughput (evaluated + skipped per second);
  /// filled by every search path for the perf trajectory.
  double wallSeconds = 0.0;
  double candidatesPerSec = 0.0;

  [[nodiscard]] const EvaluatedCandidate* best() const noexcept {
    return ranked.empty() ? nullptr : &ranked.front();
  }
};

/// What the penalty component of a candidate's total cost measures.
enum class Objective {
  /// The paper's objective: scenario-weighted *worst-case* penalties from
  /// the analytic models. Deterministic, cache-friendly, bit-identical to
  /// the serial reference.
  kWorstCase,
  /// Scenario-weighted *expected* penalties from the Monte-Carlo layer
  /// (stochastic::StochasticEvaluator, fixed seed, serial trials — still
  /// deterministic). Candidates where the simulation is inapplicable (e.g.
  /// cycles longer than the simulated horizon) fall back to their
  /// worst-case penalty, so rankings are always total.
  kExpectedPenalty,
};

/// Knobs for the fault-tolerant search overload (all default to "off").
struct SearchOptions {
  /// Engine to evaluate through (null = Engine::shared()).
  engine::Engine* eng = nullptr;
  /// Cooperative cancellation; polled per candidate.
  engine::CancellationToken token;
  /// Wall-clock budget for the whole sweep (0 = none); candidates not
  /// started before it elapses are left un-evaluated and the result is
  /// marked cancelled.
  std::chrono::milliseconds deadline{0};
  /// Bounded retries for transient evaluation failures.
  int maxRetries = 2;
  std::chrono::milliseconds retryBackoff{1};
  /// Journal file for checkpoint/resume (empty = no journaling). A journal
  /// written by a previous run over the same workload/business/scenarios is
  /// resumed: journaled candidates are skipped, the final ranking is
  /// identical to an uninterrupted sweep.
  std::string checkpointPath;
  /// Journal flush cadence (records per flush).
  std::size_t checkpointEvery = 16;
  /// Streaming sweep only: candidates drained from the cursor per fan-out
  /// wave. Bounds peak memory at O(streamChunk) materialized candidates.
  std::size_t streamChunk = 1024;
  /// Streaming sweep only: called on the sweeping thread after every wave
  /// with the cumulative number of candidates dispatched (evaluated +
  /// resumed from checkpoint) so far. Lets a long sweep report progress
  /// (the service's /v1/search streams one chunk per callback). Must not
  /// throw; keep it cheap — it runs between waves, on the critical path.
  std::function<void(std::size_t done)> onProgress;
  /// Streaming sweep only: called on the sweeping thread after every wave
  /// with the candidates that wave finished (journal-restored ones
  /// included), before they are merged into the final ranking. The cluster
  /// sweep workers stream these back to the coordinator as NDJSON. Same
  /// contract as onProgress: cheap, non-throwing.
  std::function<void(const std::vector<EvaluatedCandidate>& wave)>
      onCandidates;
  /// Streaming sweep only: sleep inserted between waves (0 = none). Exists
  /// for tests and smoke scripts that must kill a node *mid*-sweep
  /// deterministically — pacing the waves keeps the sweep alive long enough
  /// to die at a controlled point.
  std::chrono::milliseconds waveDelay{0};
  /// Ranking objective. kWorstCase leaves every result bit-identical to the
  /// serial reference; kExpectedPenalty replaces the penalty term with the
  /// Monte-Carlo expectation. Checkpoint journals record the penalty totals,
  /// so do not share one journal file across objectives.
  Objective objective = Objective::kWorstCase;
  /// Monte-Carlo trials per (candidate, scenario) for kExpectedPenalty.
  int stochasticTrials = 512;
  /// Root seed for the expected-penalty sampler (same seed -> same ranking).
  std::uint64_t stochasticSeed = 1;
  /// Evaluate candidates through compiled evaluation plans (engine/plan.hpp):
  /// each candidate is compiled once and every scenario folds allocation-free
  /// against the flattened plan, which is what makes the *cold* sweep fast.
  /// Bit-identical to the legacy path by the plan contract (and enforced by
  /// the plan-vs-legacy differential oracle). Automatically ignored — the
  /// keyed legacy path runs instead — for the kExpectedPenalty objective,
  /// when a fault injector is installed, and for any candidate the plan
  /// compiler rejects. Set false to force the legacy cache-backed path (the
  /// benchmarks pin it off for their legacy-reference sections).
  bool usePlan = true;
};

/// Evaluates one candidate against the scenario set. With `usePlan` (the
/// default) the candidate is compiled into an evaluation plan and folded
/// allocation-free; otherwise (or when the design is not plannable, or a
/// fault injector is installed on `eng`) it goes through `eng`'s cache
/// (null = the process-wide Engine::shared()). Both paths are bit-identical.
[[nodiscard]] EvaluatedCandidate evaluateCandidate(
    const CandidateSpec& spec, const WorkloadSpec& workload,
    const BusinessRequirements& business,
    const std::vector<ScenarioCase>& scenarios,
    engine::Engine* eng = nullptr, bool usePlan = true);

/// Evaluates all candidates and ranks them. Candidates fan out across the
/// engine's thread pool; results are identical to the serial reference.
[[nodiscard]] SearchResult searchDesignSpace(
    const std::vector<CandidateSpec>& candidates, const WorkloadSpec& workload,
    const BusinessRequirements& business,
    const std::vector<ScenarioCase>& scenarios,
    engine::Engine* eng = nullptr);

/// The fault-tolerant sweep: per-candidate error isolation, cooperative
/// cancellation and deadline, transient-failure retries, and checkpoint/
/// resume through an append-only journal. With default options it produces
/// exactly the same result as the overload above.
[[nodiscard]] SearchResult searchDesignSpace(
    const std::vector<CandidateSpec>& candidates, const WorkloadSpec& workload,
    const BusinessRequirements& business,
    const std::vector<ScenarioCase>& scenarios, const SearchOptions& options);

/// Streaming sweep: drains `cursor` in SearchOptions::streamChunk-sized
/// waves, fanning each wave across the engine's pool, so a million-point
/// grid is searched in bounded memory (never materialized as a vector).
/// Composes with checkpoint/resume exactly like the vector overload, and
/// the result is identical to searchDesignSpace(enumerateDesignSpace(...)).
[[nodiscard]] SearchResult searchDesignSpaceStreaming(
    DesignSpaceCursor& cursor, const WorkloadSpec& workload,
    const BusinessRequirements& business,
    const std::vector<ScenarioCase>& scenarios,
    const SearchOptions& options = {});

/// The pre-engine reference implementation: one thread, no cache, direct
/// evaluate() calls. Kept as the determinism baseline for tests and the
/// parallel-speedup benchmark.
[[nodiscard]] SearchResult searchDesignSpaceSerial(
    const std::vector<CandidateSpec>& candidates, const WorkloadSpec& workload,
    const BusinessRequirements& business,
    const std::vector<ScenarioCase>& scenarios);

/// Ranks already-evaluated candidates with the deterministic comparison
/// every search path shares (totalCost, then label) and fills the count
/// fields. The cluster sweep merges per-range worker results through this,
/// which is why an N-node sweep ranks bit-identically to one node: the
/// comparison is a total order over the union of the ranges. wallSeconds /
/// candidatesPerSec / skipped / cancelled are left for the caller.
[[nodiscard]] SearchResult rankEvaluated(
    std::vector<EvaluatedCandidate> evaluated);

/// The case study's scenario set (object, array, site), equally weighted.
[[nodiscard]] std::vector<ScenarioCase> caseStudyScenarios();

/// The Pareto-optimal subset of the feasible candidates over the three
/// axes a designer actually trades off — annual outlays, worst recovery
/// time, worst data loss. A candidate is dominated when another is at
/// least as good on all three axes and strictly better on one; penalties
/// are deliberately excluded so the frontier is independent of the penalty
/// rates (picking a point on it is where the rates come back in).
/// Returned sorted by outlays, cheapest first.
[[nodiscard]] std::vector<EvaluatedCandidate> paretoFrontier(
    const std::vector<EvaluatedCandidate>& candidates);

}  // namespace stordep::optimizer
