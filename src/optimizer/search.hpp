// search.hpp — exhaustive evaluation over the design space.
//
// For each candidate design, evaluates every failure scenario in the given
// set, rejects candidates that are infeasible (over-utilized hardware or an
// unrecoverable scenario) or that miss the business RTO/RPO, and ranks the
// survivors by scenario-weighted total cost. This is the paper's "automated
// optimization loop" realized over the analytic models — fast enough to
// evaluate hundreds of candidates in milliseconds.
//
// Evaluation goes through an engine::Engine (src/engine/): candidates fan
// out across the engine's thread pool and every (design, scenario) pair is
// memoized in its result cache, so repeated sweeps (refinement, what-if
// re-runs) mostly hit the cache. The engine-backed path is bit-identical to
// the serial reference (`searchDesignSpaceSerial`): candidates are written
// to indexed slots and ranked by the same deterministic comparison, and
// evaluate() itself is a pure function.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "engine/batch.hpp"
#include "optimizer/design_space.hpp"

namespace stordep::optimizer {

/// One scenario to design against, with an importance weight used when
/// combining penalty costs across scenarios.
struct ScenarioCase {
  std::string name;
  FailureScenario scenario;
  double weight = 1.0;
};

/// A candidate with its evaluation summary across all scenarios.
struct EvaluatedCandidate {
  CandidateSpec spec;
  std::string label;
  bool feasible = false;         ///< hardware fits and everything recovers
  bool meetsObjectives = false;  ///< RTO/RPO satisfied in every scenario
  Money outlays;                 ///< annual outlays (scenario-independent)
  Money weightedPenalties;       ///< sum of weight x penalties
  Money totalCost;               ///< outlays + weighted penalties
  Duration worstRecoveryTime;    ///< max across scenarios
  Duration worstDataLoss;        ///< max across scenarios
  std::string rejectionReason;   ///< set when infeasible / objective-missed
};

struct SearchResult {
  /// Feasible, objective-meeting candidates, cheapest first.
  std::vector<EvaluatedCandidate> ranked;
  /// Everything else, with reasons.
  std::vector<EvaluatedCandidate> rejected;
  int evaluated = 0;

  [[nodiscard]] const EvaluatedCandidate* best() const noexcept {
    return ranked.empty() ? nullptr : &ranked.front();
  }
};

/// Evaluates one candidate against the scenario set, through `eng`'s cache
/// (null = the process-wide Engine::shared()).
[[nodiscard]] EvaluatedCandidate evaluateCandidate(
    const CandidateSpec& spec, const WorkloadSpec& workload,
    const BusinessRequirements& business,
    const std::vector<ScenarioCase>& scenarios,
    engine::Engine* eng = nullptr);

/// Evaluates all candidates and ranks them. Candidates fan out across the
/// engine's thread pool; results are identical to the serial reference.
[[nodiscard]] SearchResult searchDesignSpace(
    const std::vector<CandidateSpec>& candidates, const WorkloadSpec& workload,
    const BusinessRequirements& business,
    const std::vector<ScenarioCase>& scenarios,
    engine::Engine* eng = nullptr);

/// The pre-engine reference implementation: one thread, no cache, direct
/// evaluate() calls. Kept as the determinism baseline for tests and the
/// parallel-speedup benchmark.
[[nodiscard]] SearchResult searchDesignSpaceSerial(
    const std::vector<CandidateSpec>& candidates, const WorkloadSpec& workload,
    const BusinessRequirements& business,
    const std::vector<ScenarioCase>& scenarios);

/// The case study's scenario set (object, array, site), equally weighted.
[[nodiscard]] std::vector<ScenarioCase> caseStudyScenarios();

/// The Pareto-optimal subset of the feasible candidates over the three
/// axes a designer actually trades off — annual outlays, worst recovery
/// time, worst data loss. A candidate is dominated when another is at
/// least as good on all three axes and strictly better on one; penalties
/// are deliberately excluded so the frontier is independent of the penalty
/// rates (picking a point on it is where the rates come back in).
/// Returned sorted by outlays, cheapest first.
[[nodiscard]] std::vector<EvaluatedCandidate> paretoFrontier(
    const std::vector<EvaluatedCandidate>& candidates);

}  // namespace stordep::optimizer
