#include "optimizer/checkpoint.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <limits>
#include <utility>

#include "config/design_io.hpp"

namespace stordep::optimizer {

namespace {

using config::Json;
using config::JsonObject;

constexpr const char* kFormat = "stordep-checkpoint-v1";

/// JSON cannot carry non-finite numbers (the writer would emit null), so
/// infinite recovery times are string-encoded and decoded symmetrically.
Json encodeReal(double v) {
  if (std::isfinite(v)) return Json(v);
  if (std::isnan(v)) return Json("nan");
  return Json(v > 0 ? "inf" : "-inf");
}

double decodeReal(const Json& value) {
  if (value.isNumber()) return value.asNumber();
  if (value.isString()) {
    const std::string& s = value.asString();
    if (s == "inf") return std::numeric_limits<double>::infinity();
    if (s == "-inf") return -std::numeric_limits<double>::infinity();
    if (s == "nan") return std::numeric_limits<double>::quiet_NaN();
  }
  throw config::DesignIoError("checkpoint: malformed real value");
}

std::string headerLine(const std::string& contextHex) {
  Json header{JsonObject{}};
  header.set("format", Json(kFormat));
  header.set("context", Json(contextHex));
  return header.dump();
}

std::string recordLine(const engine::Fingerprint& key,
                       const EvaluatedCandidate& candidate) {
  Json record{JsonObject{}};
  record.set("key", Json(key.toHex()));
  record.set("result", evaluatedCandidateToJson(candidate));
  return record.dump();
}

}  // namespace

Json candidateSpecToJson(const CandidateSpec& spec) {
  Json out{JsonObject{}};
  out.set("pit", Json(toString(spec.pit)));
  out.set("pitAccW", encodeReal(spec.pitAccW.secs()));
  out.set("pitRetentionCount", Json(spec.pitRetentionCount));
  out.set("backup", Json(toString(spec.backup)));
  out.set("backupAccW", encodeReal(spec.backupAccW.secs()));
  out.set("vault", Json(spec.vault));
  out.set("vaultAccW", encodeReal(spec.vaultAccW.secs()));
  out.set("mirror", Json(toString(spec.mirror)));
  out.set("mirrorLinkCount", Json(spec.mirrorLinkCount));
  return out;
}

engine::Fingerprint fingerprintCandidate(const CandidateSpec& spec) {
  return engine::fingerprintBytes(candidateSpecToJson(spec).dump());
}

engine::Fingerprint fingerprintSearchContext(
    const WorkloadSpec& workload, const BusinessRequirements& business,
    const std::vector<ScenarioCase>& scenarios) {
  Json businessJson{JsonObject{}};
  businessJson.set("unavailPenRate",
                   encodeReal(business.unavailabilityPenaltyRate.usdPerSec()));
  businessJson.set("lossPenRate",
                   encodeReal(business.lossPenaltyRate.usdPerSec()));
  businessJson.set("rto",
                   business.rto ? encodeReal(business.rto->secs()) : Json());
  businessJson.set("rpo",
                   business.rpo ? encodeReal(business.rpo->secs()) : Json());

  config::JsonArray scenarioArray;
  scenarioArray.reserve(scenarios.size());
  for (const ScenarioCase& sc : scenarios) {
    Json entry{JsonObject{}};
    entry.set("name", Json(sc.name));
    entry.set("weight", encodeReal(sc.weight));
    entry.set("scenario", config::scenarioToJson(sc.scenario));
    scenarioArray.push_back(std::move(entry));
  }

  Json context{JsonObject{}};
  context.set("workload", config::workloadToJson(workload));
  context.set("business", std::move(businessJson));
  context.set("scenarios", Json(std::move(scenarioArray)));
  return engine::fingerprintBytes(context.dump());
}

Json evaluatedCandidateToJson(const EvaluatedCandidate& candidate) {
  Json out{JsonObject{}};
  out.set("label", Json(candidate.label));
  out.set("feasible", Json(candidate.feasible));
  out.set("meetsObjectives", Json(candidate.meetsObjectives));
  out.set("outlays", encodeReal(candidate.outlays.usd()));
  out.set("weightedPenalties", encodeReal(candidate.weightedPenalties.usd()));
  out.set("totalCost", encodeReal(candidate.totalCost.usd()));
  out.set("worstRecoveryTime", encodeReal(candidate.worstRecoveryTime.secs()));
  out.set("worstDataLoss", encodeReal(candidate.worstDataLoss.secs()));
  out.set("rejectionReason", Json(candidate.rejectionReason));
  return out;
}

EvaluatedCandidate evaluatedCandidateFromJson(const Json& value) {
  EvaluatedCandidate out;
  out.label = value.at("label").asString();
  out.feasible = value.at("feasible").asBool();
  out.meetsObjectives = value.at("meetsObjectives").asBool();
  out.outlays = Money{decodeReal(value.at("outlays"))};
  out.weightedPenalties = Money{decodeReal(value.at("weightedPenalties"))};
  out.totalCost = Money{decodeReal(value.at("totalCost"))};
  out.worstRecoveryTime = Duration{decodeReal(value.at("worstRecoveryTime"))};
  out.worstDataLoss = Duration{decodeReal(value.at("worstDataLoss"))};
  out.rejectionReason = value.at("rejectionReason").asString();
  return out;
}

CheckpointJournal::CheckpointJournal(std::string path,
                                     const engine::Fingerprint& context,
                                     std::size_t flushEvery)
    : path_(std::move(path)),
      flushEvery_(std::max<std::size_t>(1, flushEvery)) {
  const std::string contextHex = context.toHex();

  {
    std::ifstream in(path_);
    if (in) {
      std::string line;
      bool headerOk = false;
      bool first = true;
      while (std::getline(in, line)) {
        if (line.empty()) continue;
        try {
          const Json record = Json::parse(line);
          if (first) {
            first = false;
            const Json* format = record.find("format");
            const Json* ctx = record.find("context");
            headerOk = format != nullptr && format->isString() &&
                       format->asString() == kFormat && ctx != nullptr &&
                       ctx->isString() && ctx->asString() == contextHex;
            if (!headerOk) break;  // different sweep (or not a journal)
            continue;
          }
          const Json* keyField = record.find("key");
          const Json* resultField = record.find("result");
          if (keyField == nullptr || !keyField->isString() ||
              resultField == nullptr) {
            continue;
          }
          const std::optional<engine::Fingerprint> key =
              engine::Fingerprint::fromHex(keyField->asString());
          if (!key) continue;
          records_.emplace(*key, evaluatedCandidateFromJson(*resultField));
        } catch (const std::exception&) {
          // Truncated or corrupt tail — the crash case: the process died
          // mid-append. Everything before this line is trusted.
          break;
        }
      }
      if (!headerOk) records_.clear();
    }
  }
  resumed_ = records_.size();

  // Compact: header + trusted records to a temp file, renamed into place,
  // so appends never land after a partial line.
  const std::string temp = path_ + ".tmp";
  {
    std::ofstream rewrite(temp, std::ios::trunc);
    if (!rewrite) {
      throw config::DesignIoError("cannot write checkpoint file: " + temp);
    }
    rewrite << headerLine(contextHex) << '\n';
    for (const auto& [key, candidate] : records_) {
      rewrite << recordLine(key, candidate) << '\n';
    }
    rewrite.flush();
    if (!rewrite) {
      throw config::DesignIoError("cannot write checkpoint file: " + temp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, path_, ec);
  if (ec) {
    throw config::DesignIoError("cannot replace checkpoint file: " + path_ +
                                ": " + ec.message());
  }

  out_.open(path_, std::ios::app);
  if (!out_) {
    throw config::DesignIoError("cannot append to checkpoint file: " + path_);
  }
}

CheckpointJournal::~CheckpointJournal() { flush(); }

const EvaluatedCandidate* CheckpointJournal::find(
    const engine::Fingerprint& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = records_.find(key);
  // Node-based map: the value's address is stable across later inserts.
  return it == records_.end() ? nullptr : &it->second;
}

void CheckpointJournal::record(const engine::Fingerprint& key,
                               const EvaluatedCandidate& candidate) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = records_.emplace(key, candidate);
  if (!inserted) return;  // already journaled (first record wins)
  appendLocked(key, it->second);
}

void CheckpointJournal::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  out_.flush();
  sinceFlush_ = 0;
}

std::size_t CheckpointJournal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void CheckpointJournal::appendLocked(const engine::Fingerprint& key,
                                     const EvaluatedCandidate& candidate) {
  out_ << recordLine(key, candidate) << '\n';
  if (++sinceFlush_ >= flushEvery_) {
    out_.flush();
    sinceFlush_ = 0;
  }
}

}  // namespace stordep::optimizer
