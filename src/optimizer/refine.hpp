// refine.hpp — local refinement of a candidate design.
//
// Grid enumeration (design_space.hpp) finds the right *structure*; this
// pass then tunes the continuous knobs — window lengths, retention counts,
// link counts — by steepest-descent hill climbing over a multiplicative
// neighborhood, using the scenario-weighted total cost as the objective.
// Because one evaluation costs microseconds, a full refinement is a few
// milliseconds; the combination (enumerate, pick the leaders, refine each)
// is the paper's envisioned automated-design loop end to end.
#pragma once

#include "optimizer/search.hpp"

namespace stordep::optimizer {

struct RefineOptions {
  /// Hill-climbing step bound (each step re-evaluates every neighbor).
  int maxSteps = 64;
  /// Neighbor scale factors for window knobs.
  std::vector<double> windowFactors{0.5, 2.0};
  /// Cooperative cancellation, polled between climb steps: the climb stops
  /// at the last accepted move (which is always a valid, evaluated design).
  engine::CancellationToken token;
  /// Evaluate neighborhoods through compiled evaluation plans (see
  /// SearchOptions::usePlan); bit-identical to the legacy cache-backed path.
  bool usePlan = true;
};

struct RefineResult {
  EvaluatedCandidate best;
  int steps = 0;        ///< accepted moves
  int evaluations = 0;  ///< candidate evaluations spent
  Money improvement;    ///< starting total cost minus final total cost
  /// True when the climb stopped on cancellation rather than convergence;
  /// `best` still holds the best design found so far.
  bool cancelled = false;
};

/// All structurally valid one-knob neighbors of `spec` (exposed for tests).
[[nodiscard]] std::vector<CandidateSpec> neighbors(
    const CandidateSpec& spec, const RefineOptions& options = {});

/// Hill-climbs from `start` until no neighbor improves the total cost.
/// Infeasible or objective-missing neighbors are never accepted; if the
/// start itself is infeasible the result simply reports it unrefined.
/// Each step's neighborhood is evaluated in parallel on the engine
/// (null = Engine::shared()); the accepted move is selected serially in
/// neighbor order, so results match a serial climb exactly. Refinement is
/// where the engine's memoization shines: a climb that follows a search
/// re-evaluates many pairs the sweep already cached.
[[nodiscard]] RefineResult refineCandidate(
    const CandidateSpec& start, const WorkloadSpec& workload,
    const BusinessRequirements& business,
    const std::vector<ScenarioCase>& scenarios,
    const RefineOptions& options = {}, engine::Engine* eng = nullptr);

}  // namespace stordep::optimizer
