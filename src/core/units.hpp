// units.hpp — strongly typed physical quantities for the dependability models.
//
// The modeling framework (Keeton & Merchant, DSN'04) manipulates four kinds of
// quantities: data sizes (bytes), data rates (bytes/second), time intervals
// (seconds) and money (US dollars, plus dollars/second penalty rates). Mixing
// them up is the classic source of silent modeling bugs, so each gets its own
// strong type with only the physically meaningful operators defined:
//
//   Bytes / Duration   -> Bandwidth        Bandwidth * Duration -> Bytes
//   Bytes / Bandwidth  -> Duration         Money / Duration     -> MoneyRate
//   MoneyRate * Duration -> Money
//
// All quantities are stored as double in SI-ish base units (bytes, seconds,
// dollars). The paper uses binary prefixes for storage (1 GB = 2^30 bytes);
// we follow that convention because it is what reproduces the paper's
// published utilization and transfer-time numbers (see DESIGN.md).
#pragma once

#include <algorithm>
#include <cmath>
#include <compare>
#include <iosfwd>
#include <limits>
#include <stdexcept>
#include <string>

namespace stordep {

/// Numeric tolerance used by approxEqual() on quantities.
inline constexpr double kQuantityEpsilon = 1e-9;

namespace detail {
/// CRTP base providing the operators shared by every scalar quantity type.
/// Derived must expose a `double v` member and be constructible from double.
template <typename Derived>
class Quantity {
 public:
  [[nodiscard]] constexpr double raw() const noexcept { return self().v; }

  [[nodiscard]] constexpr bool isFinite() const noexcept {
    return std::isfinite(self().v);
  }
  [[nodiscard]] constexpr bool isInfinite() const noexcept {
    return std::isinf(self().v);
  }

  friend constexpr Derived operator+(Derived a, Derived b) noexcept {
    return Derived{a.v + b.v};
  }
  friend constexpr Derived operator-(Derived a, Derived b) noexcept {
    return Derived{a.v - b.v};
  }
  friend constexpr Derived operator*(Derived a, double s) noexcept {
    return Derived{a.v * s};
  }
  friend constexpr Derived operator*(double s, Derived a) noexcept {
    return Derived{a.v * s};
  }
  friend constexpr Derived operator/(Derived a, double s) noexcept {
    return Derived{a.v / s};
  }
  /// Ratio of two like quantities is a dimensionless double.
  friend constexpr double operator/(Derived a, Derived b) noexcept {
    return a.v / b.v;
  }
  friend constexpr auto operator<=>(Derived a, Derived b) noexcept {
    return a.v <=> b.v;
  }
  friend constexpr bool operator==(Derived a, Derived b) noexcept {
    return a.v == b.v;
  }

  constexpr Derived& operator+=(Derived b) noexcept {
    self().v += b.v;
    return self();
  }
  constexpr Derived& operator-=(Derived b) noexcept {
    self().v -= b.v;
    return self();
  }
  constexpr Derived& operator*=(double s) noexcept {
    self().v *= s;
    return self();
  }

  [[nodiscard]] friend constexpr bool approxEqual(
      Derived a, Derived b, double relTol = 1e-9) noexcept {
    const double scale = std::max({std::fabs(a.v), std::fabs(b.v), 1.0});
    return std::fabs(a.v - b.v) <= relTol * scale;
  }

 private:
  constexpr Derived& self() noexcept { return static_cast<Derived&>(*this); }
  constexpr const Derived& self() const noexcept {
    return static_cast<const Derived&>(*this);
  }
};
}  // namespace detail

/// A data size in bytes. Binary prefixes (KB = 2^10 B etc.), matching the
/// paper's conventions for storage capacities.
class Bytes : public detail::Quantity<Bytes> {
 public:
  constexpr Bytes() noexcept : v(0) {}
  constexpr explicit Bytes(double bytes) noexcept : v(bytes) {}

  [[nodiscard]] constexpr double bytes() const noexcept { return v; }
  [[nodiscard]] constexpr double kilobytes() const noexcept { return v / kKB; }
  [[nodiscard]] constexpr double megabytes() const noexcept { return v / kMB; }
  [[nodiscard]] constexpr double gigabytes() const noexcept { return v / kGB; }
  [[nodiscard]] constexpr double terabytes() const noexcept { return v / kTB; }

  static constexpr double kKB = 1024.0;
  static constexpr double kMB = 1024.0 * 1024.0;
  static constexpr double kGB = 1024.0 * 1024.0 * 1024.0;
  static constexpr double kTB = 1024.0 * kGB;

  [[nodiscard]] static constexpr Bytes infinite() noexcept {
    return Bytes{std::numeric_limits<double>::infinity()};
  }

  double v;
};

[[nodiscard]] constexpr Bytes bytes(double n) noexcept { return Bytes{n}; }
[[nodiscard]] constexpr Bytes kilobytes(double n) noexcept {
  return Bytes{n * Bytes::kKB};
}
[[nodiscard]] constexpr Bytes megabytes(double n) noexcept {
  return Bytes{n * Bytes::kMB};
}
[[nodiscard]] constexpr Bytes gigabytes(double n) noexcept {
  return Bytes{n * Bytes::kGB};
}
[[nodiscard]] constexpr Bytes terabytes(double n) noexcept {
  return Bytes{n * Bytes::kTB};
}

/// A time interval in seconds. May be infinite (e.g., "never propagates").
class Duration : public detail::Quantity<Duration> {
 public:
  constexpr Duration() noexcept : v(0) {}
  constexpr explicit Duration(double seconds) noexcept : v(seconds) {}

  [[nodiscard]] constexpr double secs() const noexcept { return v; }
  [[nodiscard]] constexpr double minutes() const noexcept { return v / kMinute; }
  [[nodiscard]] constexpr double hrs() const noexcept { return v / kHour; }
  [[nodiscard]] constexpr double dys() const noexcept { return v / kDay; }
  [[nodiscard]] constexpr double wks() const noexcept { return v / kWeek; }
  [[nodiscard]] constexpr double yrs() const noexcept { return v / kYear; }

  static constexpr double kMinute = 60.0;
  static constexpr double kHour = 3600.0;
  static constexpr double kDay = 24.0 * kHour;
  static constexpr double kWeek = 7.0 * kDay;
  /// Calendar year (365 days); the paper's "3 years" retention etc.
  static constexpr double kYear = 365.0 * kDay;

  [[nodiscard]] static constexpr Duration zero() noexcept { return Duration{0}; }
  [[nodiscard]] static constexpr Duration infinite() noexcept {
    return Duration{std::numeric_limits<double>::infinity()};
  }

  double v;
};

[[nodiscard]] constexpr Duration seconds(double n) noexcept {
  return Duration{n};
}
[[nodiscard]] constexpr Duration minutes(double n) noexcept {
  return Duration{n * Duration::kMinute};
}
[[nodiscard]] constexpr Duration hours(double n) noexcept {
  return Duration{n * Duration::kHour};
}
[[nodiscard]] constexpr Duration days(double n) noexcept {
  return Duration{n * Duration::kDay};
}
[[nodiscard]] constexpr Duration weeks(double n) noexcept {
  return Duration{n * Duration::kWeek};
}
[[nodiscard]] constexpr Duration years(double n) noexcept {
  return Duration{n * Duration::kYear};
}

/// A data rate in bytes/second.
class Bandwidth : public detail::Quantity<Bandwidth> {
 public:
  constexpr Bandwidth() noexcept : v(0) {}
  constexpr explicit Bandwidth(double bytesPerSec) noexcept : v(bytesPerSec) {}

  [[nodiscard]] constexpr double bytesPerSec() const noexcept { return v; }
  [[nodiscard]] constexpr double kbPerSec() const noexcept {
    return v / Bytes::kKB;
  }
  [[nodiscard]] constexpr double mbPerSec() const noexcept {
    return v / Bytes::kMB;
  }

  [[nodiscard]] static constexpr Bandwidth zero() noexcept {
    return Bandwidth{0};
  }
  [[nodiscard]] static constexpr Bandwidth infinite() noexcept {
    return Bandwidth{std::numeric_limits<double>::infinity()};
  }

  double v;
};

[[nodiscard]] constexpr Bandwidth bytesPerSec(double n) noexcept {
  return Bandwidth{n};
}
[[nodiscard]] constexpr Bandwidth kbPerSec(double n) noexcept {
  return Bandwidth{n * Bytes::kKB};
}
[[nodiscard]] constexpr Bandwidth mbPerSec(double n) noexcept {
  return Bandwidth{n * Bytes::kMB};
}
/// Network links are quoted in decimal megabits/sec (e.g., OC-3 = 155 Mbps).
[[nodiscard]] constexpr Bandwidth megabitsPerSec(double n) noexcept {
  return Bandwidth{n * 1e6 / 8.0};
}

/// US dollars.
class Money : public detail::Quantity<Money> {
 public:
  constexpr Money() noexcept : v(0) {}
  constexpr explicit Money(double usd) noexcept : v(usd) {}

  [[nodiscard]] constexpr double usd() const noexcept { return v; }
  [[nodiscard]] constexpr double millionUsd() const noexcept { return v / 1e6; }

  [[nodiscard]] static constexpr Money zero() noexcept { return Money{0}; }

  double v;
};

[[nodiscard]] constexpr Money dollars(double n) noexcept { return Money{n}; }
[[nodiscard]] constexpr Money millionDollars(double n) noexcept {
  return Money{n * 1e6};
}

/// US dollars per second (penalty rates).
class MoneyRate : public detail::Quantity<MoneyRate> {
 public:
  constexpr MoneyRate() noexcept : v(0) {}
  constexpr explicit MoneyRate(double usdPerSec) noexcept : v(usdPerSec) {}

  [[nodiscard]] constexpr double usdPerSec() const noexcept { return v; }
  [[nodiscard]] constexpr double usdPerHour() const noexcept {
    return v * Duration::kHour;
  }

  double v;
};

[[nodiscard]] constexpr MoneyRate dollarsPerHour(double n) noexcept {
  return MoneyRate{n / Duration::kHour};
}
[[nodiscard]] constexpr MoneyRate dollarsPerSec(double n) noexcept {
  return MoneyRate{n};
}

// ---- Cross-type arithmetic -------------------------------------------------

[[nodiscard]] constexpr Bandwidth operator/(Bytes b, Duration t) noexcept {
  return Bandwidth{b.v / t.v};
}
[[nodiscard]] constexpr Bytes operator*(Bandwidth r, Duration t) noexcept {
  return Bytes{r.v * t.v};
}
[[nodiscard]] constexpr Bytes operator*(Duration t, Bandwidth r) noexcept {
  return Bytes{r.v * t.v};
}
[[nodiscard]] constexpr Duration operator/(Bytes b, Bandwidth r) noexcept {
  return Duration{b.v / r.v};
}
[[nodiscard]] constexpr MoneyRate operator/(Money m, Duration t) noexcept {
  return MoneyRate{m.v / t.v};
}
[[nodiscard]] constexpr Money operator*(MoneyRate r, Duration t) noexcept {
  return Money{r.v * t.v};
}
[[nodiscard]] constexpr Money operator*(Duration t, MoneyRate r) noexcept {
  return Money{r.v * t.v};
}

// ---- Formatting and parsing -------------------------------------------------

/// Human-readable rendering: "1.33 TB", "8.06 MB/s", "26.4 hr", "$11.94M".
[[nodiscard]] std::string toString(Bytes b);
[[nodiscard]] std::string toString(Duration d);
[[nodiscard]] std::string toString(Bandwidth bw);
[[nodiscard]] std::string toString(Money m);
[[nodiscard]] std::string toString(MoneyRate r);

std::ostream& operator<<(std::ostream& os, Bytes b);
std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, Bandwidth bw);
std::ostream& operator<<(std::ostream& os, Money m);
std::ostream& operator<<(std::ostream& os, MoneyRate r);

/// Thrown by the parse*() functions on malformed input.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses strings like "1360 GB", "727 KB/s", "12 hr", "4 wk + 12 hr",
/// "$50000/hr". Used by the JSON design loader so design files can use the
/// paper's notation directly. Whitespace around tokens is ignored.
[[nodiscard]] Bytes parseBytes(const std::string& text);
[[nodiscard]] Duration parseDuration(const std::string& text);
[[nodiscard]] Bandwidth parseBandwidth(const std::string& text);
[[nodiscard]] Money parseMoney(const std::string& text);

}  // namespace stordep
