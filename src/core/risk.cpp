#include "core/risk.hpp"

#include <limits>

namespace stordep {

RiskAssessment assessRisk(const StorageDesign& design,
                          const std::vector<FailureMode>& modes) {
  RiskAssessment out;
  bool outlaysRecorded = false;
  for (const FailureMode& mode : modes) {
    if (mode.annualFrequency < 0) {
      throw DesignError("failure mode '" + mode.name +
                        "': frequency must be >= 0");
    }
    const EvaluationResult result = evaluate(design, mode.scenario);
    if (!outlaysRecorded) {
      out.annualOutlays = result.cost.totalOutlays;
      outlaysRecorded = true;
    }

    FailureModeResult mr;
    mr.name = mode.name;
    mr.annualFrequency = mode.annualFrequency;
    mr.recoverable = result.recovery.recoverable;
    mr.dataLoss = result.recovery.dataLoss;
    mr.recoveryTime = result.recovery.recoveryTime;
    if (mr.recoverable) {
      mr.penaltyPerEvent = result.cost.totalPenalties;
      mr.expectedAnnualPenalty = mr.penaltyPerEvent * mode.annualFrequency;
      out.expectedAnnualPenalty += mr.expectedAnnualPenalty;
      out.expectedAnnualDowntimeHours +=
          mode.annualFrequency * mr.recoveryTime.hrs();
    } else {
      // Penalties are unbounded for unrecoverable events; track their rate
      // separately rather than poisoning the expectation with infinities.
      mr.penaltyPerEvent = Money{std::numeric_limits<double>::infinity()};
      mr.expectedAnnualPenalty =
          mode.annualFrequency > 0
              ? Money{std::numeric_limits<double>::infinity()}
              : Money::zero();
      out.unrecoverableFrequency += mode.annualFrequency;
    }
    out.modes.push_back(std::move(mr));
  }
  out.expectedAnnualCost =
      out.unrecoverableFrequency > 0
          ? Money{std::numeric_limits<double>::infinity()}
          : out.annualOutlays + out.expectedAnnualPenalty;
  return out;
}

}  // namespace stordep
