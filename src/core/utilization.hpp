// utilization.hpp — normal-mode utilization model (paper Sec 3.3.1).
//
// Each device model computes its own bandwidth and capacity utilization from
// the demands the techniques place on it; the global model reports the
// system utilization as that of the most heavily utilized device and flags
// an error whenever any utilization exceeds 1 (the design is infeasible).
#pragma once

#include <string>
#include <vector>

#include "core/hierarchy.hpp"

namespace stordep {

/// Per-technique share of one device's load (one row of paper Table 5).
struct DemandShare {
  std::string technique;
  Bandwidth bandwidth;
  Bytes capacity;
  double bwUtil = 0.0;
  double capUtil = 0.0;
};

struct DeviceUtilization {
  std::string device;
  Bandwidth bwDemand;   ///< total bandwidth demand
  Bytes capDemand;      ///< total capacity demand
  Bandwidth bwLimit;    ///< deliverable bandwidth (min of slots/enclosure)
  Bytes capLimit;       ///< usable capacity (after RAID overheads)
  double bwUtil = 0.0;  ///< 0 for devices without bandwidth components
  double capUtil = 0.0;
  std::vector<DemandShare> shares;

  [[nodiscard]] bool overloaded() const noexcept {
    return bwUtil > 1.0 || capUtil > 1.0;
  }
};

struct UtilizationResult {
  std::vector<DeviceUtilization> devices;
  /// System utilization = the most heavily utilized device's (Sec 3.3.1).
  double overallBwUtil = 0.0;
  double overallCapUtil = 0.0;
  std::string maxBwDevice;
  std::string maxCapDevice;
  /// Overload diagnostics; empty means the configuration is feasible.
  std::vector<std::string> errors;

  [[nodiscard]] bool feasible() const noexcept { return errors.empty(); }
  [[nodiscard]] const DeviceUtilization* find(const std::string& name) const;
};

[[nodiscard]] UtilizationResult computeUtilization(const StorageDesign& design);

/// Same model over an explicit demand set (used by multi-object portfolios,
/// which merge demands from several designs sharing devices).
[[nodiscard]] UtilizationResult computeUtilization(
    const std::vector<PlacedDemand>& demands);

/// Feasibility-only view of the utilization model: whether any device is
/// overloaded, and the first diagnostic string computeUtilization() would
/// have produced. Plan compilation (engine/plan.hpp) needs exactly this much
/// — search folds only feasible() and errors[0] into a candidate verdict —
/// and computing the full per-device/per-share report costs more than the
/// rest of a plan compile combined. The fold below runs the same per-demand
/// double accumulations in the same order as computeUtilization(), so
/// feasible and firstError are bit-for-bit what the full model reports.
struct UtilizationFeasibility {
  bool feasible = true;
  /// First entry of UtilizationResult::errors; empty when feasible.
  std::string firstError;
};

[[nodiscard]] UtilizationFeasibility computeUtilizationFeasibility(
    const std::vector<PlacedDemand>& demands);

}  // namespace stordep
