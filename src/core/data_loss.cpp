#include "core/data_loss.hpp"

#include <algorithm>

namespace stordep {

std::string toString(LossCase c) {
  switch (c) {
    case LossCase::kNotYetPropagated:
      return "target not yet propagated";
    case LossCase::kWithinRange:
      return "target within retained range";
    case LossCase::kTooOld:
      return "target older than retention";
    case LossCase::kLevelDestroyed:
      return "level destroyed";
    case LossCase::kLevelCorrupted:
      return "level corrupted";
  }
  return "unknown";
}

bool levelDestroyed(const StorageDesign& design, int level,
                    const FailureScenario& scenario) {
  const auto storage = design.level(level).storageDevices();
  return std::all_of(storage.begin(), storage.end(), [&](const DevicePtr& d) {
    return scenario.destroys(d->name(), d->location());
  });
}

LevelLossAssessment assessLevel(const StorageDesign& design, int level,
                                const FailureScenario& scenario) {
  LevelLossAssessment out;
  out.level = level;
  out.range = guaranteedRange(design, level);

  if (levelDestroyed(design, level, scenario)) {
    out.lossCase = LossCase::kLevelDestroyed;
    return out;
  }
  // A corruption (data-object failure) is faithfully propagated into the
  // primary copy itself; level 0 cannot serve the rollback.
  if (level == 0 && scenario.scope == FailureScope::kDataObject) {
    out.lossCase = LossCase::kLevelCorrupted;
    return out;
  }

  const Duration targetAge = scenario.recoveryTargetAge;
  const Duration lag = rpTimeLag(design, level);

  if (targetAge < lag) {
    // Case 1: the requested point has not propagated here yet. The youngest
    // RP guaranteed present is `lag` old; everything between it and the
    // target is lost.
    out.lossCase = LossCase::kNotYetPropagated;
    out.dataLoss = lag - targetAge;
  } else if (targetAge <= out.range.oldestAge) {
    // Case 2: RPs for the target's era arrive every accW; the nearest RP at
    // or before the target is at most one window older.
    out.lossCase = LossCase::kWithinRange;
    out.dataLoss = design.level(level).policy() != nullptr
                       ? design.level(level).policy()->effectiveAccW()
                       : Duration::zero();
  } else {
    // Case 3: everything that old has been retired from this level.
    out.lossCase = LossCase::kTooOld;
  }
  return out;
}

std::vector<LevelLossAssessment> assessAllLevels(
    const StorageDesign& design, const FailureScenario& scenario) {
  std::vector<LevelLossAssessment> out;
  out.reserve(static_cast<size_t>(design.levelCount()));
  for (int i = 0; i < design.levelCount(); ++i) {
    out.push_back(assessLevel(design, i, scenario));
  }
  return out;
}

Duration expectedDataLoss(const StorageDesign& design, int level,
                          const FailureScenario& scenario) {
  const LevelLossAssessment worst = assessLevel(design, level, scenario);
  switch (worst.lossCase) {
    case LossCase::kNotYetPropagated: {
      const Duration expected = rpExpectedTimeLag(design, level);
      const Duration loss = expected - scenario.recoveryTargetAge;
      return loss.secs() > 0 ? loss : Duration::zero();
    }
    case LossCase::kWithinRange:
      return design.level(level).policy()->effectiveAccW() * 0.5;
    case LossCase::kTooOld:
    case LossCase::kLevelDestroyed:
    case LossCase::kLevelCorrupted:
      return Duration::infinite();
  }
  return Duration::infinite();
}

std::optional<LevelLossAssessment> chooseRecoverySource(
    const StorageDesign& design, const FailureScenario& scenario) {
  std::optional<LevelLossAssessment> best;
  for (const auto& a : assessAllLevels(design, scenario)) {
    if (!a.dataLoss.isFinite()) continue;
    // Strictly better loss wins; ties keep the lower (faster) level, which
    // is encountered first.
    if (!best || a.dataLoss < best->dataLoss) best = a;
  }
  return best;
}

}  // namespace stordep
