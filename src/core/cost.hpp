// cost.hpp — overall system cost model (paper Sec 3.3.5).
//
// Costs have two parts:
//  - *outlays*: annualized equipment/facilities/service expenditures,
//    computed per device and attributed per technique. The technique that
//    owns a device (its primary technique) is charged the device's fixed
//    costs plus its own per-capacity/per-bandwidth costs; secondary
//    techniques are charged only their incremental usage. Spare-resource
//    costs are attributed in proportion to each technique's share of the
//    device outlay.
//  - *penalties*: worst-case recovery time x unavailability penalty rate +
//    worst-case recent data loss x loss penalty rate, under the imposed
//    failure scenario.
#pragma once

#include <string>
#include <vector>

#include "core/hierarchy.hpp"
#include "core/recovery.hpp"

namespace stordep {

/// Outlay attributed to one technique (one bar segment of paper Figure 5).
struct TechniqueOutlay {
  std::string technique;
  Money deviceOutlay;  ///< fixed + usage costs on the devices it touches
  Money spareOutlay;   ///< attributed share of spare-resource costs

  [[nodiscard]] Money total() const noexcept {
    return deviceOutlay + spareOutlay;
  }
};

struct CostResult {
  std::vector<TechniqueOutlay> outlays;
  Money totalOutlays;
  Money outagePenalty;  ///< recovery time x unavailability rate
  Money lossPenalty;    ///< recent data loss x loss rate
  Money totalPenalties;
  Money totalCost;  ///< outlays + penalties

  [[nodiscard]] const TechniqueOutlay* find(const std::string& name) const;
};

/// Computes outlays from the design's demands and penalties from an already
/// computed recovery result.
[[nodiscard]] CostResult computeCosts(const StorageDesign& design,
                                      const RecoveryResult& recovery);

/// Same, but with the scenario-independent outlay attribution already
/// computed (by `computeOutlays(design.allDemands())`). Evaluating one
/// design under many scenarios only needs the outlays once; this overload
/// lets callers hoist that work out of the scenario loop. The result is
/// bit-identical to the two-argument form.
[[nodiscard]] CostResult computeCosts(const StorageDesign& design,
                                      const RecoveryResult& recovery,
                                      std::vector<TechniqueOutlay> outlays);

/// Outlay attribution over an explicit demand set (used by multi-object
/// portfolios: shared fixed costs are charged once across all objects).
[[nodiscard]] std::vector<TechniqueOutlay> computeOutlays(
    const std::vector<PlacedDemand>& demands);

}  // namespace stordep
