// recovery.hpp — worst-case recovery-time model (paper Sec 3.3.4, Figure 4).
//
// Recovery restores the chosen source level's RP onto a (possibly
// replacement) primary array. Each restore leg moves the payload between
// devices, and three time components govern it:
//
//   parFix   parallelizable fixed work at the receiving device — spare or
//            recovery-facility provisioning — which overlaps the incoming
//            shipment/transfer (paper: max(RT_{i+1}, parFix_i));
//   serFix   serialized fixed work once data arrives (tape load/seek);
//   serXfer  the transfer itself, at the minimum of sender, receiver and
//            interconnect *available* bandwidth (capacity remaining after
//            normal-mode RP-propagation demands on surviving devices).
//
// Physical shipments deliver the whole payload after their transit delay;
// network hops are skipped when the replacement target is provisioned at the
// same site as the sender (site-disaster failover next to a remote mirror).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/data_loss.hpp"
#include "core/failure.hpp"
#include "core/hierarchy.hpp"

namespace stordep {

/// One executed leg of the recovery timeline, for reporting (Figure 4).
struct RecoveryStep {
  std::string description;
  Duration startTime;   ///< when this leg's transfer work begins
  Duration readyTime;   ///< when its destination holds the data
  Duration parFix;      ///< provisioning overlapped at the destination
  Duration transit;     ///< shipment / propagation latency
  Duration serFix;      ///< post-arrival fixed time (tape load/seek)
  Duration serXfer;     ///< streaming transfer time
  Bandwidth rate;       ///< achieved transfer rate (zero when not streaming)
  Bytes payload;
  std::string fromDevice;
  std::string toDevice;
  std::string viaDevice;  ///< empty when co-located
};

struct RecoveryResult {
  bool recoverable = false;
  int sourceLevel = -1;
  std::string sourceName;
  LossCase lossCase = LossCase::kLevelDestroyed;
  Duration dataLoss = Duration::infinite();
  Duration recoveryTime = Duration::infinite();
  Bytes payload;
  std::vector<RecoveryStep> timeline;
  /// Replacement/provisioning decisions taken, for the report.
  std::vector<std::string> notes;
};

/// Evaluates worst-case data loss and recovery time for `scenario`.
[[nodiscard]] RecoveryResult computeRecovery(const StorageDesign& design,
                                             const FailureScenario& scenario);

/// Runs the restore legs from an externally chosen source level (used by
/// degraded-mode evaluation, which picks sources under technique outages,
/// and by the recovery-time distribution simulator, which knows the actual
/// payload for a specific failure instant). `source.dataLoss` must be
/// finite. When `payloadOverride` is set it replaces the technique's
/// worst-case restorePayload().
[[nodiscard]] RecoveryResult recoverFrom(
    const StorageDesign& design, const FailureScenario& scenario,
    const LevelLossAssessment& source,
    std::optional<Bytes> payloadOverride = std::nullopt);

/// Bandwidth a device can contribute to a restore of `payload` bytes:
/// its transfer bandwidth minus the normal-mode demands that continue on it.
/// `fresh` replacements carry no continuing demands. When a `scenario` is
/// given, demands from levels silenced by the failure are excluded too — a
/// level whose own storage or whose feeding level died has nothing left to
/// propagate (e.g., after a primary-array failure, the backup read stream
/// and the mirror update stream both stop).
[[nodiscard]] Bandwidth availableBandwidth(
    const StorageDesign& design, const DevicePtr& device, Bytes payload,
    bool fresh, const FailureScenario* scenario = nullptr);

}  // namespace stordep
