#include "core/business.hpp"

namespace stordep {

BusinessRequirements caseStudyRequirements() {
  return BusinessRequirements{
      .unavailabilityPenaltyRate = dollarsPerHour(50'000.0),
      .lossPenaltyRate = dollarsPerHour(50'000.0),
      .rto = std::nullopt,
      .rpo = std::nullopt,
  };
}

}  // namespace stordep
