// propagation.hpp — retrieval-point propagation math (paper Sec 3.3.2, Fig 3).
//
// Determining data loss and recovery time requires knowing what range of
// time is *guaranteed* to be represented by the RPs held at each level. Two
// quantities drive it:
//
//  transit(j)  = sum over levels 1..j of (holdW_i + propW_i): the time for an
//                RP to travel from the primary into level j. Intermediate
//                levels contribute the windows of the representation that
//                actually feeds upward (only fulls are vaulted); the target
//                level contributes its worst-case (largest) propW.
//  lag(j)      = transit(j) + effAccW(j): how stale level j can be just
//                before its next RP arrives — the age of the youngest RP
//                guaranteed present.
//  oldest(j)   = (retCnt_j - 1) * cyclePer_j + transit(j): the age of the
//                oldest RP guaranteed present.
//
// The guaranteed range of RP ages at level j is [lag(j), oldest(j)]; it is
// empty when retCnt = 1 and accW > 0 (a single retained RP may be anywhere
// within one window of the lag).
#pragma once

#include "core/hierarchy.hpp"

namespace stordep {

/// Guaranteed RP age range at one level, as ages relative to "now".
struct RpRange {
  /// Age of the youngest RP guaranteed present (the level's worst-case lag).
  Duration youngestAge;
  /// Age of the oldest RP guaranteed present.
  Duration oldestAge;

  [[nodiscard]] bool empty() const noexcept { return oldestAge < youngestAge; }
  /// True when an RP no younger than `targetAge` is guaranteed to exist
  /// within the range (i.e., targetAge falls inside [youngest, oldest]).
  [[nodiscard]] bool covers(Duration targetAge) const noexcept {
    return targetAge >= youngestAge && targetAge <= oldestAge;
  }
};

/// Cumulative hold+propagation transit from the primary into `level`.
/// Zero for level 0.
[[nodiscard]] Duration rpTransitTime(const StorageDesign& design, int level);

/// Worst-case staleness of `level` (paper: sum(holdW+propW) + accW_j).
[[nodiscard]] Duration rpTimeLag(const StorageDesign& design, int level);

/// Guaranteed RP age range at `level` (paper Figure 3). Level 0's range is
/// [0, 0]: the primary copy is exactly current.
[[nodiscard]] RpRange guaranteedRange(const StorageDesign& design, int level);

/// Expected (mean) staleness of `level` under a failure at a uniformly
/// random instant: transit + accW/2 (the in-flight wait averages to half an
/// accumulation window instead of a full one). An extension beyond the
/// paper, which reports only worst cases; the RP-lifecycle simulator's
/// empirical means validate this formula (see bench_expected_vs_worst).
[[nodiscard]] Duration rpExpectedTimeLag(const StorageDesign& design,
                                         int level);

/// Extra staleness picked up at capture time when a level's creation grid
/// does not stay on the arrival grid of the level below. The paper's lag
/// formula implicitly assumes each level captures a *just-arrived* upstream
/// image, which holds only when every creation offset of level i is an
/// integer multiple of cyclePer_{i-1} (the case study satisfies this:
/// weekly backups over a 12 h mirror cycle, 4-weekly vaults over weekly
/// backups). When the windows are incommensurable — e.g. a 161 h backup
/// window over a 12 h mirror cycle — the capture instants drift through the
/// upstream cycle and the captured image can be up to one upstream arrival
/// gap stale. Returns the summed worst-case capture staleness over the
/// boundaries feeding `level`; zero for grid-conforming designs.
/// Property-based fuzzing against the RP-lifecycle simulator surfaced this
/// term (see DESIGN.md "Verification").
[[nodiscard]] Duration rpCaptureSlack(const StorageDesign& design, int level);

/// A *sound* worst-case staleness bound for cyclic policies. The paper's
/// formula (rpTimeLag) charges one incremental window of exposure, but
/// simulation shows the end-of-cycle arrival gap ("weekend gap") makes the
/// true worst case larger — e.g. 85 h instead of 73 h for the case study's
/// F+I policy (EXPERIMENTS.md). This variant replaces the paper's
/// accW + worstPropW terms at the target level with the last-arriving
/// representation's propW plus the worst arrival gap, adds the capture
/// misalignment slack (rpCaptureSlack) for incommensurable window grids,
/// and coincides with rpTimeLag for simple (non-cyclic), grid-conforming
/// policies.
[[nodiscard]] Duration rpTimeLagConservative(const StorageDesign& design,
                                             int level);

/// The two propagation quantities the recovery-source choice consumes,
/// computed with a single transit traversal. rpTimeLag() and
/// guaranteedRange() each rebuild the cumulative hold+prop transit; plan
/// compilation (engine/plan.hpp) asks for both for every level of every
/// candidate, so sharing the traversal halves that cost. Both fields are
/// bit-identical to the separate entry points: they are the same expressions
/// over the same transit value.
struct LevelRecoveryWindow {
  /// == rpTimeLag(design, level)
  Duration lag;
  /// == guaranteedRange(design, level).oldestAge
  Duration oldestAge;
};

[[nodiscard]] LevelRecoveryWindow levelRecoveryWindow(
    const StorageDesign& design, int level);

}  // namespace stordep
