#include "core/recovery.hpp"

#include <algorithm>

namespace stordep {

namespace {

/// Resolution of a node in the restore path: the device (or its stand-in),
/// where it now lives, how long it takes to provision, and whether it is a
/// freshly provisioned replacement (no continuing normal-mode demands).
struct ResolvedNode {
  DevicePtr device;
  Location location;
  Duration parFix = Duration::zero();
  bool fresh = false;
  std::string note;
  bool viable = true;
};

ResolvedNode resolveNode(const StorageDesign& design, const DevicePtr& device,
                         const FailureScenario& scenario) {
  ResolvedNode node;
  node.device = device;
  node.location = device->location();
  if (!scenario.destroys(device->name(), device->location())) {
    return node;  // survives in place
  }
  // A dedicated/shared spare lives next to the original; it only helps for
  // single-device (array) failures — wider scopes take the spare down too.
  if (scenario.scope == FailureScope::kArray &&
      device->spec().spare.type != SpareType::kNone) {
    node.parFix = device->spareProvisioningTime();
    node.fresh = true;
    node.note = device->name() + ": provisioning on-site spare (" +
                toString(node.parFix) + ")";
    return node;
  }
  if (design.facility()) {
    const auto& fac = *design.facility();
    // The facility must itself be outside the failure scope.
    if (!scenario.destroys("", fac.location)) {
      node.location = fac.location;
      node.parFix = fac.provisioningTime;
      node.fresh = true;
      node.note = device->name() + ": provisioning replacement at recovery "
                                   "facility '" +
                  fac.location.site + "' (" + toString(node.parFix) + ")";
      return node;
    }
  }
  node.viable = false;
  node.note = device->name() + ": destroyed with no spare or facility";
  return node;
}

}  // namespace

Bandwidth availableBandwidth(const StorageDesign& design,
                             const DevicePtr& device, Bytes payload,
                             bool fresh, const FailureScenario* scenario) {
  Bandwidth base = device->transferBandwidth(payload);
  if (fresh) return base;
  Bandwidth demands = Bandwidth::zero();
  for (int i = 0; i < design.levelCount(); ++i) {
    if (scenario != nullptr) {
      // A destroyed level places no demands; a level whose feeding level
      // died has nothing to propagate either.
      if (levelDestroyed(design, i, *scenario)) continue;
      if (i > 0 && levelDestroyed(design, i - 1, *scenario)) continue;
    }
    for (const auto& pd :
         design.level(i).normalModeDemands(design.workload())) {
      if (pd.device.get() == device.get()) demands += pd.demand.bandwidth;
    }
  }
  if (demands >= base) return Bandwidth::zero();
  return base - demands;
}

RecoveryResult computeRecovery(const StorageDesign& design,
                               const FailureScenario& scenario) {
  const auto source = chooseRecoverySource(design, scenario);
  if (!source) {
    RecoveryResult result;
    result.notes.push_back(
        "no surviving level retains an RP for the recovery target: the data "
        "object is lost");
    return result;
  }
  return recoverFrom(design, scenario, *source);
}

RecoveryResult recoverFrom(const StorageDesign& design,
                           const FailureScenario& scenario,
                           const LevelLossAssessment& source,
                           std::optional<Bytes> payloadOverride) {
  RecoveryResult result;
  result.sourceLevel = source.level;
  result.sourceName = design.level(source.level).name();
  result.lossCase = source.lossCase;
  result.dataLoss = source.dataLoss;

  // Recovering from the primary copy itself means nothing was lost and
  // nothing needs restoring (e.g., a failure scope that misses the primary).
  if (source.level == 0) {
    result.recoverable = true;
    result.recoveryTime = Duration::zero();
    result.payload = Bytes{0};
    return result;
  }

  const Technique& tech = design.level(source.level);
  const Bytes baseSize =
      scenario.recoverySize.value_or(design.workload().dataCap());
  result.payload = payloadOverride.value_or(
      tech.restorePayload(design.workload(), baseSize));

  const DevicePtr primaryArray = design.primary().array();
  const auto legs = tech.recoveryLegs(primaryArray);
  if (legs.empty()) {
    result.notes.push_back("source level has no restore path");
    return result;
  }

  // Each leg runs in two serialized phases (this is what reproduces the
  // paper's published recovery times — see DESIGN.md):
  //   drain  the source side reads/ships the payload through the transport
  //          to the destination site (staging). It waits only on the source
  //          being ready; destination provisioning runs in parallel.
  //   apply  the payload is written into the destination device at that
  //          device's available bandwidth, once both the drained data and
  //          the provisioned destination exist.
  Duration clock = Duration::zero();
  for (const auto& leg : legs) {
    if (!leg.from || !leg.to) {
      result.notes.push_back("restore leg with missing endpoint");
      return result;
    }
    const ResolvedNode src = resolveNode(design, leg.from, scenario);
    const ResolvedNode dst = resolveNode(design, leg.to, scenario);
    if (!src.viable || !dst.viable) {
      // The restore path cannot be re-provisioned: although an RP survives,
      // there is nowhere to restore it — the object is effectively lost.
      result.notes.push_back(src.viable ? dst.note : src.note);
      result.dataLoss = Duration::infinite();
      result.recoveryTime = Duration::infinite();
      result.recoverable = false;
      return result;
    }
    if (!src.note.empty()) result.notes.push_back(src.note);
    if (!dst.note.empty()) result.notes.push_back(dst.note);

    // A long-haul transport is skipped when the replacement ends up
    // provisioned next to the sender (originally cross-site, now
    // co-located); a same-site transport (a shared SAN) is always
    // traversed.
    const bool originallyCrossSite =
        leg.from->location().site != leg.to->location().site;
    const bool resolvedSameSite = src.location.site == dst.location.site;
    const DevicePtr via =
        (leg.via && !(originallyCrossSite && resolvedSameSite)) ? leg.via
                                                                : nullptr;
    const bool physical = via && via->deliversPhysically();
    const Duration transit = via ? via->accessDelay() : Duration::zero();

    const Duration sendReady = std::max(clock, src.parFix);
    Duration drainTime = Duration::zero();
    Duration applyTime = Duration::zero();
    Bandwidth drainRate = Bandwidth::zero();
    if (!physical) {
      drainRate = availableBandwidth(design, leg.from, result.payload,
                                     src.fresh, &scenario);
      if (via) {
        drainRate = std::min(drainRate,
                             availableBandwidth(design, via, result.payload,
                                                false, &scenario));
      }
      drainTime = drainRate.bytesPerSec() > 0 ? result.payload / drainRate
                                              : Duration::infinite();
      const Bandwidth destRate = availableBandwidth(
          design, leg.to, result.payload, dst.fresh, &scenario);
      applyTime = destRate.bytesPerSec() > 0 ? result.payload / destRate
                                             : Duration::infinite();
    }
    // Couriers move the payload in one transit regardless of size; the
    // receiving device just takes custody of the media (no apply phase).
    const Duration serFix = physical ? Duration::zero() : leg.serializedFix;
    const Duration drainDone = sendReady + transit + serFix + drainTime;
    const Duration ready = std::max(drainDone, dst.parFix) + applyTime;

    result.timeline.push_back(RecoveryStep{
        .description = leg.from->name() + " -> " +
                       (leg.to.get() == primaryArray.get() && dst.fresh
                            ? "replacement primary"
                            : leg.to->name()),
        .startTime = sendReady,
        .readyTime = ready,
        .parFix = std::max(src.parFix, dst.parFix),
        .transit = transit,
        .serFix = serFix,
        .serXfer = drainTime + applyTime,
        .rate = drainRate,
        .payload = result.payload,
        .fromDevice = leg.from->name(),
        .toDevice = leg.to->name(),
        .viaDevice = via ? via->name() : std::string{},
    });
    clock = ready;
    if (!clock.isFinite()) break;
  }

  // The same device may appear in several legs; keep each note once.
  std::vector<std::string> uniqueNotes;
  for (auto& n : result.notes) {
    if (std::find(uniqueNotes.begin(), uniqueNotes.end(), n) ==
        uniqueNotes.end()) {
      uniqueNotes.push_back(std::move(n));
    }
  }
  result.notes = std::move(uniqueNotes);

  result.recoverable = clock.isFinite();
  result.recoveryTime = clock;
  return result;
}

}  // namespace stordep
