// policy.hpp — the common data-protection parameter set (paper Sec 3.2.1).
//
// The paper's key insight is that every data protection technique — PiT
// copies, backup, mirroring, vaulting — performs the same three basic
// operations: *creation*, *retention* and *propagation* of retrieval points
// (RPs). A ProtectionPolicy captures one level's configuration with a single
// parameter set:
//
//   accW      accumulation window: period over which updates are batched
//             to create one RP (also the RP creation period)
//   propW     propagation window: time to transmit an RP to this level
//   holdW     hold window: delay between an RP becoming eligible and the
//             start of its transmission (e.g., tapes waiting for a shipment)
//   cycleCnt  number of secondary-representation windows per cycle (e.g., 5
//             daily incrementals between weekly fulls)
//   cyclePer  length of one full cycle
//   retCnt    number of cycles of RPs retained simultaneously
//   retW      how long one RP is retained
//   copyRep   full or partial RP representation kept at the level
//   propRep   full or partial representation transmitted
//
// Cyclic policies (full + incremental backup) carry two WindowSpecs: the
// *primary* (full) representation — which is also what feeds the next level
// up, e.g. only fulls are vaulted — and the *secondary* (incremental) one.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/units.hpp"

namespace stordep {

/// Whether an RP copy/transmission carries the full dataset or only changes.
enum class Representation {
  kFull,     ///< complete dataset image
  kPartial,  ///< deltas only (incrementals, copy-on-write snapshots)
};

[[nodiscard]] std::string toString(Representation rep);

/// The accumulation/propagation/hold windows for one RP representation.
struct WindowSpec {
  Duration accW = Duration::zero();
  Duration propW = Duration::zero();
  Duration holdW = Duration::zero();
  Representation propRep = Representation::kFull;
};

/// Thrown for physically meaningless policy parameters (negative windows,
/// zero retention, ...). Soft convention violations (paper Sec 3.2.1) are
/// reported by ProtectionPolicy::conventionViolations() instead.
class PolicyError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One level's RP creation/retention/propagation configuration.
class ProtectionPolicy {
 public:
  /// Simple (non-cyclic) policy: a single representation.
  ProtectionPolicy(WindowSpec windows, int retentionCount,
                   Duration retentionWindow,
                   Representation copyRep = Representation::kFull);

  /// Cyclic policy: `primary` (e.g. weekly fulls) plus `cycleCount`
  /// occurrences of `secondary` (e.g. daily cumulative incrementals) per
  /// cycle of length `cyclePeriod`.
  ProtectionPolicy(WindowSpec primary, WindowSpec secondary, int cycleCount,
                   Duration cyclePeriod, int retentionCount,
                   Duration retentionWindow,
                   Representation copyRep = Representation::kFull);

  [[nodiscard]] const WindowSpec& primaryWindows() const noexcept {
    return primary_;
  }
  [[nodiscard]] const std::optional<WindowSpec>& secondaryWindows()
      const noexcept {
    return secondary_;
  }
  [[nodiscard]] bool isCyclic() const noexcept { return secondary_.has_value(); }
  [[nodiscard]] int cycleCount() const noexcept { return cycleCount_; }
  [[nodiscard]] Duration cyclePeriod() const noexcept { return cyclePeriod_; }
  [[nodiscard]] int retentionCount() const noexcept { return retentionCount_; }
  [[nodiscard]] Duration retentionWindow() const noexcept {
    return retentionWindow_;
  }
  [[nodiscard]] Representation copyRep() const noexcept { return copyRep_; }

  // ---- Derived quantities used by the composition models -----------------

  /// Windows of the representation that feeds the *next* level up (fulls);
  /// intermediate-level lag contributions use these (see DESIGN.md).
  [[nodiscard]] const WindowSpec& feedWindows() const noexcept {
    return primary_;
  }

  /// Shortest interval between successive RP arrivals at this level — the
  /// worst-case loss when an RP for the target has already propagated here
  /// (data-loss case 2).
  [[nodiscard]] Duration effectiveAccW() const noexcept;

  /// Largest propagation window across the cycle's representations — the
  /// worst-case in-flight time for the most recent RP (data-loss case 1 uses
  /// holdW + worstPropW + effectiveAccW at the target level).
  [[nodiscard]] Duration worstPropW() const noexcept;

  /// Hold window applied at this level (shared across representations).
  [[nodiscard]] Duration holdW() const noexcept { return primary_.holdW; }

  /// Worst gap between *arrivals* of consecutive RPs at this level. For
  /// simple policies this is just accW. For cyclic policies it exceeds
  /// effectiveAccW(): after the cycle's last incremental, no RP arrives
  /// until the next cycle's first one — the "weekend gap" the paper's lag
  /// formula does not model (our simulator exposed it; see EXPERIMENTS.md).
  /// The gap is cyclePer - cycleCnt x accW_incr, widened by the full's
  /// longer propagation and narrowed by the incremental's:
  ///   gap = (cyclePer - cycleCnt*accW_i) + accW_i + propW_i - propW_f
  /// measured arrival-to-arrival (last incremental -> first incremental of
  /// the next cycle, both offset by their own transmission).
  [[nodiscard]] Duration worstArrivalGap() const noexcept;

  /// Soft violations of the paper's parameter conventions:
  ///   propW <= accW (to keep up with RP production)
  ///   retW ~ retCnt * cyclePer (retention bookkeeping consistency)
  /// Returns human-readable descriptions; empty means fully conventional.
  [[nodiscard]] std::vector<std::string> conventionViolations() const;

 private:
  void checkBasics() const;

  WindowSpec primary_;
  std::optional<WindowSpec> secondary_;
  int cycleCount_ = 0;
  Duration cyclePeriod_;
  int retentionCount_ = 1;
  Duration retentionWindow_;
  Representation copyRep_ = Representation::kFull;
};

}  // namespace stordep
