#include "core/evaluator.hpp"

namespace stordep {

EvaluationResult evaluate(const StorageDesign& design,
                          const FailureScenario& scenario) {
  EvaluationResult result;
  result.utilization = computeUtilization(design);
  result.levelAssessments = assessAllLevels(design, scenario);
  result.recovery = computeRecovery(design, scenario);
  result.cost = computeCosts(design, result.recovery);
  result.warnings = design.validate();
  result.meetsObjectives = design.business().meetsObjectives(
      result.recovery.recoveryTime, result.recovery.dataLoss);
  return result;
}

}  // namespace stordep
