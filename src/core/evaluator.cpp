#include "core/evaluator.hpp"

namespace stordep {

EvaluationResult evaluate(const StorageDesign& design,
                          const FailureScenario& scenario) {
  return evaluate(design, scenario, precomputeDesign(design));
}

DesignPrecomputation precomputeDesign(const StorageDesign& design) {
  DesignPrecomputation pre;
  pre.utilization = computeUtilization(design);
  pre.outlays = computeOutlays(design.allDemands());
  pre.warnings = design.validate();
  return pre;
}

EvaluationResult evaluate(const StorageDesign& design,
                          const FailureScenario& scenario,
                          const DesignPrecomputation& precomputed) {
  EvaluationResult result;
  result.utilization = precomputed.utilization;
  result.levelAssessments = assessAllLevels(design, scenario);
  result.recovery = computeRecovery(design, scenario);
  result.cost = computeCosts(design, result.recovery, precomputed.outlays);
  result.warnings = precomputed.warnings;
  result.meetsObjectives = design.business().meetsObjectives(
      result.recovery.recoveryTime, result.recovery.dataLoss);
  return result;
}

EvaluationMetrics summarizeEvaluation(const EvaluationResult& result) {
  EvaluationMetrics m;
  m.utilizationFeasible = result.utilization.feasible();
  m.recoverable = result.recovery.recoverable;
  m.meetsObjectives = result.meetsObjectives;
  m.sourceLevel = result.recovery.sourceLevel;
  m.recoveryTime = result.recovery.recoveryTime;
  m.dataLoss = result.recovery.dataLoss;
  m.payload = result.recovery.payload;
  m.totalOutlays = result.cost.totalOutlays;
  m.outagePenalty = result.cost.outagePenalty;
  m.lossPenalty = result.cost.lossPenalty;
  m.totalPenalties = result.cost.totalPenalties;
  m.totalCost = result.cost.totalCost;
  return m;
}

}  // namespace stordep
