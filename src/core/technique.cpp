#include "core/technique.hpp"

namespace stordep {

std::string toString(TechniqueKind kind) {
  switch (kind) {
    case TechniqueKind::kPrimaryCopy:
      return "foreground workload";
    case TechniqueKind::kVirtualSnapshot:
      return "virtual snapshot";
    case TechniqueKind::kSplitMirror:
      return "split mirror";
    case TechniqueKind::kSyncMirror:
      return "sync mirror";
    case TechniqueKind::kAsyncMirror:
      return "async mirror";
    case TechniqueKind::kAsyncBatchMirror:
      return "async batch mirror";
    case TechniqueKind::kBackup:
      return "backup";
    case TechniqueKind::kVaulting:
      return "vaulting";
  }
  return "unknown";
}

Technique::Technique(std::string name, TechniqueKind kind)
    : name_(std::move(name)), kind_(kind) {
  if (name_.empty()) throw TechniqueError("technique must have a name");
}

std::string Technique::describe() const {
  return name_ + " (" + toString(kind_) + ")";
}

}  // namespace stordep
