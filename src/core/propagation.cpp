#include "core/propagation.hpp"

namespace stordep {

Duration rpTransitTime(const StorageDesign& design, int level) {
  if (level < 0 || level >= design.levelCount()) {
    throw DesignError("rpTransitTime: no level " + std::to_string(level));
  }
  Duration transit = Duration::zero();
  for (int i = 1; i <= level; ++i) {
    const ProtectionPolicy& pol = *design.level(i).policy();
    if (i < level) {
      // Intermediate level: updates ride the representation that feeds the
      // next level up (the primary/full windows).
      transit += pol.feedWindows().holdW + pol.feedWindows().propW;
    } else {
      // Target level: the most recent RP may be the slowest representation
      // still in flight.
      transit += pol.holdW() + pol.worstPropW();
    }
  }
  return transit;
}

Duration rpTimeLag(const StorageDesign& design, int level) {
  if (level == 0) return Duration::zero();
  const ProtectionPolicy& pol = *design.level(level).policy();
  return rpTransitTime(design, level) + pol.effectiveAccW();
}

Duration rpTimeLagConservative(const StorageDesign& design, int level) {
  if (level == 0) return Duration::zero();
  const ProtectionPolicy& pol = *design.level(level).policy();
  // Transit through intermediate levels is unchanged; at the target level
  // the most recent arrival is the *last-arriving* representation (the
  // incrementals, for cyclic schedules), followed by the worst
  // arrival-to-arrival gap.
  Duration transit = Duration::zero();
  for (int i = 1; i < level; ++i) {
    const WindowSpec& feed = design.level(i).policy()->feedWindows();
    transit += feed.holdW + feed.propW;
  }
  const Duration lastPropW = pol.isCyclic() ? pol.secondaryWindows()->propW
                                            : pol.primaryWindows().propW;
  return transit + pol.holdW() + lastPropW + pol.worstArrivalGap();
}

Duration rpExpectedTimeLag(const StorageDesign& design, int level) {
  if (level == 0) return Duration::zero();
  const ProtectionPolicy& pol = *design.level(level).policy();
  return rpTransitTime(design, level) + pol.effectiveAccW() * 0.5;
}

RpRange guaranteedRange(const StorageDesign& design, int level) {
  if (level == 0) {
    return RpRange{.youngestAge = Duration::zero(),
                   .oldestAge = Duration::zero()};
  }
  const ProtectionPolicy& pol = *design.level(level).policy();
  const Duration transit = rpTransitTime(design, level);
  return RpRange{
      .youngestAge = transit + pol.effectiveAccW(),
      .oldestAge = transit + pol.cyclePeriod() *
                                 static_cast<double>(pol.retentionCount() - 1)};
}

}  // namespace stordep
