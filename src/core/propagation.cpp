#include "core/propagation.hpp"

#include <algorithm>
#include <cmath>

namespace stordep {

namespace {

/// True when `value` sits on the integer grid spaced `grid` (within a
/// relative tolerance); infinite windows never align.
bool onGrid(Duration value, Duration grid) {
  if (!(grid.secs() > 0)) return true;
  if (!value.isFinite() || !grid.isFinite()) return false;
  const double q = value.secs() / grid.secs();
  return std::abs(q - std::round(q)) * grid.secs() <=
         1e-9 * std::max(value.secs(), grid.secs());
}

}  // namespace

Duration rpCaptureSlack(const StorageDesign& design, int level) {
  Duration slack = Duration::zero();
  for (int i = 2; i <= level && i < design.levelCount(); ++i) {
    const ProtectionPolicy& pol = *design.level(i).policy();
    const ProtectionPolicy& feed = *design.level(i - 1).policy();
    // Continuous mirrors track the primary; a capture is never stale.
    if (feed.effectiveAccW() == Duration::zero()) continue;
    // Upstream fulls arrive every cyclePer_{i-1}; the capture instants of
    // level i stay on that arrival grid exactly when every creation offset
    // (k*cyclePer_i, plus m*accW_incr for cyclic schedules) is an integer
    // multiple of it.
    const Duration grid = feed.cyclePeriod();
    bool aligned = onGrid(pol.cyclePeriod(), grid);
    if (aligned && pol.isCyclic()) {
      aligned = onGrid(pol.secondaryWindows()->accW, grid);
    }
    if (!aligned) slack += feed.worstArrivalGap();
  }
  return slack;
}

Duration rpTransitTime(const StorageDesign& design, int level) {
  if (level < 0 || level >= design.levelCount()) {
    throw DesignError("rpTransitTime: no level " + std::to_string(level));
  }
  Duration transit = Duration::zero();
  for (int i = 1; i <= level; ++i) {
    const ProtectionPolicy& pol = *design.level(i).policy();
    if (i < level) {
      // Intermediate level: updates ride the representation that feeds the
      // next level up (the primary/full windows).
      transit += pol.feedWindows().holdW + pol.feedWindows().propW;
    } else {
      // Target level: the most recent RP may be the slowest representation
      // still in flight.
      transit += pol.holdW() + pol.worstPropW();
    }
  }
  return transit;
}

Duration rpTimeLag(const StorageDesign& design, int level) {
  if (level == 0) return Duration::zero();
  const ProtectionPolicy& pol = *design.level(level).policy();
  return rpTransitTime(design, level) + pol.effectiveAccW();
}

Duration rpTimeLagConservative(const StorageDesign& design, int level) {
  if (level == 0) return Duration::zero();
  const ProtectionPolicy& pol = *design.level(level).policy();
  // Transit through intermediate levels is unchanged; at the target level
  // the most recent arrival is the *last-arriving* representation (the
  // incrementals, for cyclic schedules), followed by the worst
  // arrival-to-arrival gap.
  Duration transit = Duration::zero();
  for (int i = 1; i < level; ++i) {
    const WindowSpec& feed = design.level(i).policy()->feedWindows();
    transit += feed.holdW + feed.propW;
  }
  const Duration lastPropW = pol.isCyclic() ? pol.secondaryWindows()->propW
                                            : pol.primaryWindows().propW;
  return transit + pol.holdW() + lastPropW + pol.worstArrivalGap() +
         rpCaptureSlack(design, level);
}

Duration rpExpectedTimeLag(const StorageDesign& design, int level) {
  if (level == 0) return Duration::zero();
  const ProtectionPolicy& pol = *design.level(level).policy();
  return rpTransitTime(design, level) + pol.effectiveAccW() * 0.5;
}

LevelRecoveryWindow levelRecoveryWindow(const StorageDesign& design,
                                        int level) {
  if (level == 0) {
    return LevelRecoveryWindow{.lag = Duration::zero(),
                               .oldestAge = Duration::zero()};
  }
  const ProtectionPolicy& pol = *design.level(level).policy();
  const Duration transit = rpTransitTime(design, level);
  return LevelRecoveryWindow{
      .lag = transit + pol.effectiveAccW(),
      .oldestAge = transit + pol.cyclePeriod() *
                                 static_cast<double>(pol.retentionCount() - 1)};
}

RpRange guaranteedRange(const StorageDesign& design, int level) {
  if (level == 0) {
    return RpRange{.youngestAge = Duration::zero(),
                   .oldestAge = Duration::zero()};
  }
  const ProtectionPolicy& pol = *design.level(level).policy();
  const Duration transit = rpTransitTime(design, level);
  return RpRange{
      .youngestAge = transit + pol.effectiveAccW(),
      .oldestAge = transit + pol.cyclePeriod() *
                                 static_cast<double>(pol.retentionCount() - 1)};
}

}  // namespace stordep
