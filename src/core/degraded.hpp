// degraded.hpp — degraded-mode operation (the paper's Sec 5 future work:
// "extend the model ... to evaluate degraded mode operation (e.g., under
// the failure of a data protection technique)").
//
// A *technique outage* means a protection level has stopped creating and
// propagating new RPs for some elapsed time — a broken tape robot, a
// suspended mirror, a paused snapshot schedule — while its already-stored
// RPs remain readable (contrast with a hardware failure scope, which
// destroys the stored copies too). Consequences modeled here:
//
//  * staleness growth — every level at or above the outage sees its
//    youngest guaranteed RP age grow by the outage's elapsed time (nothing
//    new has flowed past the broken level);
//  * degraded data loss / recovery — the loss cases and the recovery-source
//    choice re-evaluated under the grown staleness, composing with a
//    hardware failure scenario (what if the array dies *while* the backup
//    robot is down?);
//  * catch-up — once the technique resumes, the backlog of unique updates
//    must be propagated; catchUpTime() estimates how long the level stays
//    degraded after repair;
//  * a protection-coverage report — for each single-level outage, the
//    residual dependability under each failure scenario, exposing single
//    points of failure in the protection scheme.
#pragma once

#include <vector>

#include "core/data_loss.hpp"
#include "core/recovery.hpp"

namespace stordep {

/// One protection level out of service for `elapsed` so far.
struct TechniqueOutage {
  int level = 0;
  Duration elapsed = Duration::zero();
};

/// Additional staleness at `level` caused by `outages`: the maximum elapsed
/// outage among levels at or below it (level 0 outages are hardware
/// failures, not technique outages, and are rejected).
[[nodiscard]] Duration degradedExtraStaleness(
    const StorageDesign& design, int level,
    const std::vector<TechniqueOutage>& outages);

/// assessLevel() under technique outages: the guaranteed range's young edge
/// ages by the extra staleness; a level whose own technique is down still
/// serves from its retained RPs.
[[nodiscard]] LevelLossAssessment assessLevelDegraded(
    const StorageDesign& design, int level, const FailureScenario& scenario,
    const std::vector<TechniqueOutage>& outages);

/// Recovery-source choice under outages.
[[nodiscard]] std::optional<LevelLossAssessment> chooseDegradedSource(
    const StorageDesign& design, const FailureScenario& scenario,
    const std::vector<TechniqueOutage>& outages);

/// Full recovery evaluation under outages (data loss reflects the grown
/// staleness; restore legs are unchanged — the stored media are intact).
[[nodiscard]] RecoveryResult computeDegradedRecovery(
    const StorageDesign& design, const FailureScenario& scenario,
    const std::vector<TechniqueOutage>& outages);

/// Time for `level` to re-protect after its outage ends: the backlog of
/// unique updates accumulated over the outage (plus one normal window)
/// propagated at the level's available inbound bandwidth.
[[nodiscard]] Duration catchUpTime(const StorageDesign& design, int level,
                                   Duration outageElapsed);

/// One cell of the protection-coverage matrix.
struct CoverageCell {
  int downLevel;             ///< which technique was out of service
  std::string downName;
  std::string scenarioName;
  bool recoverable = false;
  Duration dataLoss = Duration::infinite();
  Duration recoveryTime = Duration::infinite();
  int sourceLevel = -1;
  /// Loss growth versus the fully healthy design.
  Duration lossIncrease = Duration::zero();
};

/// Evaluates every single-level outage (each down for `elapsed`) against
/// every named scenario. Rows where `recoverable` is false are the
/// protection scheme's single points of failure.
[[nodiscard]] std::vector<CoverageCell> protectionCoverage(
    const StorageDesign& design,
    const std::vector<std::pair<std::string, FailureScenario>>& scenarios,
    Duration elapsed);

}  // namespace stordep
