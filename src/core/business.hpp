// business.hpp — business requirement inputs (paper Sec 3.1.2).
//
// The business consequences of an outage are captured by two penalty rates;
// the framework multiplies them by the worst-case recovery time and recent
// data loss to obtain the penalty component of overall cost. Optional RTO/RPO
// objectives let callers (and the optimizer) check designs against hard
// business-continuity targets.
#pragma once

#include <optional>

#include "core/units.hpp"

namespace stordep {

/// Penalty rates and (optional) recovery objectives for one data object.
struct BusinessRequirements {
  /// Penalty per unit time of data unavailability (outage).
  MoneyRate unavailabilityPenaltyRate;
  /// Penalty per unit time of lost recent updates.
  MoneyRate lossPenaltyRate;
  /// Recovery time objective: upper bound on acceptable recovery time.
  std::optional<Duration> rto;
  /// Recovery point objective: upper bound on acceptable recent data loss.
  std::optional<Duration> rpo;

  [[nodiscard]] Money outagePenalty(Duration recoveryTime) const noexcept {
    return unavailabilityPenaltyRate * recoveryTime;
  }
  [[nodiscard]] Money lossPenalty(Duration dataLoss) const noexcept {
    return lossPenaltyRate * dataLoss;
  }

  /// True when the given outcome meets both objectives (absent objective =
  /// always met).
  [[nodiscard]] bool meetsObjectives(Duration recoveryTime,
                                     Duration dataLoss) const noexcept {
    if (rto && recoveryTime > *rto) return false;
    if (rpo && dataLoss > *rpo) return false;
    return true;
  }
};

/// The paper's case-study requirements: $50,000/hour for both unavailability
/// and recent data loss, no hard RTO/RPO.
[[nodiscard]] BusinessRequirements caseStudyRequirements();

}  // namespace stordep
