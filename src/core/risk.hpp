// risk.hpp — failure-frequency risk model.
//
// The paper evaluates one imposed scenario at a time (business-continuity
// practice), but notes (Sec 5) that its automated-design work "allows us to
// incorporate failure frequencies and prioritizations, thus permitting the
// concurrent consideration of multiple failures". This module provides that
// layer: annotate scenarios with annual occurrence frequencies and compute
// the *expected annual cost* — outlays plus frequency-weighted per-event
// penalties — and the residual annual probability of unrecoverable loss.
#pragma once

#include <string>
#include <vector>

#include "core/evaluator.hpp"

namespace stordep {

/// A failure scenario with an expected occurrence rate.
struct FailureMode {
  std::string name;
  FailureScenario scenario;
  /// Expected occurrences per year (0.02 = once in 50 years).
  double annualFrequency = 0.0;
};

struct FailureModeResult {
  std::string name;
  double annualFrequency = 0.0;
  bool recoverable = false;
  Duration dataLoss = Duration::infinite();
  Duration recoveryTime = Duration::infinite();
  Money penaltyPerEvent;          ///< outage + loss penalties for one event
  Money expectedAnnualPenalty;    ///< frequency x per-event penalty
};

struct RiskAssessment {
  std::vector<FailureModeResult> modes;
  Money annualOutlays;
  Money expectedAnnualPenalty;
  /// outlays + sum of expected penalties: the number to minimize when
  /// designing against a whole failure-mode portfolio.
  Money expectedAnnualCost;
  /// Combined rate of events the design cannot recover from at all
  /// (events/year); zero for a fully covered design.
  double unrecoverableFrequency = 0.0;
  /// Downtime expectation: sum of frequency x recovery time, in hours/year.
  double expectedAnnualDowntimeHours = 0.0;
};

/// Evaluates `design` against every failure mode and aggregates.
/// (casestudy::defaultFailureModes() provides literature-flavored rates for
/// the paper's three scenarios.)
[[nodiscard]] RiskAssessment assessRisk(const StorageDesign& design,
                                        const std::vector<FailureMode>& modes);

}  // namespace stordep
