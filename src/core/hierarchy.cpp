#include "core/hierarchy.hpp"

#include <algorithm>
#include <unordered_set>

namespace stordep {

StorageDesign::StorageDesign(std::string name, WorkloadSpec workload,
                             BusinessRequirements business,
                             std::vector<TechniquePtr> levels,
                             std::optional<RecoveryFacilitySpec> facility)
    : name_(std::move(name)),
      workload_(std::move(workload)),
      business_(business),
      levels_(std::move(levels)),
      facility_(std::move(facility)) {
  if (levels_.empty()) {
    throw DesignError("design '" + name_ + "': needs at least the primary copy");
  }
  for (const auto& level : levels_) {
    if (!level) throw DesignError("design '" + name_ + "': null level");
  }
  if (levels_[0]->kind() != TechniqueKind::kPrimaryCopy) {
    throw DesignError("design '" + name_ +
                      "': level 0 must be the primary copy");
  }
  for (size_t i = 1; i < levels_.size(); ++i) {
    if (levels_[i]->kind() == TechniqueKind::kPrimaryCopy) {
      throw DesignError("design '" + name_ +
                        "': only level 0 may be the primary copy");
    }
    if (levels_[i]->policy() == nullptr) {
      throw DesignError("design '" + name_ + "': level '" +
                        levels_[i]->name() + "' has no policy");
    }
  }
  if (facility_ && facility_->costDiscount < 0) {
    throw DesignError("design '" + name_ +
                      "': facility cost discount must be >= 0");
  }
}

const Technique& StorageDesign::level(int i) const {
  if (i < 0 || i >= levelCount()) {
    throw DesignError("design '" + name_ + "': no level " + std::to_string(i));
  }
  return *levels_[static_cast<size_t>(i)];
}

TechniquePtr StorageDesign::levelPtr(int i) const {
  if (i < 0 || i >= levelCount()) {
    throw DesignError("design '" + name_ + "': no level " + std::to_string(i));
  }
  return levels_[static_cast<size_t>(i)];
}

const PrimaryCopy& StorageDesign::primary() const {
  return static_cast<const PrimaryCopy&>(*levels_[0]);
}

std::vector<DevicePtr> StorageDesign::devices() const {
  std::vector<DevicePtr> out;
  std::unordered_set<const DeviceModel*> seen;
  auto add = [&](const DevicePtr& d) {
    if (d && seen.insert(d.get()).second) out.push_back(d);
  };
  for (const auto& level : levels_) {
    for (const auto& d : level->storageDevices()) add(d);
    for (const auto& pd : level->normalModeDemands(workload_)) add(pd.device);
    for (const auto& leg : level->recoveryLegs(nullptr)) {
      add(leg.from);
      add(leg.to);
      add(leg.via);
    }
  }
  return out;
}

std::vector<PlacedDemand> StorageDesign::allDemands() const {
  std::vector<PlacedDemand> out;
  for (const auto& level : levels_) {
    auto demands = level->normalModeDemands(workload_);
    out.insert(out.end(), std::make_move_iterator(demands.begin()),
               std::make_move_iterator(demands.end()));
  }
  return out;
}

std::vector<std::string> StorageDesign::validate() const {
  std::vector<std::string> out;
  for (size_t i = 1; i < levels_.size(); ++i) {
    const auto& tech = *levels_[i];
    const ProtectionPolicy& pol = *tech.policy();
    for (auto& v : pol.conventionViolations()) {
      out.push_back("level " + std::to_string(i) + " (" + tech.name() +
                    "): " + v);
    }
    if (i + 1 < levels_.size()) {
      const ProtectionPolicy& next = *levels_[i + 1]->policy();
      if (next.primaryWindows().accW < pol.cyclePeriod()) {
        out.push_back("level " + std::to_string(i + 1) + " (" +
                      levels_[i + 1]->name() + "): accW " +
                      toString(next.primaryWindows().accW) +
                      " is shorter than level " + std::to_string(i) +
                      "'s cycle period " + toString(pol.cyclePeriod()) +
                      " — slower levels should take less frequent RPs");
      }
      if (next.retentionCount() < pol.retentionCount()) {
        out.push_back("level " + std::to_string(i + 1) + " (" +
                      levels_[i + 1]->name() + "): retCnt " +
                      std::to_string(next.retentionCount()) +
                      " is below level " + std::to_string(i) + "'s " +
                      std::to_string(pol.retentionCount()));
      }
      if (pol.holdW() > next.retentionWindow() &&
          next.retentionWindow().secs() > 0) {
        out.push_back("level " + std::to_string(i) + " (" + tech.name() +
                      "): holdW " + toString(pol.holdW()) +
                      " exceeds the next level's retention window " +
                      toString(next.retentionWindow()));
      }
    }
  }
  return out;
}

}  // namespace stordep
