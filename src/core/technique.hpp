// technique.hpp — abstract data-protection technique (one hierarchy level).
//
// A storage design is a hierarchy of levels (paper Sec 3.2): level 0 is the
// primary copy; each higher level is a data protection technique that
// receives retrieval points (RPs) from the level below, retains some number
// of them, and propagates RPs further up. Every concrete technique
// (PiT copies, backup, inter-array mirroring, vaulting) implements this
// interface by:
//
//   1. declaring which hardware devices it uses,
//   2. converting its policy + the workload into normal-mode bandwidth and
//      capacity demands on those devices (Sec 3.2.3), and
//   3. describing how data is read back out of it during recovery
//      (payload composition and the devices a restore traverses).
//
// The composition models (utilization, propagation, data loss, recovery,
// cost) consume only this interface, so new techniques can be added without
// touching the framework — the paper's core design goal.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "core/workload.hpp"
#include "devices/device.hpp"

namespace stordep {

enum class TechniqueKind {
  kPrimaryCopy,
  kVirtualSnapshot,
  kSplitMirror,
  kSyncMirror,
  kAsyncMirror,
  kAsyncBatchMirror,
  kBackup,
  kVaulting,
};

[[nodiscard]] std::string toString(TechniqueKind kind);

/// A normal-mode demand a technique places on a specific device.
struct PlacedDemand {
  DevicePtr device;
  DeviceDemand demand;
};

/// One leg of a restore: move `payload` bytes from `from` into `to`, possibly
/// `via` a transport (network link or physical shipment). `from == to` means
/// an intra-device copy (PiT restore), which consumes the device's bandwidth
/// twice (read + write).
struct RecoveryLeg {
  DevicePtr from;
  DevicePtr to;        ///< null = the (replacement) primary array
  DevicePtr via;       ///< optional transport; null = co-located transfer
  /// Fixed serialized time after the data arrives for this leg (tape
  /// load/seek at the sending device, media handling, ...).
  Duration serializedFix = Duration::zero();
};

class TechniqueError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Technique {
 public:
  Technique(std::string name, TechniqueKind kind);
  virtual ~Technique() = default;

  Technique(const Technique&) = delete;
  Technique& operator=(const Technique&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] TechniqueKind kind() const noexcept { return kind_; }

  /// The level's RP creation/retention/propagation policy. Null for the
  /// primary copy (level 0), which holds exactly the current data.
  [[nodiscard]] virtual const ProtectionPolicy* policy() const noexcept {
    return nullptr;
  }

  /// The device(s) on which this level's RPs physically reside. A level is
  /// destroyed by a failure scenario iff all its storage devices are.
  [[nodiscard]] virtual std::vector<DevicePtr> storageDevices() const = 0;

  /// Normal-mode demands on every device this technique touches.
  [[nodiscard]] virtual std::vector<PlacedDemand> normalModeDemands(
      const WorkloadSpec& workload) const = 0;

  /// The bytes that must be read from this level to restore `baseSize` of
  /// data (a full image plus any incrementals the representation requires).
  [[nodiscard]] virtual Bytes restorePayload(const WorkloadSpec& workload,
                                             Bytes baseSize) const {
    (void)workload;
    return baseSize;
  }

  /// The restore path from this level's storage to the (replacement)
  /// primary array. `primaryTarget` is null when the recovery model will
  /// substitute the replacement primary itself.
  [[nodiscard]] virtual std::vector<RecoveryLeg> recoveryLegs(
      DevicePtr primaryTarget) const = 0;

  /// Human-readable summary for reports.
  [[nodiscard]] virtual std::string describe() const;

 private:
  std::string name_;
  TechniqueKind kind_;
};

using TechniquePtr = std::shared_ptr<const Technique>;

}  // namespace stordep
