#include "core/reliability.hpp"

#include "devices/disk_array.hpp"
#include "devices/tape_library.hpp"
#include "devices/vault.hpp"

namespace stordep {

const char* toString(ProcessKind kind) noexcept {
  switch (kind) {
    case ProcessKind::kExponential:
      return "exponential";
    case ProcessKind::kWeibull:
      return "weibull";
    case ProcessKind::kFixed:
      return "fixed";
  }
  return "unknown";
}

DeviceReliability defaultDeviceReliability(const DeviceModel& device) {
  DeviceReliability out;
  if (device.isTransport()) {
    // Link/courier outages delay propagation; they do not destroy stored
    // data, so they are not failure sources in the mission model.
    out.failure = {ProcessKind::kExponential, Duration::infinite(), 1.0};
    out.repair = {ProcessKind::kFixed, Duration::zero(), 1.0};
    return out;
  }
  if (dynamic_cast<const DiskArray*>(&device) != nullptr) {
    // Fleet studies put disk-array field life near a decade with mild
    // wear-out (shape > 1); repair = rebuild onto a spare, order of hours.
    out.failure = {ProcessKind::kWeibull, years(10), 1.5};
    out.repair = {ProcessKind::kExponential, hours(12), 1.0};
    return out;
  }
  if (dynamic_cast<const TapeLibrary*>(&device) != nullptr) {
    out.failure = {ProcessKind::kExponential, years(15), 1.0};
    out.repair = {ProcessKind::kExponential, days(1), 1.0};
    return out;
  }
  if (dynamic_cast<const MediaVault*>(&device) != nullptr) {
    // Passive fire-safe storage: very rare loss, slow replacement.
    out.failure = {ProcessKind::kExponential, years(50), 1.0};
    out.repair = {ProcessKind::kExponential, weeks(1), 1.0};
    return out;
  }
  // Unknown storage device class: conservative disk-like behaviour.
  out.failure = {ProcessKind::kExponential, years(10), 1.0};
  out.repair = {ProcessKind::kExponential, hours(12), 1.0};
  return out;
}

std::vector<std::pair<DevicePtr, DeviceReliability>> resolveReliability(
    const StorageDesign& design, const ReliabilitySpec& spec) {
  const ProcessSpec unset{};
  std::vector<std::pair<DevicePtr, DeviceReliability>> out;
  for (const DevicePtr& device : design.devices()) {
    if (device->isTransport()) continue;
    DeviceReliability chosen = defaultDeviceReliability(*device);
    const auto it = spec.devices.find(device->name());
    if (it != spec.devices.end()) {
      if (!(it->second.failure == unset)) chosen.failure = it->second.failure;
      if (!(it->second.repair == unset)) chosen.repair = it->second.repair;
    }
    out.emplace_back(device, chosen);
  }
  return out;
}

}  // namespace stordep
