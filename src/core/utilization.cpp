#include "core/utilization.hpp"

#include <algorithm>
#include <map>

namespace stordep {

const DeviceUtilization* UtilizationResult::find(
    const std::string& name) const {
  const auto it =
      std::find_if(devices.begin(), devices.end(),
                   [&](const DeviceUtilization& d) { return d.device == name; });
  return it == devices.end() ? nullptr : &*it;
}

UtilizationResult computeUtilization(const StorageDesign& design) {
  return computeUtilization(design.allDemands());
}

UtilizationResult computeUtilization(const std::vector<PlacedDemand>& all) {
  // Gather demands per device, preserving first-seen device order.
  std::vector<DevicePtr> order;
  std::map<const DeviceModel*, std::vector<DeviceDemand>> byDevice;
  for (const auto& pd : all) {
    if (byDevice.find(pd.device.get()) == byDevice.end()) {
      order.push_back(pd.device);
    }
    byDevice[pd.device.get()].push_back(pd.demand);
  }

  UtilizationResult result;
  for (const auto& device : order) {
    DeviceUtilization du;
    du.device = device->name();
    du.bwLimit = device->maxBandwidth();
    du.capLimit = device->usableCapacity();

    for (const auto& demand : byDevice[device.get()]) {
      DemandShare share;
      share.technique = demand.techniqueName;
      share.bandwidth = demand.bandwidth;
      share.capacity = demand.capacity;
      share.bwUtil = du.bwLimit.isInfinite() || du.bwLimit.bytesPerSec() == 0
                         ? 0.0
                         : demand.bandwidth / du.bwLimit;
      share.capUtil = du.capLimit.isInfinite()
                          ? 0.0
                          : demand.capacity / du.capLimit;
      du.bwDemand += demand.bandwidth;
      du.capDemand += demand.capacity;
      du.bwUtil += share.bwUtil;
      du.capUtil += share.capUtil;
      du.shares.push_back(std::move(share));
    }

    if (du.bwUtil > 1.0) {
      result.errors.push_back(
          "device '" + du.device + "' bandwidth overloaded: demand " +
          toString(du.bwDemand) + " exceeds " + toString(du.bwLimit));
    }
    if (du.capUtil > 1.0) {
      result.errors.push_back(
          "device '" + du.device + "' capacity overloaded: demand " +
          toString(du.capDemand) + " exceeds " + toString(du.capLimit));
    }
    result.devices.push_back(std::move(du));
  }

  for (const auto& du : result.devices) {
    if (du.bwUtil > result.overallBwUtil) {
      result.overallBwUtil = du.bwUtil;
      result.maxBwDevice = du.device;
    }
    if (du.capUtil > result.overallCapUtil) {
      result.overallCapUtil = du.capUtil;
      result.maxCapDevice = du.device;
    }
  }
  return result;
}

UtilizationFeasibility computeUtilizationFeasibility(
    const std::vector<PlacedDemand>& all) {
  // Same first-seen device order as computeUtilization(), without building
  // the per-device demand map: for each distinct device, re-scan `all` for
  // its demands. The per-demand accumulation below must mirror the full
  // model's exactly (same expressions, same order) so the double sums land
  // on the same bits.
  std::vector<const DeviceModel*> seen;
  UtilizationFeasibility out;
  for (std::size_t first = 0; first < all.size(); ++first) {
    const DeviceModel* device = all[first].device.get();
    bool isNew = true;
    for (const DeviceModel* s : seen) {
      if (s == device) {
        isNew = false;
        break;
      }
    }
    if (!isNew) continue;
    seen.push_back(device);

    const Bandwidth bwLimit = device->maxBandwidth();
    const Bytes capLimit = device->usableCapacity();
    Bandwidth bwDemand;
    Bytes capDemand;
    double bwUtil = 0.0;
    double capUtil = 0.0;
    for (std::size_t i = first; i < all.size(); ++i) {
      if (all[i].device.get() != device) continue;
      const DeviceDemand& demand = all[i].demand;
      const double shareBw = bwLimit.isInfinite() || bwLimit.bytesPerSec() == 0
                                 ? 0.0
                                 : demand.bandwidth / bwLimit;
      const double shareCap =
          capLimit.isInfinite() ? 0.0 : demand.capacity / capLimit;
      bwDemand += demand.bandwidth;
      capDemand += demand.capacity;
      bwUtil += shareBw;
      capUtil += shareCap;
    }

    if (bwUtil > 1.0) {
      out.feasible = false;
      out.firstError = "device '" + std::string(device->name()) +
                       "' bandwidth overloaded: demand " + toString(bwDemand) +
                       " exceeds " + toString(bwLimit);
      return out;
    }
    if (capUtil > 1.0) {
      out.feasible = false;
      out.firstError = "device '" + std::string(device->name()) +
                       "' capacity overloaded: demand " + toString(capDemand) +
                       " exceeds " + toString(capLimit);
      return out;
    }
  }
  return out;
}

}  // namespace stordep
