#include "core/utilization.hpp"

#include <algorithm>
#include <map>

namespace stordep {

const DeviceUtilization* UtilizationResult::find(
    const std::string& name) const {
  const auto it =
      std::find_if(devices.begin(), devices.end(),
                   [&](const DeviceUtilization& d) { return d.device == name; });
  return it == devices.end() ? nullptr : &*it;
}

UtilizationResult computeUtilization(const StorageDesign& design) {
  return computeUtilization(design.allDemands());
}

UtilizationResult computeUtilization(const std::vector<PlacedDemand>& all) {
  // Gather demands per device, preserving first-seen device order.
  std::vector<DevicePtr> order;
  std::map<const DeviceModel*, std::vector<DeviceDemand>> byDevice;
  for (const auto& pd : all) {
    if (byDevice.find(pd.device.get()) == byDevice.end()) {
      order.push_back(pd.device);
    }
    byDevice[pd.device.get()].push_back(pd.demand);
  }

  UtilizationResult result;
  for (const auto& device : order) {
    DeviceUtilization du;
    du.device = device->name();
    du.bwLimit = device->maxBandwidth();
    du.capLimit = device->usableCapacity();

    for (const auto& demand : byDevice[device.get()]) {
      DemandShare share;
      share.technique = demand.techniqueName;
      share.bandwidth = demand.bandwidth;
      share.capacity = demand.capacity;
      share.bwUtil = du.bwLimit.isInfinite() || du.bwLimit.bytesPerSec() == 0
                         ? 0.0
                         : demand.bandwidth / du.bwLimit;
      share.capUtil = du.capLimit.isInfinite()
                          ? 0.0
                          : demand.capacity / du.capLimit;
      du.bwDemand += demand.bandwidth;
      du.capDemand += demand.capacity;
      du.bwUtil += share.bwUtil;
      du.capUtil += share.capUtil;
      du.shares.push_back(std::move(share));
    }

    if (du.bwUtil > 1.0) {
      result.errors.push_back(
          "device '" + du.device + "' bandwidth overloaded: demand " +
          toString(du.bwDemand) + " exceeds " + toString(du.bwLimit));
    }
    if (du.capUtil > 1.0) {
      result.errors.push_back(
          "device '" + du.device + "' capacity overloaded: demand " +
          toString(du.capDemand) + " exceeds " + toString(du.capLimit));
    }
    result.devices.push_back(std::move(du));
  }

  for (const auto& du : result.devices) {
    if (du.bwUtil > result.overallBwUtil) {
      result.overallBwUtil = du.bwUtil;
      result.maxBwDevice = du.device;
    }
    if (du.capUtil > result.overallCapUtil) {
      result.overallCapUtil = du.capUtil;
      result.maxCapDevice = du.device;
    }
  }
  return result;
}

}  // namespace stordep
