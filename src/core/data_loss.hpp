// data_loss.hpp — recent-data-loss model (paper Sec 3.3.3).
//
// Given a failure scenario (which levels survive, what restoration point is
// requested), each surviving level is classified into one of three cases:
//
//  1. target too recent — no RP for it has propagated here yet: the loss is
//     the level's time lag (minus the requested target age);
//  2. target inside the level's guaranteed range — RPs arrive every accW, so
//     at worst one accumulation window of updates before the target is lost;
//  3. target older than anything retained — this level cannot serve the
//     recovery at all (the whole object would be lost).
//
// The level with the smallest loss becomes the recovery source.
#pragma once

#include <optional>
#include <vector>

#include "core/failure.hpp"
#include "core/hierarchy.hpp"
#include "core/propagation.hpp"

namespace stordep {

enum class LossCase {
  kNotYetPropagated,  ///< case 1: loss = lag - targetAge
  kWithinRange,       ///< case 2: loss = effective accW
  kTooOld,            ///< case 3: level cannot serve the recovery target
  kLevelDestroyed,    ///< the level's storage died in the failure
  kLevelCorrupted,    ///< level 0 under a data-object (corruption) failure
};

[[nodiscard]] std::string toString(LossCase c);

/// One level's ability to serve the recovery.
struct LevelLossAssessment {
  int level = 0;
  LossCase lossCase = LossCase::kLevelDestroyed;
  /// Worst-case recent data loss when recovering from this level; infinite
  /// for kTooOld / kLevelDestroyed / kLevelCorrupted.
  Duration dataLoss = Duration::infinite();
  RpRange range{};
};

/// Assesses a single level under `scenario`.
[[nodiscard]] LevelLossAssessment assessLevel(const StorageDesign& design,
                                              int level,
                                              const FailureScenario& scenario);

/// Assesses every level, in level order.
[[nodiscard]] std::vector<LevelLossAssessment> assessAllLevels(
    const StorageDesign& design, const FailureScenario& scenario);

/// The chosen recovery source: the surviving level with the smallest data
/// loss (ties broken toward the lower/faster level). Empty when no level can
/// serve the target — the data is unrecoverable under this scenario.
[[nodiscard]] std::optional<LevelLossAssessment> chooseRecoverySource(
    const StorageDesign& design, const FailureScenario& scenario);

/// True when the failure scenario destroys every storage device of `level`.
[[nodiscard]] bool levelDestroyed(const StorageDesign& design, int level,
                                  const FailureScenario& scenario);

/// Expected (mean) recent data loss when recovering from `level` under a
/// failure at a uniformly random instant — the companion to the worst-case
/// numbers the paper reports. Case 1 averages the in-flight wait to half a
/// window (expected lag - target age); case 2 averages the RP spacing to
/// accW/2. Infinite when the level cannot serve. Validated against the
/// simulator's empirical means (bench_expected_vs_worst).
[[nodiscard]] Duration expectedDataLoss(const StorageDesign& design, int level,
                                        const FailureScenario& scenario);

}  // namespace stordep
