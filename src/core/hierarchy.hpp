// hierarchy.hpp — a complete storage system design: the RP hierarchy.
//
// A StorageDesign composes the workload, the business requirements, and an
// ordered list of techniques forming the RP propagation hierarchy: level 0 is
// always the primary copy; levels 1..n retain progressively older, more
// numerous RPs on progressively slower/more distant hardware (paper Sec 3.2,
// Figure 1). An optional shared recovery facility describes where replacement
// resources come from when a whole site is lost.
#pragma once

#include <optional>
#include <vector>

#include "core/business.hpp"
#include "core/failure.hpp"
#include "core/technique.hpp"
#include "core/techniques/foreground.hpp"
#include "core/workload.hpp"

namespace stordep {

/// A shared recovery facility (e.g., a commercial hosting service): after a
/// disaster that destroys a device *and* its dedicated spare, replacement
/// resources are provisioned here.
struct RecoveryFacilitySpec {
  Location location;
  /// Time to drain/scrub/reconfigure shared resources (case study: 9 hours).
  Duration provisioningTime;
  /// Fraction of dedicated-resource cost paid for the shared resources
  /// (case study: 20%).
  double costDiscount = 1.0;
};

class DesignError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class StorageDesign {
 public:
  /// `levels[0]` must be a PrimaryCopy; later entries are ordered by
  /// increasing RP age/capacity (the propagation hierarchy).
  StorageDesign(std::string name, WorkloadSpec workload,
                BusinessRequirements business, std::vector<TechniquePtr> levels,
                std::optional<RecoveryFacilitySpec> facility = std::nullopt);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const WorkloadSpec& workload() const noexcept {
    return workload_;
  }
  [[nodiscard]] const BusinessRequirements& business() const noexcept {
    return business_;
  }
  [[nodiscard]] int levelCount() const noexcept {
    return static_cast<int>(levels_.size());
  }
  [[nodiscard]] const Technique& level(int i) const;
  [[nodiscard]] TechniquePtr levelPtr(int i) const;
  [[nodiscard]] const PrimaryCopy& primary() const;
  [[nodiscard]] const std::optional<RecoveryFacilitySpec>& facility()
      const noexcept {
    return facility_;
  }

  /// Every distinct device referenced by any level.
  [[nodiscard]] std::vector<DevicePtr> devices() const;

  /// All normal-mode demands from all levels, in level order.
  [[nodiscard]] std::vector<PlacedDemand> allDemands() const;

  /// Soft violations of the paper's inter-level conventions (Sec 3.2.1):
  ///   accW(i+1) >= cyclePer(i)   slower levels take less frequent RPs
  ///   retCnt(i+1) >= retCnt(i)   slower levels retain at least as many
  ///   holdW(i) <= retW(i+1)      holds don't outlive upstream retention
  /// plus each level's own policy conventions.
  [[nodiscard]] std::vector<std::string> validate() const;

 private:
  std::string name_;
  WorkloadSpec workload_;
  BusinessRequirements business_;
  std::vector<TechniquePtr> levels_;
  std::optional<RecoveryFacilitySpec> facility_;
};

}  // namespace stordep
