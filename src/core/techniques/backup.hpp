// backup.hpp — tape (or disk) backup with full/incremental cycles.
//
// Backup copies RPs from the primary array to separate hardware (paper
// Sec 2, 3.2.3). A backup cycle is one full backup followed by cycleCnt
// incrementals, which are either *cumulative* (all changes since the last
// full; each is larger than the one before) or *differential* (changes since
// the previous backup of any kind; small but all must be replayed on
// restore).
//
// Demand model (Sec 3.2.3):
//  - bandwidth (on both source array and backup device) = the maximum of the
//    full-backup rate (dataCap / propW_full) and the largest incremental's
//    rate (its unique bytes / propW_incr) — backups must finish within their
//    propagation windows;
//  - capacity (backup device) = retCnt cycles of media plus one extra full
//    dataset copy, so that a failure during a new full backup never leaves
//    the system without a restorable image;
//  - no capacity on the source array (a PiT technique provides the
//    consistent image being backed up).
#pragma once

#include "core/technique.hpp"

namespace stordep {

enum class BackupStyle {
  kFullOnly,
  kCumulativeIncremental,
  kDifferentialIncremental,
};

[[nodiscard]] std::string toString(BackupStyle style);

class Backup final : public Technique {
 public:
  /// For kFullOnly pass a non-cyclic policy; for the incremental styles a
  /// cyclic policy whose primary windows are the full's and secondary
  /// windows the incrementals'. `transport` optionally names the
  /// interconnect the backup stream crosses (a shared SAN, or WAN links for
  /// remote disk-to-disk backup): it is charged the stream's bandwidth and
  /// constrains restores; null means a dedicated/enclosure path.
  Backup(std::string name, BackupStyle style, DevicePtr sourceArray,
         DevicePtr backupDevice, ProtectionPolicy policy,
         DevicePtr transport = nullptr);

  [[nodiscard]] BackupStyle style() const noexcept { return style_; }
  [[nodiscard]] const ProtectionPolicy* policy() const noexcept override {
    return &policy_;
  }
  [[nodiscard]] DevicePtr sourceArray() const noexcept { return source_; }
  [[nodiscard]] DevicePtr backupDevice() const noexcept { return device_; }
  [[nodiscard]] DevicePtr transport() const noexcept { return transport_; }

  [[nodiscard]] std::vector<DevicePtr> storageDevices() const override {
    return {device_};
  }

  /// Peak transfer rate across the cycle (full vs largest incremental).
  [[nodiscard]] Bandwidth transferRate(const WorkloadSpec& workload) const;

  /// Media consumed by one full cycle (full + incrementals).
  [[nodiscard]] Bytes cycleCapacity(const WorkloadSpec& workload) const;

  [[nodiscard]] std::vector<PlacedDemand> normalModeDemands(
      const WorkloadSpec& workload) const override;

  /// Worst-case restore payload: the full image plus the incrementals that
  /// must be replayed on top of it (largest cumulative, or all
  /// differentials). For partial-object restores (baseSize < dataCap) the
  /// incremental share scales proportionally.
  [[nodiscard]] Bytes restorePayload(const WorkloadSpec& workload,
                                     Bytes baseSize) const override;

  [[nodiscard]] std::vector<RecoveryLeg> recoveryLegs(
      DevicePtr primaryTarget) const override;

 private:
  /// Unique bytes covered by the largest incremental in the cycle.
  [[nodiscard]] Bytes largestIncrementalBytes(
      const WorkloadSpec& workload) const;

  BackupStyle style_;
  DevicePtr source_;
  DevicePtr device_;
  DevicePtr transport_;
  ProtectionPolicy policy_;
};

}  // namespace stordep
