// remote_mirror.hpp — inter-array mirroring (sync / async / async-batch).
//
// Mirroring keeps an isolated copy of the current data on a second disk
// array, connected by interconnect links (paper Sec 2, Sec 3.2.3):
//
//   synchronous   every update applied to the secondary before the write
//                 completes: the links must carry the *peak* update rate
//                 (avgUpdateR x burstM); zero data loss.
//   asynchronous  updates propagate in the background: links sized for the
//                 average update rate; seconds-to-minutes of loss.
//   async batch   overwrites are coalesced and batches sent every accW: links
//                 sized for the unique update rate of the batch window —
//                 the cheapest in bandwidth (Seneca/SnapMirror style).
//
// Bandwidth demands land on the links and the destination array (arrays
// expose a separate inter-array mirroring interface, so no client-interface
// demand is charged to the source array); capacity (one full copy) on the
// destination array.
#pragma once

#include "core/technique.hpp"

namespace stordep {

enum class MirrorMode { kSync, kAsync, kAsyncBatch };

[[nodiscard]] std::string toString(MirrorMode mode);

class RemoteMirror final : public Technique {
 public:
  /// `policy` carries the batch windows for kAsyncBatch (accW = batch
  /// accumulation, propW = batch transmission). For kSync/kAsync pass a
  /// policy with accW = 0 (the mirror continuously tracks the primary).
  RemoteMirror(std::string name, MirrorMode mode, DevicePtr sourceArray,
               DevicePtr destArray, DevicePtr links, ProtectionPolicy policy);

  [[nodiscard]] MirrorMode mode() const noexcept { return mode_; }
  [[nodiscard]] const ProtectionPolicy* policy() const noexcept override {
    return &policy_;
  }
  [[nodiscard]] DevicePtr sourceArray() const noexcept { return source_; }
  [[nodiscard]] DevicePtr destArray() const noexcept { return dest_; }
  [[nodiscard]] DevicePtr links() const noexcept { return links_; }

  [[nodiscard]] std::vector<DevicePtr> storageDevices() const override {
    return {dest_};
  }

  /// The steady-state rate the links must carry for this mode.
  [[nodiscard]] Bandwidth propagationRate(const WorkloadSpec& workload) const;

  /// Foreground write-latency penalty of this mirror: synchronous mirroring
  /// blocks each write on a round trip over the links (2 x propagation
  /// delay); asynchronous modes add none. Not part of the paper's
  /// dependability metrics, but the operational reason async variants exist
  /// — surfaced so designers see what a sync mirror costs the application.
  [[nodiscard]] Duration foregroundWriteLatency() const;

  /// Smoothing/coalescing buffer the source array needs for the
  /// asynchronous modes (the paper notes it "is typically a small fraction
  /// of the typical array cache" and skips it; this makes the claim
  /// checkable). During a burst of length `burstDuration` the workload
  /// writes at `burstM x avgUpdateR` while the links drain at most at their
  /// capacity, so:
  ///   async       buffer >= burstDuration * max(0, peak - linkBW)
  ///   async-batch buffer >= uniq(accW) + the same burst overshoot
  ///               (a whole batch is staged before transmission)
  ///   sync        zero (writes block instead of buffering).
  [[nodiscard]] Bytes requiredBufferSize(const WorkloadSpec& workload,
                                         Duration burstDuration) const;

  [[nodiscard]] std::vector<PlacedDemand> normalModeDemands(
      const WorkloadSpec& workload) const override;

  /// Restore: copy from the destination array back to the (replacement)
  /// primary. The recovery model routes it over the links when the
  /// replacement is at a different site, or locally when the replacement is
  /// provisioned next to the mirror (site-disaster failover).
  [[nodiscard]] std::vector<RecoveryLeg> recoveryLegs(
      DevicePtr primaryTarget) const override;

 private:
  MirrorMode mode_;
  DevicePtr source_;
  DevicePtr dest_;
  DevicePtr links_;
  ProtectionPolicy policy_;
};

/// Convenience policy for sync/async mirrors: continuous propagation,
/// a single retained (current) RP.
[[nodiscard]] ProtectionPolicy continuousMirrorPolicy();

}  // namespace stordep
