// vaulting.hpp — off-site vaulting of removable backup media.
//
// Vaulting periodically ships full-backup media from the backup device to a
// remote vault for archival retention (paper Sec 2, 3.2.3). When the vault's
// hold window is at least the backup level's retention window, the expiring
// tapes themselves are shipped and vaulting is free of bandwidth demands;
// when tapes must leave *before* their on-site retention expires, the backup
// device has to cut an extra copy first, which costs library bandwidth and
// one extra full of media capacity.
#pragma once

#include "core/technique.hpp"

namespace stordep {

class Vaulting final : public Technique {
 public:
  /// `backupRetentionWindow` is the retention window of the backup level
  /// feeding this vault (decides whether an extra media copy is needed).
  Vaulting(std::string name, DevicePtr backupDevice, DevicePtr vault,
           DevicePtr shipment, ProtectionPolicy policy,
           Duration backupRetentionWindow);

  [[nodiscard]] const ProtectionPolicy* policy() const noexcept override {
    return &policy_;
  }
  [[nodiscard]] DevicePtr backupDevice() const noexcept { return library_; }
  [[nodiscard]] DevicePtr vault() const noexcept { return vault_; }
  [[nodiscard]] DevicePtr shipment() const noexcept { return shipment_; }

  [[nodiscard]] std::vector<DevicePtr> storageDevices() const override {
    return {vault_};
  }

  /// True when tapes must be copied before shipment (holdW < backup retW).
  [[nodiscard]] bool needsExtraCopy() const noexcept;

  /// Shipments dispatched per year (one per vault cycle).
  [[nodiscard]] double shipmentsPerYear() const noexcept;

  [[nodiscard]] std::vector<PlacedDemand> normalModeDemands(
      const WorkloadSpec& workload) const override;

  /// Only fulls are vaulted: the restore payload is the image itself.
  [[nodiscard]] Bytes restorePayload(const WorkloadSpec& workload,
                                     Bytes baseSize) const override;

  /// Restore path: ship media from the vault to the backup device's site,
  /// then read it there into the (replacement) primary.
  [[nodiscard]] std::vector<RecoveryLeg> recoveryLegs(
      DevicePtr primaryTarget) const override;

 private:
  DevicePtr library_;
  DevicePtr vault_;
  DevicePtr shipment_;
  ProtectionPolicy policy_;
  Duration backupRetW_;
};

}  // namespace stordep
