#include "core/techniques/remote_mirror.hpp"

namespace stordep {

std::string toString(MirrorMode mode) {
  switch (mode) {
    case MirrorMode::kSync:
      return "sync";
    case MirrorMode::kAsync:
      return "async";
    case MirrorMode::kAsyncBatch:
      return "async-batch";
  }
  return "unknown";
}

ProtectionPolicy continuousMirrorPolicy() {
  return ProtectionPolicy(
      WindowSpec{.accW = Duration::zero(),
                 .propW = Duration::zero(),
                 .holdW = Duration::zero(),
                 .propRep = Representation::kPartial},
      /*retentionCount=*/1, /*retentionWindow=*/Duration::zero(),
      Representation::kFull);
}

RemoteMirror::RemoteMirror(std::string name, MirrorMode mode,
                           DevicePtr sourceArray, DevicePtr destArray,
                           DevicePtr links, ProtectionPolicy policy)
    : Technique(std::move(name), mode == MirrorMode::kSync
                                     ? TechniqueKind::kSyncMirror
                                     : (mode == MirrorMode::kAsync
                                            ? TechniqueKind::kAsyncMirror
                                            : TechniqueKind::kAsyncBatchMirror)),
      mode_(mode),
      source_(std::move(sourceArray)),
      dest_(std::move(destArray)),
      links_(std::move(links)),
      policy_(std::move(policy)) {
  if (!source_ || !dest_ || !links_) {
    throw TechniqueError("remote mirror requires source, destination, links");
  }
  if (source_ == dest_) {
    throw TechniqueError("remote mirror destination must be a separate array");
  }
  if (mode_ == MirrorMode::kAsyncBatch &&
      !(policy_.primaryWindows().accW.secs() > 0)) {
    throw TechniqueError("async-batch mirroring requires a positive accW");
  }
}

Bandwidth RemoteMirror::propagationRate(const WorkloadSpec& workload) const {
  switch (mode_) {
    case MirrorMode::kSync:
      // Writes block on the remote copy: the links must absorb bursts.
      return workload.peakUpdateRate();
    case MirrorMode::kAsync:
      // Background propagation smooths bursts in buffer; every update still
      // crosses the wire.
      return workload.avgUpdateRate();
    case MirrorMode::kAsyncBatch: {
      // Overwrites within a batch window are coalesced; a batch of unique
      // updates is transmitted each propW.
      const WindowSpec& w = policy_.primaryWindows();
      const Duration xmit = w.propW.secs() > 0 ? w.propW : w.accW;
      return workload.uniqueBytes(w.accW) / xmit;
    }
  }
  return Bandwidth::zero();
}

Duration RemoteMirror::foregroundWriteLatency() const {
  if (mode_ != MirrorMode::kSync) return Duration::zero();
  return 2.0 * links_->accessDelay();
}

Bytes RemoteMirror::requiredBufferSize(const WorkloadSpec& workload,
                                       Duration burstDuration) const {
  if (mode_ == MirrorMode::kSync) return Bytes{0};
  const Bandwidth peak = workload.peakUpdateRate();
  const Bandwidth drain = links_->maxBandwidth();
  const Bytes overshoot = peak > drain
                              ? (peak - drain) * burstDuration
                              : Bytes{0};
  if (mode_ == MirrorMode::kAsync) return overshoot;
  // Async-batch stages one full batch of unique updates before sending.
  return workload.uniqueBytes(policy_.primaryWindows().accW) + overshoot;
}

std::vector<PlacedDemand> RemoteMirror::normalModeDemands(
    const WorkloadSpec& workload) const {
  const Bandwidth rate = propagationRate(workload);
  std::vector<PlacedDemand> out;
  // Links: this technique owns them.
  out.push_back(PlacedDemand{
      links_, DeviceDemand{.techniqueName = name(),
                           .bandwidth = rate,
                           .capacity = Bytes{0},
                           .shipmentsPerYear = 0.0,
                           .isPrimaryTechnique = true}});
  // Destination array: applies the update stream, holds one full copy.
  out.push_back(PlacedDemand{
      dest_, DeviceDemand{.techniqueName = name(),
                          .bandwidth = rate,
                          .capacity = workload.dataCap(),
                          .shipmentsPerYear = 0.0,
                          .isPrimaryTechnique = true}});
  return out;
}

std::vector<RecoveryLeg> RemoteMirror::recoveryLegs(
    DevicePtr primaryTarget) const {
  // `via = links_` is a hint; the recovery model drops the WAN hop when the
  // replacement primary is co-located with the mirror (site failover).
  return {RecoveryLeg{.from = dest_,
                      .to = primaryTarget ? primaryTarget : source_,
                      .via = links_,
                      .serializedFix = Duration::zero()}};
}

}  // namespace stordep
