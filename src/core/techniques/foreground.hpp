// foreground.hpp — level 0: the primary copy and its foreground workload.
//
// The primary copy is not a protection technique, but it occupies the same
// slot in the hierarchy: it "retains" exactly the current data, places the
// foreground access bandwidth and the dataset capacity on the primary array,
// and is the destination of every recovery.
#pragma once

#include "core/technique.hpp"

namespace stordep {

class PrimaryCopy final : public Technique {
 public:
  explicit PrimaryCopy(DevicePtr array);

  [[nodiscard]] DevicePtr array() const noexcept { return array_; }

  [[nodiscard]] std::vector<DevicePtr> storageDevices() const override {
    return {array_};
  }

  /// Foreground demand: the workload's full access rate (reads + writes) and
  /// the dataset capacity. Marked as the array's primary technique — it is
  /// charged the array's fixed costs (paper Sec 3.3.5).
  [[nodiscard]] std::vector<PlacedDemand> normalModeDemands(
      const WorkloadSpec& workload) const override;

  /// The primary copy is never a recovery source (it is what gets rebuilt).
  [[nodiscard]] std::vector<RecoveryLeg> recoveryLegs(
      DevicePtr primaryTarget) const override;

 private:
  DevicePtr array_;
};

}  // namespace stordep
