#include "core/techniques/foreground.hpp"

namespace stordep {

PrimaryCopy::PrimaryCopy(DevicePtr array)
    : Technique("foreground workload", TechniqueKind::kPrimaryCopy),
      array_(std::move(array)) {
  if (!array_) throw TechniqueError("primary copy requires an array");
}

std::vector<PlacedDemand> PrimaryCopy::normalModeDemands(
    const WorkloadSpec& workload) const {
  return {PlacedDemand{
      array_,
      DeviceDemand{.techniqueName = name(),
                   .bandwidth = workload.avgAccessRate(),
                   .capacity = workload.dataCap(),
                   .shipmentsPerYear = 0.0,
                   .isPrimaryTechnique = true}}};
}

std::vector<RecoveryLeg> PrimaryCopy::recoveryLegs(
    DevicePtr /*primaryTarget*/) const {
  return {};  // the primary copy is the recovery *destination*
}

}  // namespace stordep
