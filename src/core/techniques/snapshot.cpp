#include "core/techniques/snapshot.hpp"

namespace stordep {

VirtualSnapshot::VirtualSnapshot(std::string name, DevicePtr array,
                                 ProtectionPolicy policy)
    : Technique(std::move(name), TechniqueKind::kVirtualSnapshot),
      array_(std::move(array)),
      policy_(std::move(policy)) {
  if (!array_) throw TechniqueError("virtual snapshot requires an array");
  if (!(policy_.primaryWindows().accW.secs() > 0)) {
    throw TechniqueError("virtual snapshot requires a positive accW");
  }
}

std::vector<PlacedDemand> VirtualSnapshot::normalModeDemands(
    const WorkloadSpec& workload) const {
  const Bandwidth cowBandwidth = 2.0 * workload.avgUpdateRate();
  const Bytes perSnapshot =
      workload.uniqueBytes(policy_.primaryWindows().accW);
  const Bytes capacity =
      perSnapshot * static_cast<double>(policy_.retentionCount());
  return {PlacedDemand{
      array_,
      DeviceDemand{.techniqueName = name(),
                   .bandwidth = cowBandwidth,
                   .capacity = capacity,
                   .shipmentsPerYear = 0.0,
                   .isPrimaryTechnique = false}}};
}

std::vector<RecoveryLeg> VirtualSnapshot::recoveryLegs(
    DevicePtr primaryTarget) const {
  // Snapshots share the primary array: restoring copies old blocks back in
  // place. If the recovery target is a replacement array (shouldn't happen —
  // snapshots die with the array), the leg still reads from this array.
  return {RecoveryLeg{.from = array_,
                      .to = primaryTarget ? primaryTarget : array_,
                      .via = nullptr,
                      .serializedFix = Duration::zero()}};
}

}  // namespace stordep
