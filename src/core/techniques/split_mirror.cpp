#include "core/techniques/split_mirror.hpp"

namespace stordep {

SplitMirror::SplitMirror(std::string name, DevicePtr array,
                         ProtectionPolicy policy)
    : Technique(std::move(name), TechniqueKind::kSplitMirror),
      array_(std::move(array)),
      policy_(std::move(policy)) {
  if (!array_) throw TechniqueError("split mirror requires an array");
  if (!(policy_.primaryWindows().accW.secs() > 0)) {
    throw TechniqueError("split mirror requires a positive accW");
  }
}

std::vector<PlacedDemand> SplitMirror::normalModeDemands(
    const WorkloadSpec& workload) const {
  const double copies = static_cast<double>(mirrorCount());
  const Duration accW = policy_.primaryWindows().accW;
  // The resilvering mirror was split `copies` windows ago; its catch-up data
  // is the unique updates over that whole range, applied within one window.
  const Duration staleRange = accW * copies;
  const Bandwidth catchUpRate = workload.uniqueBytes(staleRange) / accW;
  const Bandwidth resilverBandwidth = 2.0 * catchUpRate;  // read + write
  const Bytes capacity = workload.dataCap() * copies;
  return {PlacedDemand{
      array_,
      DeviceDemand{.techniqueName = name(),
                   .bandwidth = resilverBandwidth,
                   .capacity = capacity,
                   .shipmentsPerYear = 0.0,
                   .isPrimaryTechnique = false}}};
}

std::vector<RecoveryLeg> SplitMirror::recoveryLegs(
    DevicePtr primaryTarget) const {
  return {RecoveryLeg{.from = array_,
                      .to = primaryTarget ? primaryTarget : array_,
                      .via = nullptr,
                      .serializedFix = Duration::zero()}};
}

}  // namespace stordep
