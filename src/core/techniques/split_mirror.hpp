// split_mirror.hpp — split-mirror point-in-time copies.
//
// A circular buffer of full mirrors is maintained on the primary array
// (paper Sec 3.2.3): retCnt mirrors are accessible RPs and one extra is
// always being resilvered (brought up to date), for retCnt+1 full copies.
// When a mirror becomes eligible for resilvering it is retCnt+1 accumulation
// windows stale, so the system must apply all unique updates from that range,
// reading the new values from the primary copy and writing them to the
// mirror — both demands land on the same array.
#pragma once

#include "core/technique.hpp"

namespace stordep {

class SplitMirror final : public Technique {
 public:
  SplitMirror(std::string name, DevicePtr array, ProtectionPolicy policy);

  [[nodiscard]] const ProtectionPolicy* policy() const noexcept override {
    return &policy_;
  }
  [[nodiscard]] DevicePtr array() const noexcept { return array_; }

  /// Total mirrors maintained: retCnt accessible + 1 resilvering.
  [[nodiscard]] int mirrorCount() const noexcept {
    return policy_.retentionCount() + 1;
  }

  [[nodiscard]] std::vector<DevicePtr> storageDevices() const override {
    return {array_};
  }

  /// Array demands: capacity (retCnt+1) x dataCap; bandwidth
  /// 2 x (retCnt+1) x batchUpdR((retCnt+1) x accW) — the resilvering mirror
  /// catches up on retCnt+1 windows of unique updates within one window,
  /// read from the primary and written to the mirror.
  [[nodiscard]] std::vector<PlacedDemand> normalModeDemands(
      const WorkloadSpec& workload) const override;

  /// Restore is an intra-array copy.
  [[nodiscard]] std::vector<RecoveryLeg> recoveryLegs(
      DevicePtr primaryTarget) const override;

 private:
  DevicePtr array_;
  ProtectionPolicy policy_;
};

}  // namespace stordep
