#include "core/techniques/backup.hpp"

#include <algorithm>

namespace stordep {

std::string toString(BackupStyle style) {
  switch (style) {
    case BackupStyle::kFullOnly:
      return "full-only";
    case BackupStyle::kCumulativeIncremental:
      return "full+cumulative-incremental";
    case BackupStyle::kDifferentialIncremental:
      return "full+differential-incremental";
  }
  return "unknown";
}

Backup::Backup(std::string name, BackupStyle style, DevicePtr sourceArray,
               DevicePtr backupDevice, ProtectionPolicy policy,
               DevicePtr transport)
    : Technique(std::move(name), TechniqueKind::kBackup),
      style_(style),
      source_(std::move(sourceArray)),
      device_(std::move(backupDevice)),
      transport_(std::move(transport)),
      policy_(std::move(policy)) {
  if (!source_ || !device_) {
    throw TechniqueError("backup requires a source array and a backup device");
  }
  if (transport_ && !transport_->isTransport()) {
    throw TechniqueError("backup transport must be an interconnect device");
  }
  if (transport_ && transport_->deliversPhysically()) {
    throw TechniqueError("backup streams cannot ride a physical courier");
  }
  if (!(policy_.primaryWindows().propW.secs() > 0)) {
    throw TechniqueError("backup requires a positive full propagation window");
  }
  if (style_ != BackupStyle::kFullOnly) {
    if (!policy_.isCyclic()) {
      throw TechniqueError(
          "incremental backup requires a cyclic policy (full + incremental "
          "windows)");
    }
    if (!(policy_.secondaryWindows()->propW.secs() > 0)) {
      throw TechniqueError(
          "incremental backup requires a positive incremental propW");
    }
  } else if (policy_.isCyclic()) {
    throw TechniqueError("full-only backup must not carry incremental windows");
  }
}

Bytes Backup::largestIncrementalBytes(const WorkloadSpec& workload) const {
  if (style_ == BackupStyle::kFullOnly) return Bytes{0};
  const Duration accW = policy_.secondaryWindows()->accW;
  switch (style_) {
    case BackupStyle::kCumulativeIncremental:
      // The last incremental of the cycle covers everything since the full.
      return workload.uniqueBytes(accW *
                                  static_cast<double>(policy_.cycleCount()));
    case BackupStyle::kDifferentialIncremental:
      return workload.uniqueBytes(accW);
    case BackupStyle::kFullOnly:
      break;
  }
  return Bytes{0};
}

Bandwidth Backup::transferRate(const WorkloadSpec& workload) const {
  const Bandwidth fullRate =
      workload.dataCap() / policy_.primaryWindows().propW;
  if (style_ == BackupStyle::kFullOnly) return fullRate;
  const Bandwidth incrRate =
      largestIncrementalBytes(workload) / policy_.secondaryWindows()->propW;
  return std::max(fullRate, incrRate);
}

Bytes Backup::cycleCapacity(const WorkloadSpec& workload) const {
  Bytes total = workload.dataCap();  // the cycle's full backup
  if (style_ == BackupStyle::kCumulativeIncremental) {
    const Duration accW = policy_.secondaryWindows()->accW;
    for (int k = 1; k <= policy_.cycleCount(); ++k) {
      total += workload.uniqueBytes(accW * static_cast<double>(k));
    }
  } else if (style_ == BackupStyle::kDifferentialIncremental) {
    total += workload.uniqueBytes(policy_.secondaryWindows()->accW) *
             static_cast<double>(policy_.cycleCount());
  }
  return total;
}

std::vector<PlacedDemand> Backup::normalModeDemands(
    const WorkloadSpec& workload) const {
  const Bandwidth rate = transferRate(workload);
  const Bytes mediaCapacity =
      cycleCapacity(workload) * static_cast<double>(policy_.retentionCount()) +
      workload.dataCap();  // extra full: never overwrite the last good image

  std::vector<PlacedDemand> out;
  // Read stream on the source array (secondary technique there).
  out.push_back(PlacedDemand{
      source_, DeviceDemand{.techniqueName = name(),
                            .bandwidth = rate,
                            .capacity = Bytes{0},
                            .shipmentsPerYear = 0.0,
                            .isPrimaryTechnique = false}});
  // Write stream + media on the backup device (this technique owns it).
  out.push_back(PlacedDemand{
      device_, DeviceDemand{.techniqueName = name(),
                            .bandwidth = rate,
                            .capacity = mediaCapacity,
                            .shipmentsPerYear = 0.0,
                            .isPrimaryTechnique = true}});
  // The stream crosses the transport when one is named (shared SAN or WAN).
  if (transport_) {
    out.push_back(PlacedDemand{
        transport_, DeviceDemand{.techniqueName = name(),
                                 .bandwidth = rate,
                                 .capacity = Bytes{0},
                                 .shipmentsPerYear = 0.0,
                                 .isPrimaryTechnique = false}});
  }
  return out;
}

Bytes Backup::restorePayload(const WorkloadSpec& workload,
                             Bytes baseSize) const {
  Bytes incr{0};
  if (style_ == BackupStyle::kCumulativeIncremental) {
    incr = largestIncrementalBytes(workload);
  } else if (style_ == BackupStyle::kDifferentialIncremental) {
    incr = largestIncrementalBytes(workload) *
           static_cast<double>(policy_.cycleCount());
  }
  // Partial-object restores replay proportionally less incremental data.
  const double scale = std::min(1.0, baseSize / workload.dataCap());
  return baseSize + incr * scale;
}

std::vector<RecoveryLeg> Backup::recoveryLegs(DevicePtr primaryTarget) const {
  return {RecoveryLeg{.from = device_,
                      .to = primaryTarget ? primaryTarget : source_,
                      .via = transport_,
                      .serializedFix = device_->accessDelay()}};
}

}  // namespace stordep
