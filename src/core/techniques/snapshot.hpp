// snapshot.hpp — virtual (copy-on-write) point-in-time copies.
//
// Models the paper's update-in-place virtual-snapshot variant: before a
// foreground write modifies a block, the old value is copied to a new
// location, costing one additional read and one additional write per
// foreground write. Unmodified data shares physical storage with the primary
// copy, so each retained snapshot only needs capacity for the unique updates
// accumulated during its window — dramatically cheaper in capacity than split
// mirrors (Table 7's "snapshot" what-if).
#pragma once

#include "core/technique.hpp"

namespace stordep {

class VirtualSnapshot final : public Technique {
 public:
  /// Snapshots live on the primary `array` itself.
  VirtualSnapshot(std::string name, DevicePtr array, ProtectionPolicy policy);

  [[nodiscard]] const ProtectionPolicy* policy() const noexcept override {
    return &policy_;
  }
  [[nodiscard]] DevicePtr array() const noexcept { return array_; }

  [[nodiscard]] std::vector<DevicePtr> storageDevices() const override {
    return {array_};
  }

  /// Array demands: bandwidth 2 x avgUpdateR (COW read + write per
  /// foreground write); capacity retCnt x uniqueBytes(accW) (each retained
  /// snapshot stores one window's unique updates).
  [[nodiscard]] std::vector<PlacedDemand> normalModeDemands(
      const WorkloadSpec& workload) const override;

  /// Restore is an intra-array copy of the requested data.
  [[nodiscard]] std::vector<RecoveryLeg> recoveryLegs(
      DevicePtr primaryTarget) const override;

 private:
  DevicePtr array_;
  ProtectionPolicy policy_;
};

}  // namespace stordep
