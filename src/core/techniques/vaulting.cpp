#include "core/techniques/vaulting.hpp"

namespace stordep {

Vaulting::Vaulting(std::string name, DevicePtr backupDevice, DevicePtr vault,
                   DevicePtr shipment, ProtectionPolicy policy,
                   Duration backupRetentionWindow)
    : Technique(std::move(name), TechniqueKind::kVaulting),
      library_(std::move(backupDevice)),
      vault_(std::move(vault)),
      shipment_(std::move(shipment)),
      policy_(std::move(policy)),
      backupRetW_(backupRetentionWindow) {
  if (!library_ || !vault_ || !shipment_) {
    throw TechniqueError(
        "vaulting requires a backup device, a vault and a shipment service");
  }
  if (!shipment_->isTransport()) {
    throw TechniqueError("vaulting shipment device must be a transport");
  }
  if (!(policy_.cyclePeriod().secs() > 0)) {
    throw TechniqueError("vaulting requires a positive cycle period");
  }
}

bool Vaulting::needsExtraCopy() const noexcept {
  return policy_.holdW() < backupRetW_;
}

double Vaulting::shipmentsPerYear() const noexcept {
  return Duration{Duration::kYear} / policy_.cyclePeriod();
}

std::vector<PlacedDemand> Vaulting::normalModeDemands(
    const WorkloadSpec& workload) const {
  std::vector<PlacedDemand> out;

  // Vault retains retCnt full images.
  out.push_back(PlacedDemand{
      vault_,
      DeviceDemand{.techniqueName = name(),
                   .bandwidth = Bandwidth::zero(),
                   .capacity = workload.dataCap() *
                               static_cast<double>(policy_.retentionCount()),
                   .shipmentsPerYear = 0.0,
                   .isPrimaryTechnique = true}});

  // Courier dispatches.
  out.push_back(PlacedDemand{
      shipment_, DeviceDemand{.techniqueName = name(),
                              .bandwidth = Bandwidth::zero(),
                              .capacity = Bytes{0},
                              .shipmentsPerYear = shipmentsPerYear(),
                              .isPrimaryTechnique = true}});

  // Extra on-site copy when tapes ship before their retention expires:
  // read + write one full image within the vault propagation window, and
  // hold the copy until it ships.
  if (needsExtraCopy()) {
    const Duration copyWindow = policy_.primaryWindows().propW.secs() > 0
                                    ? policy_.primaryWindows().propW
                                    : policy_.cyclePeriod();
    out.push_back(PlacedDemand{
        library_,
        DeviceDemand{.techniqueName = name(),
                     .bandwidth = 2.0 * (workload.dataCap() / copyWindow),
                     .capacity = workload.dataCap(),
                     .shipmentsPerYear = 0.0,
                     .isPrimaryTechnique = false}});
  }
  return out;
}

Bytes Vaulting::restorePayload(const WorkloadSpec& /*workload*/,
                               Bytes baseSize) const {
  return baseSize;  // vaulted RPs are self-contained fulls
}

std::vector<RecoveryLeg> Vaulting::recoveryLegs(
    DevicePtr primaryTarget) const {
  std::vector<RecoveryLeg> legs;
  // Leg 1: physically ship the media back to a library.
  legs.push_back(RecoveryLeg{.from = vault_,
                             .to = library_,
                             .via = shipment_,
                             .serializedFix = Duration::zero()});
  // Leg 2: read the media at the library into the replacement primary.
  legs.push_back(RecoveryLeg{.from = library_,
                             .to = primaryTarget,
                             .via = nullptr,
                             .serializedFix = library_->accessDelay()});
  return legs;
}

}  // namespace stordep
